//! Large atomic values: the Figure-6 W-word register vs. plain words.
//!
//! Section 3.3 motivates the W-word construction with applications that
//! "must store pointers or other large data items". This example stores a
//! 4-word (128-bit-payload) record under heavy write contention, twice:
//!
//! * in four *independent* atomic words — individually atomic, collectively
//!   torn: readers observe mixed records;
//! * in a [`SnapshotRegister`] over Figure 6 — readers always see a
//!   complete write.
//!
//! ```text
//! cargo run --example wide_register
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp::core::wide::WideDomain;
use nbsp::core::Native;
use nbsp::memsim::ProcId;
use nbsp::structures::SnapshotRegister;

const W: usize = 4;
const WRITERS: usize = 3;
const WRITES: u64 = 40_000;
const READS: u64 = 200_000;

/// Record invariant: word[i] = word[0] + i (a recognisable stripe).
fn record(base: u64) -> [u64; W] {
    [base, base + 1, base + 2, base + 3]
}

fn torn(v: &[u64]) -> bool {
    !(1..W).all(|i| v[i] == v[0] + i as u64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ----- Baseline: four separate atomic words --------------------------
    let plain: Vec<AtomicU64> = record(0).iter().map(|&v| AtomicU64::new(v)).collect();
    let stop = AtomicBool::new(false);
    let torn_reads = std::thread::scope(|s| {
        for t in 0..WRITERS {
            let plain = &plain;
            let stop = &stop;
            s.spawn(move || {
                let mut base = t as u64;
                while !stop.load(Ordering::Relaxed) {
                    base += WRITERS as u64;
                    for (i, w) in plain.iter().enumerate() {
                        w.store(base + i as u64, Ordering::SeqCst);
                    }
                }
            });
        }
        let reader = s.spawn(|| {
            let mut torn_count = 0u64;
            for _ in 0..READS {
                let snap: Vec<u64> = plain.iter().map(|w| w.load(Ordering::SeqCst)).collect();
                if torn(&snap) {
                    torn_count += 1;
                }
            }
            stop.store(true, Ordering::Relaxed);
            torn_count
        });
        reader.join().unwrap()
    });
    println!(
        "plain words : {torn_reads}/{READS} torn reads ({:.2}%)",
        100.0 * torn_reads as f64 / READS as f64
    );

    // ----- Figure 6: the W-word register ---------------------------------
    let domain = WideDomain::<Native>::new(WRITERS + 1, W, 32)?;
    println!(
        "wide domain : N = {}, W = {}, announce overhead = {} words (independent of #registers)",
        domain.n(),
        domain.w(),
        domain.space_overhead_words()
    );
    let reg = SnapshotRegister::new(&domain, &record(0))?;
    let wide_torn = std::thread::scope(|s| {
        for t in 0..WRITERS {
            let reg = &reg;
            s.spawn(move || {
                let mem = Native;
                let p = ProcId::new(t);
                let mut base = t as u64;
                for _ in 0..WRITES {
                    base += WRITERS as u64;
                    reg.write(&mem, p, &record(base));
                }
            });
        }
        let reg = &reg;
        let reader = s.spawn(move || {
            let mem = Native;
            let mut buf = [0u64; W];
            let mut torn_count = 0u64;
            for _ in 0..READS {
                reg.read_into(&mem, &mut buf);
                if torn(&buf) {
                    torn_count += 1;
                }
            }
            torn_count
        });
        reader.join().unwrap()
    });
    println!("wide register: {wide_torn}/{READS} torn reads");
    assert_eq!(wide_torn, 0, "Figure 6 must never tear");
    if torn_reads == 0 {
        println!("(the racy baseline happened to not tear this run; try again)");
    }
    println!("ok: WLL/SC gives atomic {W}-word snapshots under contention");
    Ok(())
}
