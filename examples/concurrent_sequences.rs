//! Figure 1, executable: concurrent LL–SC sequences vs. restricted RLL/RSC.
//!
//! The paper's Figure 1(a) shows a process with two LL–SC sequences in
//! flight at once — LL(X), work on Z, LL(Y), VL(X), SC(Y), SC(X) — and
//! observes that hardware with a single reservation per processor (MIPS
//! R4000, Alpha, PowerPC) cannot run it. This example demonstrates:
//!
//! 1. on the raw RLL/RSC machine, the second RLL silently destroys the
//!    first reservation, so the program *cannot* be written that way;
//! 2. the same program runs correctly on the paper's Figure-5 construction
//!    over the very same machine.
//!
//! ```text
//! cargo run --example concurrent_sequences
//! ```

use nbsp::core::{Keep, RllLlSc, TagLayout};
use nbsp::memsim::{InstructionSet, Machine, SimWord};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A machine like the MIPS R4000: RLL/RSC, no CAS, one LLBit.
    let machine = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .build();
    let p = machine.processor(0);

    // ---------------------------------------------------------------
    // Attempt 1: Figure 1(a) with raw RLL/RSC. Doomed.
    // ---------------------------------------------------------------
    println!("--- raw RLL/RSC on a single-LLBit machine ---");
    let x = SimWord::new(10);
    let y = SimWord::new(20);
    let z = SimWord::new(0);

    let vx = p.rll(&x); // RLL(X)
    p.write(&z, 1); //     touch Z — already invalidates the reservation!
    let vy = p.rll(&y); // RLL(Y) — and this claims the single LLBit anyway
    let sy = p.rsc(&y, vy + 1); // RSC(Y) works: the reservation names Y…
    println!("RSC(Y) succeeded: {sy}");
    // …but there is no reservation left for X. On real hardware the SC
    // simply fails; the program cannot express two sequences at once.
    assert!(!p.has_reservation());
    println!("reservation for X after RSC(Y): gone (single LLBit)");
    let _ = vx;

    // ---------------------------------------------------------------
    // Attempt 2: the same program over Figure 5 (emulated LL/VL/SC),
    // still running on nothing but RLL/RSC.
    // ---------------------------------------------------------------
    println!("\n--- Figure-5 LL/VL/SC emulated over the same machine ---");
    let layout = TagLayout::half();
    let ex = RllLlSc::new(layout, 10)?;
    let ey = RllLlSc::new(layout, 20)?;
    let ez = SimWord::new(0);

    let mut keep_x = Keep::default();
    let mut keep_y = Keep::default();

    let vx = ex.ll(&p, &mut keep_x); //  LL(X)
    p.write(&ez, p.read(&ez) + 1); //    read & write Z freely
    let vy = ey.ll(&p, &mut keep_y); //  LL(Y) — second sequence, no problem
    assert!(ex.vl(&p, &keep_x)); //      VL(X)
    assert!(ey.sc(&p, &keep_y, vy + 1)); // SC(Y)
    assert!(ex.sc(&p, &keep_x, vx + 1)); // SC(X)

    println!(
        "X: 10 -> {}, Y: 20 -> {} — both sequences committed",
        ex.read(&p),
        ey.read(&p)
    );
    assert_eq!((ex.read(&p), ey.read(&p)), (11, 21));

    let stats = p.stats();
    println!(
        "\nsimulated instruction counts: {} RLL, {} RSC ({} failed), {} reads, {} writes",
        stats.rll,
        stats.rsc_attempts,
        stats.rsc_failures(),
        stats.reads,
        stats.writes,
    );
    println!("ok: Figure 1(a) runs on single-LLBit hardware via Figure 5");
    Ok(())
}
