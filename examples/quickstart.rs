//! Quickstart: LL/VL/SC on a machine that only has CAS.
//!
//! This is the paper's Figure-4 construction in its natural habitat: your
//! CPU provides compare-and-swap (`AtomicU64::compare_exchange`), your
//! algorithm wants Load-Linked / Validate / Store-Conditional with
//! concurrent sequences. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use nbsp::core::{CasLlSc, Keep, Native, TagLayout};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64-bit word split into a 32-bit tag and a 32-bit value. The tag is
    // what makes SC fail after *any* intervening store — even one that
    // restores the old value (no ABA).
    let layout = TagLayout::half();
    println!(
        "layout: {} tag bits / {} value bits (tag wraps after {} SCs)",
        layout.tag_bits(),
        layout.val_bits(),
        layout.max_tag() + 1,
    );

    let counter = CasLlSc::new_native(layout, 0)?;
    let mem = Native;

    // --- The basic LL ... VL ... SC cycle --------------------------------
    let mut keep = Keep::default();
    let value = counter.ll(&mem, &mut keep);
    assert!(counter.vl(&mem, &keep), "nobody interfered yet");
    assert!(counter.sc(&mem, &keep, value + 1));
    println!("single-threaded LL/SC: 0 -> {}", counter.read(&mem));

    // --- A stale sequence fails, exactly as the semantics demand --------
    let mut stale = Keep::default();
    let _ = counter.ll(&mem, &mut stale);
    let mut fresh = Keep::default();
    let v = counter.ll(&mem, &mut fresh);
    assert!(counter.sc(&mem, &fresh, v + 1)); // interferes with `stale`
    assert!(!counter.vl(&mem, &stale), "VL detects the interference");
    assert!(!counter.sc(&mem, &stale, 999), "SC refuses the stale keep");

    // --- Contended increments are exact ----------------------------------
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 100_000;
    let before = counter.read(&mem);
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = &counter;
            s.spawn(move || {
                let mem = Native;
                for _ in 0..PER_THREAD {
                    let mut keep = Keep::default();
                    loop {
                        let v = counter.ll(&mem, &mut keep);
                        if counter.sc(&mem, &keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let after = counter.read(&mem);
    println!(
        "{THREADS} threads x {PER_THREAD} increments: {before} -> {after} \
         (expected {})",
        before + THREADS as u64 * PER_THREAD
    );
    assert_eq!(after, before + THREADS as u64 * PER_THREAD);

    println!("ok: no increment was lost — every SC linearized correctly");
    Ok(())
}
