//! One algorithm, three machines — the paper's punchline.
//!
//! Section 5: "Our results indicate to architects that the choice between
//! CAS and LL/SC (in its various forms) will not greatly impact
//! programmers or program complexity." Here the *same* generic algorithm
//! (an LL/SC fetch-and-add written once against the `LlScVar` trait) runs
//! unchanged on:
//!
//! 1. a machine with native CAS (your CPU);
//! 2. a simulated machine with CAS only (no LL/SC) — via Figure 4;
//! 3. a simulated machine with restricted LL/SC only (no CAS, one
//!    reservation, spurious failures) — via Figure 4 over Figure 3.
//!
//! ```text
//! cargo run --example portability
//! ```

use nbsp::core::{
    CasLlSc, EmuCas, EmuFamily, LlScVar, Native, SimCas, SimFamily, TagLayout,
};
use nbsp::memsim::{InstructionSet, Machine, SpuriousMode};

/// The portable algorithm: written once, runs on every machine below.
fn add_many<V: LlScVar>(var: &V, ctx: &mut V::Ctx<'_>, times: u64) {
    for _ in 0..times {
        let mut keep = V::Keep::default();
        loop {
            let v = var.ll(ctx, &mut keep);
            if var.sc(ctx, &mut keep, v + 1) {
                break;
            }
        }
    }
}

const OPS: u64 = 10_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ------------------------------------------------------------------
    // Machine 1: native CAS (AtomicU64 on this CPU).
    // ------------------------------------------------------------------
    let var = CasLlSc::new_native(TagLayout::half(), 0)?;
    add_many(&var, &mut Native, OPS);
    println!("native CAS machine        : counter = {}", var.read(&Native));
    assert_eq!(var.read(&Native), OPS);

    // ------------------------------------------------------------------
    // Machine 2: simulated CAS-only machine (a SPARC, in spirit).
    // Any RLL/RSC instruction would panic — there are none.
    // ------------------------------------------------------------------
    let machine = Machine::builder(1)
        .instruction_set(InstructionSet::CasOnly)
        .build();
    let p = machine.processor(0);
    let var = CasLlSc::<SimFamily>::new(TagLayout::half(), 0)?;
    let mut mem = SimCas::new(&p);
    add_many(&var, &mut mem, OPS);
    let stats = p.stats();
    println!(
        "simulated CAS-only machine: counter = {}  ({} CAS, {} reads, 0 LL/SC by construction)",
        var.read(&mem),
        stats.cas_attempts,
        stats.reads,
    );
    assert_eq!(var.read(&mem), OPS);
    assert_eq!(stats.rll, 0);

    // ------------------------------------------------------------------
    // Machine 3: simulated RLL/RSC-only machine (a MIPS R4000, in
    // spirit), with 10% spurious RSC failures for good measure. Any CAS
    // instruction would panic — Figure 3 synthesizes it.
    // ------------------------------------------------------------------
    let machine = Machine::builder(1)
        .instruction_set(InstructionSet::RllRscOnly)
        .spurious(SpuriousMode::Probability { p: 0.1 })
        .build();
    let p = machine.processor(0);
    let var = CasLlSc::<EmuFamily<32>>::new(TagLayout::for_width(16, 16, 32)?, 0)?;
    let mut mem = EmuCas::<32>::new(&p);
    add_many(&var, &mut mem, OPS);
    let stats = p.stats();
    println!(
        "simulated RLL/RSC machine : counter = {}  ({} RLL, {} RSC, {} spurious failures absorbed)",
        var.read(&mem),
        stats.rll,
        stats.rsc_attempts,
        stats.rsc_spurious,
    );
    assert_eq!(var.read(&mem), OPS);
    assert!(stats.rsc_spurious > 0);

    println!("\nok: identical algorithm, three instruction sets, same result");
    Ok(())
}
