//! A tour of the bounded-tag construction (Figure 7 / Theorem 5).
//!
//! The unbounded-tag constructions rely on "wraparound takes nine years";
//! Figure 7 removes even that caveat with a feedback mechanism over a tiny
//! tag universe of `2Nk + 1` tags. This example walks through its moving
//! parts — slots, the CL (abort) operation, the per-process tag queue —
//! and then hammers the smallest possible universe to show that exactness
//! survives where naive small tags would long since have collided.
//!
//! ```text
//! cargo run --example bounded_tags
//! ```

use nbsp::core::bounded::BoundedDomain;
use nbsp::core::Native;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // N = 2 processes, k = 2 concurrent sequences each.
    let domain = BoundedDomain::<Native>::new(2, 2)?;
    println!(
        "domain: N = {}, k = {}, tag universe = {} tags, value bits = {}",
        domain.n(),
        domain.k(),
        2 * domain.n() * domain.k() + 1,
        domain.layout().val_bits(),
    );
    println!(
        "shared overhead: {} announce words + {} `last` words per variable\n",
        domain.space_overhead_words(),
        domain.n(),
    );

    let x = domain.var(10)?;
    let y = domain.var(20)?;
    let mut me = domain.proc(0);
    let mem = Native;

    // --- k concurrent sequences + CL -------------------------------------
    println!("slots free before any LL: {}", me.free_slots());
    let (vx, keep_x) = x.ll(&mem, &mut me);
    let (vy, keep_y) = y.ll(&mem, &mut me);
    println!("slots free with 2 sequences in flight: {}", me.free_slots());

    // Abort the Y sequence with CL — the operation Figure 7 adds so that
    // abandoned sequences return their slot.
    me.cl(keep_y);
    println!("slots free after CL(y): {}", me.free_slots());
    let _ = vy;

    assert!(x.vl(&mem, &me, &keep_x));
    assert!(x.sc(&mem, &mut me, keep_x, vx + 1));
    println!("x: 10 -> {}", x.peek(&mem));

    // --- the tag queue ----------------------------------------------------
    println!("\ntag queue after one SC: {:?}", me.tag_queue_snapshot());
    for _ in 0..3 {
        let (v, keep) = x.ll(&mem, &mut me);
        assert!(x.sc(&mem, &mut me, keep, v + 1));
    }
    println!("tag queue after four SCs: {:?}", me.tag_queue_snapshot());
    let (tag, cnt, pid) = x.current_stamp(&mem);
    println!("x's current stamp: tag = {tag}, cnt = {cnt}, writer = p{pid}");

    // --- exactness at the minimum universe --------------------------------
    // N = 2, k = 1: only FIVE tags exist. Two threads fight over one
    // counter; ten million naive 3-bit tags would have collided — the
    // feedback mechanism never lets a stale sequence sneak through.
    println!("\nstress: N = 2, k = 1 (5 tags), 2 x 250k contended increments…");
    let tiny = BoundedDomain::<Native>::new(2, 1)?;
    let counter = tiny.var(0)?;
    std::thread::scope(|s| {
        for t in 0..2 {
            let counter = &counter;
            let mut me = tiny.proc(t);
            s.spawn(move || {
                for _ in 0..250_000 {
                    loop {
                        let (v, keep) = counter.ll(&Native, &mut me);
                        if counter.sc(&Native, &mut me, keep, v + 1) {
                            break;
                        }
                    }
                }
            });
        }
    });
    let total = counter.peek(&Native);
    println!("final count: {total} (expected 500000)");
    assert_eq!(total, 500_000);
    println!("ok: zero lost updates with a 5-tag universe — Theorem 5 holds");
    Ok(())
}
