//! Software transactional memory over the paper's Figure-6 construction.
//!
//! Section 5 of the paper: "We have shown that STM can be implemented in
//! existing systems". This example runs a classic bank-transfer workload —
//! the scenario STM exists for — with concurrent auditors verifying that
//! the total balance is conserved in every snapshot.
//!
//! ```text
//! cargo run --example stm_transfer
//! ```

use nbsp::core::wide::WideDomain;
use nbsp::core::Native;
use nbsp::memsim::ProcId;
use nbsp::structures::stm::Stm;

const ACCOUNTS: usize = 8;
const WORKERS: usize = 3;
const AUDITORS: usize = 2;
const TRANSFERS_PER_WORKER: u64 = 50_000;
const INITIAL_BALANCE: u64 = 1_000;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Heap: 8 account cells. Domain sized for workers + auditors.
    let domain = WideDomain::<Native>::new(WORKERS + AUDITORS, ACCOUNTS, 24)?;
    let stm = Stm::new(&domain, &[INITIAL_BALANCE; ACCOUNTS])?;
    let expected_total = INITIAL_BALANCE * ACCOUNTS as u64;

    println!(
        "{ACCOUNTS} accounts x {INITIAL_BALANCE} = total {expected_total}; \
         {WORKERS} transfer workers, {AUDITORS} auditors"
    );

    let (attempts, audits) = std::thread::scope(|s| {
        let mut workers = Vec::new();
        for t in 0..WORKERS {
            let stm = &stm;
            workers.push(s.spawn(move || {
                let mem = Native;
                let p = ProcId::new(t);
                let mut rng = 0x9e3779b97f4a7c15u64 ^ t as u64;
                let mut attempts = 0;
                for _ in 0..TRANSFERS_PER_WORKER {
                    rng = rng.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let from = (rng >> 33) as usize % ACCOUNTS;
                    let to = (rng >> 13) as usize % ACCOUNTS;
                    let amount = rng % 50;
                    let (_, stats) = stm.transact(&mem, p, |heap| {
                        let amount = amount.min(heap[from]);
                        heap[from] -= amount;
                        heap[to] += amount;
                    });
                    attempts += stats.attempts;
                }
                attempts
            }));
        }
        let mut auditors = Vec::new();
        for a in 0..AUDITORS {
            let stm = &stm;
            auditors.push(s.spawn(move || {
                let mem = Native;
                let mut audits = 0u64;
                for _ in 0..20_000 {
                    let total: u64 = stm.read(&mem, |heap| heap.iter().sum());
                    assert_eq!(
                        total, expected_total,
                        "auditor {a} saw money in flight!"
                    );
                    audits += 1;
                }
                audits
            }));
        }
        (
            workers.into_iter().map(|h| h.join().unwrap()).sum::<u64>(),
            auditors.into_iter().map(|h| h.join().unwrap()).sum::<u64>(),
        )
    });

    let committed = WORKERS as u64 * TRANSFERS_PER_WORKER;
    let final_total: u64 = stm.snapshot(&Native).iter().sum();
    println!("transactions committed : {committed}");
    println!(
        "attempts (incl. retries): {attempts} ({:.3} attempts/tx)",
        attempts as f64 / committed as f64
    );
    println!("consistent audits      : {audits}");
    println!("final total            : {final_total}");
    assert_eq!(final_total, expected_total);
    println!("ok: every audit and the final snapshot conserved the total");
    Ok(())
}
