//! # nbsp — Practical Implementations of Non-Blocking Synchronization Primitives
//!
//! A from-scratch Rust reproduction of Mark Moir, *Practical
//! Implementations of Non-Blocking Synchronization Primitives*, PODC 1997.
//!
//! The paper closes the gap between the LL/VL/SC and CAS primitives that
//! published non-blocking algorithms assume and the weaker instructions
//! real multiprocessors provide. This workspace implements every
//! construction in the paper, the simulated hardware substrate they are
//! specified against, the algorithms they re-enable, and the test and
//! benchmark machinery that validates the paper's claims. See `DESIGN.md`
//! for the full inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! This crate is a facade: it re-exports the workspace crates under one
//! name.
//!
//! ```
//! use nbsp::core::{CasLlSc, Keep, Native, TagLayout};
//!
//! let v = CasLlSc::new_native(TagLayout::half(), 0)?;
//! let mut keep = Keep::default();
//! let x = v.ll(&Native, &mut keep);
//! assert!(v.sc(&Native, &keep, x + 1));
//! assert_eq!(v.read(&Native), 1);
//! # Ok::<(), nbsp::core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Wait-free event counters, histograms, and snapshot interfaces.
/// Re-export of `nbsp-telemetry`.
pub use nbsp_telemetry as telemetry;

/// The simulated shared-memory multiprocessor (RLL/RSC, CAS, spurious
/// failures, instruction accounting). Re-export of `nbsp-memsim`.
pub use nbsp_memsim as memsim;

/// The paper's constructions (Figures 3–7), baselines and ablations.
/// Re-export of `nbsp-core`.
pub use nbsp_core as core;

/// Multi-word LLX/SCX/VLX (Brown–Ellen–Ruppert) built on any registry
/// provider's LL/SC: frozen/finalized records, announce/help descriptor
/// commit. Re-export of `nbsp-llx`.
pub use nbsp_llx as llx;

/// Non-blocking data structures built on the primitives. Re-export of
/// `nbsp-structures`.
pub use nbsp_structures as structures;

/// History recording and linearizability checking. Re-export of
/// `nbsp-linearize`.
pub use nbsp_linearize as linearize;

/// Open-loop request serving: seeded load generation, LL/SC dispatch
/// ring, single-word token-bucket admission, WLL-snapshot latency
/// metrics. Re-export of `nbsp-serve`.
pub use nbsp_serve as serve;

/// Schedule-controlled model checking (DPOR) of the real providers and
/// the repo-invariant lint pass. Re-export of `nbsp-check`.
pub use nbsp_check as check;

/// Dynamic joining and durability: the kill-at-schedule-point
/// crash–recovery harness and membership churn drivers for the
/// `dynamic`/`dynamic-durable` providers. Re-export of `nbsp-dynamic`.
pub use nbsp_dynamic as dynamic;
