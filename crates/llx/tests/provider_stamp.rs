//! LLX/SCX stamped over the whole provider registry: one generic body
//! exercising link/commit/abort/finalize plus a cross-thread conservation
//! race, expanded per registry entry by `for_each_provider!` — a provider
//! added to the registry gets multi-word coverage by construction.

use nbsp_core::{for_each_provider, Provider};
use nbsp_llx::{LlxDomain, LlxOutcome};

/// Single-threaded protocol walk, one provider: roundtrip commit,
/// multi-record commit with finalization, conflict-forced abort, VLX.
fn protocol<P: Provider>() {
    let env = P::env(2).expect("provider env");
    let mut tc0 = P::thread_ctx(&env, 0);
    let mut ctx0 = P::ctx(&mut tc0);
    let d = LlxDomain::new(
        2,
        8,
        2,
        1,
        || P::var(&env, 0).expect("provider var"),
        &mut ctx0,
    );
    let a = d.alloc(&mut ctx0, &[1], &[10, 20]).unwrap();
    let b = d.alloc(&mut ctx0, &[2], &[30, 40]).unwrap();

    // Roundtrip: link, commit, re-read.
    let ha = d.llx(&mut ctx0, a).expect_linked("a");
    assert_eq!((ha.field(0), ha.field(1)), (10, 20));
    assert!(d.scx(&mut ctx0, 0, vec![ha], 0, a, 0, 11));
    assert_eq!(d.read_field(&mut ctx0, a, 0), 11);

    // Two-record SCX from the second slot, finalizing b.
    let mut tc1 = P::thread_ctx(&env, 1);
    let mut ctx1 = P::ctx(&mut tc1);
    let ha = d.llx(&mut ctx1, a).expect_linked("a");
    let hb = d.llx(&mut ctx1, b).expect_linked("b");
    assert_eq!(hb.field(0), 30);
    assert!(d.scx(&mut ctx1, 1, vec![ha, hb], 0b10, a, 1, 99));
    assert!(matches!(d.llx(&mut ctx1, b), LlxOutcome::Finalized));
    assert_eq!(d.read_field(&mut ctx1, a, 1), 99);

    // Conflict: a later committed SCX must abort the stale one.
    let h0 = d.llx(&mut ctx0, a).expect_linked("p0");
    let h1 = d.llx(&mut ctx1, a).expect_linked("p1");
    assert!(d.scx(&mut ctx1, 1, vec![h1], 0, a, 0, 12));
    assert!(!d.scx(&mut ctx0, 0, vec![h0], 0, a, 0, 13));
    assert_eq!(d.read_field(&mut ctx0, a, 0), 12);

    // VLX: quiet set validates, disturbed set does not.
    let s = d.llx_snapshot(&mut ctx0, a).unwrap();
    assert!(d.vlx_snapshots(&mut ctx0, &[s]));
    let h = d.llx(&mut ctx1, a).expect_linked("writer");
    assert!(d.scx(&mut ctx1, 1, vec![h], 0, a, 0, 14));
    assert!(!d.vlx_snapshots(&mut ctx0, &[s]));
}

/// Cross-thread conservation, one provider: racing two-record SCX
/// increments must equal the number of committed SCXs — interference
/// forces helping/aborts, never lost updates.
fn conservation<P: Provider>() {
    const THREADS: usize = 2;
    const ROUNDS: usize = 300;
    let env = P::env(THREADS + 1).expect("provider env");
    let mut ctx_init_tc = P::thread_ctx(&env, THREADS);
    let mut ctx_init = P::ctx(&mut ctx_init_tc);
    let d = LlxDomain::new(
        THREADS,
        4,
        1,
        1,
        || P::var(&env, 0).expect("provider var"),
        &mut ctx_init,
    );
    let a = d.alloc(&mut ctx_init, &[0], &[0]).unwrap();
    let b = d.alloc(&mut ctx_init, &[0], &[0]).unwrap();
    let successes: u64 = std::thread::scope(|s| {
        (0..THREADS)
            .map(|p| {
                let d = &d;
                let env = &env;
                s.spawn(move || {
                    let mut tc = P::thread_ctx(env, p);
                    let mut ctx = P::ctx(&mut tc);
                    let mut ok = 0u64;
                    for i in 0..ROUNDS {
                        let ha = d.llx(&mut ctx, a).expect_linked("a");
                        let hb = d.llx(&mut ctx, b).expect_linked("b");
                        let (t, old) = if i % 2 == 0 {
                            (a, ha.field(0))
                        } else {
                            (b, hb.field(0))
                        };
                        if d.scx(&mut ctx, p, vec![ha, hb], 0, t, 0, old + 1) {
                            ok += 1;
                        }
                    }
                    ok
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().unwrap())
            .sum()
    });
    let total = d.read_field(&mut ctx_init, a, 0) + d.read_field(&mut ctx_init, b, 0);
    assert_eq!(total, successes, "committed SCXs must conserve");
    assert!(successes > 0, "some SCX must commit");
}

macro_rules! stamp {
    ($name:ident, $provider:ty) => {
        mod $name {
            #[test]
            fn llx_scx_protocol() {
                super::protocol::<$provider>();
            }

            #[test]
            fn llx_scx_conservation() {
                super::conservation::<$provider>();
            }
        }
    };
}

for_each_provider!(stamp);
