//! # nbsp-llx — multi-word LLX/SCX/VLX on the provider registry
//!
//! The Brown–Ellen–Ruppert primitives (*Pragmatic primitives for
//! non-blocking data structures*, arXiv:1712.06688) generalize LL/SC from
//! one word to a set of **records**: `LLX(r)` returns a snapshot of `r`'s
//! mutable fields and links `r` into the caller's next `SCX`; `SCX(V, R,
//! fld, new)` atomically verifies that no record in `V` changed since its
//! LLX, writes `new` into one mutable field, and marks the records in
//! `R ⊆ V` as *finalized* (logically removed, never to change again);
//! `VLX(V)` validates a set without writing. This is exactly the shape of
//! the source paper's Figure-6 announce/helping machinery, lifted from
//! "copy W words" to "freeze V records": an SCX publishes a descriptor,
//! installs a *frozen* marker in each linked record's `info` word, and any
//! reader or competing writer that trips over the marker **helps** the
//! stalled SCX to completion before proceeding (help-on-read).
//!
//! ## How this maps onto the registry
//!
//! Every interleaving-relevant word is a registry [`LlScVar`]:
//!
//! * each record's `info` word (version ∥ frozen-by pid ∥ seq hint ∥
//!   finalized bit),
//! * each record's mutable fields,
//! * each process's descriptor **state** word (`seq ∥
//!   {InProgress,Committed,Aborted}`).
//!
//! so the whole commit protocol runs on whichever provider the caller
//! supplies — and, because the providers are schedule-point instrumented,
//! a multi-word SCX is DPOR-checkable end to end by `nbsp-check` with no
//! extra hooks. The descriptor *payload* (linked set, expected infos,
//! finalize mask, field/new) lives in plain per-process atomics, like
//! Figure 6's announce rows: it is immutable from the state word's
//! InProgress publication until the owner starts its next SCX, and
//! helpers re-validate the state word after reading it, so those reads
//! are race-free by protocol rather than by instrumentation.
//!
//! ## Freezing by value, helped by keeps
//!
//! BER assume a CAS that can distinguish "still my expected descriptor
//! pointer" by identity. Here the `info` word carries a **version** field
//! bumped by every successful SC on it, so its values never repeat within
//! a version-wraparound period and helpers can freeze with a plain
//! value-guarded LL/SC loop. The SCX *owner* additionally holds the keeps
//! from its LLXs and tries a true keep-based SC first — the LL/SC-native
//! fast path — falling back to the uniform value loop when it fails. The
//! wraparound bound is the same flavour as the paper's Figure-7 tag
//! arithmetic: with `v` version bits, a stalled helper resurrects only if
//! exactly a multiple of `2^v` info updates land on one record while its
//! SCX stays in progress (documented residual, sized at construction).
//!
//! ## Freshness requirement on field values
//!
//! The committing field write is a value-guarded CAS (`old → new`), made
//! idempotent across helpers by requiring that **`new` never equals any
//! value the field previously held**. Arena-allocated structures satisfy
//! this for free (child pointers are never-reused record indices;
//! counters only grow). Violating it makes a stalled helper's late CAS
//! indistinguishable from a fresh one — the classic ABA the version field
//! excludes for the `info` words.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use nbsp_core::{Backoff, CachePadded, LlScVar};
use nbsp_telemetry::{record, Event};

/// Maximum records one SCX may link (`|V|`). Three is the deepest any
/// shipped structure needs (external-BST delete links grandparent,
/// parent, leaf); the fourth slot is margin for experiments.
pub const MAX_V: usize = 4;

/// Maximum mutable fields per record (an external BST needs two: left and
/// right child).
pub const MAX_FIELDS: usize = 4;

/// Descriptor states, packed into the low two bits of the state word.
const ST_IDLE: u64 = 0;
const ST_IN_PROGRESS: u64 = 1;
const ST_COMMITTED: u64 = 2;
const ST_ABORTED: u64 = 3;

/// Bits of the SCX sequence number mirrored into frozen `info` words (a
/// hint locating the descriptor generation; the full-width state word is
/// what helpers actually validate against).
const HINT_BITS: u32 = 8;

/// Structure-level errors (the arena is a lifetime budget, as everywhere
/// else in this workspace: records are never reclaimed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LlxError {
    /// The record arena's lifetime allocation budget is exhausted.
    Full,
}

impl fmt::Display for LlxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LlxError::Full => write!(f, "llx record arena exhausted"),
        }
    }
}

impl std::error::Error for LlxError {}

/// Deliberately broken protocol variants for the model checker's planted
/// canaries. Never constructed outside `nbsp-check`'s E13 harness; the
/// checker must *deterministically* catch each one, proving DPOR really
/// sees multi-word races.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Flaw {
    /// The faithful protocol.
    #[default]
    None,
    /// The freeze phase "freezes" every linked record after the first by
    /// doing nothing — a lost-freeze bug: overlapping SCXs can both
    /// commit against stale snapshots of the unfrozen records.
    LostFreeze,
}

/// The result of an [`LlxDomain::llx`] call.
#[derive(Debug)]
pub enum LlxOutcome<V: LlScVar> {
    /// The record was snapshotted and linked: the handle holds the open
    /// keep, the observed `info` word and the field values. Pass it to
    /// [`LlxDomain::scx`] (which consumes the keep) or release it with
    /// [`LlxDomain::unlink`].
    Linked(LlxHandle<V>),
    /// The record is finalized: it was removed by a committed SCX and
    /// will never change again.
    Finalized,
}

impl<V: LlScVar> LlxOutcome<V> {
    /// Unwraps the linked handle; panics on `Finalized`.
    ///
    /// # Panics
    ///
    /// Panics if the record was finalized.
    pub fn expect_linked(self, msg: &str) -> LlxHandle<V> {
        match self {
            LlxOutcome::Linked(h) => h,
            LlxOutcome::Finalized => panic!("{msg}: record is finalized"),
        }
    }
}

/// A linked LLX result: the snapshot plus the open LL–SC sequence on the
/// record's `info` word. Holding one consumes one of the provider's `k`
/// concurrent-sequence slots until it is passed to `scx` or `unlink`.
pub struct LlxHandle<V: LlScVar> {
    /// Arena index of the record.
    pub rec: usize,
    /// The `info` word observed (version ∥ unfrozen ∥ unfinalized).
    pub info: u64,
    /// Field values, valid at the `info` validation point.
    vals: [u64; MAX_FIELDS],
    /// The open keep from the LLX's `ll` on `info`.
    keep: V::Keep,
}

impl<V: LlScVar> LlxHandle<V> {
    /// The snapshotted value of field `f`.
    #[must_use]
    pub fn field(&self, f: usize) -> u64 {
        self.vals[f]
    }
}

impl<V: LlScVar> fmt::Debug for LlxHandle<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlxHandle")
            .field("rec", &self.rec)
            .field("info", &self.info)
            .finish_non_exhaustive()
    }
}

/// An *unlinked* LLX observation (keep released, value retained): enough
/// for [`LlxDomain::vlx_snapshots`]'s value-compare validation, and not
/// bounded by the provider's `k` — range scans collect arbitrarily many.
#[derive(Clone, Copy, Debug)]
pub struct LlxSnapshot {
    /// Arena index of the record.
    pub rec: usize,
    /// The `info` word observed.
    pub info: u64,
    /// Field values, valid at the `info` validation point.
    vals: [u64; MAX_FIELDS],
}

impl LlxSnapshot {
    /// The snapshotted value of field `f`.
    #[must_use]
    pub fn field(&self, f: usize) -> u64 {
        self.vals[f]
    }
}

/// One record: an `info` word coordinating freeze/finalize, `fields`
/// mutable only through SCX, and immutable-after-alloc `meta` words
/// (keys, payload values) in plain atomics.
struct Record<V: LlScVar> {
    info: V,
    fields: Box<[V]>,
    meta: Box<[AtomicU64]>,
}

/// Per-process SCX descriptor payload — the Figure-6 announce row. Plain
/// release/acquire atomics: immutable between the state word's InProgress
/// publication and the owner's next SCX, and helpers re-validate the
/// state word after reading (see the module docs).
struct Desc {
    v_len: AtomicUsize,
    v: [AtomicUsize; MAX_V],
    exp: [AtomicU64; MAX_V],
    fin_mask: AtomicU64,
    fld_rec: AtomicUsize,
    fld_idx: AtomicUsize,
    fld_old: AtomicU64,
    fld_new: AtomicU64,
}

impl Desc {
    fn new() -> Self {
        Desc {
            v_len: AtomicUsize::new(0),
            v: std::array::from_fn(|_| AtomicUsize::new(0)),
            exp: std::array::from_fn(|_| AtomicU64::new(0)),
            fin_mask: AtomicU64::new(0),
            fld_rec: AtomicUsize::new(0),
            fld_idx: AtomicUsize::new(0),
            fld_old: AtomicU64::new(0),
            fld_new: AtomicU64::new(0),
        }
    }
}

/// A snapshot of one descriptor payload, taken by a helper.
#[derive(Clone, Copy)]
struct DescSnap {
    v_len: usize,
    v: [usize; MAX_V],
    exp: [u64; MAX_V],
    fin_mask: u64,
    fld_rec: usize,
    fld_idx: usize,
    fld_old: u64,
    fld_new: u64,
}

/// Bit layout of a record's `info` word, sized at construction from the
/// variable's value width and the process count:
///
/// ```text
///  high                                   low
///  [ version | seq hint | frozen-by pid+1 | finalized ]
///     rest      8 bits     ⌈log₂(n+1)⌉       1 bit
/// ```
#[derive(Clone, Copy, Debug)]
struct InfoLayout {
    pid_bits: u32,
    ver_bits: u32,
}

impl InfoLayout {
    fn new(n: usize, max_val: u64) -> InfoLayout {
        let pid_bits = usize::BITS - n.leading_zeros(); // ⌈log₂(n+1)⌉
        let value_bits = 64 - max_val.leading_zeros();
        let used = 1 + pid_bits + HINT_BITS;
        assert!(
            value_bits >= used + 8,
            "llx needs at least 8 version bits: {value_bits} value bits, \
             {used} used by pid/hint/finalized"
        );
        InfoLayout {
            pid_bits,
            ver_bits: value_bits - used,
        }
    }

    fn finalized(self, w: u64) -> bool {
        w & 1 == 1
    }

    /// Frozen-by pid + 1; 0 = unfrozen.
    fn frozen_by(self, w: u64) -> u64 {
        (w >> 1) & ((1 << self.pid_bits) - 1)
    }

    fn version(self, w: u64) -> u64 {
        w >> (1 + self.pid_bits + HINT_BITS)
    }

    fn pack(self, ver: u64, frozen_by: u64, hint: u64, fin: bool) -> u64 {
        let ver = ver & ((1u64 << self.ver_bits) - 1);
        (ver << (1 + self.pid_bits + HINT_BITS))
            | ((hint & ((1 << HINT_BITS) - 1)) << (1 + self.pid_bits))
            | (frozen_by << 1)
            | u64::from(fin)
    }

    /// The word a helper of `(pid, seq)` installs to freeze a record whose
    /// expected info is `exp` — deterministic from `exp`, so every helper
    /// computes the same target.
    fn freeze_word(self, exp: u64, pid: usize, seq: u64) -> u64 {
        self.pack(
            self.version(exp).wrapping_add(1),
            pid as u64 + 1,
            seq,
            false,
        )
    }

    /// The word that releases a frozen record (`target` per
    /// [`InfoLayout::freeze_word`]): version advances again, the frozen
    /// marker clears, and `fin` latches the finalized bit.
    fn release_word(self, target: u64, fin: bool) -> u64 {
        self.pack(self.version(target).wrapping_add(1), 0, 0, fin)
    }
}

fn pack_state(seq: u64, st: u64) -> u64 {
    (seq << 2) | st
}

fn state_seq(w: u64) -> u64 {
    w >> 2
}

fn state_of(w: u64) -> u64 {
    w & 3
}

/// An arena of LLX/SCX records plus the per-process SCX descriptors, all
/// coordination words built by one `make_var` closure — provider-generic
/// exactly like [`Set`](../nbsp_structures/struct.Set.html).
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_llx::{LlxDomain, LlxOutcome};
///
/// let mut ctx = Native;
/// let d = LlxDomain::new(
///     2,  // processes
///     8,  // record budget
///     1,  // mutable fields per record
///     1,  // immutable meta words per record
///     || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
///     &mut ctx,
/// );
/// let r = d.alloc(&mut ctx, &[42], &[7]).unwrap();
/// let h = d.llx(&mut ctx, r).expect_linked("fresh");
/// assert_eq!(h.field(0), 7);
/// // SCX as process 0: V = {r}, finalize nothing, write field 0.
/// assert!(d.scx(&mut ctx, 0, vec![h], 0, r, 0, 8));
/// let h = d.llx(&mut ctx, r).expect_linked("still live");
/// assert_eq!(h.field(0), 8);
/// d.unlink(&mut ctx, h);
/// ```
pub struct LlxDomain<V: LlScVar> {
    n: usize,
    fields_per_record: usize,
    recs: Box<[Record<V>]>,
    bump: AtomicUsize,
    descs: Box<[CachePadded<Desc>]>,
    states: Box<[CachePadded<V>]>,
    layout: InfoLayout,
    max_val: u64,
    flaw: Flaw,
}

impl<V: LlScVar> fmt::Debug for LlxDomain<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LlxDomain")
            .field("n", &self.n)
            .field("capacity", &self.recs.len())
            .field("fields_per_record", &self.fields_per_record)
            .finish_non_exhaustive()
    }
}

impl<V: LlScVar> LlxDomain<V> {
    /// Builds a domain for `n` processes with a lifetime budget of
    /// `capacity` records, each carrying `fields_per_record` SCX-mutable
    /// fields and `meta_words` immutable-after-alloc words. All LL/SC
    /// words come from `make_var`; `ctx` is any operation context (used
    /// only to zero-initialize, the construction is single-threaded).
    ///
    /// # Panics
    ///
    /// Panics if `fields_per_record > MAX_FIELDS` or the variable's value
    /// width cannot fit the info layout (needs `9 + ⌈log₂(n+1)⌉` bits
    /// plus at least 8 version bits).
    #[must_use]
    pub fn new(
        n: usize,
        capacity: usize,
        fields_per_record: usize,
        meta_words: usize,
        mut make_var: impl FnMut() -> V,
        ctx: &mut V::Ctx<'_>,
    ) -> Self {
        Self::build(
            n,
            capacity,
            fields_per_record,
            meta_words,
            &mut make_var,
            ctx,
            Flaw::None,
        )
    }

    /// A deliberately broken domain for the model checker's planted-bug
    /// canary. See [`Flaw`]. Not part of the public protocol.
    #[doc(hidden)]
    #[must_use]
    pub fn new_flawed(
        n: usize,
        capacity: usize,
        fields_per_record: usize,
        meta_words: usize,
        mut make_var: impl FnMut() -> V,
        ctx: &mut V::Ctx<'_>,
        flaw: Flaw,
    ) -> Self {
        Self::build(
            n,
            capacity,
            fields_per_record,
            meta_words,
            &mut make_var,
            ctx,
            flaw,
        )
    }

    fn build(
        n: usize,
        capacity: usize,
        fields_per_record: usize,
        meta_words: usize,
        make_var: &mut dyn FnMut() -> V,
        ctx: &mut V::Ctx<'_>,
        flaw: Flaw,
    ) -> Self {
        assert!(n >= 1, "at least one process");
        assert!(
            (1..=MAX_FIELDS).contains(&fields_per_record),
            "fields_per_record must be in 1..={MAX_FIELDS}"
        );
        let recs: Box<[Record<V>]> = (0..capacity)
            .map(|_| Record {
                info: make_var(),
                fields: (0..fields_per_record).map(|_| make_var()).collect(),
                meta: (0..meta_words).map(|_| AtomicU64::new(0)).collect(),
            })
            .collect();
        let states: Box<[CachePadded<V>]> =
            (0..n).map(|_| CachePadded::new(make_var())).collect();
        let probe_max = states
            .first()
            .map_or(u64::MAX, |s| LlScVar::max_val(&**s));
        let layout = InfoLayout::new(n, probe_max);
        let d = LlxDomain {
            n,
            fields_per_record,
            recs,
            bump: AtomicUsize::new(0),
            descs: (0..n).map(|_| CachePadded::new(Desc::new())).collect(),
            states,
            layout,
            max_val: probe_max,
            flaw,
        };
        for r in d.recs.iter() {
            d.force_store(ctx, &r.info, 0);
            for f in r.fields.iter() {
                d.force_store(ctx, f, 0);
            }
        }
        for s in d.states.iter() {
            d.force_store(ctx, s, pack_state(0, ST_IDLE));
        }
        d
    }

    /// Single-threaded unconditional store (construction / allocation
    /// only — the records involved are unpublished).
    fn force_store(&self, ctx: &mut V::Ctx<'_>, var: &V, value: u64) {
        let mut keep = V::Keep::default();
        loop {
            let _ = var.ll(ctx, &mut keep);
            if var.sc(ctx, &mut keep, value) {
                return;
            }
        }
    }

    /// Number of processes the domain was built for.
    #[must_use]
    pub fn processes(&self) -> usize {
        self.n
    }

    /// Mutable fields per record.
    #[must_use]
    pub fn fields_per_record(&self) -> usize {
        self.fields_per_record
    }

    /// Records still available in the lifetime budget.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.recs.len().saturating_sub(self.bump.load(Ordering::Relaxed))
    }

    /// The largest value the provider's variables can hold — the bound on
    /// anything a structure packs into a mutable field (a record index
    /// encoding, say).
    #[must_use]
    pub fn max_val(&self) -> u64 {
        self.max_val
    }

    /// Allocates a fresh record with the given immutable `meta` words and
    /// initial mutable `fields`, returning its index. The record is
    /// private to the caller until some SCX installs its index into a
    /// published field.
    ///
    /// # Errors
    ///
    /// [`LlxError::Full`] when the lifetime budget is exhausted (records
    /// are never reclaimed — the workspace-wide arena discipline).
    ///
    /// # Panics
    ///
    /// Panics if `meta` or `fields` mismatch the domain's per-record
    /// shape.
    pub fn alloc(
        &self,
        ctx: &mut V::Ctx<'_>,
        meta: &[u64],
        fields: &[u64],
    ) -> Result<usize, LlxError> {
        assert_eq!(fields.len(), self.fields_per_record, "field count");
        let idx = self.bump.fetch_add(1, Ordering::Relaxed);
        if idx >= self.recs.len() {
            self.bump.store(self.recs.len(), Ordering::Relaxed);
            return Err(LlxError::Full);
        }
        let rec = &self.recs[idx];
        assert_eq!(meta.len(), rec.meta.len(), "meta count");
        for (slot, &m) in rec.meta.iter().zip(meta) {
            slot.store(m, Ordering::Release);
        }
        for (f, &init) in rec.fields.iter().zip(fields) {
            self.force_store(ctx, f, init);
        }
        Ok(idx)
    }

    /// Rewrites a record that has **never been installed into a published
    /// field** — the retry-reuse path: an SCX that aborted never exposed
    /// its freshly allocated records, so a retry may repurpose them
    /// instead of burning more of the lifetime budget. Calling this on a
    /// reachable record is a protocol violation (it bypasses SCX).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch, as [`LlxDomain::alloc`].
    pub fn reinit(&self, ctx: &mut V::Ctx<'_>, rec: usize, meta: &[u64], fields: &[u64]) {
        assert_eq!(fields.len(), self.fields_per_record, "field count");
        let r = &self.recs[rec];
        assert_eq!(meta.len(), r.meta.len(), "meta count");
        for (slot, &m) in r.meta.iter().zip(meta) {
            slot.store(m, Ordering::Release);
        }
        for (f, &init) in r.fields.iter().zip(fields) {
            self.force_store(ctx, f, init);
        }
    }

    /// Reads immutable meta word `i` of record `rec`.
    #[must_use]
    pub fn meta(&self, rec: usize, i: usize) -> u64 {
        self.recs[rec].meta[i].load(Ordering::Acquire)
    }

    /// Plain (sequence-free) read of mutable field `f` of record `rec` —
    /// the traversal read; un-validated, pair it with VLX where the
    /// algorithm needs a consistent multi-record view.
    pub fn read_field(&self, ctx: &mut V::Ctx<'_>, rec: usize, f: usize) -> u64 {
        self.recs[rec].fields[f].read(ctx)
    }

    /// LLX: snapshot `rec`'s fields and link it (open keep retained in
    /// the returned handle) for a following [`LlxDomain::scx`] /
    /// [`LlxDomain::vlx`]. Helps any in-progress SCX found frozen on the
    /// record (help-on-read), then retries; returns
    /// [`LlxOutcome::Finalized`] if the record was finalized.
    pub fn llx(&self, ctx: &mut V::Ctx<'_>, rec: usize) -> LlxOutcome<V> {
        let mut backoff = Backoff::new();
        loop {
            let mut keep = V::Keep::default();
            let info = &self.recs[rec].info;
            let w = info.ll(ctx, &mut keep);
            if self.layout.finalized(w) {
                info.cl(ctx, &mut keep);
                return LlxOutcome::Finalized;
            }
            let owner = self.layout.frozen_by(w);
            if owner != 0 {
                info.cl(ctx, &mut keep);
                record(Event::LlxHelp);
                self.help(ctx, owner as usize - 1);
                backoff.spin();
                continue;
            }
            let mut vals = [0u64; MAX_FIELDS];
            for (f, v) in vals.iter_mut().enumerate().take(self.fields_per_record) {
                *v = self.recs[rec].fields[f].read(ctx);
            }
            if info.vl(ctx, &keep) {
                return LlxOutcome::Linked(LlxHandle {
                    rec,
                    info: w,
                    vals,
                    keep,
                });
            }
            info.cl(ctx, &mut keep);
            backoff.spin();
        }
    }

    /// Releases a linked handle without committing (returns its keep).
    pub fn unlink(&self, ctx: &mut V::Ctx<'_>, mut h: LlxHandle<V>) {
        self.recs[h.rec].info.cl(ctx, &mut h.keep);
    }

    /// The unlinked LLX: same snapshot-and-validate as
    /// [`LlxDomain::llx`], but the keep is released immediately — only
    /// the observed `info` value is retained, for value-compare
    /// validation via [`LlxDomain::vlx_snapshots`]. Unbounded by the
    /// provider's `k`, so range scans can collect one per visited record.
    pub fn llx_snapshot(&self, ctx: &mut V::Ctx<'_>, rec: usize) -> Option<LlxSnapshot> {
        match self.llx(ctx, rec) {
            LlxOutcome::Linked(h) => {
                let snap = LlxSnapshot {
                    rec: h.rec,
                    info: h.info,
                    vals: h.vals,
                };
                self.unlink(ctx, h);
                Some(snap)
            }
            LlxOutcome::Finalized => None,
        }
    }

    /// VLX over *linked* handles: true iff every record is still exactly
    /// as its LLX observed it (validated through the open keeps).
    pub fn vlx(&self, ctx: &mut V::Ctx<'_>, handles: &[&LlxHandle<V>]) -> bool {
        handles
            .iter()
            .all(|h| self.recs[h.rec].info.vl(ctx, &h.keep))
    }

    /// VLX over *unlinked* snapshots: value-compare validation — true iff
    /// every record's `info` word still equals the snapshotted one. The
    /// version field makes value equality equivalent to "unchanged"
    /// within the wraparound bound (module docs).
    pub fn vlx_snapshots(&self, ctx: &mut V::Ctx<'_>, snaps: &[LlxSnapshot]) -> bool {
        snaps
            .iter()
            .all(|s| self.recs[s.rec].info.read(ctx) == s.info)
    }

    /// SCX as process `p`: atomically (all-or-nothing, helped) verify
    /// that every handle's record is unchanged since its LLX, write `new`
    /// into field `fld_idx` of record `fld_rec` (which must be one of the
    /// linked records), and finalize the records selected by `fin_mask`
    /// (bit `i` finalizes `handles[i]`). Handles must name distinct
    /// records, ordered consistently across all possible concurrent SCXs
    /// (for trees: ancestors first) so freezing cannot livelock.
    ///
    /// Returns whether the SCX committed. All keeps are consumed either
    /// way. `new` must satisfy the freshness requirement (module docs).
    ///
    /// # Panics
    ///
    /// Panics on an empty or oversized handle set, or if `fld_rec` is not
    /// among the linked records.
    #[allow(clippy::too_many_arguments)] // BER's SCX(V, R, fld, new) signature, kept recognizable
    pub fn scx(
        &self,
        ctx: &mut V::Ctx<'_>,
        p: usize,
        mut handles: Vec<LlxHandle<V>>,
        fin_mask: u64,
        fld_rec: usize,
        fld_idx: usize,
        new: u64,
    ) -> bool {
        assert!(
            !handles.is_empty() && handles.len() <= MAX_V,
            "SCX links 1..={MAX_V} records"
        );
        let fld_slot = handles
            .iter()
            .position(|h| h.rec == fld_rec)
            .expect("fld_rec must be one of the linked records");
        let old = handles[fld_slot].vals[fld_idx];

        // Publish the payload, then bump the state word to InProgress —
        // Figure 6's announce step. Only the owner writes either, and only
        // after its previous SCX fully settled, so the payload is frozen
        // for the whole InProgress window.
        let d = &self.descs[p];
        let seq = state_seq(self.states[p].read(ctx)).wrapping_add(1);
        d.v_len.store(handles.len(), Ordering::Relaxed);
        for (i, h) in handles.iter().enumerate() {
            d.v[i].store(h.rec, Ordering::Relaxed);
            d.exp[i].store(h.info, Ordering::Relaxed);
        }
        d.fin_mask.store(fin_mask, Ordering::Relaxed);
        d.fld_rec.store(fld_rec, Ordering::Relaxed);
        d.fld_idx.store(fld_idx, Ordering::Relaxed);
        d.fld_old.store(old, Ordering::Relaxed);
        d.fld_new.store(new, Ordering::Release);
        {
            let mut keep = V::Keep::default();
            loop {
                let _ = self.states[p].ll(ctx, &mut keep);
                // Helpers only touch InProgress states, so this SC races
                // nothing but spurious failure.
                if self.states[p].sc(ctx, &mut keep, pack_state(seq, ST_IN_PROGRESS)) {
                    break;
                }
            }
        }

        // Owner fast path: freeze through the keeps still held from the
        // LLXs — a true LL/SC commit when uncontended. A failed SC here
        // is not a verdict (it may be spurious, or a helper may already
        // have installed our freeze word); help() below resolves every
        // record uniformly by value.
        for (i, h) in handles.iter_mut().enumerate() {
            let target = self.layout.freeze_word(h.info, p, seq);
            let _ = self.recs[h.rec].info.sc(ctx, &mut h.keep, target);
            let _ = i;
        }

        self.help(ctx, p);
        let outcome = self.states[p].read(ctx);
        debug_assert_eq!(state_seq(outcome), seq, "only the owner starts a new SCX");
        let committed = state_of(outcome) == ST_COMMITTED;
        if !committed {
            record(Event::ScxAbort);
        }
        committed
    }

    /// Reads `pid`'s descriptor payload; `None` if the state word moved
    /// while reading (torn — caller rereads the state).
    fn read_desc(&self, ctx: &mut V::Ctx<'_>, pid: usize, st_word: u64) -> Option<DescSnap> {
        let d = &self.descs[pid];
        let v_len = d.v_len.load(Ordering::Acquire).min(MAX_V);
        let snap = DescSnap {
            v_len,
            v: std::array::from_fn(|i| d.v[i].load(Ordering::Relaxed)),
            exp: std::array::from_fn(|i| d.exp[i].load(Ordering::Relaxed)),
            fin_mask: d.fin_mask.load(Ordering::Relaxed),
            fld_rec: d.fld_rec.load(Ordering::Relaxed),
            fld_idx: d.fld_idx.load(Ordering::Relaxed),
            fld_old: d.fld_old.load(Ordering::Relaxed),
            fld_new: d.fld_new.load(Ordering::Relaxed),
        };
        (self.states[pid].read(ctx) == st_word).then_some(snap)
    }

    /// Drives `pid`'s current SCX (if any) to completion: freeze every
    /// linked record, perform the field write, settle the state word, and
    /// release (unfreeze or finalize) the records. Idempotent and safe
    /// for any caller at any time — the uniform helping routine run by
    /// the owner and by every reader/writer that trips over a frozen
    /// record.
    fn help(&self, ctx: &mut V::Ctx<'_>, pid: usize) {
        let mut keep = V::Keep::default();
        'outer: loop {
            let st_word = self.states[pid].read(ctx);
            let (seq, st) = (state_seq(st_word), state_of(st_word));
            if st == ST_IDLE {
                return;
            }
            let Some(d) = self.read_desc(ctx, pid, st_word) else {
                continue 'outer;
            };
            let final_word = if st == ST_IN_PROGRESS {
                let mut frozen_all = true;
                'freeze: for i in 0..d.v_len {
                    if self.flaw == Flaw::LostFreeze && i > 0 {
                        // Planted bug: pretend the record froze.
                        continue;
                    }
                    let info = &self.recs[d.v[i]].info;
                    let target = self.layout.freeze_word(d.exp[i], pid, seq);
                    loop {
                        let cur = info.ll(ctx, &mut keep);
                        if cur == target {
                            info.cl(ctx, &mut keep);
                            break; // frozen for this SCX (by us or a peer)
                        }
                        if cur == d.exp[i] {
                            if info.sc(ctx, &mut keep, target) {
                                break;
                            }
                            continue; // SC lost a race; re-inspect
                        }
                        info.cl(ctx, &mut keep);
                        if self.states[pid].read(ctx) != st_word {
                            // The SCX settled under us; restart to release.
                            continue 'outer;
                        }
                        // Genuine conflict: the record moved since its LLX.
                        frozen_all = false;
                        break 'freeze;
                    }
                }
                if frozen_all {
                    // All linked records frozen: the committing write. A
                    // value-guarded CAS, idempotent because `new` is fresh
                    // (module docs): whichever helper lands it first wins,
                    // the rest observe old != fld_old and stand down.
                    let f = &self.recs[d.fld_rec].fields[d.fld_idx];
                    loop {
                        let cur = f.ll(ctx, &mut keep);
                        if cur != d.fld_old {
                            f.cl(ctx, &mut keep);
                            break;
                        }
                        if f.sc(ctx, &mut keep, d.fld_new) {
                            break;
                        }
                    }
                    self.settle(ctx, &mut keep, pid, seq, ST_COMMITTED)
                } else {
                    self.settle(ctx, &mut keep, pid, seq, ST_ABORTED)
                }
            } else {
                st_word
            };
            if state_seq(final_word) != seq {
                // A different generation: that SCX's own helpers (at
                // minimum its owner) release its records.
                return;
            }
            let fst = state_of(final_word);
            debug_assert_ne!(fst, ST_IN_PROGRESS);
            // Release phase: unfreeze (or finalize) every linked record.
            // Value-guarded — only the freeze word of exactly this SCX is
            // ever replaced, so stale helpers no-op.
            for i in 0..d.v_len {
                let info = &self.recs[d.v[i]].info;
                let target = self.layout.freeze_word(d.exp[i], pid, seq);
                let fin = fst == ST_COMMITTED && (d.fin_mask >> i) & 1 == 1;
                let release = self.layout.release_word(target, fin);
                loop {
                    let cur = info.ll(ctx, &mut keep);
                    if cur != target {
                        info.cl(ctx, &mut keep);
                        break; // already released (or never frozen: abort)
                    }
                    if info.sc(ctx, &mut keep, release) {
                        break;
                    }
                }
            }
            return;
        }
    }

    /// Moves `(pid, seq)` from InProgress to `to` (first settler wins);
    /// returns the state word that ended the race.
    fn settle(
        &self,
        ctx: &mut V::Ctx<'_>,
        keep: &mut V::Keep,
        pid: usize,
        seq: u64,
        to: u64,
    ) -> u64 {
        let from = pack_state(seq, ST_IN_PROGRESS);
        loop {
            let s = self.states[pid].ll(ctx, keep);
            if s != from {
                self.states[pid].cl(ctx, keep);
                return s;
            }
            if self.states[pid].sc(ctx, keep, pack_state(seq, to)) {
                return pack_state(seq, to);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::{CasLlSc, Native, TagLayout};

    fn native_domain(n: usize, capacity: usize, fields: usize) -> LlxDomain<CasLlSc<Native>> {
        let mut ctx = Native;
        LlxDomain::new(
            n,
            capacity,
            fields,
            1,
            || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
            &mut ctx,
        )
    }

    #[test]
    fn llx_scx_single_record_roundtrip() {
        let d = native_domain(2, 4, 2);
        let mut ctx = Native;
        let r = d.alloc(&mut ctx, &[11], &[1, 2]).unwrap();
        assert_eq!(d.meta(r, 0), 11);
        let h = d.llx(&mut ctx, r).expect_linked("fresh");
        assert_eq!((h.field(0), h.field(1)), (1, 2));
        assert!(d.scx(&mut ctx, 0, vec![h], 0, r, 1, 9));
        assert_eq!(d.read_field(&mut ctx, r, 1), 9);
        assert_eq!(d.read_field(&mut ctx, r, 0), 1);
    }

    #[test]
    fn scx_fails_after_conflicting_scx() {
        let d = native_domain(2, 4, 1);
        let mut ctx = Native;
        let r = d.alloc(&mut ctx, &[0], &[5]).unwrap();
        let h0 = d.llx(&mut ctx, r).expect_linked("p0");
        let h1 = d.llx(&mut ctx, r).expect_linked("p1");
        assert!(d.scx(&mut ctx, 0, vec![h0], 0, r, 0, 6));
        // p1's snapshot is stale now: its SCX must abort.
        assert!(!d.scx(&mut ctx, 1, vec![h1], 0, r, 0, 7));
        assert_eq!(d.read_field(&mut ctx, r, 0), 6);
    }

    #[test]
    fn finalized_records_stay_finalized() {
        let d = native_domain(2, 4, 1);
        let mut ctx = Native;
        let a = d.alloc(&mut ctx, &[0], &[1]).unwrap();
        let b = d.alloc(&mut ctx, &[0], &[2]).unwrap();
        let ha = d.llx(&mut ctx, a).expect_linked("a");
        let hb = d.llx(&mut ctx, b).expect_linked("b");
        // V = {a, b}, finalize b (bit 1), write a.
        assert!(d.scx(&mut ctx, 0, vec![ha, hb], 0b10, a, 0, 3));
        assert!(matches!(d.llx(&mut ctx, b), LlxOutcome::Finalized));
        assert!(d.llx_snapshot(&mut ctx, b).is_none());
        // a is unfrozen and writable again.
        let ha = d.llx(&mut ctx, a).expect_linked("a again");
        assert_eq!(ha.field(0), 3);
        assert!(d.scx(&mut ctx, 1, vec![ha], 0, a, 0, 4));
    }

    #[test]
    fn multi_record_scx_validates_every_link() {
        let d = native_domain(2, 4, 1);
        let mut ctx = Native;
        let a = d.alloc(&mut ctx, &[0], &[10]).unwrap();
        let b = d.alloc(&mut ctx, &[0], &[20]).unwrap();
        let ha = d.llx(&mut ctx, a).expect_linked("a");
        let hb = d.llx(&mut ctx, b).expect_linked("b");
        // Concurrent change to b (not the written field's record):
        let hb2 = d.llx(&mut ctx, b).expect_linked("b2");
        assert!(d.scx(&mut ctx, 1, vec![hb2], 0, b, 0, 21));
        // The two-record SCX linked b's old snapshot: must abort.
        assert!(!d.scx(&mut ctx, 0, vec![ha, hb], 0, a, 0, 11));
        assert_eq!(d.read_field(&mut ctx, a, 0), 10);
    }

    #[test]
    fn vlx_detects_interference_and_quiet() {
        let d = native_domain(2, 4, 1);
        let mut ctx = Native;
        let r = d.alloc(&mut ctx, &[0], &[1]).unwrap();
        let h = d.llx(&mut ctx, r).expect_linked("r");
        assert!(d.vlx(&mut ctx, &[&h]));
        let s = d.llx_snapshot(&mut ctx, r).unwrap();
        assert!(d.vlx_snapshots(&mut ctx, &[s]));
        let h2 = d.llx(&mut ctx, r).expect_linked("writer");
        assert!(d.scx(&mut ctx, 1, vec![h2], 0, r, 0, 2));
        assert!(!d.vlx(&mut ctx, &[&h]));
        assert!(!d.vlx_snapshots(&mut ctx, &[s]));
        d.unlink(&mut ctx, h);
    }

    #[test]
    fn arena_budget_is_enforced() {
        let d = native_domain(1, 2, 1);
        let mut ctx = Native;
        assert!(d.alloc(&mut ctx, &[0], &[0]).is_ok());
        assert!(d.alloc(&mut ctx, &[0], &[0]).is_ok());
        assert_eq!(d.alloc(&mut ctx, &[0], &[0]), Err(LlxError::Full));
        assert_eq!(d.remaining_capacity(), 0);
    }

    #[test]
    fn concurrent_increments_conserve() {
        // 4 threads, each SCX-increments a shared counter field with both
        // records linked: total = successes, interference forces aborts
        // and helping rather than lost updates.
        const THREADS: usize = 4;
        const ROUNDS: usize = 2_000;
        let d = native_domain(THREADS, 4, 1);
        let mut ctx = Native;
        let a = d.alloc(&mut ctx, &[0], &[0]).unwrap();
        let b = d.alloc(&mut ctx, &[0], &[0]).unwrap();
        let successes: u64 = std::thread::scope(|s| {
            (0..THREADS)
                .map(|p| {
                    let d = &d;
                    s.spawn(move || {
                        let mut ctx = Native;
                        let mut ok = 0u64;
                        for i in 0..ROUNDS {
                            let ha = d.llx(&mut ctx, a).expect_linked("a");
                            let hb = d.llx(&mut ctx, b).expect_linked("b");
                            // Alternate which field carries the counter so
                            // both positions of V get exercised.
                            let (t, ti) = if i % 2 == 0 { (a, 0) } else { (b, 0) };
                            let old = if t == a { ha.field(0) } else { hb.field(0) };
                            if d.scx(&mut ctx, p, vec![ha, hb], 0, t, ti, old + 1) {
                                ok += 1;
                            }
                        }
                        ok
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        let total = d.read_field(&mut ctx, a, 0) + d.read_field(&mut ctx, b, 0);
        assert_eq!(total, successes, "every committed SCX counted exactly once");
        assert!(successes > 0);
    }

    #[test]
    fn works_on_the_lock_baseline() {
        use nbsp_core::lock_baseline::LockLlSc;
        use nbsp_memsim::ProcId;
        let mut c0 = ProcId::new(0);
        let d = LlxDomain::new(2, 4, 1, 1, || LockLlSc::new(2, 0), &mut c0);
        let r = d.alloc(&mut c0, &[1], &[5]).unwrap();
        let h = d.llx(&mut c0, r).expect_linked("r");
        assert!(d.scx(&mut c0, 0, vec![h], 0, r, 0, 6));
        assert_eq!(d.read_field(&mut c0, r, 0), 6);
    }
}
