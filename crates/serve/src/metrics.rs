//! Per-cell serving metrics behind one Figure-6 wide variable.
//!
//! A serving cell reports a block of numbers that must be mutually
//! consistent — sojourn-time histogram buckets, admitted/shed/completed
//! (and, for the sharded fabric, steal/refill) counts — and the repo's
//! rule (ISSUE 3) is that *no reported block may come from a racy sum*.
//! So the cell's aggregate state is one [`WideVar`] of [`CELL_WORDS`]
//! words: [`SOJOURN_BUCKETS`] log-linear latency buckets followed by the
//! five counters. Producers and workers accumulate privately in a
//! [`CellFlusher`] and publish deltas with a WLL → add → SC loop;
//! [`CellSink::snapshot`] reads the whole block with a **single WLL**, so
//! by Theorem 4 every snapshot is a state the cell actually passed
//! through — `admitted + shed` can never be caught mid-update, and the
//! histogram total can never disagree with the count of sojourns
//! recorded at a flush boundary.
//!
//! Latency is bucketed in **log-linear** *virtual nanoseconds* (HDR
//! style): each power-of-two octave is divided into [`SUB_PER_OCTAVE`]
//! equal linear sub-buckets, so every bucket's width is at most 1/16 of
//! its value — ≤ 6.25% relative error everywhere. Pure log2 buckets
//! (the original scheme) doubled their width each octave, which
//! collapsed p95/p99/p999 of a heavy overload tail into one identical
//! number; the tail — not the mean — is what the p99/p999 columns of
//! `BENCH_serve.json` exist to show, and the E12 scaling gates compare
//! those tails across dispatch architectures. Percentiles
//! ([`percentile_ns`]) are resolved to a bucket's upper edge, a
//! deterministic pure function of the bucket counts (which a seeded run
//! makes byte-identical across hosts).

use nbsp_core::wide::{WideDomain, WideKeep, WideVar};
use nbsp_core::{Backoff, Native, Result};
use nbsp_memsim::ProcId;

/// log2 of the linear sub-buckets per octave.
pub const SUB_BITS: u32 = 4;

/// Linear sub-buckets per power-of-two octave (16 ⇒ ≤ 6.25% relative
/// bucket width).
pub const SUB_PER_OCTAVE: usize = 1 << SUB_BITS;

/// First octave with linear subdivision: values `0..SUB_PER_OCTAVE` are
/// exact (bucket index == value).
const FIRST_OCTAVE: u32 = SUB_BITS;

/// log2 of the histogram's saturation point: values at or above
/// 2^30 ns (~1.07 virtual seconds) land in the single overflow bucket.
const LAST_OCTAVE: u32 = 30;

/// Number of log-linear sojourn-time buckets: the exact region
/// `0..=15`, [`SUB_PER_OCTAVE`] sub-buckets for each octave
/// `[2^o, 2^(o+1))` with `o` in `4..30`, and one overflow bucket for
/// everything from 2^30 ns up.
pub const SOJOURN_BUCKETS: usize =
    SUB_PER_OCTAVE + (LAST_OCTAVE - FIRST_OCTAVE) as usize * SUB_PER_OCTAVE + 1;

/// Words per cell block: the histogram plus five counters.
pub const CELL_WORDS: usize = SOJOURN_BUCKETS + 5;

const W_ADMITTED: usize = SOJOURN_BUCKETS;
const W_SHED: usize = SOJOURN_BUCKETS + 1;
const W_COMPLETED: usize = SOJOURN_BUCKETS + 2;
const W_STEALS: usize = SOJOURN_BUCKETS + 3;
const W_REFILLS: usize = SOJOURN_BUCKETS + 4;

/// 16 tag bits leave 48-bit counts — ample for any run.
const TAG_BITS: u32 = 16;

/// The log-linear bucket a sojourn time falls into: values below
/// [`SUB_PER_OCTAVE`] are their own bucket; a value in octave
/// `[2^o, 2^(o+1))` lands in the sub-bucket selected by its top
/// [`SUB_BITS`] bits below the leading one.
#[must_use]
pub fn sojourn_bucket(ns: u64) -> usize {
    if ns < SUB_PER_OCTAVE as u64 {
        return ns as usize;
    }
    let o = 63 - ns.leading_zeros();
    if o >= LAST_OCTAVE {
        return SOJOURN_BUCKETS - 1;
    }
    let sub = ((ns - (1u64 << o)) >> (o - SUB_BITS)) as usize;
    SUB_PER_OCTAVE + (o - FIRST_OCTAVE) as usize * SUB_PER_OCTAVE + sub
}

/// Upper edge of bucket `b` in nanoseconds (the value [`percentile_ns`]
/// reports for a rank landing in `b`; the open-ended overflow bucket
/// reports its lower edge's double, as an "at least this" saturation
/// marker).
#[must_use]
pub fn bucket_upper_ns(b: usize) -> u64 {
    assert!(b < SOJOURN_BUCKETS);
    if b < SUB_PER_OCTAVE {
        return b as u64;
    }
    if b == SOJOURN_BUCKETS - 1 {
        return (1u64 << (LAST_OCTAVE + 1)) - 1;
    }
    let rel = b - SUB_PER_OCTAVE;
    let o = FIRST_OCTAVE + (rel / SUB_PER_OCTAVE) as u32;
    let sub = (rel % SUB_PER_OCTAVE) as u64;
    (1u64 << o) + (sub + 1) * (1u64 << (o - SUB_BITS)) - 1
}

/// The `q`-quantile (`0 < q <= 1`) of a bucketed sojourn distribution,
/// resolved to the containing bucket's upper edge. Returns 0 for an empty
/// histogram.
#[must_use]
pub fn percentile_ns(buckets: &[u64; SOJOURN_BUCKETS], q: f64) -> u64 {
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    // ceil(q * total) in integer arithmetic would overflow for huge
    // totals; the float form is exact for any count a run can produce.
    let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
    let mut seen = 0u64;
    for (b, &n) in buckets.iter().enumerate() {
        seen += n;
        if seen >= rank {
            return bucket_upper_ns(b);
        }
    }
    bucket_upper_ns(SOJOURN_BUCKETS - 1)
}

/// One consistent reading of a cell's aggregate block (decoded from a
/// single-WLL snapshot of the wide variable).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellSnapshot {
    /// Log-linear histogram of sojourn time (completion − intended
    /// arrival).
    pub sojourn_ns: [u64; SOJOURN_BUCKETS],
    /// Requests the admission controller let through (all requests, when
    /// a cell runs without admission control).
    pub admitted: u64,
    /// Requests shed at their intended arrival time.
    pub shed: u64,
    /// Requests whose real structure operation finished on a worker.
    pub completed: u64,
    /// Committed work steals (fabric cells; zero on the single ring).
    pub steals: u64,
    /// Batch refills of a local admission sub-bucket from the global
    /// bucket (fabric cells; zero on the single ring).
    pub refills: u64,
}

impl CellSnapshot {
    /// Total requests generated: every request is either admitted or
    /// shed, and this invariant holds in *every* snapshot because both
    /// counters arrive through atomic whole-delta flushes.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.admitted + self.shed
    }

    /// Observations currently in the sojourn histogram.
    #[must_use]
    pub fn sojourns(&self) -> u64 {
        self.sojourn_ns.iter().sum()
    }

    /// The `q`-quantile of the sojourn distribution (bucket upper edge).
    #[must_use]
    pub fn percentile_ns(&self, q: f64) -> u64 {
        percentile_ns(&self.sojourn_ns, q)
    }
}

/// The cell's aggregate block: a [`CELL_WORDS`]-word Figure-6 variable.
#[derive(Debug)]
pub struct CellSink {
    var: WideVar<Native>,
}

impl CellSink {
    /// Creates a zeroed sink for up to `max_procs` concurrently flushing
    /// threads (each must flush under a distinct slot in
    /// `0..max_procs`).
    ///
    /// # Errors
    ///
    /// Propagates [`nbsp_core::Error::InvalidDomain`] for
    /// `max_procs == 0`.
    pub fn new(max_procs: usize) -> Result<Self> {
        let domain = WideDomain::<Native>::new(max_procs, CELL_WORDS, TAG_BITS)?;
        let var = domain.var(&[0u64; CELL_WORDS])?;
        Ok(CellSink { var })
    }

    /// Atomically folds a flat delta into the block, as flushing slot
    /// `slot`. WLL → add → SC, retried until the SC lands (lock-free: a
    /// retry implies another flush succeeded).
    fn add(&self, slot: usize, delta: &[u64; CELL_WORDS]) {
        let mem = Native;
        let pid = ProcId::new(slot % self.var.domain().n());
        let mut keep = WideKeep::default();
        let mut buf = [0u64; CELL_WORDS];
        let max = self.var.domain().max_val();
        let mut backoff = Backoff::new();
        loop {
            if !self.var.wll(&mem, &mut keep, &mut buf).is_success() {
                backoff.spin();
                continue;
            }
            let mut new = [0u64; CELL_WORDS];
            for i in 0..CELL_WORDS {
                // Saturate rather than wrap into the tag bits (unreachable
                // at 48 bits per word in any real run).
                new[i] = (buf[i] + delta[i]).min(max);
            }
            if self.var.sc(&mem, pid, &keep, &new) {
                return;
            }
            backoff.spin();
        }
    }

    /// One consistent reading of the block: a **single WLL** (retried on
    /// interference), so all [`CELL_WORDS`] words are from the same
    /// linearization point (Theorem 4).
    #[must_use]
    pub fn snapshot(&self) -> CellSnapshot {
        let v = self.var.read(&Native);
        let mut sojourn_ns = [0u64; SOJOURN_BUCKETS];
        sojourn_ns.copy_from_slice(&v[..SOJOURN_BUCKETS]);
        CellSnapshot {
            sojourn_ns,
            admitted: v[W_ADMITTED],
            shed: v[W_SHED],
            completed: v[W_COMPLETED],
            steals: v[W_STEALS],
            refills: v[W_REFILLS],
        }
    }
}

/// Private accumulation for one producing/working thread, flushed into a
/// [`CellSink`] in whole-delta units.
///
/// Unlike `nbsp_telemetry::Flusher` this does not diff a shared matrix
/// row — the counts live in the struct itself — so it is immune to
/// telemetry-slot sharing and its flushes are exactly the values this
/// thread recorded, which is what makes seeded runs byte-identical.
#[derive(Debug)]
pub struct CellFlusher {
    local: [u64; CELL_WORDS],
    slot: usize,
}

impl CellFlusher {
    /// A zeroed flusher publishing under `slot` (must be unique among the
    /// cell's concurrently flushing threads and below the sink's
    /// `max_procs`).
    #[must_use]
    pub fn new(slot: usize) -> Self {
        CellFlusher {
            local: [0; CELL_WORDS],
            slot,
        }
    }

    /// Records one admitted request.
    pub fn record_admit(&mut self) {
        self.local[W_ADMITTED] += 1;
    }

    /// Records one shed request.
    pub fn record_shed(&mut self) {
        self.local[W_SHED] += 1;
    }

    /// Records `n` completed structure operations.
    pub fn record_completed(&mut self, n: u64) {
        self.local[W_COMPLETED] += n;
    }

    /// Records one sojourn-time observation.
    pub fn record_sojourn(&mut self, ns: u64) {
        self.local[sojourn_bucket(ns)] += 1;
    }

    /// Records one committed steal (a batch transferred by one SC).
    pub fn record_steal(&mut self) {
        self.local[W_STEALS] += 1;
    }

    /// Records one batch refill of a local admission sub-bucket.
    pub fn record_refill(&mut self) {
        self.local[W_REFILLS] += 1;
    }

    /// Publishes the accumulated delta as one atomic update and zeroes
    /// the local state. Returns `true` if there was anything to publish.
    pub fn flush(&mut self, sink: &CellSink) -> bool {
        if self.local.iter().all(|&v| v == 0) {
            return false;
        }
        sink.add(self.slot, &self.local);
        self.local = [0; CELL_WORDS];
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log_linear() {
        // Exact region: value == bucket.
        for v in 0..SUB_PER_OCTAVE as u64 {
            assert_eq!(sojourn_bucket(v), v as usize);
        }
        // First subdivided octave [16, 32): still one bucket per value.
        assert_eq!(sojourn_bucket(16), 16);
        assert_eq!(sojourn_bucket(31), 31);
        // Octave [1024, 2048) splits into 16 sub-buckets of width 64.
        assert_eq!(sojourn_bucket(1024), sojourn_bucket(1087));
        assert_ne!(sojourn_bucket(1024), sojourn_bucket(1088));
        // Distinct tail values that log2 buckets collapsed stay distinct.
        assert_ne!(sojourn_bucket(600_000), sojourn_bucket(900_000));
        assert_eq!(sojourn_bucket(u64::MAX), SOJOURN_BUCKETS - 1);
        assert_eq!(sojourn_bucket(1u64 << 30), SOJOURN_BUCKETS - 1);
    }

    #[test]
    fn bucket_edges_are_monotone_and_tight() {
        // Upper edges strictly increase, round-trip through the bucket
        // function, and bound the relative bucket width at 1/16.
        for b in 1..SOJOURN_BUCKETS {
            let lo = bucket_upper_ns(b - 1) + 1;
            let hi = bucket_upper_ns(b);
            assert!(hi >= lo, "bucket {b} is empty");
            assert_eq!(sojourn_bucket(hi), b, "upper edge of {b} round-trips");
            assert_eq!(sojourn_bucket(lo), b, "lower edge of {b} round-trips");
            if (SUB_PER_OCTAVE..SOJOURN_BUCKETS - 1).contains(&b) {
                let width = hi - lo + 1;
                assert!(
                    width as f64 / lo as f64 <= 1.0 / 16.0 + f64::EPSILON,
                    "bucket {b} width {width} too coarse for lower edge {lo}"
                );
            }
        }
    }

    #[test]
    fn percentiles_walk_the_cumulative_distribution() {
        let mut b = [0u64; SOJOURN_BUCKETS];
        b[sojourn_bucket(3)] = 50;
        b[sojourn_bucket(900)] = 49;
        b[sojourn_bucket(500_000)] = 1;
        assert_eq!(percentile_ns(&b, 0.5), bucket_upper_ns(sojourn_bucket(3)));
        assert_eq!(percentile_ns(&b, 0.95), bucket_upper_ns(sojourn_bucket(900)));
        assert_eq!(
            percentile_ns(&b, 0.999),
            bucket_upper_ns(sojourn_bucket(500_000))
        );
        assert_eq!(percentile_ns(&b, 1.0), bucket_upper_ns(sojourn_bucket(500_000)));
        assert_eq!(percentile_ns(&[0; SOJOURN_BUCKETS], 0.99), 0);
    }

    #[test]
    fn flush_publishes_whole_deltas_and_snapshot_decodes() {
        let sink = CellSink::new(2).unwrap();
        let mut f = CellFlusher::new(0);
        assert!(!f.flush(&sink), "nothing recorded yet");
        f.record_admit();
        f.record_admit();
        f.record_shed();
        f.record_sojourn(700);
        f.record_completed(2);
        f.record_steal();
        f.record_refill();
        assert!(f.flush(&sink));
        assert!(!f.flush(&sink), "already published");
        let s = sink.snapshot();
        assert_eq!(s.admitted, 2);
        assert_eq!(s.shed, 1);
        assert_eq!(s.completed, 2);
        assert_eq!(s.generated(), 3);
        assert_eq!(s.sojourns(), 1);
        assert_eq!(s.sojourn_ns[sojourn_bucket(700)], 1);
        assert_eq!(s.steals, 1);
        assert_eq!(s.refills, 1);
    }

    #[test]
    fn concurrent_flushes_never_tear_the_admit_shed_invariant() {
        // Each flush carries admitted + shed == 2; any snapshot must see
        // generated() a multiple of 2 and the histogram total equal to
        // the admitted count.
        let sink = CellSink::new(4).unwrap();
        std::thread::scope(|s| {
            for slot in 0..3 {
                s.spawn({
                    let sink = &sink;
                    move || {
                        let mut f = CellFlusher::new(slot);
                        for i in 0..2_000u64 {
                            f.record_admit();
                            f.record_sojourn(i % 4096);
                            f.record_shed();
                            f.flush(sink);
                        }
                    }
                });
            }
            let sink = &sink;
            s.spawn(move || {
                for _ in 0..2_000 {
                    let snap = sink.snapshot();
                    assert_eq!(snap.generated() % 2, 0, "torn admit/shed pair");
                    assert_eq!(snap.sojourns(), snap.admitted, "torn histogram");
                }
            });
        });
        let end = sink.snapshot();
        assert_eq!(end.admitted, 6_000);
        assert_eq!(end.shed, 6_000);
        assert_eq!(end.sojourns(), 6_000);
    }
}
