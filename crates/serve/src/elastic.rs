//! The elastic fabric: a serving pool that grows into a flash crowd and
//! shrinks out of it, built on dynamic joining.
//!
//! PR 6's sharded fabric fixed its worker count for the run and left the
//! [`Directory`] generation word as the designated elastic-resize hook,
//! blocked on dynamic joining. This module is that payoff. An elastic
//! cell pre-spawns `max_workers` threads but *activates* only
//! `min_workers` of them; a producer-driven autoscaler then resizes the
//! active set as load moves:
//!
//! * **Resize protocol** — the producer republishes the [`Directory`]
//!   word (`generation` bumps, `workers` becomes the new active count).
//!   Active workers poll the directory between requests: a worker that
//!   reads `workers <= me` drains its own ring, **retires** its provider
//!   slot, and parks. Parked workers hold *no* provider context, so they
//!   cannot read an LL/SC word at all — they wake on a plain-atomic
//!   `active` mirror the producer stores right after each publish, and
//!   **join** the provider domain afresh on activation. On the `dynamic`
//!   providers this is real process churn through
//!   [`Provider::join`]/[`Provider::retire`] — a new slot id per
//!   activation epoch, exercising the construction's membership path at
//!   every resize. Fixed-N providers (whose `join` reports
//!   `PoolExhausted`) fall back to holding slot `me` for the whole run,
//!   so the elastic cell still runs — without churn — on every registry
//!   entry.
//! * **Admission follows the pool** — the [`StripedBucket`] holds
//!   `max_workers` stripes but only the active ones are dispatched to,
//!   so the standing burst slack is `active × B`, not `max × B`. On
//!   scale-down the producer calls
//!   [`StripedBucket::redistribute`] for each deactivated stripe,
//!   draining its parked tokens back to the global bucket — tokens
//!   follow the pool instead of stranding in retired shards. This is
//!   the mechanism behind E14's headline: a big *fixed* pool keeps
//!   `W × B` slack parked in stripes and therefore admits a deeper slab
//!   of every ON burst; the elastic pool meets the burst with the slack
//!   of a small pool, sheds the slab front, and scales workers up to
//!   absorb what it did admit.
//! * **Leftover work is conserved** — requests queued on a deactivated
//!   ring are drained by the owner before it parks, and thieves scan
//!   *all* `max_workers` rings (not just active ones), so a request is
//!   executed exactly once no matter how the pool moved under it. The
//!   cell asserts `completed == admitted` at the end of every run.
//!
//! ## The autoscaler is deterministic
//!
//! Scaling decisions read only the *virtual* queue model: every
//! [`ScalerConfig::check_every`] generated requests the producer
//! computes the mean per-active-server backlog (`free[w] − now` on the
//! virtual clock) and doubles the pool (up to `max`) when it exceeds
//! [`ScalerConfig::up_backlog_ns`], or parks one worker (down to `min`)
//! when it falls below [`ScalerConfig::down_backlog_ns`]. Like every
//! number in the results block, the resize history is a pure function
//! of the seed — same seed, byte-identical [`ElasticResult`] — while
//! the *real* threads genuinely join, steal, drain, and retire under
//! the resizes.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp_core::provider::Fig4Native;
use nbsp_core::{with_provider, Backoff, Provider, ProviderId};
use nbsp_memsim::rng::SplitMix64;
use nbsp_memsim::ProcId;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Stack};

use crate::admission::AdmissionConfig;
use crate::fabric::{
    flush_telemetry, shard_for_key, AdmitOutcome, Directory, ShardRing, StripedBucket, STEAL_MAX,
    STEAL_NS,
};
use crate::loadgen::{ArrivalProcess, LoadGen, Request};
use crate::metrics::{CellFlusher, CellSink};
use crate::service::{CellResult, MapCell, ServeSinks, Workload, CLAIM_NS_PER_CONTENDER, FLUSH_EVERY};

/// The registry provider an elastic cell runs on when the caller does
/// not pick one: the dynamic-joining construction, whose
/// `join`/`retire` the resize protocol exercises. (The durable variant
/// and every fixed-N provider work too, via [`run_elastic_cell_as`].)
pub const DEFAULT_ELASTIC_PROVIDER: ProviderId = ProviderId::Dynamic;

/// The producer-driven autoscaler's policy knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScalerConfig {
    /// Generated requests between scaling decisions.
    pub check_every: u64,
    /// Scale up (double, capped at `max_workers`) when the mean
    /// per-active-server virtual backlog exceeds this.
    pub up_backlog_ns: u64,
    /// Scale down (one worker, floored at `min_workers`) when the mean
    /// backlog falls below this.
    pub down_backlog_ns: u64,
    /// Park straight down to `min_workers` when an inter-arrival gap
    /// reaches this (the end of a burst), redistributing every
    /// deactivated stripe. With the global bucket refilled to its cap
    /// by the same idle time, most of the parked stripe slack is
    /// clipped away — which is exactly why the elastic pool admits a
    /// shallower slab of the *next* burst than a fixed full-size pool.
    /// `0` disables the rule.
    pub idle_gap_ns: u64,
}

/// Configuration of one elastic cell. Shared fields mean the same as in
/// [`crate::fabric::FabricConfig`]; rings, stripes, and threads are
/// provisioned at `max_workers` and activated elastically.
#[derive(Clone, Debug)]
pub struct ElasticConfig {
    /// Seed for the whole cell (arrivals and service demands).
    pub seed: u64,
    /// Arrival process (also fixes the offered rate).
    pub process: ArrivalProcess,
    /// Structure under service.
    pub workload: Workload,
    /// Active workers the pool starts at and never shrinks below.
    pub min_workers: usize,
    /// Pre-spawned workers the pool can grow to.
    pub max_workers: usize,
    /// Requests to generate (admitted + shed).
    pub requests: u64,
    /// Mean virtual service demand per request, in nanoseconds.
    pub service_mean_ns: f64,
    /// Striped token-bucket admission, or `None` to admit everything.
    pub admission: Option<AdmissionConfig>,
    /// Capacity of each shard's ring.
    pub ring_capacity: usize,
    /// Batch size `B` of a global → shard token refill.
    pub refill_batch: u64,
    /// The autoscaler's policy.
    pub scaler: ScalerConfig,
}

/// The deterministic resize history of one elastic run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolTrace {
    /// Directory republishes (scale-ups + scale-downs).
    pub resizes: u64,
    /// Resizes that grew the pool.
    pub scale_ups: u64,
    /// Resizes that shrank the pool.
    pub scale_downs: u64,
    /// Largest active count the run reached.
    pub peak_workers: usize,
    /// Smallest active count the run reached.
    pub low_workers: usize,
    /// Active count when the producer finished.
    pub final_workers: usize,
}

/// One elastic cell's outcome: the standard cell block plus the resize
/// history. Byte-identical across same-seed runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElasticResult {
    /// Counters, histogram percentiles — as reported by every cell.
    pub cell: CellResult,
    /// The autoscaler's history.
    pub pool: PoolTrace,
}

/// Runs one elastic cell on the [`DEFAULT_ELASTIC_PROVIDER`].
///
/// # Panics
///
/// As [`run_elastic_cell_as`].
#[must_use]
pub fn run_elastic_cell(cfg: &ElasticConfig, sinks: Option<&ServeSinks>) -> ElasticResult {
    run_elastic_cell_as(DEFAULT_ELASTIC_PROVIDER, cfg, sinks)
}

/// Runs one elastic cell with its coordination words (ring cursors,
/// directory, admission stripes) on the given registry provider. As in
/// the fixed fabric, the workload structures stay on the native
/// Figure-4 entry; the provider under test supplies the fabric's words
/// and — when it supports it — the join/retire membership path.
///
/// # Panics
///
/// Panics on `min_workers < 1`, `min_workers > max_workers`, a
/// `max_workers` that does not fit the directory's 8-bit count or the
/// telemetry slot space, a zero `requests`/`ring_capacity`, and if the
/// final snapshot violates `completed == admitted`.
#[must_use]
pub fn run_elastic_cell_as(
    provider: ProviderId,
    cfg: &ElasticConfig,
    sinks: Option<&ServeSinks>,
) -> ElasticResult {
    macro_rules! run_as {
        ($p:ty) => {
            run_elastic_cell_for::<$p>(cfg, sinks)
        };
    }
    with_provider!(provider, run_as)
}

/// The monomorphized cell body behind [`run_elastic_cell_as`].
fn run_elastic_cell_for<P: Provider>(
    cfg: &ElasticConfig,
    sinks: Option<&ServeSinks>,
) -> ElasticResult {
    assert!(cfg.min_workers >= 1, "need at least one active worker");
    assert!(
        cfg.min_workers <= cfg.max_workers,
        "min_workers must not exceed max_workers"
    );
    assert!(cfg.max_workers < 256, "directory holds 8-bit counts");
    assert!(
        cfg.max_workers < nbsp_telemetry::MAX_SLOTS,
        "more workers than telemetry slots: two workers would share a slot"
    );
    assert!(cfg.requests > 0, "need at least one request");
    let sink = CellSink::new(cfg.max_workers + 1).unwrap();

    let pool = match cfg.workload {
        Workload::Counter => {
            let env = Fig4Native::env(cfg.max_workers + 1).unwrap();
            let c = Counter::new(Fig4Native::var(&env, 0).unwrap());
            drive_elastic::<P, _>(cfg, &sink, sinks, |slot| {
                let c = &c;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                move |_key| {
                    c.increment(&mut Fig4Native::ctx(&mut tc));
                }
            })
        }
        Workload::Stack => {
            let env = Fig4Native::env(cfg.max_workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.max_workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let st = Stack::new(
                2 * cfg.max_workers + 8,
                Fig4Native::var(&env, 0).unwrap(),
                Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive_elastic::<P, _>(cfg, &sink, sinks, |slot| {
                let st = &st;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = st.push(&mut ctx, v);
                    let _ = st.pop(&mut ctx);
                }
            })
        }
        Workload::Queue => {
            let env = Fig4Native::env(cfg.max_workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.max_workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let q = Queue::new(
                2 * cfg.max_workers + 8,
                || Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive_elastic::<P, _>(cfg, &sink, sinks, |slot| {
                let q = &q;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = q.enqueue(&mut ctx, v);
                    let _ = q.dequeue(&mut ctx);
                }
            })
        }
        Workload::Stm => {
            let stm = OrecStm::new(&[0; 4]);
            drive_elastic::<P, _>(cfg, &sink, sinks, |slot| {
                let stm = &stm;
                let p = ProcId::new(slot);
                move |_key| {
                    stm.transact(p, &[0, 1], |vals| {
                        vals[0] += 1;
                        vals[1] += 1;
                    });
                }
            })
        }
        Workload::OrdMap { .. } => {
            let mc = MapCell::new(cfg.max_workers, cfg.requests, cfg.seed);
            let pool = drive_elastic::<P, _>(cfg, &sink, sinks, |slot| mc.op(slot));
            mc.assert_conserved();
            pool
        }
    };

    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.completed, snapshot.admitted,
        "every admitted request must be executed exactly once across resizes"
    );
    ElasticResult {
        cell: CellResult {
            snapshot,
            p50_ns: snapshot.percentile_ns(0.50),
            p95_ns: snapshot.percentile_ns(0.95),
            p99_ns: snapshot.percentile_ns(0.99),
            p999_ns: snapshot.percentile_ns(0.999),
        },
        pool,
    }
}

/// Everything an elastic worker thread shares with its peers.
struct ElasticShared<'a, P: Provider> {
    env: &'a P::Env,
    rings: &'a [ShardRing<P::Var>],
    directory: &'a Directory<P::Var>,
    /// Plain-atomic mirror of the directory's worker count, for parked
    /// workers (which hold no provider context and therefore cannot
    /// read an LL/SC word).
    active: &'a AtomicU64,
    done: &'a AtomicBool,
    sink: &'a CellSink,
    sinks: Option<&'a ServeSinks>,
    producer_slot: usize,
    seed: u64,
    max_workers: usize,
}

/// Builds the fabric's words at `max_workers` provisioning, spawns every
/// worker (parked), runs the producer/autoscaler inline, joins.
fn drive_elastic<P: Provider, F>(
    cfg: &ElasticConfig,
    sink: &CellSink,
    sinks: Option<&ServeSinks>,
    mut make_op: impl FnMut(usize) -> F,
) -> PoolTrace
where
    F: FnMut(u64) + Send,
{
    let env = P::env(cfg.max_workers + 1).expect("elastic provider env");
    let rings: Vec<ShardRing<P::Var>> = (0..cfg.max_workers)
        .map(|_| {
            ShardRing::new(
                cfg.ring_capacity,
                P::var(&env, 0).unwrap(),
                P::var(&env, 0).unwrap(),
            )
        })
        .collect();
    let directory = Directory::new(P::var(&env, 0).unwrap());
    let bucket = cfg.admission.map(|a| {
        let locals = (0..cfg.max_workers)
            .map(|_| P::var(&env, 0).unwrap())
            .collect();
        StripedBucket::new(a, cfg.refill_batch, locals)
    });
    // 0 until the first publish: no worker activates before the
    // directory exists.
    let active = AtomicU64::new(0);
    let done = AtomicBool::new(false);
    let ops: Vec<F> = (0..cfg.max_workers).map(&mut make_op).collect();
    let shared = ElasticShared::<P> {
        env: &env,
        rings: &rings,
        directory: &directory,
        active: &active,
        done: &done,
        sink,
        sinks,
        producer_slot: nbsp_telemetry::thread_slot(),
        seed: cfg.seed,
        max_workers: cfg.max_workers,
    };
    std::thread::scope(|s| {
        for (me, op) in ops.into_iter().enumerate() {
            let shared = &shared;
            s.spawn(move || elastic_worker::<P, F>(shared, me, op));
        }
        let trace = elastic_produce::<P>(cfg, &shared, bucket.as_ref());
        done.store(true, Ordering::Release);
        trace
    })
}

/// The open-loop client and autoscaler: striped admission over the
/// active stripes, the sharded virtual queue model over the active
/// servers, resize decisions on the virtual clock, per-shard dispatch.
fn elastic_produce<P: Provider>(
    cfg: &ElasticConfig,
    shared: &ElasticShared<'_, P>,
    bucket: Option<&StripedBucket<P::Var>>,
) -> PoolTrace {
    let max = cfg.max_workers;
    let mut tc = P::thread_ctx(shared.env, max);
    let mut ctx = P::ctx(&mut tc);
    let mut active = cfg.min_workers;
    shared.directory.publish(&mut ctx, active);
    shared.active.store(active as u64, Ordering::Release);

    let keyed = cfg.workload.key_dist().is_some();
    let mut gen = match cfg.workload.key_dist() {
        Some(dist) => LoadGen::new_keyed(cfg.seed, cfg.process, cfg.service_mean_ns, dist),
        None => LoadGen::new(cfg.seed, cfg.process, cfg.service_mean_ns),
    };
    let mut cell = CellFlusher::new(max);
    let mut tele = shared.sinks.map(|_| {
        (
            nbsp_telemetry::Flusher::new(),
            nbsp_telemetry::HistFlusher::new(),
        )
    });
    // The fabric's virtual model, elastically: only servers below
    // `active` receive work or count toward the steal rule. A server's
    // `free` clock survives deactivation — a re-activated server may
    // still be finishing what it had (realistically, the pool pays for
    // scaling into servers that are not instantly idle).
    let mut dispatch_free = vec![0u64; max];
    let mut free = vec![0u64; max];
    let mut trace = PoolTrace {
        resizes: 0,
        scale_ups: 0,
        scale_downs: 0,
        peak_workers: active,
        low_workers: active,
        final_workers: active,
    };
    let mut unflushed = 0u32;
    let mut prev_arrival_ns = 0u64;
    for i in 0..cfg.requests {
        let r = gen.next_request();
        // A burst ended: park to the floor. The deactivated stripes
        // redistribute into a global bucket the same idle time has
        // refilled to its cap, so most of their parked slack is clipped
        // away — the next burst meets a small pool's admission slack.
        if cfg.scaler.idle_gap_ns > 0
            && active > cfg.min_workers
            && r.arrival_ns.saturating_sub(prev_arrival_ns) >= cfg.scaler.idle_gap_ns
        {
            if let Some(b) = bucket {
                for shard in cfg.min_workers..active {
                    b.redistribute(&mut ctx, shard);
                }
            }
            active = cfg.min_workers;
            shared.directory.publish(&mut ctx, active);
            shared.active.store(active as u64, Ordering::Release);
            trace.scale_downs += 1;
            trace.resizes += 1;
            trace.low_workers = trace.low_workers.min(active);
        }
        prev_arrival_ns = r.arrival_ns;
        // The autoscaler: a pure function of the virtual model, so the
        // whole resize history replays from the seed.
        if cfg.scaler.check_every > 0 && i > 0 && i % cfg.scaler.check_every == 0 {
            let now = r.arrival_ns;
            let backlog: u64 = free[..active].iter().map(|&f| f.saturating_sub(now)).sum();
            let avg = backlog / active as u64;
            let target = if avg > cfg.scaler.up_backlog_ns {
                (active * 2).min(max)
            } else if avg < cfg.scaler.down_backlog_ns {
                active.saturating_sub(1).max(cfg.min_workers)
            } else {
                active
            };
            if target != active {
                if target < active {
                    // Tokens follow the pool: deactivated stripes hand
                    // their slack back to the global bucket.
                    if let Some(b) = bucket {
                        for shard in target..active {
                            b.redistribute(&mut ctx, shard);
                        }
                    }
                    trace.scale_downs += 1;
                } else {
                    trace.scale_ups += 1;
                }
                active = target;
                shared.directory.publish(&mut ctx, active);
                shared.active.store(active as u64, Ordering::Release);
                trace.resizes += 1;
                trace.peak_workers = trace.peak_workers.max(active);
                trace.low_workers = trace.low_workers.min(active);
            }
        }
        // Keyed workloads hash over the *active* shards; unkeyed ones
        // round-robin — both at generation time.
        let shard = if keyed {
            shard_for_key(r.key, active)
        } else {
            (i % active as u64) as usize
        };
        let outcome = match bucket {
            None => AdmitOutcome::Admitted { refilled: false },
            Some(b) => b.admit(&mut ctx, shard, r.arrival_ns),
        };
        match outcome {
            AdmitOutcome::Admitted { refilled } => {
                cell.record_admit();
                if refilled {
                    cell.record_refill();
                }
                let claimed = dispatch_free[shard].max(r.arrival_ns) + CLAIM_NS_PER_CONTENDER;
                dispatch_free[shard] = claimed;
                let mut best = 0;
                for (j, &f) in free.iter().enumerate().take(active).skip(1) {
                    if f < free[best] {
                        best = j;
                    }
                }
                let start_home = free[shard].max(claimed);
                let start_best = free[best].max(claimed);
                let completion = if start_best + STEAL_NS < start_home {
                    cell.record_steal();
                    let c = start_best + STEAL_NS + r.service_ns;
                    free[best] = c;
                    c
                } else {
                    let c = start_home + r.service_ns;
                    free[shard] = c;
                    c
                };
                cell.record_sojourn(completion - r.arrival_ns);
                let mut backoff = Backoff::new();
                while !shared.rings[shard].try_push(&mut ctx, r) {
                    backoff.spin();
                }
            }
            AdmitOutcome::Shed => cell.record_shed(),
        }
        unflushed += 1;
        if unflushed >= FLUSH_EVERY {
            cell.flush(shared.sink);
            flush_telemetry(&mut tele, shared.sinks);
            unflushed = 0;
        }
    }
    cell.flush(shared.sink);
    flush_telemetry(&mut tele, shared.sinks);
    trace.final_workers = active;
    trace
}

/// One elastic worker: park until activated, join (or fall back to a
/// fixed slot), serve an activation epoch, retire, repeat.
fn elastic_worker<P: Provider, F: FnMut(u64)>(shared: &ElasticShared<'_, P>, me: usize, mut op: F) {
    let mut cell = CellFlusher::new(me);
    let shared_slot = nbsp_telemetry::thread_slot() == shared.producer_slot;
    let mut tele = (!shared_slot)
        .then_some(shared.sinks)
        .flatten()
        .map(|_| {
            (
                nbsp_telemetry::Flusher::new(),
                nbsp_telemetry::HistFlusher::new(),
            )
        });
    let mut backoff = Backoff::new();
    let mut rng = SplitMix64::new(shared.seed ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut stash = [Request {
        arrival_ns: 0,
        service_ns: 0,
        key: 0,
    }; STEAL_MAX];
    // Fixed-N providers cannot join, so their workers hold slot `me`
    // for the whole run (created on first activation).
    let mut fixed_tc: Option<P::ThreadCtx> = None;

    'run: loop {
        // Parked: no provider context, so the plain mirror is the only
        // readable signal.
        loop {
            if shared.active.load(Ordering::Acquire) > me as u64 {
                break;
            }
            if shared.done.load(Ordering::Acquire) {
                break 'run;
            }
            backoff.spin();
        }
        backoff.reset();
        // Activation: dynamic providers join a fresh slot per epoch and
        // retire it on deactivation — real membership churn at every
        // resize.
        let joined = P::join(shared.env).ok();
        let mut epoch_tc;
        let tc: &mut P::ThreadCtx = match joined {
            Some(p) => {
                epoch_tc = P::thread_ctx(shared.env, p);
                &mut epoch_tc
            }
            None => fixed_tc.get_or_insert_with(|| P::thread_ctx(shared.env, me)),
        };
        let drained = serve_epoch::<P, F>(shared, me, &mut op, &mut cell, &mut tele, tc, &mut rng, &mut stash);
        if let Some(p) = joined {
            P::retire(shared.env, p);
        }
        if drained {
            break 'run;
        }
    }
    cell.flush(shared.sink);
    flush_telemetry(&mut tele, shared.sinks);
}

type TeleFlushers = Option<(nbsp_telemetry::Flusher, nbsp_telemetry::HistFlusher)>;

/// One activation epoch: drain the own ring, steal when dry, leave when
/// deactivated (returns `false`) or when the whole fabric is drained
/// (returns `true`).
#[allow(clippy::too_many_arguments)]
fn serve_epoch<P: Provider, F: FnMut(u64)>(
    shared: &ElasticShared<'_, P>,
    me: usize,
    op: &mut F,
    cell: &mut CellFlusher,
    tele: &mut TeleFlushers,
    tc: &mut P::ThreadCtx,
    rng: &mut SplitMix64,
    stash: &mut [Request; STEAL_MAX],
) -> bool {
    let mut ctx = P::ctx(tc);
    let mut backoff = Backoff::new();
    let mut unflushed = 0u32;
    let drained = loop {
        // The directory is the authoritative shape: a worker the latest
        // publish no longer covers deactivates itself.
        let (_generation, workers) = shared.directory.read(&mut ctx);
        if workers <= me {
            break false;
        }
        if let Some(r) = shared.rings[me].try_pop(&mut ctx) {
            op(r.key);
            cell.record_completed(1);
            unflushed += 1;
            backoff.reset();
        } else {
            // Thieves scan every ring, active or not: a deactivated
            // ring may still hold requests pushed before the resize.
            let start = (rng.next_u64() as usize) % shared.max_workers;
            let mut stolen = 0;
            for j in 0..shared.max_workers {
                let victim = (start + j) % shared.max_workers;
                if victim == me {
                    continue;
                }
                stolen = shared.rings[victim].steal_into(&mut ctx, stash);
                if stolen > 0 {
                    break;
                }
            }
            if stolen > 0 {
                for r in &stash[..stolen] {
                    op(r.key);
                }
                cell.record_completed(stolen as u64);
                unflushed += stolen as u32;
                backoff.reset();
            } else {
                if shared.done.load(Ordering::Acquire)
                    && (0..shared.max_workers).all(|w| shared.rings[w].is_empty(&mut ctx))
                {
                    break true;
                }
                backoff.spin();
            }
        }
        if unflushed >= FLUSH_EVERY {
            cell.flush(shared.sink);
            flush_telemetry(tele, shared.sinks);
            unflushed = 0;
        }
    };
    if !drained {
        // Deactivated: hand back an empty ring rather than leaving the
        // leftovers for a thief to find.
        while let Some(r) = shared.rings[me].try_pop(&mut ctx) {
            op(r.key);
            cell.record_completed(1);
        }
    }
    cell.flush(shared.sink);
    flush_telemetry(tele, shared.sinks);
    drained
}

#[cfg(test)]
mod tests {
    use super::*;

    fn onoff(pool_capacity_per_sec: f64) -> ArrivalProcess {
        ArrivalProcess::OnOff {
            on_rate_per_sec: 2.0 * pool_capacity_per_sec,
            on_mean_ns: 50_000.0,
            off_mean_ns: 50_000.0,
        }
    }

    fn small_cfg() -> ElasticConfig {
        let max = 8;
        ElasticConfig {
            seed: 0x0e1a_571c,
            process: onoff(max as f64 * 1e6),
            workload: Workload::Counter,
            min_workers: 2,
            max_workers: max,
            requests: 20_000,
            service_mean_ns: 1_000.0,
            admission: Some(AdmissionConfig {
                rate_per_sec: 0.85 * max as f64 * 1e6,
                burst: 256,
            }),
            ring_capacity: 1024,
            refill_batch: 64,
            scaler: ScalerConfig {
                check_every: 64,
                up_backlog_ns: 4_000,
                down_backlog_ns: 1_000,
                idle_gap_ns: 10_000,
            },
        }
    }

    #[test]
    fn elastic_cell_conserves_and_is_deterministic() {
        let cfg = small_cfg();
        let a = run_elastic_cell(&cfg, None);
        let b = run_elastic_cell(&cfg, None);
        assert_eq!(a, b, "seeded elastic runs must be byte-identical");
        assert_eq!(a.cell.snapshot.generated(), cfg.requests);
        assert_eq!(a.cell.snapshot.completed, a.cell.snapshot.admitted);
    }

    #[test]
    fn the_flash_crowd_moves_the_pool_both_ways() {
        let r = run_elastic_cell(&small_cfg(), None);
        assert!(r.pool.scale_ups > 0, "the ON slabs must grow the pool");
        assert!(r.pool.scale_downs > 0, "the OFF gaps must shrink it");
        assert!(r.pool.peak_workers > 2, "peak above min");
        assert_eq!(r.pool.low_workers, 2, "never below min");
        assert_eq!(r.pool.resizes, r.pool.scale_ups + r.pool.scale_downs);
    }

    #[test]
    fn the_durable_provider_carries_the_elastic_cell_too() {
        let mut cfg = small_cfg();
        cfg.requests = 5_000;
        let r = run_elastic_cell_as(ProviderId::DynamicDurable, &cfg, None);
        assert_eq!(r.cell.snapshot.completed, r.cell.snapshot.admitted);
        assert!(r.pool.resizes > 0);
    }

    #[test]
    fn fixed_n_providers_fall_back_to_held_slots() {
        // Fig4Native's join reports PoolExhausted; the workers keep
        // their own slots and the cell still resizes and conserves.
        let mut cfg = small_cfg();
        cfg.requests = 5_000;
        let r = run_elastic_cell_as(ProviderId::Fig4Native, &cfg, None);
        assert_eq!(r.cell.snapshot.completed, r.cell.snapshot.admitted);
        assert!(r.pool.resizes > 0);
    }

    #[test]
    fn the_keyed_map_workload_survives_resizes() {
        // Keys hash over the *active* shard set, which moves under the
        // run; conservation is asserted inside the cell after the drain.
        let mut cfg = small_cfg();
        cfg.requests = 5_000;
        cfg.workload = Workload::OrdMap {
            key_space: 32,
            zipf: true,
        };
        let a = run_elastic_cell(&cfg, None);
        let b = run_elastic_cell(&cfg, None);
        assert_eq!(a, b, "seeded keyed elastic runs must be byte-identical");
        assert_eq!(a.cell.snapshot.completed, a.cell.snapshot.admitted);
        assert!(a.pool.resizes > 0);
    }

    #[test]
    fn a_fixed_scaler_window_of_zero_never_resizes() {
        let mut cfg = small_cfg();
        cfg.requests = 2_000;
        cfg.scaler.check_every = 0;
        cfg.scaler.idle_gap_ns = 0;
        let r = run_elastic_cell(&cfg, None);
        assert_eq!(r.pool.resizes, 0);
        assert_eq!(r.pool.final_workers, cfg.min_workers);
        assert_eq!(r.cell.snapshot.completed, r.cell.snapshot.admitted);
    }
}
