//! Wait-free-per-decision admission control: a token bucket in one LL/SC
//! word.
//!
//! A classic token bucket needs two pieces of state — the current token
//! count and the time of the last refill — and the textbook
//! implementation guards them with a lock. Here the *whole* state is
//! packed into a single [`CasLlSc`] word ([`TokenBucket::LAYOUT`]:
//! 16 tag bits, then 32 bits of refill stamp, then 16 bits of tokens), so
//! an admit/shed decision is one LL–SC sequence:
//!
//! * **admit** — LL the word, fold the elapsed refill periods into the
//!   token count, and SC back `(tokens - 1, max(stamp, now))`. SC success
//!   *is* the linearization point of spending the token: two concurrent
//!   admits can both LL the same state, but only one SC lands, so a token
//!   can never be spent twice (the unit tests pin this down with real
//!   threads).
//! * **shed** — when the refilled count is zero there is nothing to write;
//!   the decision linearizes at a VL that confirms the LLed state was
//!   still current. A failed VL (or SC) retries; a retry implies another
//!   decision landed, so decisions as a whole are lock-free, and each
//!   retry re-reads the clock-derived stamp rather than reusing a stale
//!   one.
//!
//! Refills are integral: one token per `period_ns = 1e9 / rate` of the
//! caller-supplied (virtual) clock, credited as `now_period - stamp`
//! whole periods and capped at the burst size. Everything is integer
//! arithmetic on the caller's timestamps, so a seeded virtual-time run
//! makes identical decisions on every host.
//!
//! Outcomes are recorded as [`Event::ServeAdmit`] / [`Event::ServeShed`]
//! in `nbsp-telemetry` (stubbed out when the `telemetry` feature is off).

use nbsp_core::{Backoff, CachePadded, CasLlSc, Keep, Native, TagLayout};
use nbsp_telemetry::{record, Event};

/// Bits of the word devoted to the token count.
const TOKEN_BITS: u32 = 16;

/// Bits of the word devoted to the refill stamp (whole periods since
/// virtual time zero).
const STAMP_BITS: u32 = 32;

/// Largest burst size a bucket word can hold.
pub const MAX_BURST: u64 = (1 << TOKEN_BITS) - 1;

/// Largest representable refill stamp; later periods saturate here (at a
/// 1 µs refill period that is over an hour of virtual time, far beyond
/// any run).
const MAX_STAMP: u64 = (1 << STAMP_BITS) - 1;

/// Admission parameters for a serving cell.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdmissionConfig {
    /// Sustained admitted rate: tokens refilled per virtual second.
    pub rate_per_sec: f64,
    /// Bucket depth: how large an arrival burst is absorbed without
    /// shedding. At most [`MAX_BURST`].
    pub burst: u64,
}

/// The single-word token bucket. See the module docs for the protocol.
#[derive(Debug)]
pub struct TokenBucket {
    /// `(stamp << TOKEN_BITS) | tokens`, behind 16 tag bits.
    state: CachePadded<CasLlSc<Native>>,
    period_ns: u64,
    burst: u64,
}

impl TokenBucket {
    /// The word layout: 16 tag bits leave 48 value bits, split
    /// stamp-over-tokens.
    pub const LAYOUT: (u32, u32) = (STAMP_BITS, TOKEN_BITS);

    /// Creates a bucket that refills at `rate_per_sec` tokens per virtual
    /// second and starts full at `burst` tokens.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or `burst` is zero or exceeds
    /// [`MAX_BURST`].
    #[must_use]
    pub fn new(rate_per_sec: f64, burst: u64) -> Self {
        assert!(rate_per_sec > 0.0, "refill rate must be positive");
        assert!(
            burst > 0 && burst <= MAX_BURST,
            "burst must be in 1..={MAX_BURST}"
        );
        let layout = TagLayout::new(16, STAMP_BITS + TOKEN_BITS).unwrap();
        // Integer period: the effective rate is 1e9 / round(1e9 / rate),
        // within one part in period_ns of the request.
        let period_ns = ((1e9 / rate_per_sec).round() as u64).max(1);
        TokenBucket {
            state: CachePadded::new(CasLlSc::new_native(layout, pack(0, burst)).unwrap()),
            period_ns,
            burst,
        }
    }

    /// Creates a bucket from an [`AdmissionConfig`].
    #[must_use]
    pub fn from_config(cfg: AdmissionConfig) -> Self {
        TokenBucket::new(cfg.rate_per_sec, cfg.burst)
    }

    /// The integral refill period in virtual nanoseconds.
    #[must_use]
    pub fn period_ns(&self) -> u64 {
        self.period_ns
    }

    /// The bucket depth.
    #[must_use]
    pub fn burst(&self) -> u64 {
        self.burst
    }

    /// Decides one request arriving at virtual time `now_ns`: `true` to
    /// admit (a token was spent by a successful SC), `false` to shed (the
    /// bucket was confirmed empty at this arrival time).
    ///
    /// Callers must feed a non-decreasing clock per run; admissions with
    /// out-of-order timestamps stay safe (the stamp only moves forward)
    /// but may shed conservatively.
    pub fn admit(&self, now_ns: u64) -> bool {
        let mem = Native;
        let mut keep = Keep::default();
        let mut backoff = Backoff::new();
        let now_period = (now_ns / self.period_ns).min(MAX_STAMP);
        loop {
            let word = self.state.ll(&mem, &mut keep);
            let (stamp, tokens) = unpack(word);
            let refilled = tokens
                .saturating_add(now_period.saturating_sub(stamp))
                .min(self.burst);
            if refilled == 0 {
                // Nothing to spend and nothing to update. Linearize the
                // shed at a VL confirming the LLed state is still current.
                if self.state.vl(&mem, &keep) {
                    record(Event::ServeShed);
                    return false;
                }
            } else {
                let new = pack(stamp.max(now_period), refilled - 1);
                if self.state.sc(&mem, &keep, new) {
                    record(Event::ServeAdmit);
                    return true;
                }
            }
            backoff.spin();
        }
    }

    /// The token count an admit at `now_ns` would see before spending
    /// (a sequence-free read; for tests and reports).
    #[must_use]
    pub fn tokens_at(&self, now_ns: u64) -> u64 {
        let (stamp, tokens) = unpack(self.state.read(&Native));
        let now_period = (now_ns / self.period_ns).min(MAX_STAMP);
        tokens
            .saturating_add(now_period.saturating_sub(stamp))
            .min(self.burst)
    }
}

fn pack(stamp: u64, tokens: u64) -> u64 {
    debug_assert!(stamp <= MAX_STAMP && tokens <= MAX_BURST);
    (stamp << TOKEN_BITS) | tokens
}

fn unpack(word: u64) -> (u64, u64) {
    (word >> TOKEN_BITS, word & MAX_BURST)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_then_starvation_then_refill() {
        // 1 token per µs, depth 4.
        let b = TokenBucket::new(1e6 / 1e3, 4);
        assert_eq!(b.period_ns(), 1_000_000);
        // An aligned burst drains the initial depth...
        for _ in 0..4 {
            assert!(b.admit(0));
        }
        // ...then sheds until a full period has elapsed.
        assert!(!b.admit(0));
        assert!(!b.admit(999_999));
        assert!(b.admit(1_000_000));
        assert!(!b.admit(1_000_001));
    }

    #[test]
    fn refill_is_monotone_and_capped_at_burst() {
        let b = TokenBucket::new(1e9, 8); // 1 token per ns, depth 8
        for _ in 0..8 {
            assert!(b.admit(0));
        }
        assert_eq!(b.tokens_at(0), 0);
        // tokens_at never decreases along a forward clock and never
        // exceeds the burst, no matter how long the idle gap.
        let mut last = 0;
        for now in [1, 2, 5, 6, 1_000, 1_000_000] {
            let t = b.tokens_at(now);
            assert!(t >= last, "refill must be monotone");
            assert!(t <= 8, "refill must cap at burst");
            last = t;
        }
        assert_eq!(b.tokens_at(1_000_000), 8);
    }

    #[test]
    fn out_of_order_clock_is_safe() {
        let b = TokenBucket::new(1e6, 2);
        assert!(b.admit(10_000_000)); // stamp moves to 10 periods
        // An earlier timestamp cannot mint tokens or rewind the stamp.
        assert!(b.admit(0)); // spends the remaining initial token
        assert!(!b.admit(0));
        assert!(b.admit(11_000_000)); // one period after the stamp
    }

    #[test]
    fn steady_rate_admits_about_rate_times_time() {
        // Offer 2x the sustained rate for 10ms; roughly half sheds.
        let b = TokenBucket::new(1e6, 10); // 1 token per µs
        let mut admitted = 0u64;
        let mut now = 0u64;
        for _ in 0..20_000 {
            now += 500; // 2e6 arrivals/s
            if b.admit(now) {
                admitted += 1;
            }
        }
        // 10ms at 1e6 tokens/s = 10_000 tokens (+ the 10-deep burst).
        assert!(
            (9_900..=10_010).contains(&admitted),
            "admitted {admitted}, want ~10_000"
        );
    }

    #[test]
    fn no_double_spend_under_concurrent_admits() {
        // Fixed clock => no refill: exactly `burst` tokens exist. Any
        // double spend of a token (two admits linearized on one SC-worth
        // of state) would show up as admitted > burst; any lost token as
        // admitted < burst.
        const BURST: u64 = 100;
        const THREADS: usize = 8;
        const TRIES: u64 = 1_000;
        let b = TokenBucket::new(1.0, BURST); // ~1 token/s: no refill below
        let admitted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    let mut mine = 0u64;
                    for _ in 0..TRIES {
                        if b.admit(0) {
                            mine += 1;
                        }
                    }
                    admitted.fetch_add(mine, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(admitted.load(std::sync::atomic::Ordering::Relaxed), BURST);
    }

    #[test]
    fn decisions_are_deterministic_for_a_fixed_arrival_sequence() {
        let run = || {
            let b = TokenBucket::new(3.7e6, 16);
            let mut out = Vec::new();
            let mut now = 0u64;
            for i in 0..5_000u64 {
                now += 150 + (i * 37) % 300;
                out.push(b.admit(now));
            }
            out
        };
        assert_eq!(run(), run());
    }
}
