//! The sharded serving fabric: per-worker SPSC rings, LL/SC work
//! stealing, and striped batch admission.
//!
//! The single-ring cell in [`crate::service`] funnels every request
//! through one head cursor and one token-bucket word. Those two words are
//! exactly what its scaling curve measures past a handful of workers: a
//! claim on a cursor with `W` contenders occupies it for
//! `W ×`[`CLAIM_NS_PER_CONTENDER`] (the dispatch-contention term of the
//! virtual model), so the single ring's capacity *falls* as `1/W` while
//! the worker pool's capacity grows as `W`. This module removes both
//! bottlenecks using only the registry's single-word LL/VL/SC primitives
//! — no LLX/SCX-style multi-word coordination:
//!
//! * **Sharded dispatch** ([`ShardRing`]) — one ring per worker, cursors
//!   as Figure-4-style LL/SC words behind the [`LlScVar`] trait so the
//!   whole fabric runs on any registry provider. The producer pushes to
//!   shard `i mod W` (wait-free on the native provider: it is the sole
//!   tail writer, so its SC only fails on a simulated spurious-RSC
//!   provider, which bounds the retry); a worker's pop is one LL–SC on
//!   its own head cursor, uncontended until stealing begins.
//! * **Work stealing** ([`ShardRing::steal_into`]) — a worker whose ring
//!   runs dry picks a victim by seeded rotation and steals *half* the
//!   victim's queue, committed by a **single SC** on the victim's head
//!   cursor. The thief reads the `k` slots between its LL and its SC;
//!   the validate-after-read argument of the SPMC ring extends verbatim:
//!   the producer can only overwrite a slot after the head passes it,
//!   any head advance bumps the cursor's tag, and a bumped tag fails the
//!   thief's SC — so a successful SC proves all `k` reads were of live,
//!   unclaimed requests, and the failure case transfers nothing. A
//!   request is therefore executed exactly once, steal or no steal.
//! * **Striped admission** ([`StripedBucket`]) — per-shard token words
//!   refilled in batches of `B` from one global Figure-6 wide bucket.
//!   The common admit path is one LL–SC on the shard's own word; the
//!   global `(stamp, tokens)` pair is touched once per `B` admissions
//!   (amortization: at admitted rate `λ` the global word sees `λ/B`
//!   traffic, and the stripes trade at most `W×B` tokens of burst slack
//!   for that factor). Withdrawals use WLL → SC on the wide pair, so
//!   refill accounting is never torn.
//! * **Shard directory** ([`Directory`]) — the worker count is published
//!   through an LL/SC word as `(generation << 8) | workers`; workers
//!   spin on it before first pop. With a fixed pool the generation never
//!   moves past 1, but the word is the designated hook for elastic
//!   resize (blocked on dynamic joining; see ROADMAP).
//!
//! ## Determinism: what is virtual and what is real
//!
//! Exactly as in the single-ring cell, *latency* comes from a virtual
//! queue model that is a pure function of the seed, while the requests
//! are really executed by real threads on the real structures. The
//! fabric's model adds two terms: each shard's dispatch cursor is a
//! serialized station with the **single-contender** claim cost (that is
//! the whole point of sharding), and a request whose home server lags
//! the pool's earliest-free server by more than [`STEAL_NS`] executes
//! there instead, paying [`STEAL_NS`] — the model's image of steal-half.
//! Model steals and batch refills are counted in the deterministic
//! [`CellSnapshot`] (`steals`, `refills`); the *real* thieves' committed
//! steals are racy by nature and are therefore reported only through
//! `nbsp-telemetry` ([`Event::ServeSteal`]), never in the byte-identical
//! results block. Real refills are driven by the producer's virtual
//! clock, so [`Event::ServeRefill`] agrees exactly with the snapshot.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp_core::provider::Fig4Native;
use nbsp_core::wide::{WideDomain, WideKeep, WideVar};
use nbsp_core::{with_provider, Backoff, CachePadded, LlScVar, Native, Provider, ProviderId};
use nbsp_memsim::rng::SplitMix64;
use nbsp_memsim::ProcId;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{Counter, Queue, Stack};
use nbsp_telemetry::{record, Event, Flusher, HistFlusher};

use crate::admission::AdmissionConfig;
use crate::loadgen::{ArrivalProcess, LoadGen, Request};
use crate::metrics::{CellFlusher, CellSink};
use crate::service::{
    CellResult, MapCell, ServeSinks, Workload, CLAIM_NS_PER_CONTENDER, FLUSH_EVERY,
};

/// The registry provider a fabric cell runs on when the caller does not
/// pick one. This is the module's only provider-id literal; everything
/// else dispatches through `with_provider!`.
pub const DEFAULT_PROVIDER: ProviderId = ProviderId::Fig4Native;

/// Most requests one steal transfers. Bounds the thief's stack buffer
/// and the number of slot reads a single SC has to validate.
pub const STEAL_MAX: usize = 32;

/// Virtual cost of executing a request on a stolen-to server instead of
/// its home shard: the thief's LL–SC on the victim's head cursor plus
/// the cross-shard cache traffic for the moved slots, amortized per
/// request. Calibrated to a few contended-claim costs (see
/// [`CLAIM_NS_PER_CONTENDER`]).
pub const STEAL_NS: u64 = 4 * CLAIM_NS_PER_CONTENDER;

/// The keyed-dispatch rule: requests of a keyed workload go to the shard
/// owning their key, `hash(key) mod shards` (SplitMix64 finalizer — the
/// raw key would put Zipf's hot keys 0 and 1 on adjacent shards). Every
/// operation on one key executes on one shard's thread unless stolen, so
/// per-key conflicts concentrate where admission and the virtual model
/// account for them.
#[must_use]
pub fn shard_for_key(key: u64, shards: usize) -> usize {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    ((z ^ (z >> 31)) % shards as u64) as usize
}

// ---------------------------------------------------------------------------
// Shard ring
// ---------------------------------------------------------------------------

/// One worker's bounded dispatch ring, generic over the registry's
/// LL/SC variable. Single producer; the owning worker pops, and dry
/// peers steal batches — both through the head cursor, so every claim
/// is linearized by one SC.
#[derive(Debug)]
pub struct ShardRing<V: LlScVar> {
    /// Claim cursor (total requests popped or stolen).
    head: CachePadded<V>,
    /// Publish cursor (total requests pushed); single-writer.
    tail: CachePadded<V>,
    /// Slot payloads, indexed by `cursor % capacity`. Plain atomics —
    /// the cursor protocol is what makes the pairs consistent (see the
    /// module docs of [`crate::ring`] and the steal extension above).
    arrivals: Box<[AtomicU64]>,
    services: Box<[AtomicU64]>,
    keys: Box<[AtomicU64]>,
}

impl<V: LlScVar> ShardRing<V> {
    /// Creates an empty ring over the given cursor variables (both must
    /// hold 0, as freshly built by a provider's `var(env, 0)`).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize, head: V, tail: V) -> Self {
        assert!(capacity > 0, "shard ring capacity must be positive");
        ShardRing {
            head: CachePadded::new(head),
            tail: CachePadded::new(tail),
            arrivals: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            services: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            keys: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of requests the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arrivals.len()
    }

    /// Requests in flight at the time of the (racy) cursor reads.
    pub fn len(&self, ctx: &mut V::Ctx<'_>) -> usize {
        let t = self.tail.read(ctx);
        let h = self.head.read(ctx);
        t.saturating_sub(h) as usize
    }

    /// Whether the ring was observed empty.
    pub fn is_empty(&self, ctx: &mut V::Ctx<'_>) -> bool {
        self.len(ctx) == 0
    }

    /// Appends `r` if the ring has room; `false` (without side effects)
    /// if it was full. Caller contract: one pushing thread per ring. The
    /// sole tail writer's SC only fails on providers with spurious RSC
    /// failures, so the retry loop is bounded by the provider's spurious
    /// failure bound (wait-free on the native entries).
    pub fn try_push(&self, ctx: &mut V::Ctx<'_>, r: Request) -> bool {
        let mut keep = V::Keep::default();
        loop {
            let t = self.tail.ll(ctx, &mut keep);
            let h = self.head.read(ctx);
            // A stale (small) h only makes this check conservative.
            if t - h >= self.capacity() as u64 {
                self.tail.cl(ctx, &mut keep);
                return false;
            }
            assert!(
                t < self.tail.max_val(),
                "shard cursor exhausted its value bits"
            );
            let i = (t as usize) % self.capacity();
            self.arrivals[i].store(r.arrival_ns, Ordering::Relaxed);
            self.services[i].store(r.service_ns, Ordering::Relaxed);
            self.keys[i].store(r.key, Ordering::Relaxed);
            // Releasing SC publishes the slot stores above.
            if self.tail.sc(ctx, &mut keep, t + 1) {
                return true;
            }
        }
    }

    /// Claims and returns the request at the head, or `None` if the ring
    /// was observed empty. Lock-free: a failed SC means another claim
    /// (the owner's or a thief's) landed.
    pub fn try_pop(&self, ctx: &mut V::Ctx<'_>) -> Option<Request> {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let h = self.head.ll(ctx, &mut keep);
            let t = self.tail.read(ctx);
            if h == t {
                self.head.cl(ctx, &mut keep);
                return None;
            }
            let i = (h as usize) % self.capacity();
            let arrival_ns = self.arrivals[i].load(Ordering::Relaxed);
            let service_ns = self.services[i].load(Ordering::Relaxed);
            let key = self.keys[i].load(Ordering::Relaxed);
            if self.head.sc(ctx, &mut keep, h + 1) {
                // SC success validates the slot read (module docs).
                return Some(Request {
                    arrival_ns,
                    service_ns,
                    key,
                });
            }
            backoff.spin();
        }
    }

    /// One steal attempt: transfers up to half the victim's queue
    /// (capped at `out.len()`) into `out`, committed by a single SC on
    /// the victim's head cursor. Returns how many requests were stolen —
    /// 0 both for an empty victim and for a lost race (the caller
    /// rotates to the next victim either way; no retry loop here, so a
    /// thief never spins on a contended victim).
    ///
    /// The `k` slot reads happen between the LL and the SC; a successful
    /// SC proves the head (and hence every read slot) was untouched for
    /// the whole window, so the stolen requests are live and now claimed
    /// exclusively — never executed twice, never lost.
    pub fn steal_into(&self, ctx: &mut V::Ctx<'_>, out: &mut [Request]) -> usize {
        debug_assert!(!out.is_empty());
        let mut keep = V::Keep::default();
        let h = self.head.ll(ctx, &mut keep);
        let t = self.tail.read(ctx);
        let avail = t.saturating_sub(h);
        if avail == 0 {
            self.head.cl(ctx, &mut keep);
            return 0;
        }
        // Steal-half, rounded up so a single queued request is stealable.
        let k = avail.div_ceil(2).min(out.len() as u64) as usize;
        for (j, slot) in out.iter_mut().enumerate().take(k) {
            let i = ((h + j as u64) as usize) % self.capacity();
            *slot = Request {
                arrival_ns: self.arrivals[i].load(Ordering::Relaxed),
                service_ns: self.services[i].load(Ordering::Relaxed),
                key: self.keys[i].load(Ordering::Relaxed),
            };
        }
        if self.head.sc(ctx, &mut keep, h + k as u64) {
            record(Event::ServeSteal);
            k
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Shard directory
// ---------------------------------------------------------------------------

/// The fabric's published shape: `(generation << 8) | worker_count` in
/// one LL/SC word. Generation 0 means "not yet published"; workers spin
/// until the producer's [`Directory::publish`] lands.
#[derive(Debug)]
pub struct Directory<V: LlScVar> {
    word: CachePadded<V>,
}

impl<V: LlScVar> Directory<V> {
    /// Wraps a fresh provider variable (must hold 0).
    #[must_use]
    pub fn new(word: V) -> Self {
        Directory {
            word: CachePadded::new(word),
        }
    }

    /// Publishes a new shape: bumps the generation and stores the worker
    /// count, through an LL → SC loop (lock-free under concurrent
    /// publishers, though the fixed-pool fabric has exactly one).
    ///
    /// # Panics
    ///
    /// Panics if `workers` does not fit the 8-bit count field.
    pub fn publish(&self, ctx: &mut V::Ctx<'_>, workers: usize) {
        assert!(workers > 0 && workers < 256, "directory holds 8-bit counts");
        let mut keep = V::Keep::default();
        loop {
            let cur = self.word.ll(ctx, &mut keep);
            let next = ((cur >> 8) + 1) << 8 | workers as u64;
            if self.word.sc(ctx, &mut keep, next) {
                return;
            }
        }
    }

    /// Reads the current `(generation, workers)` pair.
    pub fn read(&self, ctx: &mut V::Ctx<'_>) -> (u64, usize) {
        let v = self.word.read(ctx);
        (v >> 8, (v & 0xff) as usize)
    }
}

// ---------------------------------------------------------------------------
// Striped admission
// ---------------------------------------------------------------------------

/// The outcome of one striped admission decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitOutcome {
    /// A token was spent; `refilled` marks the decisions that had to
    /// batch-refill the shard's word from the global bucket first.
    Admitted {
        /// Whether this decision touched the global bucket.
        refilled: bool,
    },
    /// The shard word and the global bucket were both empty.
    Shed,
}

/// Token-bucket admission striped across per-shard LL/SC words, batch-
/// refilled from one global Figure-6 wide `(stamp, tokens)` pair.
///
/// The fast path spends a token with one LL–SC on the caller's shard
/// word. Only when that word is empty does the decision withdraw up to
/// `batch` tokens from the global pair (WLL → SC, so the stamp/token
/// update is atomic), deposit the remainder locally, and spend one. A
/// shed requires *both* levels empty and linearizes at a VL on the
/// shard word — exactly the single-word bucket's protocol, lifted one
/// level.
#[derive(Debug)]
pub struct StripedBucket<V: LlScVar> {
    /// Per-shard token counts (no stamp: refill time lives globally).
    locals: Vec<CachePadded<V>>,
    /// Global `[stamp, tokens]` wide pair.
    global: WideVar<Native>,
    period_ns: u64,
    burst: u64,
    batch: u64,
}

/// Word indices of the global wide pair.
const G_STAMP: usize = 0;
const G_TOKENS: usize = 1;

impl<V: LlScVar> StripedBucket<V> {
    /// Creates a striped bucket over the given per-shard words (each
    /// must hold 0; the global bucket starts full at `cfg.burst`).
    ///
    /// # Panics
    ///
    /// Panics on a non-positive rate, a zero burst/batch, an empty
    /// stripe set, or shard words too narrow for a batch.
    #[must_use]
    pub fn new(cfg: AdmissionConfig, batch: u64, locals: Vec<V>) -> Self {
        assert!(cfg.rate_per_sec > 0.0, "refill rate must be positive");
        assert!(cfg.burst > 0, "burst must be positive");
        assert!(!locals.is_empty(), "need at least one stripe");
        let batch = batch.clamp(1, cfg.burst);
        for l in &locals {
            assert!(
                batch <= l.max_val(),
                "refill batch exceeds a shard word's value range"
            );
        }
        let period_ns = ((1e9 / cfg.rate_per_sec).round() as u64).max(1);
        let domain = WideDomain::<Native>::new(1, 2, 16).expect("global bucket domain");
        let mut init = [0u64; 2];
        init[G_TOKENS] = cfg.burst;
        let global = domain.var(&init).expect("global bucket var");
        StripedBucket {
            locals: locals.into_iter().map(CachePadded::new).collect(),
            global,
            period_ns,
            burst: cfg.burst,
            batch,
        }
    }

    /// The batch size `B` (clamped into `1..=burst`).
    #[must_use]
    pub fn batch(&self) -> u64 {
        self.batch
    }

    /// Withdraws up to `batch` tokens from the global pair at virtual
    /// time `now_ns`; 0 means the global bucket was empty in a WLL-
    /// consistent (Theorem 4) snapshot at this time.
    fn withdraw(&self, now_ns: u64) -> u64 {
        let mem = Native;
        let mut keep = WideKeep::default();
        let mut buf = [0u64; 2];
        let max_stamp = self.global.domain().max_val();
        let now_period = (now_ns / self.period_ns).min(max_stamp);
        let mut backoff = Backoff::new();
        loop {
            // nbsp-flow: allow(keep-leak) — a WideKeep is a tag snapshot; WideVar has no announce slot to release, so returning with it live frees nothing
            if !self.global.wll(&mem, &mut keep, &mut buf).is_success() {
                backoff.spin();
                continue;
            }
            let (stamp, tokens) = (buf[G_STAMP], buf[G_TOKENS]);
            let refilled = tokens
                .saturating_add(now_period.saturating_sub(stamp))
                .min(self.burst);
            let take = refilled.min(self.batch);
            if take == 0 {
                // Nothing to move: the WLL snapshot is the decision.
                return 0;
            }
            let new = [stamp.max(now_period), refilled - take];
            if self.global.sc(&mem, ProcId::new(0), &keep, &new) {
                return take;
            }
            backoff.spin();
        }
    }

    /// Drains stripe `shard` back into the global pair, returning how
    /// many tokens moved. The elastic resizer calls this for every
    /// stripe it deactivates, so the burst slack parked in a retired
    /// shard's word is not stranded there while the pool is small (and
    /// cannot double-spend when the shard is later reactivated). Tokens
    /// above the global burst cap are discarded, exactly as a full
    /// bucket discards refill — the cap is the admission contract.
    pub fn redistribute(&self, ctx: &mut V::Ctx<'_>, shard: usize) -> u64 {
        let local = &self.locals[shard];
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        let tokens = loop {
            let tokens = local.ll(ctx, &mut keep);
            if tokens == 0 {
                local.cl(ctx, &mut keep);
                return 0;
            }
            if local.sc(ctx, &mut keep, 0) {
                break tokens;
            }
            backoff.spin();
        };
        let mem = Native;
        let mut wkeep = WideKeep::default();
        let mut buf = [0u64; 2];
        loop {
            if !self.global.wll(&mem, &mut wkeep, &mut buf).is_success() {
                continue;
            }
            let new = [
                buf[G_STAMP],
                buf[G_TOKENS].saturating_add(tokens).min(self.burst),
            ];
            if self.global.sc(&mem, ProcId::new(0), &wkeep, &new) {
                return tokens;
            }
        }
    }

    /// Decides one request arriving at `now_ns` against stripe `shard`.
    /// Lock-free; the fast path is a single LL–SC on the shard word.
    pub fn admit(&self, ctx: &mut V::Ctx<'_>, shard: usize, now_ns: u64) -> AdmitOutcome {
        let local = &self.locals[shard];
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let mut tokens = local.ll(ctx, &mut keep);
            if tokens == 0 {
                let take = self.withdraw(now_ns);
                if take == 0 {
                    // Both levels empty: the shed linearizes at a VL
                    // confirming the LLed (empty) shard word is current.
                    // The sequence ends without an SC, so the keep must
                    // be released — on the constant-time provider a
                    // dangling keep holds one of the proc's k slots.
                    if local.vl(ctx, &keep) {
                        local.cl(ctx, &mut keep);
                        record(Event::ServeShed);
                        return AdmitOutcome::Shed;
                    }
                    backoff.spin();
                    continue;
                }
                record(Event::ServeRefill);
                // Deposit the batch and spend one token from it. A failed
                // SC (a concurrent spender, or a spurious RSC failure)
                // must not drop the withdrawn tokens, so re-LL and carry
                // the deposit until an SC lands.
                let deposit = take - 1;
                loop {
                    if local.sc(ctx, &mut keep, tokens + deposit) {
                        record(Event::ServeAdmit);
                        return AdmitOutcome::Admitted { refilled: true };
                    }
                    backoff.spin();
                    tokens = local.ll(ctx, &mut keep);
                }
            }
            if local.sc(ctx, &mut keep, tokens - 1) {
                record(Event::ServeAdmit);
                return AdmitOutcome::Admitted { refilled: false };
            }
            backoff.spin();
        }
    }
}

// ---------------------------------------------------------------------------
// The fabric cell
// ---------------------------------------------------------------------------

/// Configuration of one fabric cell. The shared fields mean the same as
/// in [`crate::CellConfig`]; `ring_capacity` is per shard.
#[derive(Clone, Debug)]
pub struct FabricConfig {
    /// Seed for the whole cell (arrivals and service demands).
    pub seed: u64,
    /// Arrival process (also fixes the offered rate).
    pub process: ArrivalProcess,
    /// Structure under service.
    pub workload: Workload,
    /// Worker threads = shards = virtual servers.
    pub workers: usize,
    /// Requests to generate (admitted + shed).
    pub requests: u64,
    /// Mean virtual service demand per request, in nanoseconds.
    pub service_mean_ns: f64,
    /// Striped token-bucket admission, or `None` to admit everything.
    pub admission: Option<AdmissionConfig>,
    /// Capacity of each shard's ring.
    pub ring_capacity: usize,
    /// Batch size `B` of a global → shard token refill.
    pub refill_batch: u64,
}

/// Runs one fabric cell on the [`DEFAULT_PROVIDER`].
///
/// # Panics
///
/// As [`run_fabric_cell_as`].
#[must_use]
pub fn run_fabric_cell(cfg: &FabricConfig, sinks: Option<&ServeSinks>) -> CellResult {
    run_fabric_cell_as(DEFAULT_PROVIDER, cfg, sinks)
}

/// Runs one fabric cell with its coordination words (ring cursors,
/// directory, admission stripes) on the given registry provider,
/// dispatched through `with_provider!`. The workload structures
/// themselves stay on the native Figure-4 entry, exactly as in the
/// single-ring cell — the provider under test is the *fabric's*, so the
/// ablation isolates dispatch and admission.
///
/// # Panics
///
/// Panics on a zero `workers`/`requests`/`ring_capacity`, and if the
/// final snapshot violates `completed == admitted`.
#[must_use]
pub fn run_fabric_cell_as(
    provider: ProviderId,
    cfg: &FabricConfig,
    sinks: Option<&ServeSinks>,
) -> CellResult {
    macro_rules! run_as {
        ($p:ty) => {
            run_fabric_cell_for::<$p>(cfg, sinks)
        };
    }
    with_provider!(provider, run_as)
}

/// The monomorphized cell body behind [`run_fabric_cell_as`].
fn run_fabric_cell_for<P: Provider>(
    cfg: &FabricConfig,
    sinks: Option<&ServeSinks>,
) -> CellResult {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(
        cfg.workers < nbsp_telemetry::MAX_SLOTS,
        "more workers than telemetry slots: two workers would share a slot"
    );
    assert!(cfg.requests > 0, "need at least one request");
    let sink = CellSink::new(cfg.workers + 1).unwrap();

    // The workload structures run on the registry's native Figure-4
    // entry, as in `run_cell`; `P` supplies only the fabric's words.
    #[allow(clippy::let_unit_value)]
    match cfg.workload {
        Workload::Counter => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let c = Counter::new(Fig4Native::var(&env, 0).unwrap());
            drive_fabric::<P, _>(cfg, &sink, sinks, |slot| {
                let c = &c;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                move |_key| {
                    c.increment(&mut Fig4Native::ctx(&mut tc));
                }
            });
        }
        Workload::Stack => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let st = Stack::new(
                2 * cfg.workers + 8,
                Fig4Native::var(&env, 0).unwrap(),
                Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive_fabric::<P, _>(cfg, &sink, sinks, |slot| {
                let st = &st;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = st.push(&mut ctx, v);
                    let _ = st.pop(&mut ctx);
                }
            });
        }
        Workload::Queue => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let q = Queue::new(
                2 * cfg.workers + 8,
                || Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive_fabric::<P, _>(cfg, &sink, sinks, |slot| {
                let q = &q;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = q.enqueue(&mut ctx, v);
                    let _ = q.dequeue(&mut ctx);
                }
            });
        }
        Workload::Stm => {
            let stm = OrecStm::new(&[0; 4]);
            drive_fabric::<P, _>(cfg, &sink, sinks, |slot| {
                let stm = &stm;
                let p = ProcId::new(slot);
                move |_key| {
                    stm.transact(p, &[0, 1], |vals| {
                        vals[0] += 1;
                        vals[1] += 1;
                    });
                }
            });
        }
        Workload::OrdMap { .. } => {
            let mc = MapCell::new(cfg.workers, cfg.requests, cfg.seed);
            drive_fabric::<P, _>(cfg, &sink, sinks, |slot| mc.op(slot));
            mc.assert_conserved();
        }
    }

    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.completed, snapshot.admitted,
        "every admitted request must be executed exactly once"
    );
    CellResult {
        snapshot,
        p50_ns: snapshot.percentile_ns(0.50),
        p95_ns: snapshot.percentile_ns(0.95),
        p99_ns: snapshot.percentile_ns(0.99),
        p999_ns: snapshot.percentile_ns(0.999),
    }
}

/// Everything a fabric worker thread shares with its peers.
struct FabricShared<'a, P: Provider> {
    env: &'a P::Env,
    rings: &'a [ShardRing<P::Var>],
    directory: &'a Directory<P::Var>,
    done: &'a AtomicBool,
    sink: &'a CellSink,
    sinks: Option<&'a ServeSinks>,
    producer_slot: usize,
    seed: u64,
}

/// Builds the fabric's words from one provider env, spawns the workers,
/// runs the producer inline, joins.
fn drive_fabric<P: Provider, F>(
    cfg: &FabricConfig,
    sink: &CellSink,
    sinks: Option<&ServeSinks>,
    mut make_op: impl FnMut(usize) -> F,
) where
    F: FnMut(u64) + Send,
{
    let env = P::env(cfg.workers + 1).expect("fabric provider env");
    let rings: Vec<ShardRing<P::Var>> = (0..cfg.workers)
        .map(|_| {
            ShardRing::new(
                cfg.ring_capacity,
                P::var(&env, 0).unwrap(),
                P::var(&env, 0).unwrap(),
            )
        })
        .collect();
    let directory = Directory::new(P::var(&env, 0).unwrap());
    let bucket = cfg.admission.map(|a| {
        let locals = (0..cfg.workers)
            .map(|_| P::var(&env, 0).unwrap())
            .collect();
        StripedBucket::new(a, cfg.refill_batch, locals)
    });
    let done = AtomicBool::new(false);
    let ops: Vec<F> = (0..cfg.workers).map(&mut make_op).collect();
    let shared = FabricShared::<P> {
        env: &env,
        rings: &rings,
        directory: &directory,
        done: &done,
        sink,
        sinks,
        // Same slot-collision guard as the single-ring cell (see
        // `service::drive`): a worker that lands on the producer's
        // telemetry slot skips telemetry flushing.
        producer_slot: nbsp_telemetry::thread_slot(),
        seed: cfg.seed,
    };
    std::thread::scope(|s| {
        for (me, op) in ops.into_iter().enumerate() {
            let shared = &shared;
            s.spawn(move || fabric_worker::<P, F>(shared, me, op));
        }
        fabric_produce::<P>(cfg, &shared, bucket.as_ref());
        done.store(true, Ordering::Release);
    });
}

/// The open-loop client: directory publish, striped admission, the
/// fabric's virtual queue model, and per-shard dispatch.
fn fabric_produce<P: Provider>(
    cfg: &FabricConfig,
    shared: &FabricShared<'_, P>,
    bucket: Option<&StripedBucket<P::Var>>,
) {
    let workers = cfg.workers;
    let mut tc = P::thread_ctx(shared.env, workers);
    let mut ctx = P::ctx(&mut tc);
    shared.directory.publish(&mut ctx, workers);

    let keyed = cfg.workload.key_dist().is_some();
    let mut gen = match cfg.workload.key_dist() {
        Some(dist) => LoadGen::new_keyed(cfg.seed, cfg.process, cfg.service_mean_ns, dist),
        None => LoadGen::new(cfg.seed, cfg.process, cfg.service_mean_ns),
    };
    let mut cell = CellFlusher::new(workers);
    let mut tele = shared.sinks.map(|_| (Flusher::new(), HistFlusher::new()));
    // The virtual model, sharded: each shard's dispatch cursor is its own
    // serialized station at the *single-contender* claim cost, and the
    // steal rule below moves a request whose home server lags the pool's
    // earliest-free server by more than STEAL_NS.
    let mut dispatch_free = vec![0u64; workers];
    let mut free = vec![0u64; workers];
    let mut unflushed = 0u32;
    for i in 0..cfg.requests {
        let r = gen.next_request();
        // Keyed workloads route by key hash (all ops on a key share a
        // shard); unkeyed ones round-robin, fixed at generation time.
        let shard = if keyed {
            shard_for_key(r.key, workers)
        } else {
            (i % workers as u64) as usize
        };
        let outcome = match bucket {
            None => AdmitOutcome::Admitted { refilled: false },
            Some(b) => b.admit(&mut ctx, shard, r.arrival_ns),
        };
        match outcome {
            AdmitOutcome::Admitted { refilled } => {
                cell.record_admit();
                if refilled {
                    cell.record_refill();
                }
                let claimed = dispatch_free[shard].max(r.arrival_ns) + CLAIM_NS_PER_CONTENDER;
                dispatch_free[shard] = claimed;
                let mut best = 0;
                for (j, &f) in free.iter().enumerate().skip(1) {
                    if f < free[best] {
                        best = j;
                    }
                }
                let start_home = free[shard].max(claimed);
                let start_best = free[best].max(claimed);
                let completion = if start_best + STEAL_NS < start_home {
                    cell.record_steal();
                    let c = start_best + STEAL_NS + r.service_ns;
                    free[best] = c;
                    c
                } else {
                    let c = start_home + r.service_ns;
                    free[shard] = c;
                    c
                };
                cell.record_sojourn(completion - r.arrival_ns);
                let mut backoff = Backoff::new();
                while !shared.rings[shard].try_push(&mut ctx, r) {
                    backoff.spin();
                }
            }
            AdmitOutcome::Shed => cell.record_shed(),
        }
        unflushed += 1;
        if unflushed >= FLUSH_EVERY {
            cell.flush(shared.sink);
            flush_telemetry(&mut tele, shared.sinks);
            unflushed = 0;
        }
    }
    cell.flush(shared.sink);
    flush_telemetry(&mut tele, shared.sinks);
}

/// One fabric worker: drain the own ring, steal when dry, exit when the
/// producer is done and every ring has been observed empty.
fn fabric_worker<P: Provider, F: FnMut(u64)>(shared: &FabricShared<'_, P>, me: usize, mut op: F) {
    let mut tc = P::thread_ctx(shared.env, me);
    let mut ctx = P::ctx(&mut tc);
    let mut cell = CellFlusher::new(me);
    let shared_slot = nbsp_telemetry::thread_slot() == shared.producer_slot;
    let mut tele = (!shared_slot)
        .then_some(shared.sinks)
        .flatten()
        .map(|_| (Flusher::new(), HistFlusher::new()));
    let mut backoff = Backoff::new();

    // Wait for the producer to publish the fabric's shape.
    let workers = loop {
        let (generation, workers) = shared.directory.read(&mut ctx);
        if generation > 0 {
            break workers;
        }
        backoff.spin();
    };
    debug_assert_eq!(workers, shared.rings.len());
    backoff.reset();

    // Victim rotation is seeded per worker: deterministic *sequence* of
    // starting points (me ⊕ cell seed), racy outcomes.
    let mut rng = SplitMix64::new(shared.seed ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let mut stash = [Request {
        arrival_ns: 0,
        service_ns: 0,
        key: 0,
    }; STEAL_MAX];
    let mut unflushed = 0u32;
    loop {
        if let Some(r) = shared.rings[me].try_pop(&mut ctx) {
            op(r.key);
            cell.record_completed(1);
            unflushed += 1;
            backoff.reset();
        } else {
            // Dry: one steal attempt per victim, starting at a seeded
            // rotation point, skipping self.
            let start = (rng.next_u64() as usize) % workers;
            let mut stolen = 0;
            for j in 0..workers {
                let victim = (start + j) % workers;
                if victim == me {
                    continue;
                }
                stolen = shared.rings[victim].steal_into(&mut ctx, &mut stash);
                if stolen > 0 {
                    break;
                }
            }
            if stolen > 0 {
                for r in &stash[..stolen] {
                    op(r.key);
                }
                cell.record_completed(stolen as u64);
                unflushed += stolen as u32;
                backoff.reset();
            } else {
                // `done` is set after the final push (release/acquire);
                // observing it and *then* finding every ring empty means
                // the fabric is drained. Requests a peer has stolen but
                // not yet executed are claimed, not lost: the thief
                // executes its whole stash before re-checking.
                if shared.done.load(Ordering::Acquire)
                    && (0..workers).all(|w| shared.rings[w].is_empty(&mut ctx))
                {
                    break;
                }
                backoff.spin();
            }
        }
        if unflushed >= FLUSH_EVERY {
            cell.flush(shared.sink);
            flush_telemetry(&mut tele, shared.sinks);
            unflushed = 0;
        }
    }
    cell.flush(shared.sink);
    flush_telemetry(&mut tele, shared.sinks);
}

pub(crate) fn flush_telemetry(tele: &mut Option<(Flusher, HistFlusher)>, sinks: Option<&ServeSinks>) {
    if let (Some((events, hists)), Some(s)) = (tele.as_mut(), sinks) {
        events.flush(&s.events);
        hists.flush(&s.hists);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::{CasLlSc, TagLayout};

    fn var() -> CasLlSc<Native> {
        CasLlSc::new_native(TagLayout::half(), 0).unwrap()
    }

    fn req(n: u64) -> Request {
        Request {
            arrival_ns: n,
            service_ns: 10 * n,
            key: n % 7,
        }
    }

    #[test]
    fn shard_ring_fifo_and_wraparound() {
        let ring = ShardRing::new(4, var(), var());
        let ctx = &mut Native;
        assert!(ring.try_pop(ctx).is_none());
        for n in 0..4 {
            assert!(ring.try_push(ctx, req(n)));
        }
        assert!(!ring.try_push(ctx, req(9)), "full at capacity");
        for n in 0..4 {
            assert_eq!(ring.try_pop(ctx), Some(req(n)));
        }
        assert!(ring.try_pop(ctx).is_none());
        assert!(ring.try_push(ctx, req(7)));
        assert_eq!(ring.try_pop(ctx), Some(req(7)));
    }

    #[test]
    fn steal_takes_half_rounded_up_from_the_head() {
        let ring = ShardRing::new(16, var(), var());
        let ctx = &mut Native;
        let mut out = [req(0); STEAL_MAX];
        assert_eq!(ring.steal_into(ctx, &mut out), 0, "empty victim");
        for n in 0..7 {
            assert!(ring.try_push(ctx, req(n)));
        }
        // 7 queued: steal-half takes ceil(7/2) = 4, the oldest first.
        assert_eq!(ring.steal_into(ctx, &mut out), 4);
        assert_eq!(out[..4], [req(0), req(1), req(2), req(3)]);
        // The owner keeps the rest in order.
        for n in 4..7 {
            assert_eq!(ring.try_pop(ctx), Some(req(n)));
        }
        assert!(ring.is_empty(ctx));
        // A single queued request is stealable (ceil(1/2) = 1).
        assert!(ring.try_push(ctx, req(42)));
        assert_eq!(ring.steal_into(ctx, &mut out), 1);
        assert_eq!(out[0], req(42));
    }

    #[test]
    fn steal_respects_the_out_buffer() {
        let ring = ShardRing::new(128, var(), var());
        let ctx = &mut Native;
        for n in 0..100 {
            assert!(ring.try_push(ctx, req(n)));
        }
        let mut out = [req(0); STEAL_MAX];
        // ceil(100/2) = 50 capped at the 32-slot stash.
        assert_eq!(ring.steal_into(ctx, &mut out), STEAL_MAX);
        assert_eq!(ring.len(ctx), 100 - STEAL_MAX);
    }

    #[test]
    fn directory_publishes_generation_and_count() {
        let dir = Directory::new(var());
        let ctx = &mut Native;
        assert_eq!(dir.read(ctx), (0, 0), "unpublished");
        dir.publish(ctx, 8);
        assert_eq!(dir.read(ctx), (1, 8));
        dir.publish(ctx, 12);
        assert_eq!(dir.read(ctx), (2, 12));
    }

    #[test]
    fn striped_bucket_amortizes_global_traffic() {
        // Burst 64, batch 16, 4 stripes, rate too slow to refill within
        // the test's clock: exactly 64 admits land, moved out of the
        // global bucket in 64/16 = 4 batch withdrawals total.
        let cfg = AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 64,
        };
        let bucket = StripedBucket::new(cfg, 16, (0..4).map(|_| var()).collect());
        let ctx = &mut Native;
        let mut admitted = 0;
        let mut refills = 0;
        let mut shed = 0;
        for i in 0..100u64 {
            match bucket.admit(ctx, (i % 4) as usize, 0) {
                AdmitOutcome::Admitted { refilled } => {
                    admitted += 1;
                    if refilled {
                        refills += 1;
                    }
                }
                AdmitOutcome::Shed => shed += 1,
            }
        }
        assert_eq!(admitted, 64, "exactly the global burst is spendable");
        assert_eq!(shed, 36);
        assert_eq!(refills, 4, "64 tokens moved in batches of 16");
    }

    #[test]
    fn striped_bucket_refills_on_the_virtual_clock() {
        let cfg = AdmissionConfig {
            rate_per_sec: 1e6, // 1 token per µs
            burst: 8,
        };
        let bucket = StripedBucket::new(cfg, 4, vec![var()]);
        let ctx = &mut Native;
        for _ in 0..8 {
            assert!(matches!(
                bucket.admit(ctx, 0, 0),
                AdmitOutcome::Admitted { .. }
            ));
        }
        assert_eq!(bucket.admit(ctx, 0, 0), AdmitOutcome::Shed);
        // 4 µs later: 4 periods refilled globally, movable as one batch.
        assert_eq!(
            bucket.admit(ctx, 0, 4_000),
            AdmitOutcome::Admitted { refilled: true }
        );
    }

    #[test]
    fn redistribute_returns_stripe_slack_to_the_global_bucket() {
        // Rate too slow to refill within the test's clock: the global
        // burst of 64 is all there is.
        let cfg = AdmissionConfig {
            rate_per_sec: 1.0,
            burst: 64,
        };
        let bucket = StripedBucket::new(cfg, 16, (0..2).map(|_| var()).collect());
        let ctx = &mut Native;
        // One admit on stripe 1 batch-moves 16 tokens there and spends 1.
        assert!(matches!(
            bucket.admit(ctx, 1, 0),
            AdmitOutcome::Admitted { refilled: true }
        ));
        // Deactivating stripe 1 hands its 15 parked tokens back.
        assert_eq!(bucket.redistribute(ctx, 1), 15);
        assert_eq!(bucket.redistribute(ctx, 1), 0, "already drained");
        // Every surviving token is spendable through stripe 0: none were
        // lost in the move, none can be double-spent from stripe 1.
        let mut admitted = 0;
        while matches!(bucket.admit(ctx, 0, 0), AdmitOutcome::Admitted { .. }) {
            admitted += 1;
        }
        assert_eq!(admitted, 63, "64 burst minus the one spent admit");
    }

    fn small_cfg(workers: usize, rate: f64, admission: Option<AdmissionConfig>) -> FabricConfig {
        FabricConfig {
            seed: 0xfab_c0de,
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            workload: Workload::Counter,
            workers,
            requests: 4_000,
            service_mean_ns: 1_000.0,
            admission,
            ring_capacity: 256,
            refill_batch: 32,
        }
    }

    #[test]
    fn fabric_cell_conserves_and_is_deterministic() {
        let c = small_cfg(4, 3.0e6, Some(AdmissionConfig {
            rate_per_sec: 3.4e6,
            burst: 256,
        }));
        let a = run_fabric_cell(&c, None);
        let b = run_fabric_cell(&c, None);
        assert_eq!(a, b, "seeded fabric runs must be byte-identical");
        assert_eq!(a.snapshot.generated(), c.requests);
        assert_eq!(a.snapshot.completed, a.snapshot.admitted);
    }

    #[test]
    fn fabric_beats_the_single_ring_at_scale() {
        // The in-crate image of the E12 scaling gate: at 8 workers and
        // 1.2x pool capacity, the single ring's dispatch cursor is past
        // saturation (8 x 40 ns x 9.6M/s > 1) while the fabric's
        // per-shard cursors are not.
        use crate::service::{run_cell, CellConfig};
        let workers = 8;
        let rate = 1.2 * workers as f64 * 1e6;
        let admission = Some(AdmissionConfig {
            rate_per_sec: 0.85 * workers as f64 * 1e6,
            burst: 256,
        });
        let base = run_cell(
            &CellConfig {
                seed: 0xfab_c0de,
                process: ArrivalProcess::Poisson { rate_per_sec: rate },
                workload: Workload::Counter,
                workers,
                requests: 20_000,
                service_mean_ns: 1_000.0,
                admission,
                ring_capacity: 1024,
            },
            None,
        );
        let mut fc = small_cfg(workers, rate, admission);
        fc.requests = 20_000;
        fc.ring_capacity = 1024;
        let fab = run_fabric_cell(&fc, None);
        assert!(
            fab.p99_ns < base.p99_ns,
            "fabric p99 {} must beat single-ring p99 {} at 8 workers",
            fab.p99_ns,
            base.p99_ns
        );
    }

    #[test]
    fn keyed_map_cells_route_by_hash_and_stay_deterministic() {
        let mut c = small_cfg(4, 2.0e6, None);
        c.workload = Workload::OrdMap {
            key_space: 32,
            zipf: true,
        };
        let a = run_fabric_cell(&c, None);
        let b = run_fabric_cell(&c, None);
        assert_eq!(a, b, "seeded keyed fabric runs must be byte-identical");
        assert_eq!(a.snapshot.completed, a.snapshot.admitted);
        // The hash router spreads even a tiny key space over all shards.
        let mut hit = [false; 4];
        for key in 0..32u64 {
            hit[shard_for_key(key, 4)] = true;
        }
        assert!(hit.iter().all(|&h| h), "router left a shard keyless");
    }

    #[test]
    fn fabric_single_worker_never_steals() {
        let r = run_fabric_cell(&small_cfg(1, 0.5e6, None), None);
        assert_eq!(r.snapshot.steals, 0);
        assert_eq!(r.snapshot.completed, r.snapshot.admitted);
    }
}
