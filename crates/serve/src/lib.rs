//! # nbsp-serve — an open-loop request-serving subsystem
//!
//! Every other workload in this workspace is a *closed loop*: worker
//! threads spin on a structure as fast as they can, so the only number
//! that comes out is throughput, and queueing delay is invisible — a
//! worker that stalls simply issues its next request later, silently
//! editing the arrival process (the *coordinated omission* artifact).
//! This crate is the north-star "serves heavy traffic" workload done
//! properly, as an **open-loop** harness:
//!
//! 1. **Load generation** ([`loadgen`]) — a SplitMix64-seeded arrival
//!    process (Poisson or bursty ON/OFF) on a **virtual-time clock**.
//!    Every request carries its *intended* arrival time; latency is
//!    always measured against that, never against when the system got
//!    around to it, so a backed-up run reports its real queueing delay.
//! 2. **Dispatch** ([`ring`]) — a bounded single-producer multi-consumer
//!    ring whose cursors are the crate's own Figure-4 LL/SC variables:
//!    the producer's push is wait-free (single writer, its SC cannot
//!    lose), a consumer's claim is one LL–SC on the head cursor
//!    (lock-free: a failed SC means another consumer claimed a request).
//! 3. **Admission control** ([`admission`]) — a token bucket whose whole
//!    state, `(tokens, refill stamp)`, is packed into **one** LL/SC word
//!    so an admit/shed decision is a single LL–SC sequence. Outcomes are
//!    recorded via `nbsp-telemetry` (`serve_admit` / `serve_shed`).
//! 4. **Metrics** ([`metrics`]) — log2 sojourn-time histograms plus
//!    admission counters, aggregated per *cell* in one Figure-6
//!    [`WideVar`](nbsp_core::wide::WideVar): workers publish local deltas
//!    with WLL → add → SC, and every reported block is read with a
//!    **single WLL** — the Theorem-4 consistent path, no racy sums.
//!
//! [`service`] glues the layers into [`service::run_cell`], which the
//! `exp_serve` experiment sweeps over arrival rate × structure ×
//! admission on/off to produce `BENCH_serve.json`.
//!
//! 5. **The sharded fabric** ([`fabric`]) — the scaling-path rebuild of
//!    2–3: per-worker SPSC rings (one head/tail cursor pair per shard),
//!    LL/SC steal-half work stealing when a ring runs dry, and striped
//!    admission whose fast path is one LL–SC on a worker-local word,
//!    batch-refilled from a global Figure-6 wide bucket. Registry-
//!    provider-generic via `with_provider!`; E12's scaling curves sweep
//!    it against the single-ring baseline.
//! 6. **The elastic pool** ([`elastic`]) — the fabric with its worker
//!    count unpinned: a deterministic producer-driven autoscaler
//!    republishes the [`fabric::Directory`] word as load moves, workers
//!    join/retire the provider domain per activation epoch (real
//!    membership churn on the `dynamic` providers), and deactivated
//!    admission stripes hand their token slack back to the global
//!    bucket via [`fabric::StripedBucket::redistribute`]. E14 sweeps it
//!    against fixed pool sizes under a flash crowd.
//!
//! ## Why timing is virtual
//!
//! Completion times come from a deterministic virtual `N`-server queue
//! model (each admitted request occupies the earliest-free virtual
//! worker for its seeded service demand), while the request's *work* is
//! really executed by real threads against the real non-blocking
//! structures. The split buys both halves of what the experiment needs:
//! the real execution exercises the LL/SC stack under genuine
//! multi-thread contention (feeding real telemetry), and the virtual
//! clock makes latency percentiles **reproducible** — the same seed
//! yields byte-identical per-cell counters on any host, which is what
//! lets CI gate on them. See DESIGN.md §9.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod admission;
pub mod elastic;
pub mod fabric;
pub mod loadgen;
pub mod metrics;
pub mod ring;
pub mod service;

pub use admission::{AdmissionConfig, TokenBucket};
pub use elastic::{
    run_elastic_cell, run_elastic_cell_as, ElasticConfig, ElasticResult, PoolTrace, ScalerConfig,
    DEFAULT_ELASTIC_PROVIDER,
};
pub use fabric::{
    run_fabric_cell, run_fabric_cell_as, shard_for_key, AdmitOutcome, Directory, FabricConfig,
    ShardRing, StripedBucket,
};
pub use loadgen::{ArrivalProcess, KeyDist, LoadGen, Request};
pub use metrics::{percentile_ns, CellFlusher, CellSink, CellSnapshot, SOJOURN_BUCKETS};
pub use ring::SpmcRing;
pub use service::{run_cell, CellConfig, CellResult, ServeSinks, Workload};
