//! The glue: one serving *cell* = load generator + admission + dispatch
//! ring + real workers + consistent metrics.
//!
//! [`run_cell`] executes one experiment cell. The calling thread is the
//! open-loop client: it draws requests from the seeded [`LoadGen`],
//! decides admission at each request's **intended** arrival time, passes
//! admitted requests through a serialized virtual claim on the single
//! dispatch cursor (cost [`CLAIM_NS_PER_CONTENDER`] × workers — the
//! single-ring contention term the sharded fabric exists to remove), then
//! assigns them to a deterministic FCFS virtual `N`-server queue (which
//! yields the sojourn time = virtual completion − intended arrival), and
//! pushes them into the [`SpmcRing`]. Worker threads claim
//! requests from the ring and execute the *real* structure operation —
//! counter increment, stack or queue push/pop pair, STM transfer — so the
//! LL/SC stack underneath sees genuine multi-thread contention and its
//! telemetry is real.
//!
//! ## Why completion times are virtual
//!
//! The split — real execution, virtual clock — buys both halves of what
//! the experiment needs. Real threads racing on the real structures
//! exercise every help path and SC retry loop (and feed `nbsp-telemetry`
//! through per-worker flushers). The virtual queue model makes the
//! *latency numbers* a pure function of the seed: same seed ⇒ identical
//! admit/shed decisions ⇒ identical server assignments ⇒ byte-identical
//! histogram buckets, on any host, which is what lets tests and CI gate
//! on them. A wall-clock sojourn measurement would instead report the
//! host's scheduler.
//!
//! All metrics flow through [`CellFlusher`]s into the cell's single
//! Figure-6 [`CellSink`]; the returned [`CellSnapshot`] is one WLL.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp_core::provider::Fig4Native;
use nbsp_core::{Backoff, Provider, WideHists, WideTotals};
use nbsp_memsim::ProcId;
use nbsp_structures::stm_orec::OrecStm;
use nbsp_structures::{ordmap_capacity, Counter, OrdMap, Queue, Stack};
use nbsp_telemetry::{Flusher, HistFlusher};

use crate::admission::{AdmissionConfig, TokenBucket};
use crate::loadgen::{ArrivalProcess, KeyDist, LoadGen};
use crate::metrics::{CellFlusher, CellSink, CellSnapshot};
use crate::ring::SpmcRing;

/// Operations between metric/telemetry flushes. Small enough that
/// mid-run snapshots stay fresh, large enough that the WLL/SC flush loop
/// stays off the hot path.
pub(crate) const FLUSH_EVERY: u32 = 1024;

/// Virtual cost, per contending consumer, of one claim on a shared
/// dispatch cursor: a claim on a cursor with `W` contenders occupies the
/// cursor for `W * CLAIM_NS_PER_CONTENDER` virtual nanoseconds.
///
/// This is the dispatch-contention term of the virtual queue model. A
/// single SPMC head cursor serializes every claim, and each claim's cost
/// grows with the number of contenders (failed-SC retries plus the
/// cache-line ping-pong that `exp_contention` measures directly: a
/// contended Figure-4 CAS word costs tens to a few hundred ns per success
/// at 2–16 threads). The constant is deliberately a round calibrated
/// figure, not a host measurement — keeping the model a pure function of
/// the seed is what makes runs byte-identical — but its *scaling shape*
/// (linear in contenders, serialized at one word) is the measured one.
/// The sharded fabric's per-worker rings pay the single-contender cost
/// instead; that difference, and nothing else, is what the E12 scaling
/// curves compare.
pub const CLAIM_NS_PER_CONTENDER: u64 = 40;

/// Which structure a cell's workers drive (one real operation per
/// admitted request).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Workload {
    /// Shared-counter increment (maximum-contention single variable).
    Counter,
    /// Treiber-style stack push/pop pair.
    Stack,
    /// Michael–Scott-style queue enqueue/dequeue pair.
    Queue,
    /// Two-cell transfer transaction on the ownership-record STM.
    Stm,
    /// Keyed mixed ops (insert/delete/get) on the LLX/SCX external-BST
    /// ordered map. The only *keyed* workload: requests carry a sampled
    /// key and the fabric routes them by key hash (E15).
    OrdMap {
        /// Size of the key space keys are sampled from.
        key_space: u64,
        /// Zipf(1)-skewed keys when `true`, uniform otherwise.
        zipf: bool,
    },
}

impl Workload {
    /// Every *unkeyed* workload, in report order. Deliberately excludes
    /// [`Workload::OrdMap`]: E12's sweeps iterate this list and their
    /// byte-identical baselines predate keys; the keyed map workload is
    /// swept by its own experiment (E15).
    pub const ALL: [Workload; 4] = [
        Workload::Counter,
        Workload::Stack,
        Workload::Queue,
        Workload::Stm,
    ];

    /// Stable name for reports and the JSON schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Workload::Counter => "counter",
            Workload::Stack => "stack",
            Workload::Queue => "queue",
            Workload::Stm => "stm_orec",
            Workload::OrdMap { .. } => "ordmap",
        }
    }

    /// The key distribution of a keyed workload; `None` for the unkeyed
    /// ones (their generators stamp key 0 and dispatch round-robin).
    #[must_use]
    pub fn key_dist(self) -> Option<KeyDist> {
        match self {
            Workload::OrdMap { key_space, zipf } => Some(if zipf {
                KeyDist::Zipf { space: key_space }
            } else {
                KeyDist::Uniform { space: key_space }
            }),
            _ => None,
        }
    }
}

/// Everything one cell needs; a pure value, so sweeps can clone and vary.
#[derive(Clone, Debug)]
pub struct CellConfig {
    /// Seed for the whole cell (arrivals and service demands).
    pub seed: u64,
    /// Arrival process (also fixes the offered rate).
    pub process: ArrivalProcess,
    /// Structure under service.
    pub workload: Workload,
    /// Real worker threads; also the virtual server count `N`.
    pub workers: usize,
    /// Requests to generate (admitted + shed).
    pub requests: u64,
    /// Mean virtual service demand per request, in nanoseconds.
    pub service_mean_ns: f64,
    /// Token-bucket admission, or `None` to admit everything.
    pub admission: Option<AdmissionConfig>,
    /// Dispatch ring capacity.
    pub ring_capacity: usize,
}

/// A finished cell: the consistent snapshot plus the headline sojourn
/// percentiles (bucket upper edges, virtual nanoseconds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellResult {
    /// The cell's final single-WLL metrics snapshot.
    pub snapshot: CellSnapshot,
    /// Median sojourn time.
    pub p50_ns: u64,
    /// 95th percentile sojourn time.
    pub p95_ns: u64,
    /// 99th percentile sojourn time.
    pub p99_ns: u64,
    /// 99.9th percentile sojourn time.
    pub p999_ns: u64,
}

/// Run-level consistent telemetry sinks: per-event totals and histogram
/// buckets, each one Figure-6 variable, shared by every cell of a sweep.
/// Workers flush into them; the report reads each with a single WLL.
#[derive(Debug)]
pub struct ServeSinks {
    /// Aggregated event totals (`WideVar` of `EVENT_COUNT` words).
    pub events: WideTotals,
    /// Aggregated histogram buckets (`WideVar` of all buckets).
    pub hists: WideHists,
}

impl ServeSinks {
    /// Sinks sized for every possible telemetry slot.
    ///
    /// # Errors
    ///
    /// Propagates wide-variable construction errors (none in practice).
    pub fn new() -> nbsp_core::Result<Self> {
        Ok(ServeSinks {
            events: WideTotals::with_all_slots()?,
            hists: WideHists::with_all_slots()?,
        })
    }
}

/// Runs one cell to completion and returns its consistent result.
///
/// When `sinks` is provided, the producer and every worker also flush
/// their `nbsp-telemetry` rows into it (periodically and at exit), so the
/// caller can publish a run-level telemetry block read via the WLL path.
///
/// # Panics
///
/// Panics on a zero `workers`/`requests`/`ring_capacity`, or if the
/// final snapshot violates `completed == admitted` (every admitted
/// request is executed exactly once).
#[must_use]
pub fn run_cell(cfg: &CellConfig, sinks: Option<&ServeSinks>) -> CellResult {
    assert!(cfg.workers > 0, "need at least one worker");
    assert!(
        cfg.workers < nbsp_telemetry::MAX_SLOTS,
        "more workers than telemetry slots: two workers would share a slot"
    );
    assert!(cfg.requests > 0, "need at least one request");
    let sink = CellSink::new(cfg.workers + 1).unwrap();

    // The LL/SC substrate comes from the provider registry
    // (`nbsp_core::provider`), not a local construction list; serving
    // cells run on the registry's Figure-4 native entry. The env gets one
    // extra context slot for structure setup (index `cfg.workers`). The
    // `let env` bindings keep the provider's generic shape even though
    // this entry's `Env` happens to be `()`.
    #[allow(clippy::let_unit_value)]
    match cfg.workload {
        Workload::Counter => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let c = Counter::new(Fig4Native::var(&env, 0).unwrap());
            drive(cfg, &sink, sinks, |slot| {
                let c = &c;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                move |_key| {
                    c.increment(&mut Fig4Native::ctx(&mut tc));
                }
            });
        }
        Workload::Stack => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let st = Stack::new(
                2 * cfg.workers + 8,
                Fig4Native::var(&env, 0).unwrap(),
                Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive(cfg, &sink, sinks, |slot| {
                let st = &st;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = st.push(&mut ctx, v);
                    let _ = st.pop(&mut ctx);
                }
            });
        }
        Workload::Queue => {
            let env = Fig4Native::env(cfg.workers + 1).unwrap();
            let mut setup_tc = Fig4Native::thread_ctx(&env, cfg.workers);
            let mut setup = Fig4Native::ctx(&mut setup_tc);
            let q = Queue::new(
                2 * cfg.workers + 8,
                || Fig4Native::var(&env, 0).unwrap(),
                &mut setup,
            );
            drive(cfg, &sink, sinks, |slot| {
                let q = &q;
                let mut tc = Fig4Native::thread_ctx(&env, slot);
                let v = slot as u64;
                move |_key| {
                    let mut ctx = Fig4Native::ctx(&mut tc);
                    let _ = q.enqueue(&mut ctx, v);
                    let _ = q.dequeue(&mut ctx);
                }
            });
        }
        Workload::Stm => {
            let stm = OrecStm::new(&[0; 4]);
            drive(cfg, &sink, sinks, |slot| {
                let stm = &stm;
                let p = ProcId::new(slot);
                move |_key| {
                    stm.transact(p, &[0, 1], |vals| {
                        vals[0] += 1;
                        vals[1] += 1;
                    });
                }
            });
        }
        Workload::OrdMap { .. } => {
            let mc = MapCell::new(cfg.workers, cfg.requests, cfg.seed);
            drive(cfg, &sink, sinks, |slot| mc.op(slot));
            mc.assert_conserved();
        }
    }

    let snapshot = sink.snapshot();
    assert_eq!(
        snapshot.completed, snapshot.admitted,
        "every admitted request must be executed exactly once"
    );
    CellResult {
        snapshot,
        p50_ns: snapshot.percentile_ns(0.50),
        p95_ns: snapshot.percentile_ns(0.95),
        p99_ns: snapshot.percentile_ns(0.99),
        p999_ns: snapshot.percentile_ns(0.999),
    }
}

/// The shared state of an [`Workload::OrdMap`] cell: the LLX/SCX
/// external-BST map (on the registry's Figure-4 native entry, like every
/// cell workload structure), per-worker op-mix streams, and the
/// conservation ledger. Each admitted request executes **one** map
/// operation on its sampled key — 2:1:1 insert/delete/get, the kind drawn
/// from a worker-seeded stream so a hot key sees all three kinds. The
/// ledger counts *effective* inserts (a new key landed) and deletes (a
/// key removed); [`MapCell::assert_conserved`] checks `inserts − deletes
/// == final size` after the cell drains — the E15 conservation gate, and
/// a whole-structure check that no SCX was lost or doubled under load.
pub(crate) struct MapCell {
    env: <Fig4Native as Provider>::Env,
    map: OrdMap<<Fig4Native as Provider>::Var>,
    workers: usize,
    seed: u64,
    inserted: AtomicU64,
    deleted: AtomicU64,
}

impl MapCell {
    /// Builds the map with a record budget covering every request being
    /// an insert (the arena is lifetime-allocated; see `ordmap`).
    pub(crate) fn new(workers: usize, requests: u64, seed: u64) -> Self {
        #[allow(clippy::let_unit_value)]
        let env = Fig4Native::env(workers + 1).unwrap();
        let mut setup_tc = Fig4Native::thread_ctx(&env, workers);
        let mut setup = Fig4Native::ctx(&mut setup_tc);
        let map = OrdMap::new(
            workers,
            ordmap_capacity(requests as usize),
            || Fig4Native::var(&env, 0).unwrap(),
            &mut setup,
        );
        MapCell {
            env,
            map,
            workers,
            seed,
            inserted: AtomicU64::new(0),
            deleted: AtomicU64::new(0),
        }
    }

    /// The op closure for worker `slot` (also its LLX/SCX process id).
    pub(crate) fn op(&self, slot: usize) -> impl FnMut(u64) + Send + '_ {
        let mut tc = Fig4Native::thread_ctx(&self.env, slot);
        let mut rng = nbsp_memsim::rng::SplitMix64::new(
            self.seed ^ (slot as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        );
        move |key| {
            let mut ctx = Fig4Native::ctx(&mut tc);
            match rng.next_index(4) {
                0 | 1 => {
                    if self
                        .map
                        .insert(&mut ctx, slot, key, key + 1)
                        .expect("map arena sized for every request")
                        .is_none()
                    {
                        self.inserted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                2 => {
                    if self
                        .map
                        .delete(&mut ctx, slot, key)
                        .expect("map arena sized for every request")
                        .is_some()
                    {
                        self.deleted.fetch_add(1, Ordering::Relaxed);
                    }
                }
                _ => {
                    let _ = self.map.get(&mut ctx, key);
                }
            }
        }
    }

    /// The conservation gate: every effective insert grew the map by one
    /// key and every effective delete shrank it by one, so after the
    /// drain the final size must equal their difference exactly.
    pub(crate) fn assert_conserved(&self) {
        let mut tc = Fig4Native::thread_ctx(&self.env, self.workers);
        let mut ctx = Fig4Native::ctx(&mut tc);
        let net = self.inserted.load(Ordering::Relaxed) - self.deleted.load(Ordering::Relaxed);
        assert_eq!(
            self.map.len(&mut ctx) as u64,
            net,
            "ordmap conservation: inserts − deletes must equal the final size"
        );
    }
}

/// Spawns the workers, runs the producer inline, joins.
fn drive<F>(
    cfg: &CellConfig,
    sink: &CellSink,
    sinks: Option<&ServeSinks>,
    mut make_op: impl FnMut(usize) -> F,
) where
    F: FnMut(u64) + Send,
{
    let ring = SpmcRing::new(cfg.ring_capacity);
    let bucket = cfg.admission.map(TokenBucket::from_config);
    let done = AtomicBool::new(false);
    let ops: Vec<F> = (0..cfg.workers).map(&mut make_op).collect();
    // Telemetry slots wrap modulo the registry size, so across a long
    // sweep a worker can land on the producer's slot. Two live flushers
    // mirroring one row double-publish it; a worker that collides
    // therefore skips telemetry flushing and lets the producer's
    // mirror-diff publish that row's whole delta exactly once.
    let producer_slot = nbsp_telemetry::thread_slot();
    std::thread::scope(|s| {
        for (slot, op) in ops.into_iter().enumerate() {
            let ring = &ring;
            let done = &done;
            s.spawn(move || worker_loop(ring, done, sink, slot, producer_slot, sinks, op));
        }
        produce(cfg, &ring, bucket.as_ref(), sink, sinks);
        done.store(true, Ordering::Release);
    });
}

/// The open-loop client: generation, admission, the virtual queue model,
/// and dispatch. Runs on the calling thread (publishing under the cell's
/// last flusher slot).
fn produce(
    cfg: &CellConfig,
    ring: &SpmcRing,
    bucket: Option<&TokenBucket>,
    sink: &CellSink,
    sinks: Option<&ServeSinks>,
) {
    let mut gen = match cfg.workload.key_dist() {
        Some(dist) => LoadGen::new_keyed(cfg.seed, cfg.process, cfg.service_mean_ns, dist),
        None => LoadGen::new(cfg.seed, cfg.process, cfg.service_mean_ns),
    };
    let mut producer = ring.producer();
    let mut cell = CellFlusher::new(cfg.workers);
    let mut tele = sinks.map(|_| (Flusher::new(), HistFlusher::new()));
    // Virtual FCFS queue: per-server next-free times. Ties break to the
    // lowest index — deterministic.
    let mut free = vec![0u64; cfg.workers];
    // The single dispatch ring's head cursor: every admitted request is
    // claimed through this one serialized station before it can start
    // service, and each claim occupies the cursor for a duration that
    // grows with the number of contending workers (see
    // [`CLAIM_NS_PER_CONTENDER`]). This is what makes the single-ring
    // baseline's scaling curve bend: past the point where
    // `rate * claim_ns >= 1` the cursor itself is the bottleneck no
    // matter how many servers sit behind it.
    let claim_ns = CLAIM_NS_PER_CONTENDER * cfg.workers as u64;
    let mut dispatch_free = 0u64;
    let mut unflushed = 0u32;
    for _ in 0..cfg.requests {
        let r = gen.next_request();
        let admitted = bucket.is_none_or(|b| b.admit(r.arrival_ns));
        if admitted {
            cell.record_admit();
            let claimed = dispatch_free.max(r.arrival_ns) + claim_ns;
            dispatch_free = claimed;
            let mut best = 0;
            for (i, &f) in free.iter().enumerate().skip(1) {
                if f < free[best] {
                    best = i;
                }
            }
            let start = free[best].max(claimed);
            let completion = start + r.service_ns;
            free[best] = completion;
            cell.record_sojourn(completion - r.arrival_ns);
            producer.push(r);
        } else {
            cell.record_shed();
        }
        unflushed += 1;
        if unflushed >= FLUSH_EVERY {
            cell.flush(sink);
            flush_telemetry(&mut tele, sinks);
            unflushed = 0;
        }
    }
    cell.flush(sink);
    flush_telemetry(&mut tele, sinks);
}

/// One worker: claim, execute the real operation, count, flush.
fn worker_loop<F: FnMut(u64)>(
    ring: &SpmcRing,
    done: &AtomicBool,
    sink: &CellSink,
    slot: usize,
    producer_slot: usize,
    sinks: Option<&ServeSinks>,
    mut op: F,
) {
    let mut cell = CellFlusher::new(slot);
    let shared_slot = nbsp_telemetry::thread_slot() == producer_slot;
    let mut tele = (!shared_slot)
        .then_some(sinks)
        .flatten()
        .map(|_| (Flusher::new(), HistFlusher::new()));
    let mut backoff = Backoff::new();
    let mut unflushed = 0u32;
    loop {
        match ring.try_pop() {
            Some(r) => {
                op(r.key);
                cell.record_completed(1);
                unflushed += 1;
                if unflushed >= FLUSH_EVERY {
                    cell.flush(sink);
                    flush_telemetry(&mut tele, sinks);
                    unflushed = 0;
                }
                backoff.reset();
            }
            None => {
                // `done` is set after the final push (release/acquire), so
                // observing it *and then* still finding the ring empty
                // means the cell is drained.
                if done.load(Ordering::Acquire) && ring.is_empty() {
                    break;
                }
                backoff.spin();
            }
        }
    }
    cell.flush(sink);
    flush_telemetry(&mut tele, sinks);
}

fn flush_telemetry(tele: &mut Option<(Flusher, HistFlusher)>, sinks: Option<&ServeSinks>) {
    if let (Some((events, hists)), Some(s)) = (tele.as_mut(), sinks) {
        events.flush(&s.events);
        hists.flush(&s.hists);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(workload: Workload, rate: f64, admission: Option<AdmissionConfig>) -> CellConfig {
        CellConfig {
            seed: 0x5eed,
            process: ArrivalProcess::Poisson { rate_per_sec: rate },
            workload,
            workers: 2,
            requests: 4_000,
            service_mean_ns: 1_000.0,
            admission,
            ring_capacity: 256,
        }
    }

    #[test]
    fn underload_has_negligible_queueing() {
        // 2 virtual servers x 1 µs mean service = 2e6 req/s capacity;
        // offer 10% of it. Sojourn should stay within a few service
        // times: p99 under ~64 µs is generous.
        let r = run_cell(&small_cfg(Workload::Counter, 2e5, None), None);
        assert_eq!(r.snapshot.generated(), 4_000);
        assert_eq!(r.snapshot.shed, 0);
        assert_eq!(r.snapshot.completed, 4_000);
        assert!(r.p99_ns < 65_536, "p99 {} ns under light load", r.p99_ns);
        assert!(r.p50_ns >= 511, "sojourn includes service time");
    }

    #[test]
    fn overload_backlog_shows_up_as_latency_not_lost_requests() {
        // Offer 2x capacity with no admission: open-loop accounting must
        // charge the backlog to sojourn time.
        let r = run_cell(&small_cfg(Workload::Counter, 4e6, None), None);
        assert_eq!(r.snapshot.generated(), 4_000);
        assert_eq!(r.snapshot.completed, 4_000);
        // ~2_000 excess requests queue behind 2 servers: the tail is
        // hundreds of µs at least.
        assert!(r.p99_ns > 100_000, "p99 {} ns under 2x overload", r.p99_ns);
    }

    #[test]
    fn admission_sheds_and_caps_the_tail() {
        let admission = Some(AdmissionConfig {
            rate_per_sec: 1.6e6, // 80% of the 2e6 capacity
            burst: 32,
        });
        let off = run_cell(&small_cfg(Workload::Counter, 4e6, None), None);
        let on = run_cell(&small_cfg(Workload::Counter, 4e6, admission), None);
        assert!(on.snapshot.shed > 0, "2x overload must shed");
        assert_eq!(on.snapshot.generated(), 4_000);
        assert_eq!(on.snapshot.completed, on.snapshot.admitted);
        assert!(
            on.p99_ns < off.p99_ns,
            "admission on p99 {} !< off p99 {}",
            on.p99_ns,
            off.p99_ns
        );
    }

    #[test]
    fn every_workload_drains_exactly() {
        for w in Workload::ALL {
            let r = run_cell(&small_cfg(w, 1e6, None), None);
            assert_eq!(r.snapshot.completed, r.snapshot.admitted, "{}", w.name());
            assert_eq!(r.snapshot.sojourns(), r.snapshot.admitted, "{}", w.name());
        }
    }

    #[test]
    fn the_keyed_map_cell_drains_and_conserves() {
        // Conservation (inserts − deletes == final size) is asserted
        // inside the cell by `MapCell::assert_conserved`; both skews.
        for zipf in [false, true] {
            let w = Workload::OrdMap {
                key_space: 64,
                zipf,
            };
            let r = run_cell(&small_cfg(w, 1e6, None), None);
            assert_eq!(r.snapshot.completed, r.snapshot.admitted, "{zipf}");
        }
    }
}
