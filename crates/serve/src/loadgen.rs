//! Deterministic open-loop load generation on a virtual-time clock.
//!
//! The generator produces a stream of [`Request`]s, each stamped with its
//! **intended arrival time** in virtual nanoseconds — the time the
//! request *would* have arrived at an ideal open-loop client, computed
//! purely from the seeded arrival process and never from how fast the
//! system is draining. Measuring sojourn time against this stamp is what
//! keeps the harness free of coordinated omission: if the system falls
//! behind, the backlog shows up as latency instead of silently stretching
//! the arrival process.
//!
//! Two arrival processes cover the interesting regimes:
//!
//! * [`ArrivalProcess::Poisson`] — exponential inter-arrival times, the
//!   memoryless baseline of open-loop benchmarking;
//! * [`ArrivalProcess::OnOff`] — a bursty two-state process (exponential
//!   ON periods at a high rate, silent OFF periods), the classic model
//!   for flash-crowd traffic that stresses admission control.
//!
//! Service demands are drawn from a shifted-exponential distribution so
//! the virtual queue model sees realistic variance. Everything flows
//! from one [`SplitMix64`] stream: same seed ⇒ identical request
//! sequence, on every platform the same floating-point libm runs on (the
//! determinism tests compare two in-process runs, which is exact).

use nbsp_memsim::rng::SplitMix64;

/// One generated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Request {
    /// Intended arrival time, virtual nanoseconds since run start.
    pub arrival_ns: u64,
    /// Seeded service demand in virtual nanoseconds (how long one
    /// virtual worker is occupied executing it).
    pub service_ns: u64,
    /// The key the request operates on (keyed workloads route by it;
    /// unkeyed streams carry 0).
    pub key: u64,
}

/// The key distribution of a keyed request stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDist {
    /// Every key in `0..space` equally likely.
    Uniform {
        /// Size of the key space.
        space: u64,
    },
    /// Zipf(1) over `0..space`: key `k` with probability ∝ `1/(k+1)` —
    /// the classic skewed-popularity model, concentrating traffic (and
    /// hence SCX conflicts) on a few hot keys.
    Zipf {
        /// Size of the key space.
        space: u64,
    },
}

impl KeyDist {
    /// Stable name for reports and the JSON schema.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KeyDist::Uniform { .. } => "uniform",
            KeyDist::Zipf { .. } => "zipf",
        }
    }
}

/// Samples keys from a [`KeyDist`] on its **own** SplitMix64 stream, so
/// adding keys to a cell never perturbs the arrival/service stream — an
/// unkeyed cell's requests stay byte-identical to pre-key builds.
#[derive(Clone, Debug)]
struct KeySampler {
    rng: SplitMix64,
    dist: KeyDist,
    /// Cumulative Zipf probabilities (empty for uniform): `cdf[k]` =
    /// P(key ≤ k), normalized to end at 1.0.
    cdf: Vec<f64>,
}

impl KeySampler {
    fn new(seed: u64, dist: KeyDist) -> Self {
        let space = match dist {
            KeyDist::Uniform { space } | KeyDist::Zipf { space } => space,
        };
        assert!(space > 0, "key space must be positive");
        let cdf = match dist {
            KeyDist::Uniform { .. } => Vec::new(),
            KeyDist::Zipf { space } => {
                assert!(
                    space <= 1 << 20,
                    "Zipf CDF table is precomputed; cap the key space"
                );
                let mut acc = 0.0f64;
                let mut cdf: Vec<f64> = (0..space)
                    .map(|k| {
                        acc += 1.0 / (k + 1) as f64;
                        acc
                    })
                    .collect();
                for c in &mut cdf {
                    *c /= acc;
                }
                cdf
            }
        };
        KeySampler {
            // Decorrelate from the arrival stream's seed (golden-ratio
            // offset, the SplitMix64 stream-splitting constant).
            rng: SplitMix64::new(seed ^ 0x9e37_79b9_7f4a_7c15),
            dist,
            cdf,
        }
    }

    fn next_key(&mut self) -> u64 {
        match self.dist {
            KeyDist::Uniform { space } => self.rng.next_below(space),
            KeyDist::Zipf { .. } => {
                let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                self.cdf.partition_point(|&c| c <= u) as u64
            }
        }
    }
}

/// The arrival process driving a [`LoadGen`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Poisson arrivals: i.i.d. exponential inter-arrival times with the
    /// given mean rate (requests per virtual second).
    Poisson {
        /// Mean arrival rate, requests per virtual second.
        rate_per_sec: f64,
    },
    /// Bursty ON/OFF arrivals: during an ON period requests arrive as a
    /// Poisson stream at `on_rate_per_sec`; OFF periods are silent. Both
    /// period lengths are exponentially distributed. The long-run mean
    /// rate is `on_rate * on_mean / (on_mean + off_mean)`.
    OnOff {
        /// Arrival rate inside an ON burst, requests per virtual second.
        on_rate_per_sec: f64,
        /// Mean ON-period length in virtual nanoseconds.
        on_mean_ns: f64,
        /// Mean OFF-period length in virtual nanoseconds.
        off_mean_ns: f64,
    },
}

impl ArrivalProcess {
    /// The process's long-run mean rate in requests per virtual second.
    #[must_use]
    pub fn mean_rate_per_sec(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_sec } => rate_per_sec,
            ArrivalProcess::OnOff {
                on_rate_per_sec,
                on_mean_ns,
                off_mean_ns,
            } => on_rate_per_sec * on_mean_ns / (on_mean_ns + off_mean_ns),
        }
    }

    /// Stable name for reports and the JSON schema.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::OnOff { .. } => "onoff",
        }
    }
}

/// Draws an exponential variate with the given mean from `rng`.
///
/// Uses inversion on a `(0, 1]` uniform (the complement of the `[0, 1)`
/// mantissa draw, so `ln` never sees zero).
fn exponential(rng: &mut SplitMix64, mean: f64) -> f64 {
    // 53 uniform mantissa bits; u ∈ (0, 1].
    let u = ((rng.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64;
    -mean * u.ln()
}

/// The deterministic request generator: an iterator over [`Request`]s in
/// intended-arrival order.
#[derive(Clone, Debug)]
pub struct LoadGen {
    rng: SplitMix64,
    process: ArrivalProcess,
    /// Mean service demand in virtual nanoseconds.
    service_mean_ns: f64,
    /// Virtual clock: the last intended arrival time issued.
    now_ns: f64,
    /// For [`ArrivalProcess::OnOff`]: the virtual time at which the
    /// current ON period ends (arrivals landing past it fast-forward
    /// through OFF periods).
    on_until_ns: f64,
    /// Key sampling for keyed workloads; `None` stamps every request
    /// with key 0.
    keys: Option<KeySampler>,
}

impl LoadGen {
    /// Creates a generator for `process` whose service demands have the
    /// given mean (shifted-exponential: `mean/2` deterministic floor plus
    /// an exponential tail of mean `mean/2`).
    ///
    /// # Panics
    ///
    /// Panics if the process rate or `service_mean_ns` is not positive.
    #[must_use]
    pub fn new(seed: u64, process: ArrivalProcess, service_mean_ns: f64) -> Self {
        assert!(
            process.mean_rate_per_sec() > 0.0,
            "arrival rate must be positive"
        );
        assert!(service_mean_ns > 0.0, "service mean must be positive");
        LoadGen {
            rng: SplitMix64::new(seed),
            process,
            service_mean_ns,
            now_ns: 0.0,
            on_until_ns: 0.0,
            keys: None,
        }
    }

    /// As [`LoadGen::new`], with every request additionally stamped with
    /// a key drawn from `dist`. Keys come from a separate seeded stream,
    /// so the arrival/service sequence is identical to the unkeyed
    /// generator's for the same seed.
    ///
    /// # Panics
    ///
    /// As [`LoadGen::new`]; also panics on a zero key space.
    #[must_use]
    pub fn new_keyed(seed: u64, process: ArrivalProcess, service_mean_ns: f64, dist: KeyDist) -> Self {
        let mut g = LoadGen::new(seed, process, service_mean_ns);
        g.keys = Some(KeySampler::new(seed, dist));
        g
    }

    /// The virtual time of the last generated arrival (ns).
    #[must_use]
    pub fn now_ns(&self) -> u64 {
        self.now_ns as u64
    }

    /// Generates the next request (the stream is infinite).
    pub fn next_request(&mut self) -> Request {
        match self.process {
            ArrivalProcess::Poisson { rate_per_sec } => {
                self.now_ns += exponential(&mut self.rng, 1e9 / rate_per_sec);
            }
            ArrivalProcess::OnOff {
                on_rate_per_sec,
                on_mean_ns,
                off_mean_ns,
            } => {
                self.now_ns += exponential(&mut self.rng, 1e9 / on_rate_per_sec);
                // Fast-forward through as many OFF periods as the gap
                // spans; the overshoot past an ON period's end carries
                // into the next ON period.
                while self.now_ns > self.on_until_ns {
                    let overshoot = self.now_ns - self.on_until_ns;
                    let off = exponential(&mut self.rng, off_mean_ns);
                    let on = exponential(&mut self.rng, on_mean_ns);
                    self.now_ns = self.on_until_ns + off + overshoot;
                    self.on_until_ns = self.now_ns - overshoot + on;
                }
            }
        }
        let service =
            self.service_mean_ns / 2.0 + exponential(&mut self.rng, self.service_mean_ns / 2.0);
        Request {
            arrival_ns: self.now_ns as u64,
            service_ns: service as u64,
            key: self.keys.as_mut().map_or(0, KeySampler::next_key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 1e6 };
        let mut a = LoadGen::new(42, p, 800.0);
        let mut b = LoadGen::new(42, p, 800.0);
        for _ in 0..1000 {
            assert_eq!(a.next_request(), b.next_request());
        }
    }

    #[test]
    fn arrivals_are_monotonic_and_rate_is_roughly_right() {
        let mut g = LoadGen::new(7, ArrivalProcess::Poisson { rate_per_sec: 1e6 }, 500.0);
        let n = 100_000;
        let mut last = 0;
        for _ in 0..n {
            let r = g.next_request();
            assert!(r.arrival_ns >= last, "arrivals must be non-decreasing");
            last = r.arrival_ns;
        }
        // 1e6/s for 1e5 arrivals ⇒ ~1e5 µs ⇒ ~1e11/1000 ns. ±10%.
        let expect = 1e9 / 1e6 * n as f64;
        let got = last as f64;
        assert!((got / expect - 1.0).abs() < 0.1, "span {got} vs {expect}");
    }

    #[test]
    fn service_demand_has_floor_and_roughly_the_mean() {
        let mut g = LoadGen::new(3, ArrivalProcess::Poisson { rate_per_sec: 1e6 }, 1000.0);
        let n = 50_000u64;
        let mut sum = 0u64;
        for _ in 0..n {
            let r = g.next_request();
            assert!(r.service_ns >= 500, "shifted floor is mean/2");
            sum += r.service_ns;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean / 1000.0 - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn onoff_long_run_rate_matches_formula() {
        let p = ArrivalProcess::OnOff {
            on_rate_per_sec: 4e6,
            on_mean_ns: 50_000.0,
            off_mean_ns: 150_000.0,
        };
        assert!((p.mean_rate_per_sec() - 1e6).abs() < 1.0);
        let mut g = LoadGen::new(11, p, 500.0);
        let n = 200_000;
        let mut last = 0;
        for _ in 0..n {
            last = g.next_request().arrival_ns;
        }
        let got_rate = n as f64 / (last as f64 / 1e9);
        // Bursty processes converge slower; ±15%.
        assert!(
            (got_rate / 1e6 - 1.0).abs() < 0.15,
            "long-run rate {got_rate}"
        );
    }

    #[test]
    fn keys_never_perturb_the_arrival_stream() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 1e6 };
        let mut plain = LoadGen::new(42, p, 800.0);
        let mut keyed = LoadGen::new_keyed(42, p, 800.0, KeyDist::Uniform { space: 64 });
        for _ in 0..1000 {
            let a = plain.next_request();
            let b = keyed.next_request();
            assert_eq!(a.arrival_ns, b.arrival_ns);
            assert_eq!(a.service_ns, b.service_ns);
            assert_eq!(a.key, 0, "unkeyed streams carry key 0");
            assert!(b.key < 64);
        }
    }

    #[test]
    fn zipf_concentrates_on_the_hot_keys() {
        let p = ArrivalProcess::Poisson { rate_per_sec: 1e6 };
        let space = 256u64;
        let mut g = LoadGen::new_keyed(7, p, 800.0, KeyDist::Zipf { space });
        let n = 50_000;
        let mut counts = vec![0u64; space as usize];
        for _ in 0..n {
            counts[g.next_request().key as usize] += 1;
        }
        // P(key 0) = 1/H(256) ≈ 0.163; uniform would give 1/256.
        let hot = counts[0] as f64 / n as f64;
        assert!(hot > 0.12, "key 0 carried only {hot} of the traffic");
        assert!(
            counts[0] > 10 * counts[space as usize / 2].max(1),
            "head/middle ratio too flat for Zipf"
        );
    }

    #[test]
    fn onoff_actually_bursts() {
        // Max gap must dwarf the in-burst median gap.
        let p = ArrivalProcess::OnOff {
            on_rate_per_sec: 4e6,
            on_mean_ns: 50_000.0,
            off_mean_ns: 150_000.0,
        };
        let mut g = LoadGen::new(13, p, 500.0);
        let mut gaps = Vec::new();
        let mut last = 0;
        for _ in 0..20_000 {
            let r = g.next_request();
            gaps.push(r.arrival_ns - last);
            last = r.arrival_ns;
        }
        gaps.sort_unstable();
        let median = gaps[gaps.len() / 2];
        let max = *gaps.last().unwrap();
        assert!(
            max > 100 * median,
            "no burst structure: median {median} max {max}"
        );
    }
}
