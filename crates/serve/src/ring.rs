//! A bounded single-producer multi-consumer dispatch ring whose cursors
//! are Figure-4 LL/SC variables.
//!
//! The load generator is one thread (arrivals are a single ordered
//! stream), so the ring needs exactly SPMC: one producer appending at the
//! tail, N workers competing to claim the head. Both cursors are
//! [`CasLlSc`] variables — the crate dispatches its served traffic through
//! the same primitive it benchmarks:
//!
//! * **push** is *wait-free*: the producer is the only writer of the tail,
//!   so its tag never moves between its LL and its SC and the SC cannot
//!   fail — one LL, two slot stores, one SC, no loop;
//! * **pop** is *lock-free*: a consumer LLs the head, reads the slot, and
//!   SCs `head + 1`; a failed SC means another consumer's SC landed, i.e.
//!   the system as a whole made progress.
//!
//! ## Why reading the slot before the SC is safe
//!
//! A consumer reads the two slot words *between* its LL and SC on the
//! head (the paper's validate-after-read idiom). The producer overwrites
//! slot `h % cap` only once the tail reaches `h + cap`, and it bounds the
//! tail by a head value it observed — so overwriting that slot requires
//! the head to have advanced past `h` first. Any head advance bumps the
//! head's tag and makes the reader's SC fail, discarding the possibly
//! torn read. A *successful* SC therefore proves the head was untouched
//! for the whole read, which in turn proves the producer never came
//! within `cap` of the claimed slot: both words belong to one request.
//!
//! Cursors only grow (indices are taken modulo the capacity), and the
//! half-word [`TagLayout`] leaves 32 value bits — `SpmcRing::push` asserts
//! the cursor stays in range, bounding a ring's lifetime at ~4.3 billion
//! requests, far beyond any experiment cell.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use nbsp_core::{Backoff, CachePadded, CasLlSc, Keep, Native, TagLayout};
use nbsp_telemetry::{observe, Hist};

use crate::loadgen::Request;

/// The bounded SPMC dispatch ring. See the module docs for the protocol.
#[derive(Debug)]
pub struct SpmcRing {
    /// Claim cursor (total requests popped); multi-consumer LL/SC.
    head: CachePadded<CasLlSc<Native>>,
    /// Publish cursor (total requests pushed); single-writer LL/SC.
    tail: CachePadded<CasLlSc<Native>>,
    /// Slot payloads, indexed by `cursor % capacity`. Plain atomics —
    /// the cursor protocol above is what makes the pairs consistent.
    arrivals: Box<[AtomicU64]>,
    services: Box<[AtomicU64]>,
    keys: Box<[AtomicU64]>,
    /// Enforces the single-producer contract at runtime.
    producer_claimed: AtomicBool,
}

/// The unique producer handle of a ring (see [`SpmcRing::producer`]).
/// Holding it is what makes `push`'s SC unable to fail; the type is
/// deliberately neither `Clone` nor constructible elsewhere.
#[derive(Debug)]
pub struct Producer<'a> {
    ring: &'a SpmcRing,
}

impl SpmcRing {
    /// Creates an empty ring with room for `capacity` in-flight requests.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        let layout = TagLayout::half();
        SpmcRing {
            head: CachePadded::new(CasLlSc::new_native(layout, 0).unwrap()),
            tail: CachePadded::new(CasLlSc::new_native(layout, 0).unwrap()),
            arrivals: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            services: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            keys: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            producer_claimed: AtomicBool::new(false),
        }
    }

    /// Number of requests the ring can hold.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arrivals.len()
    }

    /// Claims the ring's unique producer handle.
    ///
    /// # Panics
    ///
    /// Panics if called a second time: the wait-freedom of `push` rests on
    /// the tail having exactly one writer.
    #[must_use]
    pub fn producer(&self) -> Producer<'_> {
        assert!(
            !self.producer_claimed.swap(true, Ordering::Relaxed),
            "SpmcRing::producer may only be claimed once"
        );
        Producer { ring: self }
    }

    /// Requests currently in flight (racy estimate: the two cursors are
    /// read independently).
    #[must_use]
    pub fn len(&self) -> usize {
        let t = self.tail.read(&Native);
        let h = self.head.read(&Native);
        t.saturating_sub(h) as usize
    }

    /// Whether the ring was empty at the time of the (racy) reads.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Claims and returns the request at the head, or `None` if the ring
    /// was observed empty. Lock-free: retries only when another consumer's
    /// SC claimed the head first.
    pub fn try_pop(&self) -> Option<Request> {
        let mem = Native;
        let mut keep = Keep::default();
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            // nbsp-flow: allow(keep-leak) — CasLlSc's LL is a plain acquire load into the keep; no slot is claimed, so the empty-ring return abandons nothing
            let h = self.head.ll(&mem, &mut keep);
            // Acquire read: synchronizes with the producer's releasing SC,
            // so the slot stores made before that SC are visible below.
            let t = self.tail.read(&mem);
            if h == t {
                return None;
            }
            let i = (h as usize) % self.capacity();
            let arrival_ns = self.arrivals[i].load(Ordering::Relaxed);
            let service_ns = self.services[i].load(Ordering::Relaxed);
            let key = self.keys[i].load(Ordering::Relaxed);
            if self.head.sc(&mem, &keep, h + 1) {
                // SC success validates the read triple (module docs).
                observe(Hist::Retries, attempts);
                return Some(Request {
                    arrival_ns,
                    service_ns,
                    key,
                });
            }
            backoff.spin();
        }
    }
}

impl Producer<'_> {
    /// Appends `r` if the ring has room; `false` (without side effects) if
    /// it was full. Wait-free: one LL, one head read, one SC that cannot
    /// fail.
    pub fn try_push(&mut self, r: Request) -> bool {
        let ring = self.ring;
        let mem = Native;
        let mut keep = Keep::default();
        // nbsp-flow: allow(keep-leak) — CasLlSc's LL claims no slot; the full-ring return abandons only a local snapshot
        let t = ring.tail.ll(&mem, &mut keep);
        let h = ring.head.read(&mem);
        // A stale (small) h only makes this check conservative.
        if t - h >= ring.capacity() as u64 {
            return false;
        }
        assert!(
            t < ring.tail.layout().max_val(),
            "ring cursor exhausted its 32 value bits"
        );
        let i = (t as usize) % ring.capacity();
        ring.arrivals[i].store(r.arrival_ns, Ordering::Relaxed);
        ring.services[i].store(r.service_ns, Ordering::Relaxed);
        ring.keys[i].store(r.key, Ordering::Relaxed);
        // Releasing SC publishes the slot stores above. Sole tail writer:
        // the tag cannot have moved since the LL.
        let landed = ring.tail.sc(&mem, &keep, t + 1);
        debug_assert!(landed, "single-writer SC on the tail cannot fail");
        landed
    }

    /// Appends `r`, spinning (with bounded backoff) while the ring is
    /// full. Open-loop semantics are unharmed: a stall here is producer
    /// real time, while latency is charged from the request's *intended*
    /// arrival stamp.
    pub fn push(&mut self, r: Request) {
        let mut backoff = Backoff::new();
        while !self.try_push(r) {
            backoff.spin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    fn req(n: u64) -> Request {
        Request {
            arrival_ns: n,
            service_ns: 10 * n,
            key: n % 7,
        }
    }

    #[test]
    fn fifo_single_thread() {
        let ring = SpmcRing::new(4);
        let mut p = ring.producer();
        assert!(ring.try_pop().is_none());
        for n in 0..4 {
            assert!(p.try_push(req(n)));
        }
        assert!(!p.try_push(req(9)), "full at capacity");
        for n in 0..4 {
            assert_eq!(ring.try_pop(), Some(req(n)));
        }
        assert!(ring.try_pop().is_none());
        // Wrapped reuse keeps FIFO order.
        assert!(p.try_push(req(7)));
        assert_eq!(ring.try_pop(), Some(req(7)));
    }

    #[test]
    #[should_panic(expected = "claimed once")]
    fn second_producer_claim_panics() {
        let ring = SpmcRing::new(2);
        let _a = ring.producer();
        let _b = ring.producer();
    }

    #[test]
    fn every_request_consumed_exactly_once() {
        let ring = SpmcRing::new(64);
        const N: u64 = 20_000;
        const CONSUMERS: usize = 4;
        let popped = AtomicU64::new(0);
        let sum = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..CONSUMERS {
                s.spawn(|| {
                    while popped.load(Ordering::Relaxed) < N {
                        if let Some(r) = ring.try_pop() {
                            sum.fetch_add(r.arrival_ns, Ordering::Relaxed);
                            popped.fetch_add(1, Ordering::Relaxed);
                        } else {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            let mut p = ring.producer();
            for n in 1..=N {
                p.push(req(n));
            }
        });
        assert_eq!(popped.load(Ordering::Relaxed), N);
        // Each value claimed exactly once <=> the sum is exact.
        assert_eq!(sum.load(Ordering::Relaxed), N * (N + 1) / 2);
    }
}
