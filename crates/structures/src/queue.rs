//! A Michael–Scott-style lock-free FIFO queue on LL/SC.
//!
//! The original MS queue (PODC '96) uses CAS with *counted pointers* to
//! survive ABA on recycled nodes. On LL/SC the counters disappear: every
//! link mutation goes through an LL–SC sequence whose SC fails after any
//! intervening store. The algorithm keeps its signature helping step — an
//! enqueuer or dequeuer that finds the tail lagging swings it forward on
//! behalf of the stalled thread — so the queue is lock-free.
//!
//! This structure is the crate's showcase for the paper's headline
//! capability: each operation holds **several LL–SC sequences open at
//! once** (on `tail`, on `head`, and on a node's `next` link), something a
//! machine with a single `LLBit` can never do with raw RLL/RSC, and aborts
//! sequences with `CL` when a snapshot turns out inconsistent. On the
//! bounded-tag construction (Figure 7) it therefore needs a domain with
//! `k ≥ 3`.

use std::fmt;

use crate::arena::StructureError;
use nbsp_core::{Backoff, LlScVar};

/// A bounded-capacity lock-free FIFO queue of `u64` values over any
/// [`LlScVar`] implementation.
///
/// Construction takes a factory because the queue needs `capacity + 4`
/// variables of the implementation (head, tail, free-list head, and one
/// `next` link per node including the dummy).
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_structures::Queue;
///
/// let q = Queue::new(
///     8,
///     || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
///     &mut Native,
/// );
/// let mut ctx = Native;
/// q.enqueue(&mut ctx, 1)?;
/// q.enqueue(&mut ctx, 2)?;
/// assert_eq!(q.dequeue(&mut ctx), Some(1));
/// assert_eq!(q.dequeue(&mut ctx), Some(2));
/// assert_eq!(q.dequeue(&mut ctx), None);
/// # Ok::<(), nbsp_structures::StructureError>(())
/// ```
pub struct Queue<V: LlScVar> {
    head: V,
    tail: V,
    free: V,
    next: Vec<V>,
    data: Vec<std::sync::atomic::AtomicU64>,
}

impl<V: LlScVar> fmt::Debug for Queue<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Queue")
            .field("capacity", &(self.next.len() - 1))
            .finish_non_exhaustive()
    }
}

impl<V: LlScVar> Queue<V> {
    /// Creates an empty queue of at most `capacity` elements.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 2` exceeds the variables' value range (links
    /// are stored as index-plus-one; one extra node serves as the dummy).
    #[must_use]
    pub fn new(capacity: usize, mut make_var: impl FnMut() -> V, ctx: &mut V::Ctx<'_>) -> Self {
        let nodes = capacity + 1; // one dummy always present
        let head = make_var();
        assert!(
            (nodes as u64) < head.max_val(),
            "capacity {capacity} too large for the variable's value range"
        );
        let tail = make_var();
        let free = make_var();
        let next: Vec<V> = (0..nodes).map(|_| make_var()).collect();
        let data = (0..nodes)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect();
        let q = Queue {
            head,
            tail,
            free,
            next,
            data,
        };
        // Node 0 is the initial dummy; nodes 1.. form the free list.
        q.force_store(ctx, &q.head, 1);
        q.force_store(ctx, &q.tail, 1);
        for i in 1..nodes {
            let link = if i + 1 < nodes { (i + 2) as u64 } else { 0 };
            q.force_store(ctx, &q.next[i], link);
        }
        q.force_store(ctx, &q.next[0], 0);
        q.force_store(ctx, &q.free, if nodes > 1 { 2 } else { 0 });
        q
    }

    /// Unconditional store to an LL/SC variable (retry loop; used for
    /// initialisation and free-list link writes).
    fn force_store(&self, ctx: &mut V::Ctx<'_>, var: &V, value: u64) {
        let mut keep = V::Keep::default();
        loop {
            let _ = var.ll(ctx, &mut keep);
            if var.sc(ctx, &mut keep, value) {
                return;
            }
        }
    }

    /// Maximum number of elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.next.len() - 1
    }

    fn alloc(&self, ctx: &mut V::Ctx<'_>) -> Option<usize> {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let f = self.free.ll(ctx, &mut keep);
            if f == 0 {
                self.free.cl(ctx, &mut keep);
                return None;
            }
            let idx = (f - 1) as usize;
            let nf = self.next[idx].read(ctx);
            if self.free.sc(ctx, &mut keep, nf) {
                return Some(idx);
            }
            backoff.spin();
        }
    }

    fn dealloc(&self, ctx: &mut V::Ctx<'_>, idx: usize) {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let f = self.free.ll(ctx, &mut keep);
            self.force_store(ctx, &self.next[idx], f);
            if self.free.sc(ctx, &mut keep, (idx + 1) as u64) {
                return;
            }
            backoff.spin();
        }
    }

    /// Appends `value` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::Full`] when all nodes are in use.
    pub fn enqueue(&self, ctx: &mut V::Ctx<'_>, value: u64) -> Result<(), StructureError> {
        let idx = self.alloc(ctx).ok_or(StructureError::Full)?;
        self.data[idx].store(value, std::sync::atomic::Ordering::SeqCst);
        self.force_store(ctx, &self.next[idx], 0);
        let link = (idx + 1) as u64;
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let mut keep_tail = V::Keep::default();
            let mut keep_next = V::Keep::default();
            let t = self.tail.ll(ctx, &mut keep_tail);
            let tidx = (t - 1) as usize;
            let n = self.next[tidx].ll(ctx, &mut keep_next);
            // Validate the snapshot: if the tail moved, `tidx`/`n` are
            // stale — abort both sequences and retry. (This is Figure 1(a)
            // made real: two concurrent LL–SC sequences plus a VL.)
            if !self.tail.vl(ctx, &keep_tail) {
                self.tail.cl(ctx, &mut keep_tail);
                self.next[tidx].cl(ctx, &mut keep_next);
                backoff.spin();
                continue;
            }
            if n == 0 {
                // Tail is the last node: try to link our node after it.
                if self.next[tidx].sc(ctx, &mut keep_next, link) {
                    // Linked. Swing the tail; failure means someone helped.
                    let _ = self.tail.sc(ctx, &mut keep_tail, link);
                    nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
                    return Ok(());
                }
                self.tail.cl(ctx, &mut keep_tail);
                // Our link SC lost to a competing enqueue: back off before
                // re-reading the (certainly changed) tail.
                backoff.spin();
            } else {
                // Tail lags behind: help swing it, then retry.
                self.next[tidx].cl(ctx, &mut keep_next);
                let _ = self.tail.sc(ctx, &mut keep_tail, n);
            }
        }
    }

    /// Removes and returns the oldest value, or `None` if the queue was
    /// empty.
    pub fn dequeue(&self, ctx: &mut V::Ctx<'_>) -> Option<u64> {
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let mut keep_head = V::Keep::default();
            let mut keep_tail = V::Keep::default();
            let mut keep_next = V::Keep::default();
            let h = self.head.ll(ctx, &mut keep_head);
            let t = self.tail.ll(ctx, &mut keep_tail);
            let hidx = (h - 1) as usize;
            let n = self.next[hidx].ll(ctx, &mut keep_next);
            if !self.head.vl(ctx, &keep_head) {
                self.head.cl(ctx, &mut keep_head);
                self.tail.cl(ctx, &mut keep_tail);
                self.next[hidx].cl(ctx, &mut keep_next);
                backoff.spin();
                continue;
            }
            if h == t {
                if n == 0 {
                    // Empty (linearizes at the validated head read).
                    self.head.cl(ctx, &mut keep_head);
                    self.tail.cl(ctx, &mut keep_tail);
                    self.next[hidx].cl(ctx, &mut keep_next);
                    return None;
                }
                // Tail lags: help swing it, then retry.
                self.next[hidx].cl(ctx, &mut keep_next);
                self.head.cl(ctx, &mut keep_head);
                let _ = self.tail.sc(ctx, &mut keep_tail, n);
            } else {
                self.tail.cl(ctx, &mut keep_tail);
                if n == 0 {
                    // Transient inconsistency (head advanced past us).
                    self.head.cl(ctx, &mut keep_head);
                    self.next[hidx].cl(ctx, &mut keep_next);
                    continue;
                }
                // The value lives in the *successor* of the dummy.
                let value = self.data[(n - 1) as usize].load(std::sync::atomic::Ordering::SeqCst);
                self.next[hidx].cl(ctx, &mut keep_next);
                if self.head.sc(ctx, &mut keep_head, n) {
                    nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
                    // The old dummy is ours to recycle.
                    self.dealloc(ctx, hidx);
                    return Some(value);
                }
                // A competing dequeue advanced the head first.
                backoff.spin();
            }
        }
    }

    /// True iff the queue was empty at the reads (quiescent use only).
    pub fn is_empty(&self, ctx: &mut V::Ctx<'_>) -> bool {
        let h = self.head.read(ctx);
        h == self.tail.read(ctx) && self.next[(h - 1) as usize].read(ctx) == 0
    }

    /// Number of elements (O(n) walk; **not** atomic against concurrent
    /// mutation — intended for quiescent checks in tests).
    pub fn len_quiescent(&self, ctx: &mut V::Ctx<'_>) -> usize {
        let mut n = 0;
        let h = self.head.read(ctx);
        let mut cur = self.next[(h - 1) as usize].read(ctx);
        while cur != 0 {
            n += 1;
            cur = self.next[(cur - 1) as usize].read(ctx);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::bounded::BoundedDomain;
    use nbsp_core::lock_baseline::LockLlSc;
    use nbsp_core::{CasLlSc, Native, TagLayout};
    use nbsp_memsim::ProcId;
    use std::collections::HashSet;

    fn native_queue(capacity: usize) -> Queue<CasLlSc<Native>> {
        Queue::new(
            capacity,
            || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
            &mut Native,
        )
    }

    #[test]
    fn fifo_order() {
        let q = native_queue(4);
        let mut ctx = Native;
        for v in [10, 20, 30] {
            q.enqueue(&mut ctx, v).unwrap();
        }
        assert_eq!(q.len_quiescent(&mut ctx), 3);
        assert_eq!(q.dequeue(&mut ctx), Some(10));
        assert_eq!(q.dequeue(&mut ctx), Some(20));
        assert_eq!(q.dequeue(&mut ctx), Some(30));
        assert_eq!(q.dequeue(&mut ctx), None);
        assert!(q.is_empty(&mut ctx));
    }

    #[test]
    fn full_queue_reports_error() {
        let q = native_queue(2);
        let mut ctx = Native;
        q.enqueue(&mut ctx, 1).unwrap();
        q.enqueue(&mut ctx, 2).unwrap();
        assert_eq!(q.enqueue(&mut ctx, 3), Err(StructureError::Full));
        assert_eq!(q.dequeue(&mut ctx), Some(1));
        q.enqueue(&mut ctx, 3).unwrap();
        assert_eq!(q.dequeue(&mut ctx), Some(2));
        assert_eq!(q.dequeue(&mut ctx), Some(3));
    }

    #[test]
    fn interleaved_enqueue_dequeue() {
        let q = native_queue(3);
        let mut ctx = Native;
        for round in 0..100u64 {
            q.enqueue(&mut ctx, round).unwrap();
            q.enqueue(&mut ctx, round + 1000).unwrap();
            assert_eq!(q.dequeue(&mut ctx), Some(round));
            assert_eq!(q.dequeue(&mut ctx), Some(round + 1000));
        }
        assert!(q.is_empty(&mut ctx));
    }

    #[test]
    fn zero_capacity() {
        let q = native_queue(0);
        let mut ctx = Native;
        assert_eq!(q.enqueue(&mut ctx, 1), Err(StructureError::Full));
        assert_eq!(q.dequeue(&mut ctx), None);
    }

    #[test]
    fn mpmc_conserves_values() {
        let q = native_queue(64);
        let threads = 4u64;
        let per_thread = 5_000u64;
        let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let q = &q;
                    scope.spawn(move || {
                        let mut ctx = Native;
                        let mut got = Vec::new();
                        for i in 0..per_thread {
                            let value = t * per_thread + i;
                            loop {
                                if q.enqueue(&mut ctx, value).is_ok() {
                                    break;
                                }
                                if let Some(v) = q.dequeue(&mut ctx) {
                                    got.push(v);
                                }
                            }
                            if i % 3 == 0 {
                                if let Some(v) = q.dequeue(&mut ctx) {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen: HashSet<u64> = HashSet::new();
        for v in popped.into_iter().flatten() {
            assert!(seen.insert(v), "value {v} dequeued twice");
        }
        let mut ctx = Native;
        while let Some(v) = q.dequeue(&mut ctx) {
            assert!(seen.insert(v), "value {v} dequeued twice");
        }
        assert_eq!(seen.len() as u64, threads * per_thread);
    }

    #[test]
    fn per_producer_order_is_preserved() {
        // FIFO per producer: a consumer must see each producer's values in
        // increasing order.
        let q = native_queue(32);
        std::thread::scope(|scope| {
            for t in 0..2u64 {
                let q = &q;
                scope.spawn(move || {
                    let mut ctx = Native;
                    for i in 0..3_000 {
                        let v = (t << 32) | i;
                        while q.enqueue(&mut ctx, v).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let q = &q;
            scope.spawn(move || {
                let mut ctx = Native;
                let mut last = [None::<u64>; 2];
                let mut taken = 0;
                while taken < 6_000 {
                    if let Some(v) = q.dequeue(&mut ctx) {
                        let (producer, seq) = ((v >> 32) as usize, v & 0xFFFF_FFFF);
                        if let Some(prev) = last[producer] {
                            assert!(seq > prev, "producer {producer} reordered");
                        }
                        last[producer] = Some(seq);
                        taken += 1;
                    }
                }
            });
        });
    }

    #[test]
    fn works_on_bounded_tags_with_k3() {
        let d = BoundedDomain::<Native>::new(2, 4).unwrap();
        let mut init = d.proc(0);
        let q = Queue::new(8, || d.var(0).unwrap(), &mut init);
        let mut me1 = d.proc(1);
        std::thread::scope(|scope| {
            let q = &q;
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    while q.enqueue(&mut init, i).is_err() {
                        let _ = q.dequeue(&mut init);
                    }
                }
            });
            scope.spawn(move || {
                let mut last = None;
                for _ in 0..2_000u64 {
                    if let Some(v) = q.dequeue(&mut me1) {
                        if let Some(prev) = last {
                            assert!(v > prev, "reordered");
                        }
                        last = Some(v);
                    }
                }
            });
        });
    }

    #[test]
    fn works_on_lock_baseline() {
        let mut c0 = ProcId::new(0);
        let q = Queue::new(4, || LockLlSc::new(2, 0), &mut c0);
        q.enqueue(&mut c0, 5).unwrap();
        q.enqueue(&mut c0, 6).unwrap();
        assert_eq!(q.dequeue(&mut c0), Some(5));
        assert_eq!(q.dequeue(&mut c0), Some(6));
    }
}
