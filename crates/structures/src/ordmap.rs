//! An ordered map on multi-word LLX/SCX — the external BST of Ellen,
//! Fatourou, Ruppert and van Breugel, written against
//! [`nbsp_llx::LlxDomain`] so one implementation runs on every registry
//! provider.
//!
//! **Shape.** The tree is *external* (leaf-oriented): every key/value
//! pair lives in a leaf; internal nodes carry routing keys only. An
//! internal node's key is strictly greater than every key in its left
//! subtree and at most every key in its right (`k < node.key` goes
//! left). Two sentinel keys `∞₁ < ∞₂` above every user key give the tree
//! a permanent spine — the root is `internal(∞₂)` with leaf children
//! `(∞₁, ∞₂)` — so every *user* leaf has both a parent and a grandparent
//! and no update ever special-cases an empty tree.
//!
//! **Updates are copy-shaped.** Records are immutable except through
//! SCX, and every SCX installs only *freshly allocated* records:
//!
//! * insert of a new key replaces the reached leaf's edge with a new
//!   internal node over `{old leaf, new leaf}` (1 SCX, V = {parent});
//! * insert of an existing key swaps the leaf for a new one (V =
//!   {parent, leaf}, old leaf finalized);
//! * delete splices the leaf and its parent out by installing a **fresh
//!   copy of the sibling** (V = {grandparent, parent, leaf, sibling},
//!   the latter three finalized).
//!
//! Copying the sibling — rather than re-linking it, as the lock-based
//! textbook splice would — is what satisfies the SCX *freshness*
//! requirement: the grandparent's child field never returns to a value
//! it held before, so a stalled helper's late field CAS can never
//! resurrect a spliced-out subtree. This is the Brown-style discipline,
//! and it is also why delete is the `PROVIDER_K` worst case: four
//! linked handles plus help's one transient sequence.
//!
//! **Reads.** `get` is a plain traversal (leaves are immutable; helping
//! happens only if it lands on a frozen record via LLX elsewhere).
//! `range_snapshot` is the paper-pitched VL/VLX read path: an unlinked
//! LLX snapshot per visited record, then one `vlx_snapshots` pass over
//! all of them — if every record is unchanged, the whole traversal is a
//! consistent cut of the tree at the validation instant, and the scan
//! linearizes there. Obstruction-free: concurrent updates force a
//! retry.
//!
//! **Space.** The usual workspace arena discipline: capacity is a
//! lifetime budget ([`ordmap_capacity`]), records are never
//! reclaimed, and an exhausted arena is a typed
//! [`StructureError::Full`].

use std::fmt;
use std::sync::Mutex;

use nbsp_core::{Backoff, LlScVar};
use nbsp_llx::{LlxDomain, LlxOutcome};

use crate::StructureError;

/// The smaller sentinel: strictly above every user key.
const INF1: u64 = u64::MAX - 1;
/// The larger sentinel (the root's routing key).
const INF2: u64 = u64::MAX;

const LEFT: usize = 0;
const RIGHT: usize = 1;
const KEY: usize = 0;
const VAL: usize = 1;

/// Child-edge encoding: `0` is null, `i + 1` names record `i` — the
/// crate's index-plus-one idiom, so a zero-initialized field is an empty
/// edge and a record is a leaf iff its left edge is null.
fn enc(rec: usize) -> u64 {
    rec as u64 + 1
}

fn dec(edge: u64) -> usize {
    (edge - 1) as usize
}

/// `key` routes to which child of a node with routing key `node_key`.
fn route(key: u64, node_key: u64) -> usize {
    if key < node_key {
        LEFT
    } else {
        RIGHT
    }
}

/// A non-blocking ordered map (external BST over LLX/SCX), keyed by
/// `u64` user ids strictly below `u64::MAX - 1`, provider-generic like
/// every structure in this crate.
///
/// `n` processes; mutating calls take the caller's process id `p` (its
/// SCX descriptor slot). All methods take the provider operation
/// context.
pub struct OrdMap<V: LlScVar> {
    d: LlxDomain<V>,
    root: usize,
}

impl<V: LlScVar> fmt::Debug for OrdMap<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrdMap").field("domain", &self.d).finish()
    }
}

/// Record budget sufficient for `ops` arbitrary [`OrdMap`] insert/delete
/// calls: 3 sentinel records plus the per-call worst case (an insert of a
/// new key allocates a leaf and an internal node; a delete allocates one
/// sibling copy; contended retries reuse their spares).
#[must_use]
pub const fn ordmap_capacity(ops: usize) -> usize {
    3 + 2 * ops
}

impl<V: LlScVar> OrdMap<V> {
    /// Builds a map for `n` processes with a lifetime budget of
    /// `capacity` records (see [`ordmap_capacity`]). `make_var`
    /// supplies every LL/SC word, as for
    /// [`Set`](crate::Set)/[`Queue`](crate::Queue).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 3` (the sentinels) or the record-index
    /// encoding does not fit the provider's value width.
    #[must_use]
    pub fn new(
        n: usize,
        capacity: usize,
        make_var: impl FnMut() -> V,
        ctx: &mut V::Ctx<'_>,
    ) -> Self {
        let d = LlxDomain::new(n, capacity, 2, 2, make_var, ctx);
        assert!(
            capacity as u64 <= d.max_val(),
            "record encoding needs {capacity} values, provider holds {}",
            d.max_val()
        );
        let l = d.alloc(ctx, &[INF1, 0], &[0, 0]).expect("capacity >= 3");
        let r = d.alloc(ctx, &[INF2, 0], &[0, 0]).expect("capacity >= 3");
        let root = d
            .alloc(ctx, &[INF2, 0], &[enc(l), enc(r)])
            .expect("capacity >= 3");
        OrdMap { d, root }
    }

    /// Records left in the lifetime budget.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.d.remaining_capacity()
    }

    /// Leaf test: external-tree leaves have no children, and leaf-ness is
    /// immutable (no SCX ever writes a null edge).
    fn is_leaf(&self, ctx: &mut V::Ctx<'_>, rec: usize) -> bool {
        self.d.read_field(ctx, rec, LEFT) == 0
    }

    /// Walks from the root to the leaf `key` routes to, returning
    /// `(grandparent, parent, leaf)`. The grandparent is `None` only when
    /// the leaf hangs directly off the root — which can only be a
    /// sentinel leaf, never a user key.
    fn search(&self, ctx: &mut V::Ctx<'_>, key: u64) -> (Option<usize>, usize, usize) {
        let mut gp = None;
        let mut p = self.root;
        let mut cur = dec(self.d.read_field(ctx, p, route(key, self.d.meta(p, KEY))));
        while !self.is_leaf(ctx, cur) {
            gp = Some(p);
            p = cur;
            cur = dec(self.d.read_field(ctx, cur, route(key, self.d.meta(cur, KEY))));
        }
        (gp, p, cur)
    }

    /// Looks up `key`. A plain traversal: leaves are immutable, so the
    /// reached leaf either carries the key's current pair or proves the
    /// key absent at some instant during the call.
    pub fn get(&self, ctx: &mut V::Ctx<'_>, key: u64) -> Option<u64> {
        let (_, _, leaf) = self.search(ctx, key);
        (self.d.meta(leaf, KEY) == key).then(|| self.d.meta(leaf, VAL))
    }

    /// Inserts `key → value` as process `p`, returning the previous value
    /// if the key was present.
    ///
    /// # Errors
    ///
    /// [`StructureError::Full`] when the record budget is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `key >= u64::MAX - 1` (the sentinel range).
    pub fn insert(
        &self,
        ctx: &mut V::Ctx<'_>,
        p: usize,
        key: u64,
        value: u64,
    ) -> Result<Option<u64>, StructureError> {
        assert!(key < INF1, "keys must stay below the sentinel range");
        let mut backoff = Backoff::new();
        let mut spare_leaf: Option<usize> = None;
        let mut spare_internal: Option<usize> = None;
        loop {
            let (_gp, par, leaf) = self.search(ctx, key);
            let leaf_key = self.d.meta(leaf, KEY);
            // Prepare the records this attempt would install *before*
            // linking anything: allocation failure must not strand open
            // keeps, and an aborted attempt's spares are reused (they were
            // never published, so rewriting them is legal).
            let nl = self.take_spare(ctx, &mut spare_leaf, &[key, value], &[0, 0])?;
            let update = leaf_key == key;
            let internal = if update {
                None
            } else {
                let (ikey, cl, cr) = if key < leaf_key {
                    (leaf_key, nl, leaf)
                } else {
                    (key, leaf, nl)
                };
                Some(self.take_spare(
                    ctx,
                    &mut spare_internal,
                    &[ikey, 0],
                    &[enc(cl), enc(cr)],
                )?)
            };
            let LlxOutcome::Linked(hp) = self.d.llx(ctx, par) else {
                backoff.spin();
                continue;
            };
            let pside = route(key, self.d.meta(par, KEY));
            if hp.field(pside) != enc(leaf) {
                self.d.unlink(ctx, hp);
                backoff.spin();
                continue;
            }
            let committed = if update {
                let LlxOutcome::Linked(hl) = self.d.llx(ctx, leaf) else {
                    self.d.unlink(ctx, hp);
                    backoff.spin();
                    continue;
                };
                let old = self.d.meta(leaf, VAL);
                if self.d.scx(ctx, p, vec![hp, hl], 0b10, par, pside, enc(nl)) {
                    return Ok(Some(old));
                }
                false
            } else {
                self.d
                    .scx(ctx, p, vec![hp], 0, par, pside, enc(internal.unwrap()))
            };
            if committed {
                return Ok(None);
            }
            backoff.spin();
        }
    }

    /// Removes `key` as process `p`, returning its value if present.
    ///
    /// The splice: the leaf and its parent are finalized and the
    /// grandparent's edge is redirected to a *fresh copy* of the sibling
    /// (also finalized) — see the module docs for why the copy, not a
    /// re-link, is required.
    ///
    /// # Errors
    ///
    /// [`StructureError::Full`] when the record budget is exhausted (the
    /// sibling copy costs one record).
    ///
    /// # Panics
    ///
    /// Panics if `key >= u64::MAX - 1`.
    pub fn delete(
        &self,
        ctx: &mut V::Ctx<'_>,
        p: usize,
        key: u64,
    ) -> Result<Option<u64>, StructureError> {
        assert!(key < INF1, "keys must stay below the sentinel range");
        let mut backoff = Backoff::new();
        let mut spare: Option<usize> = None;
        loop {
            let (gp, par, leaf) = self.search(ctx, key);
            if self.d.meta(leaf, KEY) != key {
                return Ok(None);
            }
            let gp = gp.expect("user leaves sit at depth >= 2");
            // Reserve the sibling copy before linking (see insert).
            let sp = self.take_spare(ctx, &mut spare, &[0, 0], &[0, 0])?;
            let LlxOutcome::Linked(hg) = self.d.llx(ctx, gp) else {
                backoff.spin();
                continue;
            };
            let gside = route(key, self.d.meta(gp, KEY));
            if hg.field(gside) != enc(par) {
                self.d.unlink(ctx, hg);
                backoff.spin();
                continue;
            }
            let LlxOutcome::Linked(hp) = self.d.llx(ctx, par) else {
                self.d.unlink(ctx, hg);
                backoff.spin();
                continue;
            };
            let pside = route(key, self.d.meta(par, KEY));
            if hp.field(pside) != enc(leaf) {
                self.d.unlink(ctx, hp);
                self.d.unlink(ctx, hg);
                backoff.spin();
                continue;
            }
            let sib = dec(hp.field(1 - pside));
            let LlxOutcome::Linked(hl) = self.d.llx(ctx, leaf) else {
                self.d.unlink(ctx, hp);
                self.d.unlink(ctx, hg);
                backoff.spin();
                continue;
            };
            let LlxOutcome::Linked(hs) = self.d.llx(ctx, sib) else {
                self.d.unlink(ctx, hl);
                self.d.unlink(ctx, hp);
                self.d.unlink(ctx, hg);
                backoff.spin();
                continue;
            };
            // The copy takes the sibling's meta and its LLX-snapshotted
            // edges; sibling ∈ V, so a commit certifies the edges fresh.
            self.d.reinit(
                ctx,
                sp,
                &[self.d.meta(sib, KEY), self.d.meta(sib, VAL)],
                &[hs.field(LEFT), hs.field(RIGHT)],
            );
            let old = self.d.meta(leaf, VAL);
            // V = [gp, par, leaf, sib] ancestors-first; finalize all but gp.
            if self
                .d
                .scx(ctx, p, vec![hg, hp, hl, hs], 0b1110, gp, gside, enc(sp))
            {
                return Ok(Some(old));
            }
            backoff.spin();
        }
    }

    /// Every `key → value` pair with `lo <= key <= hi`, sorted — a
    /// linearizable scan: each visited record is snapshot via unlinked
    /// LLX, and one VLX pass over all of them certifies the traversal as
    /// a consistent cut at the validation instant. Retries while
    /// concurrent updates keep invalidating it (obstruction-free).
    pub fn range_snapshot(&self, ctx: &mut V::Ctx<'_>, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        let mut backoff = Backoff::new();
        'retry: loop {
            let mut snaps = Vec::new();
            let mut out = Vec::new();
            let mut stack = vec![self.root];
            while let Some(rec) = stack.pop() {
                let Some(s) = self.d.llx_snapshot(ctx, rec) else {
                    // Finalized mid-scan: the cut is already stale.
                    backoff.spin();
                    continue 'retry;
                };
                let k = self.d.meta(rec, KEY);
                if s.field(LEFT) == 0 {
                    if k >= lo && k <= hi && k < INF1 {
                        out.push((k, self.d.meta(rec, VAL)));
                    }
                } else {
                    // Left subtree holds keys < k, right holds >= k.
                    if lo < k {
                        stack.push(dec(s.field(LEFT)));
                    }
                    if hi >= k {
                        stack.push(dec(s.field(RIGHT)));
                    }
                }
                snaps.push(s);
            }
            if self.d.vlx_snapshots(ctx, &snaps) {
                out.sort_unstable();
                return out;
            }
            backoff.spin();
        }
    }

    /// The whole map, sorted.
    pub fn snapshot(&self, ctx: &mut V::Ctx<'_>) -> Vec<(u64, u64)> {
        self.range_snapshot(ctx, 0, u64::MAX)
    }

    /// Number of keys currently present (one full validated scan).
    pub fn len(&self, ctx: &mut V::Ctx<'_>) -> usize {
        self.snapshot(ctx).len()
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self, ctx: &mut V::Ctx<'_>) -> bool {
        self.len(ctx) == 0
    }

    /// Reuses (or allocates) a retry spare and stamps it with this
    /// attempt's content. Spares are never published until the SCX that
    /// installs them commits, so rewriting across retries is legal.
    fn take_spare(
        &self,
        ctx: &mut V::Ctx<'_>,
        spare: &mut Option<usize>,
        meta: &[u64],
        fields: &[u64],
    ) -> Result<usize, StructureError> {
        match *spare {
            Some(rec) => {
                self.d.reinit(ctx, rec, meta, fields);
                Ok(rec)
            }
            None => {
                let rec = self
                    .d
                    .alloc(ctx, meta, fields)
                    .map_err(|_| StructureError::Full)?;
                *spare = Some(rec);
                Ok(rec)
            }
        }
    }
}

/// The lock baseline the experiments measure [`OrdMap`] against: a
/// [`std::collections::BTreeMap`] under one [`Mutex`], mirroring the
/// map's interface (E15's control arm, like `lock` in the provider
/// registry).
#[derive(Debug, Default)]
pub struct LockMap {
    inner: Mutex<std::collections::BTreeMap<u64, u64>>,
}

impl LockMap {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts `key → value`, returning the previous value if present.
    pub fn insert(&self, key: u64, value: u64) -> Option<u64> {
        self.inner.lock().unwrap().insert(key, value)
    }

    /// Removes `key`, returning its value if present.
    pub fn delete(&self, key: u64) -> Option<u64> {
        self.inner.lock().unwrap().remove(&key)
    }

    /// Looks up `key`.
    pub fn get(&self, key: u64) -> Option<u64> {
        self.inner.lock().unwrap().get(&key).copied()
    }

    /// Every pair with `lo <= key <= hi`, sorted.
    pub fn range_snapshot(&self, lo: u64, hi: u64) -> Vec<(u64, u64)> {
        self.inner
            .lock()
            .unwrap()
            .range(lo..=hi)
            .map(|(&k, &v)| (k, v))
            .collect()
    }

    /// Number of keys present.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the map holds no keys.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().unwrap().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::{CasLlSc, Native, TagLayout};

    fn native_map(n: usize, ops: usize) -> OrdMap<CasLlSc<Native>> {
        let mut ctx = Native;
        OrdMap::new(
            n,
            ordmap_capacity(ops),
            || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
            &mut ctx,
        )
    }

    #[test]
    fn insert_get_delete_roundtrip() {
        let m = native_map(1, 16);
        let mut ctx = Native;
        assert_eq!(m.get(&mut ctx, 5), None);
        assert_eq!(m.insert(&mut ctx, 0, 5, 50).unwrap(), None);
        assert_eq!(m.insert(&mut ctx, 0, 7, 70).unwrap(), None);
        assert_eq!(m.insert(&mut ctx, 0, 3, 30).unwrap(), None);
        assert_eq!(m.get(&mut ctx, 5), Some(50));
        assert_eq!(m.get(&mut ctx, 4), None);
        assert_eq!(m.insert(&mut ctx, 0, 5, 55).unwrap(), Some(50));
        assert_eq!(m.get(&mut ctx, 5), Some(55));
        assert_eq!(m.delete(&mut ctx, 0, 5).unwrap(), Some(55));
        assert_eq!(m.get(&mut ctx, 5), None);
        assert_eq!(m.delete(&mut ctx, 0, 5).unwrap(), None);
        assert_eq!(m.snapshot(&mut ctx), vec![(3, 30), (7, 70)]);
    }

    #[test]
    fn range_snapshot_bounds() {
        let m = native_map(1, 16);
        let mut ctx = Native;
        for k in [2u64, 4, 6, 8, 10] {
            m.insert(&mut ctx, 0, k, k * 10).unwrap();
        }
        assert_eq!(
            m.range_snapshot(&mut ctx, 4, 8),
            vec![(4, 40), (6, 60), (8, 80)]
        );
        assert_eq!(m.range_snapshot(&mut ctx, 11, 99), vec![]);
        assert_eq!(m.len(&mut ctx), 5);
        assert!(!m.is_empty(&mut ctx));
    }

    #[test]
    fn delete_to_empty_and_reinsert() {
        let m = native_map(1, 32);
        let mut ctx = Native;
        for k in 0..6u64 {
            m.insert(&mut ctx, 0, k, k).unwrap();
        }
        for k in 0..6u64 {
            assert_eq!(m.delete(&mut ctx, 0, k).unwrap(), Some(k));
        }
        assert!(m.is_empty(&mut ctx));
        m.insert(&mut ctx, 0, 9, 99).unwrap();
        assert_eq!(m.snapshot(&mut ctx), vec![(9, 99)]);
    }

    #[test]
    fn arena_budget_surfaces_as_full() {
        let m = native_map(1, 1);
        let mut ctx = Native;
        m.insert(&mut ctx, 0, 1, 1).unwrap();
        // Budget for one op: the next new-key insert must fail typed.
        let mut k = 2;
        let err = loop {
            match m.insert(&mut ctx, 0, k, 0) {
                Ok(_) => k += 1,
                Err(e) => break e,
            }
        };
        assert_eq!(err, StructureError::Full);
    }

    #[test]
    fn concurrent_mixed_ops_conserve() {
        const THREADS: usize = 4;
        const OPS: usize = 600;
        let m = native_map(THREADS, THREADS * OPS + 8);
        let inserted: Vec<u64> = std::thread::scope(|s| {
            (0..THREADS)
                .map(|p| {
                    let m = &m;
                    s.spawn(move || {
                        let mut ctx = Native;
                        let mut net = 0i64;
                        for i in 0..OPS {
                            // Disjoint-ish striped keys plus a contended
                            // hot range [0, 8).
                            let k = if i % 3 == 0 {
                                (i % 8) as u64
                            } else {
                                (p * OPS + i) as u64 + 100
                            };
                            if i % 4 == 3 {
                                if m.delete(&mut ctx, p, k).unwrap().is_some() {
                                    net -= 1;
                                }
                            } else if m.insert(&mut ctx, p, k, k).unwrap().is_none() {
                                net += 1;
                            }
                        }
                        net
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap() as u64)
                .collect()
        });
        let net: i64 = inserted.iter().map(|&x| x as i64).sum();
        let mut ctx = Native;
        assert_eq!(
            m.len(&mut ctx) as i64,
            net,
            "inserts - deletes must equal the final size"
        );
        let snap = m.snapshot(&mut ctx);
        assert!(snap.windows(2).all(|w| w[0].0 < w[1].0), "sorted, unique");
    }

    #[test]
    fn works_on_bounded_tags() {
        use nbsp_core::bounded::BoundedDomain;
        let dom = BoundedDomain::<Native>::new(2, 5).unwrap();
        let mut p0 = dom.proc(0);
        let m = OrdMap::new(
            2,
            ordmap_capacity(8),
            || dom.var(0).unwrap(),
            &mut p0,
        );
        m.insert(&mut p0, 0, 1, 10).unwrap();
        m.insert(&mut p0, 0, 2, 20).unwrap();
        assert_eq!(m.delete(&mut p0, 0, 1).unwrap(), Some(10));
        assert_eq!(m.snapshot(&mut p0), vec![(2, 20)]);
    }

    #[test]
    fn lock_map_mirrors_the_interface() {
        let m = LockMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(11));
        assert_eq!(m.range_snapshot(0, 5), vec![(1, 11)]);
        assert_eq!(m.delete(1), Some(11));
        assert_eq!(m.len(), 0);
    }
}
