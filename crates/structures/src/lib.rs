//! # nbsp-structures — non-blocking algorithms enabled by the paper
//!
//! Moir's PODC '97 paper motivates its constructions by the gap they close:
//! "several non-blocking algorithms developed recently (e.g. [2, 3, 4, 7,
//! 10, 14]) are not directly applicable on current multiprocessors". This
//! crate contains representative members of that family, written against
//! the [`LlScVar`](nbsp_core::LlScVar) interface so each runs unchanged on
//! *any* of the paper's constructions — Figure 4 on a CAS machine, Figure 5
//! on an RLL/RSC machine, Figure 7 with bounded tags — and on the lock
//! baseline for comparison (experiment E7):
//!
//! * [`Counter`] — LL/SC fetch-and-add.
//! * [`Stack`] — Treiber-style stack; the LL/SC semantics make the classic
//!   CAS ABA bug structurally impossible.
//! * [`Queue`] — Michael–Scott-style FIFO queue, exercising *concurrent*
//!   LL–SC sequences and `CL` (impossible on raw hardware LL/SC).
//! * [`Set`] — a Harris-style sorted set with two-phase (logical, then
//!   physical) deletion and traversal-time helping.
//! * [`OrdMap`] — an external-BST ordered map on multi-word LLX/SCX
//!   (`nbsp-llx`), with a VLX-validated `range_snapshot` read path and
//!   the [`LockMap`] baseline it is measured against (experiment E15).
//! * [`SnapshotRegister`] — a multi-word atomic register over Figure 6.
//! * [`Universal`] — Herlihy's small-object universal construction \[7\].
//! * [`stm`] — static software transactional memory in the spirit of
//!   Shavit–Touitou \[14\], which Section 5 of the paper explicitly says its
//!   results make implementable on existing systems.
//! * [`stm_orec`] — the ownership-record STM skeleton *without* helping: a
//!   blocking but disjoint-access-parallel baseline that isolates the
//!   other axis of the STM design space (measured against [`stm`] in
//!   experiment E7).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

mod arena;
mod counter;
mod ordmap;
mod queue;
mod register;
mod set;
mod stack;
pub mod stm;
pub mod stm_orec;
mod universal;

pub use arena::StructureError;
pub use counter::Counter;
pub use ordmap::{ordmap_capacity, LockMap, OrdMap};
pub use queue::Queue;
pub use register::SnapshotRegister;
pub use set::Set;
pub use stack::Stack;
pub use universal::Universal;
