//! A Harris-style lock-free sorted set on LL/SC.
//!
//! Harris's linked list (DISC 2001) descends directly from the lock-free
//! lists of Valois and the LL/SC-assuming algorithms the paper re-enables:
//! deletion happens in two steps — *logically*, by marking the victim's
//! next-link, then *physically*, by unlinking it, with every traverser
//! helping to complete unfinished unlinks. On CAS the algorithm needs
//! tagged pointers to survive reuse; on LL/SC the mark bit rides in the
//! link word and SC does the rest.
//!
//! **Reclamation scope note:** nodes are allocated from a bump arena and
//! **never reused** — safe memory reclamation for lock-free lists (hazard
//! pointers, epochs) is its own research lineage and out of scope for this
//! reproduction. The capacity therefore bounds the *total number of
//! inserts over the set's lifetime*, not its live size; this is documented
//! behaviour, not a leak.

use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::arena::StructureError;
use nbsp_core::{Backoff, LlScVar};

/// Link encoding: bit 0 is the deletion mark of the node *containing* the
/// link; the remaining bits are (index + 1) of the successor, 0 = end.
fn link(idx_plus_one: u64, marked: bool) -> u64 {
    (idx_plus_one << 1) | u64::from(marked)
}

fn link_target(l: u64) -> u64 {
    l >> 1
}

fn link_marked(l: u64) -> bool {
    l & 1 == 1
}

/// A bounded lock-free sorted set of `u64` keys over any [`LlScVar`]
/// implementation.
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_structures::Set;
///
/// let set = Set::new(
///     8,
///     || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
///     &mut Native,
/// );
/// let mut ctx = Native;
/// assert!(set.add(&mut ctx, 5)?);
/// assert!(set.add(&mut ctx, 3)?);
/// assert!(!set.add(&mut ctx, 5)?); // already present
/// assert!(set.contains(&mut ctx, 3));
/// assert!(set.remove(&mut ctx, 3));
/// assert!(!set.contains(&mut ctx, 3));
/// # Ok::<(), nbsp_structures::StructureError>(())
/// ```
pub struct Set<V: LlScVar> {
    head: V,
    next: Vec<V>,
    keys: Vec<AtomicU64>,
    bump: AtomicUsize,
}

impl<V: LlScVar> fmt::Debug for Set<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Set")
            .field("capacity", &self.keys.len())
            .finish_non_exhaustive()
    }
}

impl<V: LlScVar> Set<V> {
    /// Creates an empty set that can absorb at most `capacity` inserts
    /// over its lifetime (see the module-level reclamation note).
    ///
    /// # Panics
    ///
    /// Panics if the link encoding (`2 · (capacity + 1)`) exceeds the
    /// variables' value range.
    #[must_use]
    pub fn new(capacity: usize, mut make_var: impl FnMut() -> V, ctx: &mut V::Ctx<'_>) -> Self {
        let head = make_var();
        assert!(
            link(capacity as u64 + 1, true) <= head.max_val(),
            "capacity {capacity} too large for the variable's value range"
        );
        let set = Set {
            head,
            next: (0..capacity).map(|_| make_var()).collect(),
            keys: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            bump: AtomicUsize::new(0),
        };
        set.force_store(ctx, &set.head, link(0, false));
        set
    }

    fn force_store(&self, ctx: &mut V::Ctx<'_>, var: &V, value: u64) {
        let mut keep = V::Keep::default();
        loop {
            let _ = var.ll(ctx, &mut keep);
            if var.sc(ctx, &mut keep, value) {
                return;
            }
        }
    }

    /// Total inserts still available.
    #[must_use]
    pub fn remaining_capacity(&self) -> usize {
        self.keys.len().saturating_sub(self.bump.load(Ordering::SeqCst))
    }

    fn link_var(&self, at: u64) -> &V {
        // at = 0 addresses the head; otherwise node (at - 1)'s next link.
        if at == 0 {
            &self.head
        } else {
            &self.next[(at - 1) as usize]
        }
    }

    /// Finds the window `(prev, curr)` for `key`: `prev` addresses the
    /// link to follow (0 = head), `curr` is the first unmarked node with
    /// `node.key >= key` (or 0 at end of list). Physically unlinks marked
    /// nodes it passes (the helping step).
    fn search(&self, ctx: &mut V::Ctx<'_>, key: u64) -> (u64, u64) {
        let mut backoff = Backoff::new();
        'restart: loop {
            let mut prev = 0u64; // address of the head link
            let mut keep = V::Keep::default();
            let mut prev_link = self.link_var(prev).ll(ctx, &mut keep);
            if link_marked(prev_link) && prev != 0 {
                backoff.spin();
                continue 'restart; // prev itself got deleted; restart
            }
            loop {
                let curr = link_target(prev_link);
                if curr == 0 {
                    self.link_var(prev).cl(ctx, &mut keep);
                    return (prev, 0);
                }
                let curr_idx = (curr - 1) as usize;
                let curr_link = self.next[curr_idx].read(ctx);
                if link_marked(curr_link) {
                    // curr is logically deleted: help unlink it from prev.
                    let unlinked = self.link_var(prev).sc(
                        ctx,
                        &mut keep,
                        link(link_target(curr_link), false),
                    );
                    if !unlinked {
                        backoff.spin();
                        continue 'restart;
                    }
                    // Re-arm the sequence on prev and continue from there.
                    prev_link = self.link_var(prev).ll(ctx, &mut keep);
                    continue;
                }
                let curr_key = self.keys[curr_idx].load(Ordering::SeqCst);
                if curr_key >= key {
                    self.link_var(prev).cl(ctx, &mut keep);
                    return (prev, curr);
                }
                // Advance: prev becomes curr.
                self.link_var(prev).cl(ctx, &mut keep);
                prev = curr;
                prev_link = self.link_var(prev).ll(ctx, &mut keep);
                if link_marked(prev_link) {
                    self.link_var(prev).cl(ctx, &mut keep);
                    backoff.spin();
                    continue 'restart;
                }
            }
        }
    }

    /// Inserts `key`. Returns `Ok(false)` if it was already present.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::Full`] when the lifetime insert budget is
    /// exhausted.
    pub fn add(&self, ctx: &mut V::Ctx<'_>, key: u64) -> Result<bool, StructureError> {
        let mut backoff = Backoff::new();
        loop {
            let (prev, curr) = self.search(ctx, key);
            if curr != 0 && self.keys[(curr - 1) as usize].load(Ordering::SeqCst) == key {
                return Ok(false);
            }
            // Allocate a fresh node (never reused; see module docs).
            let idx = self.bump.fetch_add(1, Ordering::SeqCst);
            if idx >= self.keys.len() {
                self.bump.store(self.keys.len(), Ordering::SeqCst);
                return Err(StructureError::Full);
            }
            self.keys[idx].store(key, Ordering::SeqCst);
            self.force_store(ctx, &self.next[idx], link(curr, false));
            // Splice it in after `prev` — SC fails if the window moved.
            let mut keep = V::Keep::default();
            let prev_link = self.link_var(prev).ll(ctx, &mut keep);
            if !link_marked(prev_link)
                && link_target(prev_link) == curr
                && self
                    .link_var(prev)
                    .sc(ctx, &mut keep, link(idx as u64 + 1, false))
            {
                return Ok(true);
            }
            self.link_var(prev).cl(ctx, &mut keep);
            // Window moved: the freshly allocated node is abandoned (the
            // price of no-reclamation) and we retry after backing off.
            backoff.spin();
        }
    }

    /// Removes `key`. Returns `false` if it was not present.
    pub fn remove(&self, ctx: &mut V::Ctx<'_>, key: u64) -> bool {
        let mut backoff = Backoff::new();
        loop {
            let (prev, curr) = self.search(ctx, key);
            if curr == 0 || self.keys[(curr - 1) as usize].load(Ordering::SeqCst) != key {
                return false;
            }
            let curr_idx = (curr - 1) as usize;
            // Logical delete: mark curr's next link.
            let mut keep = V::Keep::default();
            let curr_link = self.next[curr_idx].ll(ctx, &mut keep);
            if link_marked(curr_link) {
                self.next[curr_idx].cl(ctx, &mut keep);
                continue; // someone else is deleting it; retry → not found
            }
            if !self
                .next[curr_idx]
                .sc(ctx, &mut keep, link(link_target(curr_link), true))
            {
                backoff.spin();
                continue;
            }
            // Physical unlink, best effort (search() helps if we fail).
            let mut pkeep = V::Keep::default();
            let prev_link = self.link_var(prev).ll(ctx, &mut pkeep);
            if !link_marked(prev_link)
                && link_target(prev_link) == curr
                && self
                    .link_var(prev)
                    .sc(ctx, &mut pkeep, link(link_target(curr_link), false))
            {
                // unlinked
            } else {
                self.link_var(prev).cl(ctx, &mut pkeep);
            }
            return true;
        }
    }

    /// Membership test. Linearizes inside the traversal.
    pub fn contains(&self, ctx: &mut V::Ctx<'_>, key: u64) -> bool {
        let (_prev, curr) = self.search(ctx, key);
        curr != 0 && self.keys[(curr - 1) as usize].load(Ordering::SeqCst) == key
    }

    /// The smallest live key, or `None` if the set was empty — the
    /// peek-min of a priority queue (the set's sorted order makes it the
    /// head of the list). Linearizes within the traversal.
    pub fn first(&self, ctx: &mut V::Ctx<'_>) -> Option<u64> {
        let mut l = self.head.read(ctx);
        loop {
            let target = link_target(l);
            if target == 0 {
                return None;
            }
            let idx = (target - 1) as usize;
            let nl = self.next[idx].read(ctx);
            if !link_marked(nl) {
                return Some(self.keys[idx].load(Ordering::SeqCst));
            }
            l = nl;
        }
    }

    /// Removes and returns the smallest key — the extract-min of a
    /// priority queue. Lock-free: a retry means another thread extracted
    /// the key first.
    pub fn extract_min(&self, ctx: &mut V::Ctx<'_>) -> Option<u64> {
        let mut backoff = Backoff::new();
        loop {
            let k = self.first(ctx)?;
            if self.remove(ctx, k) {
                return Some(k);
            }
            // Another thread extracted this minimum first.
            backoff.spin();
        }
    }

    /// The live keys in ascending order (quiescent use only).
    pub fn to_vec_quiescent(&self, ctx: &mut V::Ctx<'_>) -> Vec<u64> {
        let mut out = Vec::new();
        let mut l = self.head.read(ctx);
        while link_target(l) != 0 {
            let idx = (link_target(l) - 1) as usize;
            let nl = self.next[idx].read(ctx);
            if !link_marked(nl) {
                out.push(self.keys[idx].load(Ordering::SeqCst));
            }
            l = nl;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::bounded::BoundedDomain;
    use nbsp_core::lock_baseline::LockLlSc;
    use nbsp_core::{CasLlSc, Native, TagLayout};
    use nbsp_memsim::ProcId;
    use std::collections::BTreeSet;

    fn native_set(capacity: usize) -> Set<CasLlSc<Native>> {
        Set::new(
            capacity,
            || CasLlSc::new_native(TagLayout::half(), 0).unwrap(),
            &mut Native,
        )
    }

    #[test]
    fn add_contains_remove_cycle() {
        let s = native_set(8);
        let mut ctx = Native;
        assert!(!s.contains(&mut ctx, 5));
        assert!(s.add(&mut ctx, 5).unwrap());
        assert!(s.contains(&mut ctx, 5));
        assert!(!s.add(&mut ctx, 5).unwrap());
        assert!(s.remove(&mut ctx, 5));
        assert!(!s.contains(&mut ctx, 5));
        assert!(!s.remove(&mut ctx, 5));
    }

    #[test]
    fn keys_stay_sorted() {
        let s = native_set(16);
        let mut ctx = Native;
        for k in [9, 1, 5, 3, 7] {
            assert!(s.add(&mut ctx, k).unwrap());
        }
        assert_eq!(s.to_vec_quiescent(&mut ctx), vec![1, 3, 5, 7, 9]);
        assert!(s.remove(&mut ctx, 5));
        assert_eq!(s.to_vec_quiescent(&mut ctx), vec![1, 3, 7, 9]);
    }

    #[test]
    fn duplicates_across_delete_generations() {
        let s = native_set(8);
        let mut ctx = Native;
        for _ in 0..3 {
            assert!(s.add(&mut ctx, 4).unwrap());
            assert!(s.remove(&mut ctx, 4));
        }
        assert!(!s.contains(&mut ctx, 4));
        assert_eq!(s.to_vec_quiescent(&mut ctx), Vec::<u64>::new());
    }

    #[test]
    fn lifetime_capacity_is_enforced() {
        let s = native_set(2);
        let mut ctx = Native;
        assert!(s.add(&mut ctx, 1).unwrap());
        assert!(s.remove(&mut ctx, 1)); // node NOT recycled (by design)
        assert!(s.add(&mut ctx, 2).unwrap());
        assert_eq!(s.add(&mut ctx, 3), Err(StructureError::Full));
        assert_eq!(s.remaining_capacity(), 0);
    }

    #[test]
    fn boundary_keys() {
        let s = native_set(4);
        let mut ctx = Native;
        assert!(s.add(&mut ctx, 0).unwrap());
        assert!(s.add(&mut ctx, u32::MAX as u64).unwrap());
        assert!(s.contains(&mut ctx, 0));
        assert!(s.contains(&mut ctx, u32::MAX as u64));
        assert_eq!(s.to_vec_quiescent(&mut ctx), vec![0, u32::MAX as u64]);
    }

    #[test]
    fn concurrent_disjoint_inserts_all_land() {
        let s = native_set(4 * 200);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let s = &s;
                scope.spawn(move || {
                    let mut ctx = Native;
                    for i in 0..200u64 {
                        assert!(s.add(&mut ctx, t * 1000 + i).unwrap());
                    }
                });
            }
        });
        let mut ctx = Native;
        let v = s.to_vec_quiescent(&mut ctx);
        assert_eq!(v.len(), 800);
        assert!(v.windows(2).all(|w| w[0] < w[1]), "sorted & deduped");
    }

    #[test]
    fn concurrent_add_remove_is_coherent() {
        // Threads fight over a small key range; afterwards the set's
        // contents must equal the replayed effect of the successful ops.
        let s = native_set(8_000);
        let ops: Vec<Vec<(bool, u64, bool)>> = std::thread::scope(|scope| {
            (0..4u64)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut ctx = Native;
                        let mut log = Vec::new();
                        let mut x = t.wrapping_mul(0x9e3779b97f4a7c15) | 1;
                        for _ in 0..1_000 {
                            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                            let key = (x >> 33) % 8;
                            if x & 1 == 0 {
                                let ok = s.add(&mut ctx, key).unwrap_or(false);
                                log.push((true, key, ok));
                            } else {
                                let ok = s.remove(&mut ctx, key);
                                log.push((false, key, ok));
                            }
                        }
                        log
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        // Sanity: per key, successful adds and removes alternate in any
        // valid linearization, so their counts differ by at most… globally
        // we can at least check: final membership == (adds - removes) ∈ {0,1}
        let mut ctx = Native;
        let live: BTreeSet<u64> = s.to_vec_quiescent(&mut ctx).into_iter().collect();
        for key in 0..8u64 {
            let adds: i64 = ops
                .iter()
                .flatten()
                .filter(|(is_add, k, ok)| *is_add && *k == key && *ok)
                .count() as i64;
            let removes: i64 = ops
                .iter()
                .flatten()
                .filter(|(is_add, k, ok)| !*is_add && *k == key && *ok)
                .count() as i64;
            let expected_live = adds - removes;
            assert!(
                (0..=1).contains(&expected_live),
                "key {key}: {adds} adds vs {removes} removes is impossible"
            );
            assert_eq!(
                live.contains(&key),
                expected_live == 1,
                "key {key}: membership does not match successful op counts"
            );
        }
    }

    #[test]
    fn first_and_extract_min() {
        let s = native_set(16);
        let mut ctx = Native;
        assert_eq!(s.first(&mut ctx), None);
        for k in [5, 2, 9, 7] {
            assert!(s.add(&mut ctx, k).unwrap());
        }
        assert_eq!(s.first(&mut ctx), Some(2));
        assert_eq!(s.extract_min(&mut ctx), Some(2));
        assert_eq!(s.extract_min(&mut ctx), Some(5));
        assert_eq!(s.first(&mut ctx), Some(7));
        assert_eq!(s.extract_min(&mut ctx), Some(7));
        assert_eq!(s.extract_min(&mut ctx), Some(9));
        assert_eq!(s.extract_min(&mut ctx), None);
    }

    #[test]
    fn concurrent_extract_min_takes_each_key_once() {
        // Priority-queue usage: producers insert unique keys; consumers
        // extract-min. Every key must be extracted exactly once and in
        // globally respectable order per consumer.
        let s = native_set(4_096);
        let mut ctx = Native;
        for k in 0..1_000u64 {
            s.add(&mut ctx, k).unwrap();
        }
        let taken: Vec<Vec<u64>> = std::thread::scope(|scope| {
            (0..4)
                .map(|_| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut ctx = Native;
                        let mut mine = Vec::new();
                        while let Some(k) = s.extract_min(&mut ctx) {
                            mine.push(k);
                        }
                        mine
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        let mut all: Vec<u64> = taken.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..1_000).collect::<Vec<u64>>(), "each key exactly once");
        // Per-consumer sequences are strictly increasing (extract-min
        // never goes backwards for a single thread).
        for mine in &taken {
            assert!(mine.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn works_on_bounded_tags() {
        let d = BoundedDomain::<Native>::new(2, 2).unwrap();
        let mut me0 = d.proc(0);
        let s = Set::new(64, || d.var(0).unwrap(), &mut me0);
        let mut me1 = d.proc(1);
        std::thread::scope(|scope| {
            let s = &s;
            scope.spawn(move || {
                for i in 0..20u64 {
                    let _ = s.add(&mut me0, i * 2);
                }
            });
            scope.spawn(move || {
                for i in 0..20u64 {
                    let _ = s.add(&mut me1, i * 2 + 1);
                }
            });
        });
    }

    #[test]
    fn works_on_lock_baseline() {
        let mut c0 = ProcId::new(0);
        let s = Set::new(8, || LockLlSc::new(2, 0), &mut c0);
        assert!(s.add(&mut c0, 2).unwrap());
        assert!(s.contains(&mut c0, 2));
        assert!(s.remove(&mut c0, 2));
    }
}
