//! A Treiber-style lock-free stack on LL/SC.
//!
//! Treiber's stack is the textbook victim of the CAS **ABA problem**: a
//! `pop` that reads head `A`, is delayed while others pop `A`, pop `B` and
//! push `A` back, and then CASes `A → A.next` succeeds — corrupting the
//! stack, because `A.next` is stale. With LL/VL/SC the bug is structurally
//! impossible: the SC fails after *any* intervening successful SC on the
//! head, value recurrence notwithstanding. This is the concrete payoff of
//! the primitives the paper makes deployable (and why algorithms like
//! [4, 7] assumed them in the first place).
//!
//! Nodes live in a fixed arena and are addressed by index; freed nodes are
//! recycled immediately — no hazard pointers, no epochs — again *because*
//! SC, not CAS, guards the head.

use std::fmt;

use crate::arena::{Arena, StructureError};
use nbsp_core::{Backoff, LlScVar};

/// A bounded-capacity lock-free LIFO stack of `u64` values over any
/// [`LlScVar`] implementation.
///
/// Two variables of the same implementation are needed: one for the stack
/// head and one for the internal free list.
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_structures::Stack;
///
/// let make = || CasLlSc::new_native(TagLayout::half(), 0).unwrap();
/// let stack = Stack::new(16, make(), make(), &mut Native);
/// let mut ctx = Native;
/// stack.push(&mut ctx, 1)?;
/// stack.push(&mut ctx, 2)?;
/// assert_eq!(stack.pop(&mut ctx), Some(2));
/// assert_eq!(stack.pop(&mut ctx), Some(1));
/// assert_eq!(stack.pop(&mut ctx), None);
/// # Ok::<(), nbsp_structures::StructureError>(())
/// ```
pub struct Stack<V: LlScVar> {
    head: V,
    arena: Arena<V>,
}

impl<V: LlScVar> fmt::Debug for Stack<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stack")
            .field("capacity", &self.arena.capacity())
            .finish_non_exhaustive()
    }
}

impl<V: LlScVar> Stack<V> {
    /// Creates an empty stack of at most `capacity` elements. `head` and
    /// `free_head` are fresh LL/SC variables (their initial values are
    /// overwritten); `ctx` is the caller's per-thread context, used for the
    /// initialising stores.
    ///
    /// # Panics
    ///
    /// Panics if `capacity + 1` exceeds the variables' value range (links
    /// are stored as index-plus-one).
    #[must_use]
    pub fn new(capacity: usize, head: V, free_head: V, ctx: &mut V::Ctx<'_>) -> Self {
        assert!(
            (capacity as u64) < head.max_val(),
            "capacity {capacity} too large for the variable's value range"
        );
        let arena = Arena::new(capacity, free_head, ctx);
        // Reset the head to empty (0) whatever its initial value was.
        let mut keep = V::Keep::default();
        loop {
            let _ = head.ll(ctx, &mut keep);
            if head.sc(ctx, &mut keep, 0) {
                break;
            }
        }
        Stack { head, arena }
    }

    /// Maximum number of elements.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.arena.capacity()
    }

    /// Pushes `value`.
    ///
    /// # Errors
    ///
    /// Returns [`StructureError::Full`] when the arena is exhausted.
    pub fn push(&self, ctx: &mut V::Ctx<'_>, value: u64) -> Result<(), StructureError> {
        let idx = self.arena.alloc(ctx).ok_or(StructureError::Full)?;
        self.arena.set_data(idx, value);
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let head = self.head.ll(ctx, &mut keep);
            self.arena.set_next(idx, head);
            if self.head.sc(ctx, &mut keep, (idx + 1) as u64) {
                nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
                return Ok(());
            }
            backoff.spin();
        }
    }

    /// Pops the most recently pushed value, or `None` if the stack was
    /// empty at the linearization point (the LL's read).
    pub fn pop(&self, ctx: &mut V::Ctx<'_>) -> Option<u64> {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let head = self.head.ll(ctx, &mut keep);
            if head == 0 {
                self.head.cl(ctx, &mut keep);
                return None;
            }
            let idx = (head - 1) as usize;
            // Reading the node between LL and SC is safe: if the node is
            // popped and recycled concurrently, our SC fails (no ABA under
            // LL/SC) and we retry with fresh reads.
            let next = self.arena.next(idx);
            let value = self.arena.data(idx);
            if self.head.sc(ctx, &mut keep, next) {
                nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
                self.arena.dealloc(ctx, idx);
                return Some(value);
            }
            backoff.spin();
        }
    }

    /// True iff the stack was empty at the read.
    pub fn is_empty(&self, ctx: &mut V::Ctx<'_>) -> bool {
        self.head.read(ctx) == 0
    }

    /// Number of elements (O(n) walk; **not** atomic against concurrent
    /// mutation — intended for quiescent checks in tests).
    pub fn len_quiescent(&self, ctx: &mut V::Ctx<'_>) -> usize {
        let mut n = 0;
        let mut cur = self.head.read(ctx);
        while cur != 0 {
            n += 1;
            cur = self.arena.next((cur - 1) as usize);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::bounded::BoundedDomain;
    use nbsp_core::lock_baseline::LockLlSc;
    use nbsp_core::{CasLlSc, Native, RllLlSc, TagLayout};
    use nbsp_memsim::{InstructionSet, Machine, ProcId};
    use std::collections::HashSet;

    fn native_stack(capacity: usize) -> Stack<CasLlSc<Native>> {
        let make = || CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        Stack::new(capacity, make(), make(), &mut Native)
    }

    #[test]
    fn lifo_order() {
        let s = native_stack(4);
        let mut ctx = Native;
        for v in [10, 20, 30] {
            s.push(&mut ctx, v).unwrap();
        }
        assert_eq!(s.len_quiescent(&mut ctx), 3);
        assert_eq!(s.pop(&mut ctx), Some(30));
        assert_eq!(s.pop(&mut ctx), Some(20));
        assert_eq!(s.pop(&mut ctx), Some(10));
        assert_eq!(s.pop(&mut ctx), None);
        assert!(s.is_empty(&mut ctx));
    }

    #[test]
    fn full_stack_reports_error() {
        let s = native_stack(2);
        let mut ctx = Native;
        s.push(&mut ctx, 1).unwrap();
        s.push(&mut ctx, 2).unwrap();
        assert_eq!(s.push(&mut ctx, 3), Err(StructureError::Full));
        assert_eq!(s.pop(&mut ctx), Some(2));
        s.push(&mut ctx, 3).unwrap(); // capacity is recycled
    }

    #[test]
    fn zero_capacity() {
        let s = native_stack(0);
        let mut ctx = Native;
        assert_eq!(s.push(&mut ctx, 1), Err(StructureError::Full));
        assert_eq!(s.pop(&mut ctx), None);
    }

    #[test]
    fn concurrent_push_pop_conserves_values_native() {
        // Every pushed value must be popped (or remain) exactly once — a
        // duplicate would be the ABA corruption LL/SC is supposed to
        // prevent.
        let threads = 4u64;
        let per_thread = 5_000u64;
        let s = native_stack(64);
        let popped: Vec<Vec<u64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let s = &s;
                    scope.spawn(move || {
                        let mut ctx = Native;
                        let mut got = Vec::new();
                        for i in 0..per_thread {
                            let value = t * per_thread + i;
                            loop {
                                if s.push(&mut ctx, value).is_ok() {
                                    break;
                                }
                                // Full: drain one and retry.
                                if let Some(v) = s.pop(&mut ctx) {
                                    got.push(v);
                                }
                            }
                            if i % 3 == 0 {
                                if let Some(v) = s.pop(&mut ctx) {
                                    got.push(v);
                                }
                            }
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut seen: HashSet<u64> = HashSet::new();
        for v in popped.into_iter().flatten() {
            assert!(seen.insert(v), "value {v} popped twice");
        }
        // Drain the remainder and verify the complement.
        let mut ctx = Native;
        while let Some(v) = s.pop(&mut ctx) {
            assert!(seen.insert(v), "value {v} popped twice");
        }
        assert_eq!(seen.len() as u64, threads * per_thread);
    }

    #[test]
    fn works_on_rll_rsc_machine() {
        let m = Machine::builder(3)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let init = m.processor(2);
        let make = || RllLlSc::new(TagLayout::half(), 0).unwrap();
        let s = Stack::new(8, make(), make(), &mut (&init));
        std::thread::scope(|scope| {
            for id in 0..2 {
                let s = &s;
                let p = m.processor(id);
                scope.spawn(move || {
                    let mut ctx = &p;
                    for i in 0..1_000u64 {
                        while s.push(&mut ctx, i).is_err() {
                            let _ = s.pop(&mut ctx);
                        }
                        if i % 2 == 0 {
                            let _ = s.pop(&mut ctx);
                        }
                    }
                });
            }
        });
        let mut ctx = &init;
        let len = s.len_quiescent(&mut ctx);
        assert!(len <= 8);
    }

    #[test]
    fn works_on_bounded_tags() {
        let d = BoundedDomain::<Native>::new(2, 2).unwrap();
        let make = || d.var(0).unwrap();
        let mut init = d.proc(0);
        let s = Stack::new(8, make(), make(), &mut init);
        let mut me1 = d.proc(1);
        std::thread::scope(|scope| {
            let s = &s;
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    while s.push(&mut init, i).is_err() {
                        let _ = s.pop(&mut init);
                    }
                }
            });
            scope.spawn(move || {
                for _ in 0..2_000u64 {
                    let _ = s.pop(&mut me1);
                }
            });
        });
    }

    #[test]
    fn works_on_lock_baseline() {
        let s = Stack::new(
            4,
            LockLlSc::new(2, 0),
            LockLlSc::new(2, 0),
            &mut ProcId::new(0),
        );
        let mut ctx = ProcId::new(1);
        s.push(&mut ctx, 9).unwrap();
        assert_eq!(s.pop(&mut ctx), Some(9));
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn capacity_must_fit_value_range() {
        let make = || CasLlSc::new_native(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let _ = Stack::new(16, make(), make(), &mut Native);
    }
}
