//! Herlihy-style universal construction for small objects.
//!
//! Herlihy's methodology [7 in the paper's bibliography] turns *any*
//! sequential object into a lock-free linearizable one: read the state,
//! compute the new state locally, and install it with an ABA-safe
//! conditional store. For objects whose state fits one machine word, LL/SC
//! is exactly that conditional store — which is why [7] is on the paper's
//! list of algorithms stranded by the lack of real LL/VL/SC hardware.
//!
//! [`Universal`] wraps an [`LlScVar`] and applies arbitrary pure
//! transition functions atomically. Operations are lock-free: an attempt
//! only retries because another operation succeeded.

use std::fmt;

use nbsp_core::{Backoff, LlScVar};

/// A lock-free linearizable object whose state is one word, driven by pure
/// transition functions.
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_structures::Universal;
///
/// // A saturating stopwatch: state is (minutes << 6 | seconds).
/// let obj = Universal::new(CasLlSc::new_native(TagLayout::half(), 0)?);
/// let mut ctx = Native;
/// let tick = |s: u64| {
///     let (m, sec) = (s >> 6, s & 63);
///     if sec == 59 { (m + 1) << 6 } else { s + 1 }
/// };
/// for _ in 0..61 {
///     obj.apply(&mut ctx, tick);
/// }
/// assert_eq!(obj.state(&mut ctx) >> 6, 1);   // one minute
/// assert_eq!(obj.state(&mut ctx) & 63, 1);   // one second
/// # Ok::<(), nbsp_core::Error>(())
/// ```
pub struct Universal<V: LlScVar> {
    state: V,
}

impl<V: LlScVar> fmt::Debug for Universal<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Universal").finish_non_exhaustive()
    }
}

impl<V: LlScVar> Universal<V> {
    /// Wraps a variable as the object's state word.
    #[must_use]
    pub fn new(state: V) -> Self {
        Universal { state }
    }

    /// Atomically replaces the state `s` with `f(s)`, returning
    /// `(old, new)`. `f` must be pure: it may run several times under
    /// contention, and only the winning run's result is installed.
    ///
    /// # Panics
    ///
    /// Panics if `f` produces a value exceeding the variable's range.
    pub fn apply(&self, ctx: &mut V::Ctx<'_>, mut f: impl FnMut(u64) -> u64) -> (u64, u64) {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let old = self.state.ll(ctx, &mut keep);
            let new = f(old);
            if self.state.sc(ctx, &mut keep, new) {
                return (old, new);
            }
            backoff.spin();
        }
    }

    /// Atomically applies `f` only while `guard` holds; returns
    /// `Ok((old, new))` or `Err(state)` with the state that failed the
    /// guard (linearized at the LL).
    pub fn apply_if(
        &self,
        ctx: &mut V::Ctx<'_>,
        guard: impl Fn(u64) -> bool,
        mut f: impl FnMut(u64) -> u64,
    ) -> Result<(u64, u64), u64> {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let old = self.state.ll(ctx, &mut keep);
            if !guard(old) {
                self.state.cl(ctx, &mut keep);
                return Err(old);
            }
            let new = f(old);
            if self.state.sc(ctx, &mut keep, new) {
                return Ok((old, new));
            }
            backoff.spin();
        }
    }

    /// Reads the current state.
    pub fn state(&self, ctx: &mut V::Ctx<'_>) -> u64 {
        self.state.read(ctx)
    }

    /// Consumes the object, returning the underlying state variable.
    #[must_use]
    pub fn into_inner(self) -> V {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::bounded::BoundedDomain;
    use nbsp_core::{CasLlSc, Native, TagLayout};

    fn obj(initial: u64) -> Universal<CasLlSc<Native>> {
        Universal::new(CasLlSc::new_native(TagLayout::half(), initial).unwrap())
    }

    #[test]
    fn apply_returns_old_and_new() {
        let o = obj(10);
        let mut ctx = Native;
        assert_eq!(o.apply(&mut ctx, |s| s * 2), (10, 20));
        assert_eq!(o.state(&mut ctx), 20);
    }

    #[test]
    fn apply_if_respects_guard() {
        let o = obj(5);
        let mut ctx = Native;
        assert_eq!(o.apply_if(&mut ctx, |s| s > 3, |s| s - 1), Ok((5, 4)));
        assert_eq!(o.apply_if(&mut ctx, |s| s > 100, |s| s - 1), Err(4));
        assert_eq!(o.state(&mut ctx), 4);
    }

    #[test]
    fn bank_account_never_overdraws() {
        // Classic guard scenario: concurrent withdrawals of 3 from a
        // balance of 100 — exactly 33 must succeed.
        let o = obj(100);
        let successes: u64 = std::thread::scope(|s| {
            (0..4)
                .map(|_| {
                    let o = &o;
                    s.spawn(move || {
                        let mut ctx = Native;
                        let mut n = 0;
                        for _ in 0..50 {
                            if o.apply_if(&mut ctx, |b| b >= 3, |b| b - 3).is_ok() {
                                n += 1;
                            }
                        }
                        n
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(successes, 33);
        assert_eq!(o.state(&mut Native), 1);
    }

    #[test]
    fn state_machine_on_bounded_tags() {
        let d = BoundedDomain::<Native>::new(2, 1).unwrap();
        let o = Universal::new(d.var(0).unwrap());
        std::thread::scope(|s| {
            for t in 0..2 {
                let o = &o;
                let mut me = d.proc(t);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        o.apply(&mut me, |s| s + 2);
                    }
                });
            }
        });
        assert_eq!(o.into_inner().peek(&Native), 20_000);
    }

    #[test]
    fn transition_function_may_run_multiple_times_but_applies_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let o = obj(0);
        let calls = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let o = &o;
                let calls = &calls;
                s.spawn(move || {
                    let mut ctx = Native;
                    for _ in 0..2_000 {
                        o.apply(&mut ctx, |v| {
                            calls.fetch_add(1, Ordering::Relaxed);
                            v + 1
                        });
                    }
                });
            }
        });
        let mut ctx = Native;
        assert_eq!(o.state(&mut ctx), 8_000, "exactly one application each");
        assert!(
            calls.load(Ordering::Relaxed) >= 8_000,
            "retries re-run the function"
        );
    }
}
