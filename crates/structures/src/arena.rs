//! Shared node arena used by [`Stack`](crate::Stack) and
//! [`Queue`](crate::Queue).
//!
//! The paper's constructions implement LL/VL/SC on machine *words*, so
//! linked structures built on them store **indices** into a preallocated
//! arena rather than raw pointers — the 1997-era idiom (pointers were a
//! word; here an index is the value of an LL/SC variable). Freed nodes are
//! recycled through an internal Treiber-style free list driven by the same
//! LL/SC variable type as the client structure, which is safe *because*
//! LL/SC has no ABA problem: a node can leave and re-enter the free list
//! between a competitor's LL and SC, and the SC still fails as required.

use std::error::Error as StdError;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::{Backoff, LlScVar};

/// Errors from the capacity-bounded structures in this crate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum StructureError {
    /// The arena has no free nodes left.
    Full,
    /// A value does not fit in the structure's element width.
    ValueTooLarge {
        /// The offending value.
        value: u64,
        /// Largest storable element.
        max: u64,
    },
}

impl fmt::Display for StructureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructureError::Full => write!(f, "structure is at capacity"),
            StructureError::ValueTooLarge { value, max } => {
                write!(f, "value {value} exceeds the element maximum {max}")
            }
        }
    }
}

impl StdError for StructureError {}

/// A fixed-capacity arena of nodes, each with a data word and a next link,
/// plus an LL/SC-driven free list.
///
/// Link encoding: `0` is null, `i + 1` refers to node `i` ("index plus
/// one"), so a fresh LL/SC variable initialised to 0 is an empty list.
pub(crate) struct Arena<V: LlScVar> {
    data: Vec<AtomicU64>,
    next: Vec<AtomicU64>,
    /// Head of the free list (an LL/SC variable like any other).
    free: V,
}

impl<V: LlScVar> fmt::Debug for Arena<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Arena")
            .field("capacity", &self.data.len())
            .finish()
    }
}

impl<V: LlScVar> Arena<V> {
    /// Creates an arena of `capacity` nodes, all initially free.
    /// `make_var` constructs the free-list head; it will be initialised by
    /// chaining all nodes, so the caller should pass a variable whose
    /// initial value is ignored here (we set it via SC below — the head
    /// must start at node 0).
    ///
    /// The caller guarantees `capacity + 1 <= make_var(_).max_val()`.
    pub(crate) fn new(capacity: usize, free: V, ctx: &mut V::Ctx<'_>) -> Self {
        let data = (0..capacity).map(|_| AtomicU64::new(0)).collect();
        let next: Vec<AtomicU64> = (0..capacity)
            .map(|i| {
                // Chain node i -> i + 1; the last points at null.
                let link = if i + 1 < capacity { (i + 2) as u64 } else { 0 };
                AtomicU64::new(link)
            })
            .collect();
        // Point the free head at node 0 (link value 1), or null when empty.
        let initial = if capacity > 0 { 1 } else { 0 };
        let mut keep = V::Keep::default();
        loop {
            let _ = free.ll(ctx, &mut keep);
            if free.sc(ctx, &mut keep, initial) {
                break;
            }
        }
        Arena { data, next, free }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.data.len()
    }

    pub(crate) fn data(&self, idx: usize) -> u64 {
        self.data[idx].load(Ordering::SeqCst)
    }

    pub(crate) fn set_data(&self, idx: usize, value: u64) {
        self.data[idx].store(value, Ordering::SeqCst);
    }

    pub(crate) fn next(&self, idx: usize) -> u64 {
        self.next[idx].load(Ordering::SeqCst)
    }

    pub(crate) fn set_next(&self, idx: usize, link: u64) {
        self.next[idx].store(link, Ordering::SeqCst);
    }

    /// Pops a node off the free list. Returns `None` when the arena is
    /// exhausted.
    pub(crate) fn alloc(&self, ctx: &mut V::Ctx<'_>) -> Option<usize> {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let head = self.free.ll(ctx, &mut keep);
            if head == 0 {
                self.free.cl(ctx, &mut keep);
                return None;
            }
            let idx = (head - 1) as usize;
            let next = self.next(idx);
            if self.free.sc(ctx, &mut keep, next) {
                return Some(idx);
            }
            backoff.spin();
        }
    }

    /// Returns a node to the free list.
    pub(crate) fn dealloc(&self, ctx: &mut V::Ctx<'_>, idx: usize) {
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        loop {
            let head = self.free.ll(ctx, &mut keep);
            self.set_next(idx, head);
            // The write above is an access between LL and SC of *this*
            // process — harmless for every construction here because the
            // emulated LL/SC (unlike raw RLL/RSC) permits arbitrary work
            // inside a sequence. That freedom is the paper's selling point.
            if self.free.sc(ctx, &mut keep, (idx + 1) as u64) {
                return;
            }
            backoff.spin();
        }
    }

    /// Number of free nodes (O(capacity); tests only — the walk is not
    /// atomic against concurrent alloc/dealloc).
    #[cfg(test)]
    pub(crate) fn free_count(&self, ctx: &mut V::Ctx<'_>) -> usize {
        let mut n = 0;
        let mut cur = self.free.read(ctx);
        while cur != 0 {
            n += 1;
            cur = self.next((cur - 1) as usize);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::{CasLlSc, Native, TagLayout};

    fn native_arena(capacity: usize) -> Arena<CasLlSc<Native>> {
        let head = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        Arena::new(capacity, head, &mut Native)
    }

    #[test]
    fn alloc_until_exhausted() {
        let a = native_arena(3);
        let mut ctx = Native;
        let mut got = Vec::new();
        while let Some(i) = a.alloc(&mut ctx) {
            got.push(i);
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
        assert_eq!(a.alloc(&mut ctx), None);
    }

    #[test]
    fn dealloc_recycles() {
        let a = native_arena(2);
        let mut ctx = Native;
        let i = a.alloc(&mut ctx).unwrap();
        let j = a.alloc(&mut ctx).unwrap();
        assert_eq!(a.alloc(&mut ctx), None);
        a.dealloc(&mut ctx, i);
        assert_eq!(a.alloc(&mut ctx), Some(i));
        a.dealloc(&mut ctx, j);
        a.dealloc(&mut ctx, i);
        assert_eq!(a.free_count(&mut ctx), 2);
    }

    #[test]
    fn zero_capacity_arena() {
        let a = native_arena(0);
        let mut ctx = Native;
        assert_eq!(a.alloc(&mut ctx), None);
        assert_eq!(a.capacity(), 0);
    }

    #[test]
    fn data_and_next_round_trip() {
        let a = native_arena(1);
        a.set_data(0, 42);
        a.set_next(0, 7);
        assert_eq!(a.data(0), 42);
        assert_eq!(a.next(0), 7);
    }

    #[test]
    fn concurrent_alloc_dealloc_conserves_nodes() {
        let a = native_arena(8);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let a = &a;
                s.spawn(move || {
                    let mut ctx = Native;
                    let mut held = Vec::new();
                    for round in 0..5_000 {
                        if round % 2 == 0 {
                            if let Some(i) = a.alloc(&mut ctx) {
                                held.push(i);
                            }
                        } else if let Some(i) = held.pop() {
                            a.dealloc(&mut ctx, i);
                        }
                    }
                    for i in held {
                        a.dealloc(&mut ctx, i);
                    }
                });
            }
        });
        let mut ctx = Native;
        assert_eq!(a.free_count(&mut ctx), 8, "nodes were lost or duplicated");
    }

    #[test]
    fn error_display() {
        assert_eq!(StructureError::Full.to_string(), "structure is at capacity");
        let e = StructureError::ValueTooLarge { value: 9, max: 3 };
        assert!(e.to_string().contains("exceeds"));
    }
}
