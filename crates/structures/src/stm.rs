//! Static software transactional memory over the Figure-6 construction.
//!
//! Section 5 of the paper pushes back on Greenwald & Cheriton's dismissal
//! of software transactional memory: "We have shown that STM can be
//! implemented in existing systems". This module makes that sentence
//! executable. It provides the *static transaction* interface of
//! Shavit–Touitou \[14\] — a transaction reads and writes a pre-declared
//! region of a transactional heap and either commits atomically or retries
//! — implemented directly on the paper's own W-word WLL/VL/SC construction:
//!
//! * the transactional heap of `T` words is one [`WideVar`];
//! * a transaction is a `WLL → compute → SC` retry loop (lock-free: a
//!   retry implies some other transaction committed);
//! * a read-only transaction is a single `WLL`.
//!
//! **Scope note (recorded in DESIGN.md):** Shavit–Touitou's
//! ownership-record design is disjoint-access-parallel — transactions on
//! disjoint cells don't contend. Routing all transactions through one wide
//! variable gives up that property, which the paper itself concedes for its
//! Figures 6 and 7 ("our other two implementations are not disjoint access
//! parallel"). Θ(T)-per-transaction cost and the contention profile are
//! measured, not hidden, in experiment E7.

use std::fmt;
use std::sync::Arc;

use nbsp_core::wide::{WideDomain, WideKeep, WideVar};
use nbsp_core::{Backoff, CasFamily, CasMemory, Native, Result};
use nbsp_memsim::ProcId;

/// Statistics from one [`Stm::transact`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxStats {
    /// Attempts made (1 = committed first try).
    pub attempts: u64,
    /// WLLs that observed interference and were retried before the
    /// transaction body even ran.
    pub wll_interference: u64,
}

/// A transactional heap of `T` words supporting atomic multi-word
/// transactions.
///
/// ```
/// use nbsp_core::wide::WideDomain;
/// use nbsp_core::Native;
/// use nbsp_structures::stm::Stm;
/// use nbsp_memsim::ProcId;
///
/// // A heap of 4 cells: two accounts and two audit counters.
/// let domain = WideDomain::<Native>::new(2, 4, 32)?;
/// let stm = Stm::new(&domain, &[100, 50, 0, 0])?;
/// let mem = Native;
///
/// // Atomically move 30 from account 0 to account 1 and bump both audits.
/// let (moved, _stats) = stm.transact(&mem, ProcId::new(0), |heap| {
///     let amount = heap[0].min(30);
///     heap[0] -= amount;
///     heap[1] += amount;
///     heap[2] += 1;
///     heap[3] += 1;
///     amount
/// });
/// assert_eq!(moved, 30);
/// assert_eq!(stm.snapshot(&mem), vec![70, 80, 1, 1]);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
pub struct Stm<F: CasFamily = Native> {
    heap: WideVar<F>,
}

impl<F: CasFamily> fmt::Debug for Stm<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Stm")
            .field("cells", &self.heap.domain().w())
            .finish_non_exhaustive()
    }
}

impl<F: CasFamily> Stm<F> {
    /// Creates a transactional heap in `domain` (whose `w` is the number of
    /// cells) holding `initial`.
    ///
    /// # Errors
    ///
    /// Propagates [`WideDomain::var`] errors (wrong width, oversized
    /// values).
    pub fn new(domain: &Arc<WideDomain<F>>, initial: &[u64]) -> Result<Self> {
        Ok(Stm {
            heap: domain.var(initial)?,
        })
    }

    /// Number of cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.heap.domain().w()
    }

    /// Largest value a cell can hold.
    #[must_use]
    pub fn max_val(&self) -> u64 {
        self.heap.domain().max_val()
    }

    /// Runs `body` as an atomic transaction as process `p`, retrying until
    /// it commits. Returns the body's result from the committing attempt,
    /// plus retry statistics.
    ///
    /// `body` receives the heap snapshot as a mutable slice; whatever it
    /// leaves there is the committed state. It must be pure apart from that
    /// slice: under contention it runs multiple times and only the winning
    /// run's effects (and return value) survive.
    ///
    /// # Panics
    ///
    /// Panics if the body writes a value exceeding [`Stm::max_val`], or if
    /// `p` is outside the domain.
    pub fn transact<M, R>(
        &self,
        mem: &M,
        p: ProcId,
        mut body: impl FnMut(&mut [u64]) -> R,
    ) -> (R, TxStats)
    where
        M: CasMemory<Family = F>,
    {
        let mut stats = TxStats::default();
        let mut keep = WideKeep::default();
        let mut buf = vec![0u64; self.cells()];
        let mut backoff = Backoff::new();
        loop {
            stats.attempts += 1;
            if !self.heap.wll(mem, &mut keep, &mut buf).is_success() {
                // A concurrent commit doomed this attempt before it began —
                // the *weak* LL lets us skip the wasted computation.
                stats.wll_interference += 1;
                backoff.spin();
                continue;
            }
            let result = body(&mut buf);
            if self.heap.sc(mem, p, &keep, &buf) {
                nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, stats.attempts);
                return (result, stats);
            }
            backoff.spin();
        }
    }

    /// Runs `body` read-only and atomically (a single consistent snapshot;
    /// lock-free retry on interference).
    pub fn read<M, R>(&self, mem: &M, body: impl FnOnce(&[u64]) -> R) -> R
    where
        M: CasMemory<Family = F>,
    {
        body(&self.heap.read(mem))
    }

    /// A consistent snapshot of the whole heap.
    #[must_use]
    pub fn snapshot<M: CasMemory<Family = F>>(&self, mem: &M) -> Vec<u64> {
        self.heap.read(mem)
    }

    /// Reads one cell from a consistent snapshot.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    #[must_use]
    pub fn load<M: CasMemory<Family = F>>(&self, mem: &M, addr: usize) -> u64 {
        self.snapshot(mem)[addr]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn heap(n_procs: usize, initial: &[u64]) -> Stm<Native> {
        let d = WideDomain::<Native>::new(n_procs, initial.len(), 24).unwrap();
        Stm::new(&d, initial).unwrap()
    }

    #[test]
    fn transact_commits_body_effects() {
        let stm = heap(1, &[1, 2, 3]);
        let mem = Native;
        let (sum, stats) = stm.transact(&mem, ProcId::new(0), |h| {
            let s = h.iter().sum::<u64>();
            h[0] = s;
            s
        });
        assert_eq!(sum, 6);
        assert_eq!(stats.attempts, 1);
        assert_eq!(stm.snapshot(&mem), vec![6, 2, 3]);
    }

    #[test]
    fn read_only_snapshot_is_consistent() {
        let stm = heap(1, &[7, 7]);
        let equal = stm.read(&Native, |h| h[0] == h[1]);
        assert!(equal);
        assert_eq!(stm.load(&Native, 1), 7);
    }

    #[test]
    fn bank_transfer_conserves_total() {
        // The canonical STM test: concurrent random transfers preserve the
        // total balance, and no reader ever sees money in flight.
        const ACCOUNTS: usize = 6;
        const TOTAL: u64 = 600;
        let initial = vec![TOTAL / ACCOUNTS as u64; ACCOUNTS];
        let stm = heap(4, &initial);
        std::thread::scope(|s| {
            for t in 0..3 {
                let stm = &stm;
                s.spawn(move || {
                    let mem = Native;
                    let p = ProcId::new(t);
                    let mut x = 0x243f6a88u64 ^ (t as u64);
                    for _ in 0..4_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let from = (x >> 33) as usize % ACCOUNTS;
                        let to = (x >> 13) as usize % ACCOUNTS;
                        let amt = x % 10;
                        stm.transact(&mem, p, |h| {
                            let amt = amt.min(h[from]);
                            h[from] -= amt;
                            if from != to {
                                h[to] += amt;
                            } else {
                                h[from] += amt;
                            }
                        });
                    }
                });
            }
            let stm = &stm;
            s.spawn(move || {
                let mem = Native;
                for _ in 0..4_000 {
                    let total: u64 = stm.read(&mem, |h| h.iter().sum());
                    assert_eq!(total, TOTAL, "money created or destroyed in flight");
                }
            });
        });
        let total: u64 = stm.snapshot(&Native).iter().sum();
        assert_eq!(total, TOTAL);
    }

    #[test]
    fn body_reruns_are_discarded() {
        let stm = heap(2, &[0, 0]);
        std::thread::scope(|s| {
            for t in 0..2 {
                let stm = &stm;
                s.spawn(move || {
                    let mem = Native;
                    let p = ProcId::new(t);
                    for _ in 0..5_000 {
                        stm.transact(&mem, p, |h| {
                            h[0] += 1;
                            h[1] += 1;
                        });
                    }
                });
            }
        });
        assert_eq!(stm.snapshot(&Native), vec![10_000, 10_000]);
    }

    #[test]
    fn stats_count_retries_under_contention() {
        let stm = heap(2, &[0]);
        let total_attempts: u64 = std::thread::scope(|s| {
            (0..2)
                .map(|t| {
                    let stm = &stm;
                    s.spawn(move || {
                        let mem = Native;
                        let p = ProcId::new(t);
                        let mut attempts = 0;
                        for _ in 0..3_000 {
                            let (_, st) = stm.transact(&mem, p, |h| h[0] += 1);
                            attempts += st.attempts;
                        }
                        attempts
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert!(total_attempts >= 6_000, "at least one attempt per tx");
        assert_eq!(stm.snapshot(&Native), vec![6_000]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_write_panics() {
        let stm = heap(1, &[0]);
        let max = stm.max_val();
        let _ = stm.transact(&Native, ProcId::new(0), |h| h[0] = max + 1);
    }
}
