//! A wait-free-per-attempt fetch-and-add counter on LL/SC.
//!
//! The simplest member of the enabled-algorithm family: the classic LL/SC
//! read-modify-write loop. Used pervasively in the test suite as the
//! canonical exactness check (lost or duplicated increments would reveal an
//! unsound SC), and in experiment E7 as the lightest-weight contention
//! benchmark.

use std::fmt;

use nbsp_core::{Backoff, LlScVar};

/// A shared counter over any [`LlScVar`], counting modulo the variable's
/// value range.
///
/// ```
/// use nbsp_core::{CasLlSc, Native, TagLayout};
/// use nbsp_structures::Counter;
///
/// let counter = Counter::new(CasLlSc::new_native(TagLayout::half(), 0)?);
/// let mut ctx = Native;
/// assert_eq!(counter.fetch_add(&mut ctx, 5), 0);
/// assert_eq!(counter.fetch_add(&mut ctx, 2), 5);
/// assert_eq!(counter.get(&mut ctx), 7);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
pub struct Counter<V: LlScVar> {
    var: V,
}

impl<V: LlScVar> fmt::Debug for Counter<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Counter").finish_non_exhaustive()
    }
}

impl<V: LlScVar> Counter<V> {
    /// Wraps an LL/SC variable as a counter (starting from the variable's
    /// current value).
    #[must_use]
    pub fn new(var: V) -> Self {
        Counter { var }
    }

    /// Atomically adds `delta` (modulo the value range) and returns the
    /// previous value. Lock-free: an individual attempt only retries when
    /// some other operation succeeded, and a failed attempt backs off
    /// before re-reading so the winner keeps the cache line.
    #[inline]
    pub fn fetch_add(&self, ctx: &mut V::Ctx<'_>, delta: u64) -> u64 {
        let modulus = self.var.max_val().wrapping_add(1); // 0 means 2^64
        let mut keep = V::Keep::default();
        let mut backoff = Backoff::new();
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            let old = self.var.ll(ctx, &mut keep);
            let new = if modulus == 0 {
                old.wrapping_add(delta)
            } else {
                (old.wrapping_add(delta)) % modulus
            };
            if self.var.sc(ctx, &mut keep, new) {
                nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
                return old;
            }
            backoff.spin();
        }
    }

    /// Atomically adds one, returning the previous value.
    #[inline]
    pub fn increment(&self, ctx: &mut V::Ctx<'_>) -> u64 {
        self.fetch_add(ctx, 1)
    }

    /// Reads the current value.
    pub fn get(&self, ctx: &mut V::Ctx<'_>) -> u64 {
        self.var.read(ctx)
    }

    /// Consumes the counter, returning the underlying variable.
    #[must_use]
    pub fn into_inner(self) -> V {
        self.var
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::bounded::BoundedDomain;
    use nbsp_core::lock_baseline::LockLlSc;
    use nbsp_core::{CasLlSc, Native, TagLayout};
    use nbsp_memsim::ProcId;

    #[test]
    fn fetch_add_returns_previous() {
        let c = Counter::new(CasLlSc::new_native(TagLayout::half(), 10).unwrap());
        let mut ctx = Native;
        assert_eq!(c.fetch_add(&mut ctx, 0), 10);
        assert_eq!(c.increment(&mut ctx), 10);
        assert_eq!(c.get(&mut ctx), 11);
    }

    #[test]
    fn wraps_modulo_value_range() {
        let v = CasLlSc::new_native(TagLayout::new(60, 4).unwrap(), 14).unwrap();
        let c = Counter::new(v);
        let mut ctx = Native;
        assert_eq!(c.fetch_add(&mut ctx, 3), 14);
        assert_eq!(c.get(&mut ctx), 1); // (14 + 3) mod 16
    }

    #[test]
    fn exactness_under_contention_native() {
        let c = Counter::new(CasLlSc::new_native(TagLayout::half(), 0).unwrap());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = &c;
                s.spawn(move || {
                    let mut ctx = Native;
                    for _ in 0..10_000 {
                        c.increment(&mut ctx);
                    }
                });
            }
        });
        assert_eq!(c.get(&mut Native), 80_000);
    }

    #[test]
    fn exactness_on_bounded_tags() {
        let d = BoundedDomain::<Native>::new(4, 1).unwrap();
        let c = Counter::new(d.var(0).unwrap());
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = &c;
                let mut me = d.proc(t);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        c.increment(&mut me);
                    }
                });
            }
        });
        // peek needs no claimed proc:
        let inner = c.into_inner();
        assert_eq!(inner.peek(&Native), 20_000);
    }

    #[test]
    fn works_on_lock_baseline() {
        let c = Counter::new(LockLlSc::new(2, 100));
        let mut ctx = ProcId::new(0);
        assert_eq!(c.fetch_add(&mut ctx, 50), 100);
        assert_eq!(c.get(&mut ctx), 150);
    }

    #[test]
    fn into_inner_returns_variable() {
        let c = Counter::new(CasLlSc::new_native(TagLayout::half(), 3).unwrap());
        let v = c.into_inner();
        assert_eq!(v.read(&Native), 3);
    }
}
