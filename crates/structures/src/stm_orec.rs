//! Ownership-record STM baseline (blocking, disjoint-access-parallel).
//!
//! The Shavit–Touitou STM \[14\] attaches an *ownership record* to every
//! transactional cell; a transaction acquires the records of its footprint
//! in address order, applies itself, and releases. Their design adds
//! recursive *helping* to make this non-blocking; this module implements
//! the same structure **without** helping — acquisition spins — which
//! makes it a two-phase-locking STM: blocking (a preempted owner stalls
//! its neighbours), but **disjoint-access parallel** (transactions with
//! disjoint footprints never interact, the property the paper discusses
//! in §5).
//!
//! It exists as the measured counterpoint to [`Stm`](crate::stm::Stm):
//! the Figure-6 STM is non-blocking but serialises all transactions;
//! this one parallelises disjoint transactions but a dead owner wedges
//! its cells forever. Experiment E7 reports both, because the full
//! Shavit–Touitou design (helping on top of ownership records) would
//! combine the two virtues — exactly why the paper calls for "more
//! algorithmic and experimental work" on STM practicality.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::Backoff;
use nbsp_memsim::ProcId;

/// A transactional heap with per-cell ownership records and static
/// (pre-declared, address-ordered) transaction footprints.
///
/// ```
/// use nbsp_structures::stm_orec::OrecStm;
/// use nbsp_memsim::ProcId;
///
/// let stm = OrecStm::new(&[100, 50, 7]);
/// // Transfer between cells 0 and 1; cell 2 is untouched (and other
/// // transactions on it would run fully in parallel).
/// let moved = stm.transact(ProcId::new(0), &[0, 1], |vals| {
///     let amount = vals[0].min(30);
///     vals[0] -= amount;
///     vals[1] += amount;
///     amount
/// });
/// assert_eq!(moved, 30);
/// assert_eq!(stm.snapshot_quiescent(), vec![70, 80, 7]);
/// ```
pub struct OrecStm {
    cells: Vec<AtomicU64>,
    /// 0 = free, otherwise owner pid + 1.
    orecs: Vec<AtomicU64>,
}

impl fmt::Debug for OrecStm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OrecStm")
            .field("cells", &self.cells.len())
            .finish_non_exhaustive()
    }
}

impl OrecStm {
    /// Creates a heap holding `initial`.
    #[must_use]
    pub fn new(initial: &[u64]) -> Self {
        OrecStm {
            cells: initial.iter().map(|&v| AtomicU64::new(v)).collect(),
            orecs: initial.iter().map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn cells(&self) -> usize {
        self.cells.len()
    }

    /// Runs `body` as a transaction over the cells named by `footprint`
    /// (which must be strictly ascending — the deadlock-freedom
    /// discipline). `body` receives the footprint cells' values in
    /// footprint order; whatever it leaves there is committed.
    ///
    /// Blocking: spins while another transaction owns a footprint cell.
    ///
    /// # Panics
    ///
    /// Panics if `footprint` is not strictly ascending or names a cell out
    /// of range.
    pub fn transact<R>(
        &self,
        p: ProcId,
        footprint: &[usize],
        body: impl FnOnce(&mut [u64]) -> R,
    ) -> R {
        assert!(
            footprint.windows(2).all(|w| w[0] < w[1]),
            "footprint must be strictly ascending"
        );
        if let Some(&max) = footprint.last() {
            assert!(max < self.cells.len(), "cell {max} out of range");
        }
        let me = p.index() as u64 + 1;
        // Phase 1: acquire ownership records in address order. The spin
        // is a lock acquisition, so backoff here (unlike in the lock-free
        // loops) bounds how hard waiters hammer the owner's cache line.
        let mut attempts = 1u64;
        for &a in footprint {
            let mut backoff = Backoff::new();
            while self.orecs[a]
                .compare_exchange(0, me, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                attempts += 1;
                backoff.spin();
            }
        }
        // Count each lost orec acquisition as one retry, so the lock-based
        // STM shares a retries-per-op scale with the non-blocking one.
        nbsp_telemetry::observe(nbsp_telemetry::Hist::Retries, attempts);
        // Owned: read, apply, write.
        let mut vals: Vec<u64> = footprint
            .iter()
            .map(|&a| self.cells[a].load(Ordering::SeqCst))
            .collect();
        let result = body(&mut vals);
        for (&a, &v) in footprint.iter().zip(&vals) {
            self.cells[a].store(v, Ordering::SeqCst);
        }
        // Phase 2: release in reverse order.
        for &a in footprint.iter().rev() {
            let prev = self.orecs[a].swap(0, Ordering::SeqCst);
            debug_assert_eq!(prev, me, "released an orec we did not own");
        }
        result
    }

    /// Reads the cells named by `footprint` atomically (a read-only
    /// transaction — still acquires ownership, hence still blocking).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`OrecStm::transact`].
    #[must_use]
    pub fn read(&self, p: ProcId, footprint: &[usize]) -> Vec<u64> {
        self.transact(p, footprint, |vals| vals.to_vec())
    }

    /// Snapshot without acquiring anything — only meaningful when no
    /// transactions are running (tests and shutdown).
    #[must_use]
    pub fn snapshot_quiescent(&self) -> Vec<u64> {
        self.cells
            .iter()
            .map(|c| c.load(Ordering::SeqCst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transact_commits() {
        let stm = OrecStm::new(&[1, 2, 3]);
        let sum = stm.transact(ProcId::new(0), &[0, 1, 2], |v| {
            let s: u64 = v.iter().sum();
            v[0] = s;
            s
        });
        assert_eq!(sum, 6);
        assert_eq!(stm.snapshot_quiescent(), vec![6, 2, 3]);
    }

    #[test]
    fn read_only_transaction() {
        let stm = OrecStm::new(&[9, 8]);
        assert_eq!(stm.read(ProcId::new(1), &[1]), vec![8]);
        assert_eq!(stm.read(ProcId::new(1), &[0, 1]), vec![9, 8]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_footprint_is_rejected() {
        let stm = OrecStm::new(&[0, 0]);
        stm.transact(ProcId::new(0), &[1, 0], |_| ());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_footprint_is_rejected() {
        let stm = OrecStm::new(&[0]);
        stm.transact(ProcId::new(0), &[1], |_| ());
    }

    #[test]
    fn conservation_under_contention() {
        const CELLS: usize = 6;
        const TOTAL: u64 = 600;
        let stm = OrecStm::new(&[TOTAL / CELLS as u64; CELLS]);
        std::thread::scope(|s| {
            for t in 0..4 {
                let stm = &stm;
                s.spawn(move || {
                    let p = ProcId::new(t);
                    let mut x = 0xabcd_ef01u64 ^ t as u64;
                    for _ in 0..5_000 {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        let a = (x >> 33) as usize % CELLS;
                        let b = (x >> 13) as usize % CELLS;
                        let (lo, hi) = (a.min(b), a.max(b));
                        let amt = x % 10;
                        if lo == hi {
                            continue;
                        }
                        stm.transact(p, &[lo, hi], |v| {
                            let amt = amt.min(v[0]);
                            v[0] -= amt;
                            v[1] += amt;
                        });
                    }
                });
            }
        });
        let total: u64 = stm.snapshot_quiescent().iter().sum();
        assert_eq!(total, TOTAL);
    }

    #[test]
    fn disjoint_transactions_run_in_parallel() {
        // Two threads on disjoint cells: no transaction of one can block
        // the other indefinitely. (We can't observe parallelism directly
        // in a unit test; we check a long disjoint run terminates and is
        // exact, which a serialising bug would make slow or wrong.)
        let stm = OrecStm::new(&[0, 0]);
        std::thread::scope(|s| {
            for t in 0..2usize {
                let stm = &stm;
                s.spawn(move || {
                    let p = ProcId::new(t);
                    for _ in 0..50_000 {
                        stm.transact(p, &[t], |v| v[0] += 1);
                    }
                });
            }
        });
        assert_eq!(stm.snapshot_quiescent(), vec![50_000, 50_000]);
    }
}
