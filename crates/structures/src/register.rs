//! A multi-word atomic register over the Figure-6 construction.
//!
//! Applications that need to read and write values larger than one machine
//! word atomically (the paper's §3.3 motivation: "pointers or other large
//! data items") get them directly from `WLL`/`SC`: a read retries `WLL`
//! until it returns a consistent snapshot; a write retries `WLL` + `SC`.
//! Both are lock-free — a retry happens only because some other write
//! succeeded.

use std::fmt;
use std::sync::Arc;

use nbsp_core::wide::{WideDomain, WideKeep, WideVar};
use nbsp_core::{Backoff, CasFamily, CasMemory, Native, Result};
use nbsp_memsim::ProcId;

/// An atomic `W`-word register: reads see complete writes, never a mixture
/// (single-variable transactional memory in the small).
///
/// ```
/// use nbsp_core::wide::WideDomain;
/// use nbsp_core::Native;
/// use nbsp_structures::SnapshotRegister;
/// use nbsp_memsim::ProcId;
///
/// let domain = WideDomain::<Native>::new(2, 4, 32)?;
/// let reg = SnapshotRegister::new(&domain, &[1, 2, 3, 4])?;
/// let mem = Native;
/// reg.write(&mem, ProcId::new(0), &[5, 6, 7, 8]);
/// assert_eq!(reg.read(&mem), vec![5, 6, 7, 8]);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
pub struct SnapshotRegister<F: CasFamily = Native> {
    var: WideVar<F>,
}

impl<F: CasFamily> fmt::Debug for SnapshotRegister<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SnapshotRegister")
            .field("w", &self.var.domain().w())
            .finish_non_exhaustive()
    }
}

impl<F: CasFamily> SnapshotRegister<F> {
    /// Creates a register in `domain` holding `initial`.
    ///
    /// # Errors
    ///
    /// Propagates [`WideDomain::var`] errors (wrong width, oversized
    /// values).
    pub fn new(domain: &Arc<WideDomain<F>>, initial: &[u64]) -> Result<Self> {
        Ok(SnapshotRegister {
            var: domain.var(initial)?,
        })
    }

    /// Width of the register in words.
    #[must_use]
    pub fn w(&self) -> usize {
        self.var.domain().w()
    }

    /// Reads a consistent snapshot (lock-free retry of `WLL`).
    #[must_use]
    pub fn read<M: CasMemory<Family = F>>(&self, mem: &M) -> Vec<u64> {
        self.var.read(mem)
    }

    /// Reads a consistent snapshot into `buf` without allocating.
    ///
    /// # Panics
    ///
    /// Panics if `buf.len()` differs from the register width.
    pub fn read_into<M: CasMemory<Family = F>>(&self, mem: &M, buf: &mut [u64]) {
        let mut keep = WideKeep::default();
        let mut backoff = Backoff::new();
        // nbsp-flow: allow(keep-leak) — pure read: the successful WLL is the consumer; a WideKeep claims no slot, so dropping it is free
        while !self.var.wll(mem, &mut keep, buf).is_success() {
            backoff.spin();
        }
    }

    /// Atomically replaces the whole register with `value` as process `p`
    /// (lock-free retry of `WLL` + `SC`).
    ///
    /// # Panics
    ///
    /// Panics if `value` has the wrong width, a word exceeds the domain's
    /// maximum, or `p` is outside the domain.
    pub fn write<M: CasMemory<Family = F>>(&self, mem: &M, p: ProcId, value: &[u64]) {
        let mut keep = WideKeep::default();
        let mut scratch = vec![0u64; self.w()];
        let mut backoff = Backoff::new();
        loop {
            // An interfered WLL still records the header tag; its SC will
            // fail and we retry, so no explicit branch is needed — but a
            // successful WLL avoids a guaranteed-failing SC (the point of
            // the *weak* LL).
            if !self.var.wll(mem, &mut keep, &mut scratch).is_success() {
                backoff.spin();
                continue;
            }
            if self.var.sc(mem, p, &keep, value) {
                return;
            }
            backoff.spin();
        }
    }

    /// Atomically applies `f` to the register contents (retry loop, i.e. a
    /// single-variable transaction).
    pub fn update<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        p: ProcId,
        mut f: impl FnMut(&mut [u64]),
    ) {
        let mut keep = WideKeep::default();
        let mut buf = vec![0u64; self.w()];
        let mut backoff = Backoff::new();
        loop {
            if !self.var.wll(mem, &mut keep, &mut buf).is_success() {
                backoff.spin();
                continue;
            }
            let mut new = buf.clone();
            f(&mut new);
            if self.var.sc(mem, p, &keep, &new) {
                return;
            }
            backoff.spin();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(n: usize, w: usize, initial: &[u64]) -> SnapshotRegister<Native> {
        let d = WideDomain::<Native>::new(n, w, 24).unwrap();
        SnapshotRegister::new(&d, initial).unwrap()
    }

    #[test]
    fn read_write_round_trip() {
        let r = reg(2, 3, &[1, 2, 3]);
        let mem = Native;
        assert_eq!(r.read(&mem), vec![1, 2, 3]);
        r.write(&mem, ProcId::new(1), &[4, 5, 6]);
        assert_eq!(r.read(&mem), vec![4, 5, 6]);
        let mut buf = [0u64; 3];
        r.read_into(&mem, &mut buf);
        assert_eq!(buf, [4, 5, 6]);
    }

    #[test]
    fn update_applies_function() {
        let r = reg(1, 2, &[10, 20]);
        let mem = Native;
        r.update(&mem, ProcId::new(0), |v| {
            v[0] += 1;
            v[1] += 2;
        });
        assert_eq!(r.read(&mem), vec![11, 22]);
    }

    #[test]
    fn no_torn_reads_under_contention() {
        // Writers keep the invariant word[1] = word[0] + 7; readers must
        // never observe a violation.
        let d = WideDomain::<Native>::new(4, 2, 24).unwrap();
        let r = SnapshotRegister::new(&d, &[0, 7]).unwrap();
        std::thread::scope(|s| {
            for t in 0..3 {
                let r = &r;
                s.spawn(move || {
                    let mem = Native;
                    let p = ProcId::new(t);
                    for i in 0..3_000u64 {
                        let base = i * 3 + t as u64;
                        r.write(&mem, p, &[base, base + 7]);
                    }
                });
            }
            let r = &r;
            s.spawn(move || {
                let mem = Native;
                for _ in 0..9_000 {
                    let v = r.read(&mem);
                    assert_eq!(v[1], v[0] + 7, "torn read: {v:?}");
                }
            });
        });
    }

    #[test]
    fn update_is_atomic_read_modify_write() {
        // Concurrent increments through update must not lose any.
        let d = WideDomain::<Native>::new(4, 2, 24).unwrap();
        let r = SnapshotRegister::new(&d, &[0, 0]).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let r = &r;
                s.spawn(move || {
                    let mem = Native;
                    let p = ProcId::new(t);
                    for _ in 0..2_500 {
                        r.update(&mem, p, |v| {
                            v[0] += 1;
                            v[1] += 1;
                        });
                    }
                });
            }
        });
        assert_eq!(r.read(&Native), vec![10_000, 10_000]);
    }

    #[test]
    fn rejects_bad_initial() {
        let d = WideDomain::<Native>::new(1, 2, 24).unwrap();
        assert!(SnapshotRegister::new(&d, &[0]).is_err());
    }
}
