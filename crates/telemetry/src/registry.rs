//! The wait-free counter matrix: one cache-padded row of relaxed
//! `AtomicU64`s per process (thread slot), one column per [`Event`].
//!
//! The paper's constructions give each process a private announce slot so
//! that the hot path never contends; the counter matrix copies that shape.
//! A `record` is a thread-local slot lookup plus one `fetch_add(1,
//! Relaxed)` on the recording thread's own row — wait-free, no CAS, no
//! loop, and (rows being 128-byte aligned) no false sharing between
//! recording threads.
//!
//! Rows are *single-writer*: only the owning thread adds to its row, so a
//! thread reading its own row sees exact values (the property
//! [`crate::snapshot::Flusher`] relies on), while cross-row readers get
//! the racy-but-monotonic view [`racy_totals`] documents.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use crate::event::{Event, EVENT_COUNT};

/// Number of per-process rows in the counter matrix. Threads beyond this
/// share rows round-robin: totals stay exact (the adds are atomic), but
/// shared rows can false-share and break the single-writer guarantee that
/// [`crate::snapshot::Flusher`] needs — keep concurrent recording threads
/// at or below this bound for consistent snapshots.
pub const MAX_SLOTS: usize = 64;

/// One process's event counters, padded to (a pair of) cache lines so
/// neighbouring recorders never invalidate each other.
#[repr(align(128))]
struct Row {
    counts: [AtomicU64; EVENT_COUNT],
}

impl Row {
    const fn new() -> Self {
        Row {
            counts: [const { AtomicU64::new(0) }; EVENT_COUNT],
        }
    }
}

static MATRIX: [Row; MAX_SLOTS] = [const { Row::new() }; MAX_SLOTS];

/// Cursor for slot claiming; wraps modulo [`MAX_SLOTS`].
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// The calling thread's row index in the counter matrix, claimed on first
/// use. Also used as the process id a consistent-snapshot publisher hands
/// to the Figure-6 SC.
#[must_use]
pub fn thread_slot() -> usize {
    SLOT.with(|s| {
        let v = s.get();
        if v != usize::MAX {
            v
        } else {
            let claimed = NEXT_SLOT.fetch_add(1, Ordering::Relaxed) % MAX_SLOTS;
            s.set(claimed);
            claimed
        }
    })
}

/// The wait-free hot path behind [`crate::record`]: bump the calling
/// thread's own slot. Relaxed is enough — counters carry no payload to
/// publish, and every reader is specified as racy or goes through an
/// [`crate::snapshot::AtomicTotals`] publication instead.
#[inline]
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) fn add(event: Event, n: u64) {
    MATRIX[thread_slot()].counts[event.index()].fetch_add(n, Ordering::Relaxed);
}

/// Exact snapshot of one row. Exact only for the row owner (single
/// writer); for other rows it is a racy read like [`racy_totals`].
#[must_use]
pub fn slot_counts(slot: usize) -> [u64; EVENT_COUNT] {
    let mut out = [0u64; EVENT_COUNT];
    for (i, c) in MATRIX[slot].counts.iter().enumerate() {
        out[i] = c.load(Ordering::Relaxed);
    }
    out
}

/// The **racy** snapshot reader: sums every row with relaxed loads while
/// writers keep running.
///
/// Guarantees: per-event sums are monotonic across successive calls (each
/// slot is re-read no earlier than last time). NOT guaranteed: mutual
/// consistency *between* events — a reader can observe `sc_success`
/// without the `tag_alloc` recorded just before it, i.e. a **torn**
/// cross-event state. Experiment E11 counts exactly these tears against
/// the Figure-6-backed consistent reader.
#[must_use]
pub fn racy_totals() -> [u64; EVENT_COUNT] {
    let mut out = [0u64; EVENT_COUNT];
    for row in &MATRIX {
        for (i, c) in row.counts.iter().enumerate() {
            out[i] += c.load(Ordering::Relaxed);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_slot_is_stable_within_a_thread() {
        assert_eq!(thread_slot(), thread_slot());
        assert!(thread_slot() < MAX_SLOTS);
    }

    #[test]
    fn distinct_threads_get_distinct_slots() {
        let mine = thread_slot();
        let theirs = std::thread::spawn(thread_slot).join().unwrap();
        assert_ne!(mine, theirs);
    }

    #[test]
    fn add_is_visible_in_own_row_and_in_totals() {
        // Uses TagAlloc: nothing else in this test binary records it, so
        // the deltas are exact even with tests running in parallel.
        let slot = thread_slot();
        let before_row = slot_counts(slot)[Event::TagAlloc.index()];
        let before_total = racy_totals()[Event::TagAlloc.index()];
        for _ in 0..5 {
            add(Event::TagAlloc, 1);
        }
        add(Event::TagAlloc, 2);
        assert_eq!(slot_counts(slot)[Event::TagAlloc.index()], before_row + 7);
        assert!(racy_totals()[Event::TagAlloc.index()] >= before_total + 7);
    }
}
