//! Log2-bucket histograms, recorded with the same wait-free per-slot
//! discipline as the event counters.
//!
//! Two fixed histograms cover the stack's two interesting distributions:
//! how many attempts a lock-free operation needed before its SC landed
//! ([`Hist::Retries`]), and how far backoff escalated while it waited
//! ([`Hist::BackoffDepth`]). Log2 buckets because both distributions are
//! heavy-tailed under contention: the tail, not the mean, is the signal.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::registry::{thread_slot, MAX_SLOTS};

/// Number of buckets per histogram. Bucket 0 holds the value 0, bucket
/// `b >= 1` holds values in `[2^(b-1), 2^b)`, and the last bucket also
/// absorbs everything larger.
pub const HIST_BUCKETS: usize = 16;

/// Number of distinct histograms.
pub const HIST_COUNT: usize = 2;

/// The fixed histogram vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Hist {
    /// Attempts per completed lock-free operation (1 = first try).
    Retries = 0,
    /// Spin-loop hints issued per backoff step (`2^step`; one observation
    /// per [`Backoff::spin`](../nbsp_core/struct.Backoff.html) call).
    BackoffDepth = 1,
}

impl Hist {
    /// Every histogram, in index order.
    pub const ALL: [Hist; HIST_COUNT] = [Hist::Retries, Hist::BackoffDepth];

    /// Stable snake_case name (report tables and JSON schema).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Hist::Retries => "retries_per_op",
            Hist::BackoffDepth => "backoff_depth",
        }
    }
}

#[repr(align(128))]
struct HistRow {
    buckets: [[AtomicU64; HIST_BUCKETS]; HIST_COUNT],
}

impl HistRow {
    const fn new() -> Self {
        HistRow {
            buckets: [const { [const { AtomicU64::new(0) }; HIST_BUCKETS] }; HIST_COUNT],
        }
    }
}

static HIST_MATRIX: [HistRow; MAX_SLOTS] = [const { HistRow::new() }; MAX_SLOTS];

/// The log2 bucket a value falls into.
#[must_use]
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Human-readable range label for bucket `b` (for report tables).
#[must_use]
pub fn bucket_label(b: usize) -> String {
    assert!(b < HIST_BUCKETS);
    if b == 0 {
        "0".to_string()
    } else if b == 1 {
        "1".to_string()
    } else if b == HIST_BUCKETS - 1 {
        format!(">={}", 1u64 << (b - 1))
    } else {
        format!("{}-{}", 1u64 << (b - 1), (1u64 << b) - 1)
    }
}

/// The wait-free path behind [`crate::observe`].
#[inline]
#[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
pub(crate) fn observe_impl(hist: Hist, value: u64) {
    HIST_MATRIX[thread_slot()].buckets[hist as usize][bucket_of(value)]
        .fetch_add(1, Ordering::Relaxed);
}

/// The calling-thread-visible bucket counts of one slot's histogram rows
/// (exact for the slot's own thread — rows are single-writer — and the
/// baseline a [`crate::HistFlusher`] diffs against).
#[must_use]
pub fn slot_buckets(slot: usize) -> [[u64; HIST_BUCKETS]; HIST_COUNT] {
    let mut out = [[0u64; HIST_BUCKETS]; HIST_COUNT];
    for (h, row) in out.iter_mut().enumerate() {
        for (b, c) in HIST_MATRIX[slot].buckets[h].iter().enumerate() {
            row[b] = c.load(Ordering::Relaxed);
        }
    }
    out
}

/// Racy bucket totals for one histogram (sums over all slots; same
/// monotonicity contract as [`crate::racy_totals`]).
#[must_use]
pub fn histogram(hist: Hist) -> [u64; HIST_BUCKETS] {
    let mut out = [0u64; HIST_BUCKETS];
    for row in &HIST_MATRIX {
        for (i, c) in row.buckets[hist as usize].iter().enumerate() {
            out[i] += c.load(Ordering::Relaxed);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(7), 3);
        assert_eq!(bucket_of(8), 4);
        assert_eq!(bucket_of(1 << 14), 15);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn labels_cover_the_ranges() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(1), "1");
        assert_eq!(bucket_label(2), "2-3");
        assert_eq!(bucket_label(3), "4-7");
        assert_eq!(bucket_label(HIST_BUCKETS - 1), format!(">={}", 1u64 << (HIST_BUCKETS - 2)));
    }

    #[test]
    fn observe_lands_in_the_right_bucket() {
        // BackoffDepth is not observed by anything else in this binary.
        let before = histogram(Hist::BackoffDepth);
        observe_impl(Hist::BackoffDepth, 3);
        observe_impl(Hist::BackoffDepth, 3);
        observe_impl(Hist::BackoffDepth, 100);
        let after = histogram(Hist::BackoffDepth);
        assert_eq!(after[bucket_of(3)] - before[bucket_of(3)], 2);
        assert_eq!(after[bucket_of(100)] - before[bucket_of(100)], 1);
    }
}
