//! Consistent snapshots of the counter matrix.
//!
//! [`crate::racy_totals`] can return a **torn** cross-event state: the
//! sum over rows is taken while writers run, so two events a writer
//! always bumps together can come back unequal. Fixing that is a
//! multi-word atomic-snapshot problem — exactly what the source paper's
//! Figure 6 (W-word WLL/VL/SC from CAS) solves, and what Blelloch & Wei's
//! "LL/SC and Atomic Copy" (arXiv:1911.09671) later solve with
//! single-word CAS. The subsystem dogfoods Figure 6:
//!
//! * each recording thread keeps incrementing its own row with relaxed
//!   adds (the hot path is untouched);
//! * at *consistency points* of its own choosing (batch boundaries,
//!   operation completion) it calls [`Flusher::flush`], which publishes
//!   the delta of its own row since the previous flush into an
//!   [`AtomicTotals`] sink **as one atomic W-word update**;
//! * a reader obtains the aggregated totals with a single WLL — all
//!   events mutually consistent, because every state the sink ever held
//!   is a sum of whole per-thread deltas.
//!
//! This crate only defines the sink *interface* (it sits below
//! `nbsp-core` in the layering); the Figure-6-backed implementation is
//! `nbsp_core::telemetry::WideTotals`, which routes every `add` through a
//! WLL/SC loop on a `WideVar` of width [`EVENT_COUNT`].

use std::marker::PhantomData;

use crate::event::EVENT_COUNT;
use crate::hist::{slot_buckets, HIST_BUCKETS, HIST_COUNT};
use crate::registry::{slot_counts, thread_slot};

/// An atomically updatable, atomically readable vector of per-event
/// totals — the abstraction a consistent snapshot reader needs.
///
/// Implementations must make `add` atomic with respect to `totals`:
/// a `totals` call observes either all of a given `add` or none of it.
pub trait AtomicTotals {
    /// Atomically adds `delta` (element-wise) to the totals, as the
    /// process/thread identified by `slot` (a [`thread_slot`] value).
    fn add(&self, slot: usize, delta: &[u64; EVENT_COUNT]);

    /// An atomic (non-torn) snapshot of the totals.
    fn totals(&self) -> [u64; EVENT_COUNT];
}

/// Per-thread flush state: remembers how much of the thread's own row has
/// already been published so the next [`Flusher::flush`] publishes only
/// the new delta.
///
/// Create it on the recording thread (`new` captures the row's current
/// state, so pre-existing counts are not re-published) and call `flush`
/// from that same thread only — the type is `!Send` to enforce this,
/// because the delta computation relies on the single-writer exactness of
/// the thread's own row.
#[derive(Debug)]
pub struct Flusher {
    mirror: [u64; EVENT_COUNT],
    /// Pins the flusher to its creating thread (no `Send`/`Sync`).
    _not_send: PhantomData<*const ()>,
}

impl Flusher {
    /// Captures the calling thread's current row as the published
    /// baseline.
    #[must_use]
    pub fn new() -> Self {
        Flusher {
            mirror: slot_counts(thread_slot()),
            _not_send: PhantomData,
        }
    }

    /// Publishes everything this thread recorded since the last flush
    /// into `sink` as one atomic update. Returns `true` if there was
    /// anything to publish.
    ///
    /// Call at cross-event consistency points: totals read back from the
    /// sink satisfy exactly the invariants that hold at every flush.
    pub fn flush<T: AtomicTotals>(&mut self, sink: &T) -> bool {
        let slot = thread_slot();
        let now = slot_counts(slot);
        let mut delta = [0u64; EVENT_COUNT];
        let mut any = false;
        for i in 0..EVENT_COUNT {
            delta[i] = now[i] - self.mirror[i];
            any |= delta[i] != 0;
        }
        if any {
            sink.add(slot, &delta);
            self.mirror = now;
        }
        any
    }

    /// Re-captures the thread's row as the published baseline *without*
    /// publishing the difference.
    ///
    /// Thread slots wrap modulo the registry size, so a burst of
    /// short-lived worker threads can land on this thread's slot and bump
    /// its row from outside. If those workers flushed their own deltas,
    /// a later `flush` here would publish the same counts a second time.
    /// Call `resync` after such a window (e.g. after joining a spawn
    /// scope) to discard the foreign counts from this flusher's view.
    pub fn resync(&mut self) {
        self.mirror = slot_counts(thread_slot());
    }
}

impl Default for Flusher {
    fn default() -> Self {
        Flusher::new()
    }
}

/// Flattened histogram state: `HIST_COUNT` histograms of `HIST_BUCKETS`
/// buckets each, in [`crate::Hist::ALL`] order — the unit an
/// [`AtomicHists`] sink adds and snapshots atomically.
pub type HistState = [[u64; HIST_BUCKETS]; HIST_COUNT];

/// An atomically updatable, atomically readable set of histogram bucket
/// totals — [`AtomicTotals`]' counterpart for the log2 histograms.
///
/// Implementations must make `add` atomic with respect to `totals`, so a
/// reported histogram is a state the aggregate actually held (no bucket
/// from one flush mixed with buckets from another). The Figure-6-backed
/// implementation is `nbsp_core::telemetry::WideHists`, which flattens
/// all `HIST_COUNT * HIST_BUCKETS` buckets into one `WideVar` so the
/// whole snapshot is a single WLL.
pub trait AtomicHists {
    /// Atomically adds `delta` (element-wise) to the bucket totals, as
    /// the thread identified by `slot`.
    fn add(&self, slot: usize, delta: &HistState);

    /// An atomic (non-torn) snapshot of every histogram's buckets.
    fn totals(&self) -> HistState;
}

/// Per-thread flush state for the histogram matrix: the [`Flusher`]
/// pattern applied to [`crate::histogram`] buckets instead of event
/// counters. Same contract: create on the recording thread, `!Send`,
/// publishes only the delta since the previous flush.
#[derive(Debug)]
pub struct HistFlusher {
    mirror: HistState,
    /// Pins the flusher to its creating thread (no `Send`/`Sync`).
    _not_send: PhantomData<*const ()>,
}

impl HistFlusher {
    /// Captures the calling thread's current histogram rows as the
    /// published baseline.
    #[must_use]
    pub fn new() -> Self {
        HistFlusher {
            mirror: slot_buckets(thread_slot()),
            _not_send: PhantomData,
        }
    }

    /// Publishes every bucket increment this thread observed since the
    /// last flush into `sink` as one atomic update. Returns `true` if
    /// there was anything to publish.
    pub fn flush<T: AtomicHists>(&mut self, sink: &T) -> bool {
        let now = slot_buckets(thread_slot());
        let mut delta = [[0u64; HIST_BUCKETS]; HIST_COUNT];
        let mut any = false;
        for h in 0..HIST_COUNT {
            for b in 0..HIST_BUCKETS {
                delta[h][b] = now[h][b] - self.mirror[h][b];
                any |= delta[h][b] != 0;
            }
        }
        if any {
            sink.add(thread_slot(), &delta);
            self.mirror = now;
        }
        any
    }

    /// Re-captures the thread's histogram rows as the published baseline
    /// without publishing the difference — [`Flusher::resync`] for the
    /// histogram matrix, with the same slot-wrap rationale.
    pub fn resync(&mut self) {
        self.mirror = slot_buckets(thread_slot());
    }
}

impl Default for HistFlusher {
    fn default() -> Self {
        HistFlusher::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;
    use crate::registry::add;
    use std::sync::Mutex;

    /// Reference sink: a mutex-guarded vector. The real Figure-6 sink
    /// lives in nbsp-core (layering); this one pins down the contract.
    #[derive(Default)]
    struct LockedTotals(Mutex<[u64; EVENT_COUNT]>);

    impl AtomicTotals for LockedTotals {
        fn add(&self, _slot: usize, delta: &[u64; EVENT_COUNT]) {
            let mut t = self.0.lock().unwrap();
            for i in 0..EVENT_COUNT {
                t[i] += delta[i];
            }
        }

        fn totals(&self) -> [u64; EVENT_COUNT] {
            *self.0.lock().unwrap()
        }
    }

    /// Reference hist sink, mirroring [`LockedTotals`].
    #[derive(Default)]
    struct LockedHists(Mutex<HistState>);

    impl AtomicHists for LockedHists {
        fn add(&self, _slot: usize, delta: &HistState) {
            let mut t = self.0.lock().unwrap();
            for h in 0..HIST_COUNT {
                for b in 0..HIST_BUCKETS {
                    t[h][b] += delta[h][b];
                }
            }
        }

        fn totals(&self) -> HistState {
            *self.0.lock().unwrap()
        }
    }

    #[test]
    fn hist_flush_publishes_only_the_delta_since_creation() {
        use crate::hist::{bucket_of, observe_impl, Hist};
        // BackoffDepth value 40 lands in a bucket nothing else in this
        // binary observes.
        observe_impl(Hist::BackoffDepth, 40); // pre-existing: not flushed
        let mut f = HistFlusher::new();
        let sink = LockedHists::default();
        assert!(!f.flush(&sink), "nothing observed yet");
        observe_impl(Hist::BackoffDepth, 40);
        observe_impl(Hist::BackoffDepth, 40);
        assert!(f.flush(&sink));
        let b = bucket_of(40);
        assert_eq!(sink.totals()[Hist::BackoffDepth as usize][b], 2);
        assert!(!f.flush(&sink), "already published");
    }

    #[test]
    fn flush_publishes_only_the_delta_since_creation() {
        // HelpReceived is recorded by nothing else in this test binary.
        add(Event::HelpReceived, 100); // pre-existing: must NOT be flushed
        let mut f = Flusher::new();
        let sink = LockedTotals::default();
        assert!(!f.flush(&sink), "nothing recorded yet");
        add(Event::HelpReceived, 3);
        assert!(f.flush(&sink));
        assert_eq!(sink.totals()[Event::HelpReceived.index()], 3);
        assert!(!f.flush(&sink), "already published");
        add(Event::HelpReceived, 2);
        assert!(f.flush(&sink));
        assert_eq!(sink.totals()[Event::HelpReceived.index()], 5);
    }
}
