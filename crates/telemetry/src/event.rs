//! The fixed event vocabulary of the `nbsp` stack.
//!
//! The set is a closed enum rather than string keys on purpose: the hot
//! paths index a flat counter matrix with `event as usize`, which keeps a
//! `record` call at one thread-local read plus one relaxed `fetch_add` —
//! no hashing, no interning, no allocation.

/// Number of distinct events ([`Event::ALL`]'s length, and the width `W`
/// of the Figure-6 wide variable a consistent snapshot publisher uses).
pub const EVENT_COUNT: usize = 19;

/// One countable occurrence inside the LL/SC stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Event {
    /// A successful SC (Figures 4, 6 or 7): the linearization point of a
    /// read-modify-write landed.
    ScSuccess = 0,
    /// A failed SC: an interfering successful SC (or a doomed sequence's
    /// early exit) forced a retry.
    ScFail = 1,
    /// An LL/WLL that had to be abandoned: Figure 6's
    /// `WllOutcome::InterferedBy`, Figure 7's `fail` flag, or a Figure-3
    /// RLL/RSC round that went around again.
    LlRestart = 2,
    /// A Figure-6 helper installed a segment on behalf of a stalled SC
    /// (recorded by the *helper*).
    HelpGiven = 3,
    /// A Figure-6 SC owner found one of its segments already copied by
    /// somebody else (recorded by the *owner*).
    HelpReceived = 4,
    /// The simulator's adversary injected a spurious RSC failure
    /// (the paper's "RSC may occasionally fail" restriction).
    RscSpurious = 5,
    /// One bounded spin step of [`Backoff`](../nbsp_core/backoff/index.html).
    BackoffSpin = 6,
    /// A backoff step past the spin bound: the loser yielded its quantum.
    BackoffYield = 7,
    /// A backoff state crossed from spinning into the saturated
    /// (yield-only) regime — sustained contention on one variable.
    BackoffSaturated = 8,
    /// Figure 7's feedback mechanism issued a tag from the front of the
    /// tag queue.
    TagAlloc = 9,
    /// The serving subsystem's admission controller admitted a request
    /// (one successful token-spending SC on the bucket word).
    ServeAdmit = 10,
    /// The admission controller shed a request: the token bucket was
    /// empty at the request's intended arrival time.
    ServeShed = 11,
    /// A fabric worker's steal committed: one SC on a victim's head
    /// cursor transferred a batch of queued requests to the thief.
    ServeSteal = 12,
    /// A fabric worker's local admission sub-bucket went empty and was
    /// refilled in a batch from the global wide bucket.
    ServeRefill = 13,
    /// A dynamic-joining provider admitted a late-arriving process: one
    /// successful CAS on a free membership slot.
    JoinAdmit = 14,
    /// A dynamic-joining provider retired a process, returning its
    /// membership slot (and its cells) to the pool.
    Retire = 15,
    /// A durable provider ran its crash-recovery procedure after a
    /// simulated power failure rolled memory back to the persisted image.
    CrashRecover = 16,
    /// An LLX reader (or SCX owner) helped another process's in-progress
    /// SCX to completion — the BER help-on-read rule (recorded by the
    /// *helper*).
    LlxHelp = 17,
    /// An SCX aborted: one of its linked records was frozen or mutated by
    /// a conflicting SCX between the LLX and the freeze phase.
    ScxAbort = 18,
}

impl Event {
    /// Every event, in index order (`ALL[i] as usize == i`).
    pub const ALL: [Event; EVENT_COUNT] = [
        Event::ScSuccess,
        Event::ScFail,
        Event::LlRestart,
        Event::HelpGiven,
        Event::HelpReceived,
        Event::RscSpurious,
        Event::BackoffSpin,
        Event::BackoffYield,
        Event::BackoffSaturated,
        Event::TagAlloc,
        Event::ServeAdmit,
        Event::ServeShed,
        Event::ServeSteal,
        Event::ServeRefill,
        Event::JoinAdmit,
        Event::Retire,
        Event::CrashRecover,
        Event::LlxHelp,
        Event::ScxAbort,
    ];

    /// The event's row index in the counter matrix.
    #[must_use]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name (used in report tables and the JSON schema).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Event::ScSuccess => "sc_success",
            Event::ScFail => "sc_fail",
            Event::LlRestart => "ll_restart",
            Event::HelpGiven => "help_given",
            Event::HelpReceived => "help_received",
            Event::RscSpurious => "rsc_spurious",
            Event::BackoffSpin => "backoff_spin",
            Event::BackoffYield => "backoff_yield",
            Event::BackoffSaturated => "backoff_saturated",
            Event::TagAlloc => "tag_alloc",
            Event::ServeAdmit => "serve_admit",
            Event::ServeShed => "serve_shed",
            Event::ServeSteal => "serve_steal",
            Event::ServeRefill => "serve_refill",
            Event::JoinAdmit => "join_admit",
            Event::Retire => "retire",
            Event::CrashRecover => "crash_recover",
            Event::LlxHelp => "llx_help",
            Event::ScxAbort => "scx_abort",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_in_index_order() {
        for (i, e) in Event::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Event::ALL.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), EVENT_COUNT);
    }
}
