//! `nbsp-telemetry`: wait-free observability for the `nbsp` stack.
//!
//! The non-blocking primitives this workspace builds (Figures 3–7 of the
//! source paper) live or die by contention behaviour that is invisible
//! from outside: SC failure rates, help traffic, tag recycling, backoff
//! escalation. This crate counts those occurrences with the same
//! discipline the primitives themselves use — **per-process state, no
//! shared hot path**:
//!
//! * [`record`]/[`record_n`] bump one relaxed `AtomicU64` in the calling
//!   thread's own cache-padded row — wait-free, no CAS, no loop;
//! * [`observe`] does the same into log2-bucket histograms
//!   ([`Hist::Retries`], [`Hist::BackoffDepth`]);
//! * [`racy_totals`]/[`histogram`] are the cheap racy readers;
//! * [`Flusher`] + [`AtomicTotals`] give *consistent* (non-torn)
//!   snapshots by publishing per-thread deltas atomically — the
//!   Figure-6-backed sink implementation is `nbsp_core::telemetry::WideTotals`.
//!
//! With the `telemetry` cargo feature disabled, [`record`], [`record_n`]
//! and [`observe`] are empty `#[inline]` functions and the subsystem
//! vanishes from the hot paths (verified by experiment E11's overhead
//! gate). The counter matrix and readers stay compiled either way so
//! reporting code builds under both configurations — with the feature
//! off they simply always read zero.

#![forbid(unsafe_code)]
#![warn(missing_docs, rust_2018_idioms)]

pub mod event;
pub mod hist;
pub mod registry;
pub mod snapshot;

pub use event::{Event, EVENT_COUNT};
pub use hist::{bucket_label, bucket_of, histogram, Hist, HIST_BUCKETS, HIST_COUNT};
pub use hist::slot_buckets;
pub use registry::{racy_totals, slot_counts, thread_slot, MAX_SLOTS};
pub use snapshot::{AtomicHists, AtomicTotals, Flusher, HistFlusher, HistState};

/// Whether telemetry recording is compiled in.
///
/// `const` so callers can gate more expensive bookkeeping (attempt
/// counters, per-cell delta capture) behind a branch the compiler deletes
/// when the feature is off.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "telemetry")
}

/// Counts one occurrence of `event` for the calling thread. Wait-free:
/// one thread-local read plus one relaxed `fetch_add` on the thread's
/// own cache-padded row. With the `telemetry` feature off this is an
/// empty inline stub.
#[inline]
pub fn record(event: Event) {
    #[cfg(feature = "telemetry")]
    registry::add(event, 1);
    #[cfg(not(feature = "telemetry"))]
    let _ = event;
}

/// Counts `n` occurrences of `event` at once (same cost as [`record`]).
#[inline]
pub fn record_n(event: Event, n: u64) {
    #[cfg(feature = "telemetry")]
    registry::add(event, n);
    #[cfg(not(feature = "telemetry"))]
    let _ = (event, n);
}

/// Adds one observation of `value` to histogram `hist` (log2-bucketed).
/// Wait-free like [`record`]; empty stub with the feature off.
#[inline]
pub fn observe(hist: Hist, value: u64) {
    #[cfg(feature = "telemetry")]
    hist::observe_impl(hist, value);
    #[cfg(not(feature = "telemetry"))]
    let _ = (hist, value);
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    #[test]
    fn record_reaches_the_matrix() {
        // RscSpurious is recorded by nothing else in this test binary.
        let slot = thread_slot();
        let before = slot_counts(slot)[Event::RscSpurious.index()];
        record(Event::RscSpurious);
        record_n(Event::RscSpurious, 4);
        assert_eq!(slot_counts(slot)[Event::RscSpurious.index()], before + 5);
    }

    #[test]
    fn enabled_reflects_the_feature() {
        assert!(enabled());
    }
}
