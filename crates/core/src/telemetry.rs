//! The paper-dogfooded consistent-snapshot sink: an
//! [`AtomicTotals`](nbsp_telemetry::AtomicTotals) implementation whose
//! storage is a Figure-6 [`WideVar`].
//!
//! `nbsp-telemetry` sits at the bottom of the workspace layering so every
//! hot path can record into it; it therefore cannot depend on this
//! crate's constructions and only defines the sink *trait*. This module
//! closes the loop: the aggregated per-event totals live in one W-word
//! wide variable (`W` = [`EVENT_COUNT`]), every
//! [`add`](WideTotals::add) is a WLL → element-wise add → SC retry loop,
//! and every [`totals`](WideTotals::totals) is a single WLL — so a
//! reader's W-word snapshot is atomic by Theorem 4, with no locks
//! anywhere in the observability path. The subsystem that watches the
//! non-blocking primitives is itself built from them.
//!
//! Note the pleasant recursion: the flush path's own WLL/SC activity is
//! *also* recorded (as `ScSuccess`/`ScFail`/`LlRestart`/help events) —
//! telemetry observes itself. Readers who need flush-path-free invariants
//! should state them over events the flush path never records
//! (`TagAlloc`, `RscSpurious`), as the snapshot stress test does.

use std::sync::Arc;

use nbsp_memsim::ProcId;
use nbsp_telemetry::{
    AtomicHists, AtomicTotals, HistState, EVENT_COUNT, HIST_BUCKETS, HIST_COUNT, MAX_SLOTS,
};

use crate::wide::{WideDomain, WideKeep, WideVar};
use crate::{Backoff, Native, Result};

/// Tag width of the totals variable. 16 tag bits leave 48 value bits per
/// event word — at one event per nanosecond that is over three days of
/// counting before wraparound, far beyond any benchmark run.
const TAG_BITS: u32 = 16;

/// Largest per-event total the sink can represent (48 value bits).
pub const MAX_TOTAL: u64 = (1 << (64 - TAG_BITS)) - 1;

/// Aggregated per-event totals stored in a Figure-6 wide variable.
///
/// Create one per measurement run, hand it to each recording thread's
/// [`Flusher`](nbsp_telemetry::Flusher), and read consistent totals with
/// [`WideTotals::totals`] at any time — including while flushes are in
/// flight. Compare [`nbsp_telemetry::racy_totals`], which can tear across
/// events; experiment E11 measures the difference.
#[derive(Debug)]
pub struct WideTotals {
    var: WideVar<Native>,
}

impl WideTotals {
    /// Creates a zeroed sink able to serve `max_procs` concurrently
    /// flushing threads (the Figure-6 domain's `N`; also the size of its
    /// announce array, so don't oversize it gratuitously).
    ///
    /// Thread slots map to domain pids modulo `max_procs`; keep
    /// `max_procs` at or above the number of flushing threads so no two
    /// threads share an announce row. [`WideTotals::with_all_slots`]
    /// always satisfies that.
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::InvalidDomain`] for `max_procs == 0`.
    pub fn new(max_procs: usize) -> Result<Self> {
        let domain = WideDomain::<Native>::new(max_procs, EVENT_COUNT, TAG_BITS)?;
        let var = domain.var(&[0u64; EVENT_COUNT])?;
        Ok(WideTotals { var })
    }

    /// A sink sized for every possible telemetry slot
    /// ([`MAX_SLOTS`]): thread slots map to domain pids 1:1, so any mix
    /// of flushing threads is safe.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`WideTotals::new`] (none in
    /// practice for this fixed size).
    pub fn with_all_slots() -> Result<Self> {
        Self::new(MAX_SLOTS)
    }

    /// The underlying wide variable's domain (for audits and tests).
    #[must_use]
    pub fn domain(&self) -> &Arc<WideDomain<Native>> {
        self.var.domain()
    }
}

impl AtomicTotals for WideTotals {
    /// WLL → add → SC, retried until the SC lands. Lock-free: a retry
    /// implies another flusher's SC succeeded.
    fn add(&self, slot: usize, delta: &[u64; EVENT_COUNT]) {
        let mem = Native;
        let pid = ProcId::new(slot % self.var.domain().n());
        let mut keep = WideKeep::default();
        let mut buf = [0u64; EVENT_COUNT];
        let mut backoff = Backoff::new();
        loop {
            if !self.var.wll(&mem, &mut keep, &mut buf).is_success() {
                backoff.spin();
                continue;
            }
            let mut new = [0u64; EVENT_COUNT];
            for i in 0..EVENT_COUNT {
                // Saturate rather than wrap into the tag bits; at 48 bits
                // per event this is unreachable in any real run.
                new[i] = (buf[i] + delta[i]).min(MAX_TOTAL);
            }
            if self.var.sc(&mem, pid, &keep, &new) {
                return;
            }
            backoff.spin();
        }
    }

    /// One WLL (retried on interference): a W-word atomic snapshot by
    /// Theorem 4 — every total is from the same linearization point.
    fn totals(&self) -> [u64; EVENT_COUNT] {
        let v = self.var.read(&Native);
        let mut out = [0u64; EVENT_COUNT];
        out.copy_from_slice(&v);
        out
    }
}

/// Width of the [`WideHists`] variable: every bucket of every histogram
/// flattened into one Figure-6 variable, so a full histogram snapshot is
/// a single WLL.
const HIST_WORDS: usize = HIST_COUNT * HIST_BUCKETS;

/// Aggregated histogram buckets stored in one Figure-6 wide variable —
/// [`WideTotals`]' counterpart for the log2 histograms.
///
/// The `HIST_COUNT * HIST_BUCKETS` buckets are flattened row-major into a
/// `W = 32`-word [`WideVar`], so [`WideHists::totals`] returns, in one
/// WLL, a state the aggregate actually held: no bucket from one flush
/// mixed with buckets from another, and cross-histogram invariants (e.g.
/// "one backoff-depth observation per recorded retry burst") hold exactly
/// as they did at some flush boundary.
#[derive(Debug)]
pub struct WideHists {
    var: WideVar<Native>,
}

impl WideHists {
    /// Creates a zeroed sink able to serve `max_procs` concurrently
    /// flushing threads (see [`WideTotals::new`] for the slot-to-pid
    /// mapping caveat).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::Error::InvalidDomain`] for `max_procs == 0`.
    pub fn new(max_procs: usize) -> Result<Self> {
        let domain = WideDomain::<Native>::new(max_procs, HIST_WORDS, TAG_BITS)?;
        let var = domain.var(&[0u64; HIST_WORDS])?;
        Ok(WideHists { var })
    }

    /// A sink sized for every possible telemetry slot ([`MAX_SLOTS`]), so
    /// any mix of flushing threads is safe.
    ///
    /// # Errors
    ///
    /// Propagates construction errors from [`WideHists::new`] (none in
    /// practice for this fixed size).
    pub fn with_all_slots() -> Result<Self> {
        Self::new(MAX_SLOTS)
    }
}

impl AtomicHists for WideHists {
    /// WLL → add → SC, retried until the SC lands (see
    /// [`WideTotals::add`]).
    fn add(&self, slot: usize, delta: &HistState) {
        let mem = Native;
        let pid = ProcId::new(slot % self.var.domain().n());
        let mut keep = WideKeep::default();
        let mut buf = [0u64; HIST_WORDS];
        let mut backoff = Backoff::new();
        loop {
            if !self.var.wll(&mem, &mut keep, &mut buf).is_success() {
                backoff.spin();
                continue;
            }
            let mut new = [0u64; HIST_WORDS];
            for (h, row) in delta.iter().enumerate() {
                for (b, d) in row.iter().enumerate() {
                    let i = h * HIST_BUCKETS + b;
                    new[i] = (buf[i] + d).min(MAX_TOTAL);
                }
            }
            if self.var.sc(&mem, pid, &keep, &new) {
                return;
            }
            backoff.spin();
        }
    }

    /// One WLL (retried on interference): all buckets of all histograms
    /// from the same linearization point (Theorem 4).
    fn totals(&self) -> HistState {
        let v = self.var.read(&Native);
        let mut out = [[0u64; HIST_BUCKETS]; HIST_COUNT];
        for h in 0..HIST_COUNT {
            out[h].copy_from_slice(&v[h * HIST_BUCKETS..(h + 1) * HIST_BUCKETS]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_telemetry::Event;

    #[test]
    fn hist_add_accumulates_and_totals_snapshot() {
        let t = WideHists::new(2).unwrap();
        let mut d = [[0u64; HIST_BUCKETS]; HIST_COUNT];
        d[0][3] = 5;
        d[1][7] = 2;
        t.add(0, &d);
        t.add(1, &d);
        let got = t.totals();
        assert_eq!(got[0][3], 10);
        assert_eq!(got[1][7], 4);
        assert_eq!(got[0][0], 0);
    }

    #[test]
    fn add_accumulates_and_totals_snapshot() {
        let t = WideTotals::new(2).unwrap();
        let mut d = [0u64; EVENT_COUNT];
        d[Event::ScSuccess.index()] = 3;
        d[Event::TagAlloc.index()] = 1;
        t.add(0, &d);
        t.add(1, &d);
        let got = t.totals();
        assert_eq!(got[Event::ScSuccess.index()], 6);
        assert_eq!(got[Event::TagAlloc.index()], 2);
        assert_eq!(got[Event::ScFail.index()], 0);
    }

    #[test]
    fn concurrent_adds_never_lose_counts() {
        let t = WideTotals::with_all_slots().unwrap();
        const PER: u64 = 500;
        std::thread::scope(|s| {
            for _ in 0..4 {
                let t = &t;
                s.spawn(move || {
                    let slot = nbsp_telemetry::thread_slot();
                    let mut d = [0u64; EVENT_COUNT];
                    d[Event::HelpGiven.index()] = 1;
                    d[Event::HelpReceived.index()] = 1;
                    for _ in 0..PER {
                        t.add(slot, &d);
                    }
                });
            }
        });
        let got = t.totals();
        assert_eq!(got[Event::HelpGiven.index()], 4 * PER);
        assert_eq!(got[Event::HelpReceived.index()], 4 * PER);
    }

    #[test]
    fn snapshots_are_never_torn_under_concurrent_flushes() {
        // Writers always add equal amounts to two events; a torn reader
        // would observe them unequal. The WLL-based totals must not.
        let t = WideTotals::with_all_slots().unwrap();
        let stop = std::sync::atomic::AtomicBool::new(false);
        std::thread::scope(|s| {
            for _ in 0..3 {
                let t = &t;
                let stop = &stop;
                s.spawn(move || {
                    let slot = nbsp_telemetry::thread_slot();
                    let mut d = [0u64; EVENT_COUNT];
                    d[Event::TagAlloc.index()] = 7;
                    d[Event::RscSpurious.index()] = 7;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        t.add(slot, &d);
                    }
                });
            }
            let t = &t;
            let stop = &stop;
            s.spawn(move || {
                for _ in 0..2_000 {
                    let got = t.totals();
                    assert_eq!(
                        got[Event::TagAlloc.index()],
                        got[Event::RscSpurious.index()],
                        "torn snapshot from the Figure-6 reader"
                    );
                }
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            });
        });
    }
}
