//! **Figure 3 / Theorem 1** — CAS emulated from RLL/RSC.
//!
//! > *"RLL and RSC can be used to implement a CAS operation for small
//! > variables that is wait-free provided there are not infinitely many
//! > spurious failures during one CAS operation; that terminates in constant
//! > time after the last spurious failure; and that has no space overhead."*
//!
//! Each emulated-CAS word holds a tag and a value
//! (`record tag: tagtype; val: valtype end`); the tag detects intervening
//! successful stores, so a failed comparison can be linearized at the first
//! successful RSC after the initial read, and a successful RSC linearizes
//! the whole CAS at its own step. The RLL→RSC window contains **no other
//! memory access**, satisfying the hardware restriction (and the simulator's
//! strict mode can verify that).

use nbsp_memsim::{Capability, Processor, SimWord};

use crate::cas_provider::SyncMemory;
use crate::{CasFamily, CasMemory, Result, TagLayout};

/// A shared word supporting CAS on machines that only provide RLL/RSC.
///
/// The word stores `layout.val_bits()` bits of user value; the remaining
/// `layout.tag_bits()` bits hold the tag that makes the emulation safe
/// against ABA (up to tag wraparound, quantified in experiment E5).
///
/// ```
/// use nbsp_core::{EmuCasWord, TagLayout};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// // A machine with RLL/RSC but *no* CAS — e.g. a MIPS R4000.
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::RllRscOnly)
///     .build();
/// let p = machine.processor(0);
///
/// let w = EmuCasWord::new(TagLayout::half(), 5)?;
/// assert!(w.cas(&p, 5, 6));   // CAS where the hardware has none
/// assert!(!w.cas(&p, 5, 7));  // old value no longer matches
/// assert_eq!(w.read(&p), 6);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct EmuCasWord {
    cell: SimWord,
    layout: TagLayout,
}

impl EmuCasWord {
    /// Creates an emulated-CAS word with the given tag/value split and
    /// initial value (stored with tag 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`](crate::Error::ValueTooLarge) if `initial` does not fit the
    /// layout's value field.
    pub fn new(layout: TagLayout, initial: u64) -> Result<Self> {
        let word = layout.pack(0, initial)?;
        Ok(EmuCasWord {
            cell: SimWord::new(word),
            layout,
        })
    }

    /// The word's tag/value layout.
    #[must_use]
    pub fn layout(&self) -> TagLayout {
        self.layout
    }

    /// Reads the current value (one plain load; linearizes at the load).
    #[must_use]
    pub fn read(&self, proc: &Processor) -> u64 {
        self.layout.val(proc.read(&self.cell))
    }

    /// Figure 3's `CAS(addr, old, new)`: iff the word's value equals `old`,
    /// replace it with `new` (and a fresh tag) and return `true`.
    ///
    /// Terminates provided finitely many spurious RSC failures occur during
    /// the call, in constant time after the last one.
    ///
    /// # Panics
    ///
    /// Panics if `old` or `new` does not fit the layout's value field, or if
    /// the machine provides no RLL/RSC.
    #[must_use]
    pub fn cas(&self, proc: &Processor, old: u64, new: u64) -> bool {
        let max = self.layout.max_val();
        assert!(old <= max, "old value {old} exceeds layout maximum {max}");
        assert!(new <= max, "new value {new} exceeds layout maximum {max}");

        // Line 1: read the current word (tag and value together).
        let oldword = proc.read(&self.cell);
        // Line 2: value mismatch — the CAS fails, linearized at the read.
        if self.layout.val(oldword) != old {
            return false;
        }
        // Line 3: old = new — nothing to change; success, linearized at the
        // read. (This shortcut is also what guarantees that any CAS reaching
        // the loop really changes the value, which the failure-linearization
        // argument relies on.)
        if old == new {
            return true;
        }
        // Line 4: prepare the new word with the next tag.
        let newword = self
            .layout
            .pack_unchecked(self.layout.tag_succ(self.layout.tag(oldword)), new);
        // Lines 5–6: retry until the word visibly changes or our RSC lands.
        loop {
            if proc.rll(&self.cell) != oldword {
                // Some successful RSC intervened; since every successful RSC
                // changes the word (fresh tag), the value differed from
                // `old` at that point — fail there.
                return false;
            }
            if proc.rsc(&self.cell, newword) {
                return true;
            }
            // Recorded only after the RSC returns, outside the RLL→RSC
            // no-access window that strict mode polices.
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
    }
}

/// Storage family for the Figure-3 emulation: cells are [`SimWord`]s whose
/// high `TAG_BITS` bits hold the emulation's internal tag, leaving
/// `64 - TAG_BITS` usable value bits for the layer above.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EmuFamily<const TAG_BITS: u32>;

impl<const TAG_BITS: u32> EmuFamily<TAG_BITS> {
    pub(crate) fn layout() -> TagLayout {
        TagLayout::for_width(TAG_BITS, 64 - TAG_BITS, 64)
            .expect("TAG_BITS must be in 1..=63")
    }
}

impl<const TAG_BITS: u32> CasFamily for EmuFamily<TAG_BITS> {
    type Cell = SimWord;
    const VALUE_BITS: u32 = 64 - TAG_BITS;

    fn make_cell(value: u64) -> SimWord {
        let layout = Self::layout();
        let word = layout
            .pack(0, value)
            .unwrap_or_else(|_| panic!("value {value} exceeds {} value bits", 64 - TAG_BITS));
        SimWord::new(word)
    }
}

/// [`CasMemory`] built from Figure 3: "a machine with CAS" synthesized on
/// RLL/RSC-only hardware, usable underneath every CAS-based construction in
/// this crate.
///
/// `TAG_BITS` is the width of the emulation's internal tag; the layer above
/// sees cells of `64 - TAG_BITS` usable bits ([`CasFamily::VALUE_BITS`]).
/// Stacking Figure 4 on top of this type reproduces the paper's "two tags in
/// one word" configuration, whose cost experiment E5 measures.
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, EmuCas, EmuFamily};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::RllRscOnly)
///     .build();
/// let p = machine.processor(0);
/// let mem = EmuCas::<16>::new(&p);
/// let cell = EmuFamily::<16>::make_cell(3);
/// assert!(mem.cas(&cell, 3, 4));
/// assert_eq!(mem.load(&cell), 4);
/// ```
#[derive(Debug)]
pub struct EmuCas<'a, const TAG_BITS: u32> {
    proc: &'a Processor,
}

impl<'a, const TAG_BITS: u32> EmuCas<'a, TAG_BITS> {
    /// Wraps a simulated processor as an emulated-CAS accessor.
    #[must_use]
    pub fn new(proc: &'a Processor) -> Self {
        EmuCas { proc }
    }

    /// Like [`EmuCas::new`], but verifies up front that the machine
    /// provides the RLL/RSC pair Figure 3 is built on, so the hot-path ops
    /// cannot hit the simulator's instruction-set panic later.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedOp`](crate::Error::UnsupportedOp) if
    /// the machine's instruction set has no RLL/RSC.
    pub fn try_new(proc: &'a Processor) -> Result<Self> {
        let caps = proc.instruction_set().capability();
        if !caps.contains(Capability::RLL_RSC) {
            return Err(crate::Error::UnsupportedOp {
                op: "rll",
                have: caps.to_string(),
            });
        }
        Ok(EmuCas { proc })
    }

    /// The underlying processor (for reading stats).
    #[must_use]
    pub fn processor(&self) -> &Processor {
        self.proc
    }

    fn layout() -> TagLayout {
        EmuFamily::<TAG_BITS>::layout()
    }
}

impl<const TAG_BITS: u32> CasMemory for EmuCas<'_, TAG_BITS> {
    type Family = EmuFamily<TAG_BITS>;

    fn load(&self, cell: &SimWord) -> u64 {
        Self::layout().val(self.proc.read(cell))
    }

    fn store(&self, cell: &SimWord, value: u64) {
        // An unconditional store still must not break the tag discipline, so
        // it is an RLL/RSC loop that always installs a fresh tag.
        let layout = Self::layout();
        assert!(
            value <= layout.max_val(),
            "value {value} exceeds {} value bits",
            64 - TAG_BITS
        );
        loop {
            let old = self.proc.rll(cell);
            let new = layout.pack_unchecked(layout.tag_succ(layout.tag(old)), value);
            if self.proc.rsc(cell, new) {
                return;
            }
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
    }

    fn cas(&self, cell: &SimWord, old: u64, new: u64) -> bool {
        let layout = Self::layout();
        let max = layout.max_val();
        assert!(old <= max, "old value {old} exceeds layout maximum {max}");
        assert!(new <= max, "new value {new} exceeds layout maximum {max}");
        // Figure 3, operating on a borrowed cell.
        let oldword = self.proc.read(cell);
        if layout.val(oldword) != old {
            return false;
        }
        if old == new {
            return true;
        }
        let newword = layout.pack_unchecked(layout.tag_succ(layout.tag(oldword)), new);
        loop {
            if self.proc.rll(cell) != oldword {
                return false;
            }
            if self.proc.rsc(cell, newword) {
                return true;
            }
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
    }
}

impl<const TAG_BITS: u32> SyncMemory for EmuCas<'_, TAG_BITS> {
    /// What the emulation *offers upward* is exactly CAS; the RLL/RSC pair
    /// beneath is an implementation detail, and exposing it raw would let
    /// a caller silently trample the reservation the emulation depends on.
    /// Weak-op requests therefore get a typed
    /// [`Error::UnsupportedOp`](crate::Error::UnsupportedOp) (satellite:
    /// this used to be an unconditional simulator panic).
    fn capabilities(&self) -> Capability {
        Capability::CAS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::{AccessBetween, InstructionSet, Machine, SpuriousMode};

    fn rll_machine(n: usize) -> Machine {
        Machine::builder(n)
            .instruction_set(InstructionSet::RllRscOnly)
            .build()
    }

    #[test]
    fn cas_success_and_failure() {
        let m = rll_machine(1);
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::half(), 1).unwrap();
        assert!(w.cas(&p, 1, 2));
        assert!(!w.cas(&p, 1, 3));
        assert!(w.cas(&p, 2, 3));
        assert_eq!(w.read(&p), 3);
    }

    #[test]
    fn cas_old_equals_new_is_a_read() {
        let m = rll_machine(1);
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::half(), 5).unwrap();
        let before = p.stats();
        assert!(w.cas(&p, 5, 5));
        let after = p.stats();
        // Line 3 shortcut: no RLL/RSC issued at all.
        assert_eq!(after.rll, before.rll);
        assert_eq!(after.rsc_attempts, before.rsc_attempts);
        assert!(!w.cas(&p, 6, 6));
    }

    #[test]
    fn cas_survives_spurious_failures() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::Budget { per_proc: 10 })
            .build();
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::half(), 0).unwrap();
        assert!(w.cas(&p, 0, 1)); // must terminate despite 10 injected failures
        assert_eq!(p.stats().rsc_spurious, 10);
        assert_eq!(w.read(&p), 1);
    }

    #[test]
    fn cas_respects_strict_no_access_window() {
        // Under AccessBetween::Panic the algorithm must never access memory
        // between RLL and RSC. If Figure 3 violated restriction #1 this
        // test would panic.
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .access_between(AccessBetween::Panic)
            .build();
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::half(), 7).unwrap();
        assert!(w.cas(&p, 7, 8));
        assert!(!w.cas(&p, 7, 9));
    }

    #[test]
    #[should_panic(expected = "exceeds layout maximum")]
    fn cas_rejects_oversized_value() {
        let m = rll_machine(1);
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let _ = w.cas(&p, 0, 16);
    }

    #[test]
    fn new_rejects_oversized_initial() {
        let layout = TagLayout::new(60, 4).unwrap();
        assert!(matches!(
            EmuCasWord::new(layout, 16),
            Err(crate::Error::ValueTooLarge { value: 16, max: 15 })
        ));
        assert!(EmuCasWord::new(layout, 15).is_ok());
    }

    #[test]
    fn concurrent_emulated_cas_counter_is_exact() {
        let m = rll_machine(4);
        let w = EmuCasWord::new(TagLayout::half(), 0).unwrap();
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for _ in 0..2_500 {
                        loop {
                            let v = w.read(&p);
                            if w.cas(&p, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(TagLayout::half().val(w.cell.peek()), 10_000);
    }

    #[test]
    fn emu_cas_memory_value_bits() {
        assert_eq!(EmuFamily::<16>::VALUE_BITS, 48);
        assert_eq!(EmuFamily::<32>::VALUE_BITS, 32);
    }

    #[test]
    fn emu_cas_memory_store_is_unconditional() {
        let m = rll_machine(1);
        let p = m.processor(0);
        let mem = EmuCas::<8>::new(&p);
        let cell = EmuFamily::<8>::make_cell(1);
        mem.store(&cell, 9);
        assert_eq!(mem.load(&cell), 9);
        mem.store(&cell, 9); // same value: still must succeed
        assert_eq!(mem.load(&cell), 9);
    }

    #[test]
    fn emu_cas_memory_concurrent_counter() {
        let m = rll_machine(4);
        let cell = EmuFamily::<16>::make_cell(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let cell = &cell;
                s.spawn(move || {
                    let mem = EmuCas::<16>::new(&p);
                    for _ in 0..2_000 {
                        loop {
                            let v = mem.load(cell);
                            if mem.cas(cell, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(
            TagLayout::for_width(16, 48, 64).unwrap().val(cell.peek()),
            8_000
        );
    }

    #[test]
    fn try_new_reports_missing_rll_rsc_as_typed_error() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let err = EmuCas::<16>::try_new(&p).unwrap_err();
        assert!(matches!(
            err,
            crate::Error::UnsupportedOp { op: "rll", .. }
        ));
        let m2 = rll_machine(1);
        let p2 = m2.processor(0);
        assert!(EmuCas::<16>::try_new(&p2).is_ok());
    }

    #[test]
    fn emu_cas_sync_memory_offers_only_cas() {
        use crate::SyncMemory;
        let m = rll_machine(1);
        let p = m.processor(0);
        let mem = EmuCas::<16>::new(&p);
        assert_eq!(mem.capabilities(), Capability::CAS);
        let cell = EmuFamily::<16>::make_cell(0);
        assert!(matches!(
            mem.try_rll(&cell),
            Err(crate::Error::UnsupportedOp { op: "rll", .. })
        ));
        assert!(matches!(
            mem.try_swap(&cell, 1),
            Err(crate::Error::UnsupportedOp { op: "swap", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "does not provide RLL/RSC")]
    fn emulated_cas_needs_rll_rsc() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let w = EmuCasWord::new(TagLayout::half(), 0).unwrap();
        let _ = w.cas(&p, 0, 1);
    }
}
