//! **Ablation (experiment E8)** — LL/VL/SC *without* the paper's interface
//! modification.
//!
//! Section 3.2 argues that passing a pointer to a private `keep` word to LL
//! "obviates the need to search for information associated with the variable
//! being accessed, thereby avoiding a fundamental space-time tradeoff that
//! would render the implementation impractical". This module implements the
//! road *not* taken, in both directions of that tradeoff, so the claim can
//! be measured rather than assumed:
//!
//! * [`PerVarKeepVar`] spends **space**: each variable owns an `N`-entry
//!   keep array indexed by process id — Θ(NT) extra words for T variables
//!   (vs. zero for [`CasLlSc`](crate::CasLlSc)), and at most one LL–SC
//!   sequence per process per variable.
//! * [`RegistryKeepVar`] spends **time**: a shared registry maps
//!   (process, variable) to the kept word, so every operation pays a lookup
//!   — and because the registry needs its own synchronization, the result
//!   is not even non-blocking. This is the "impractical" corner the paper
//!   warns about; it exists here purely as a measured baseline.
//!
//! Both use the same tag discipline as Figure 4; only the *association
//! mechanism* differs, which is exactly the variable E8 isolates.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use nbsp_memsim::sched::{self, AccessKind};
use nbsp_memsim::{CachePadded, ProcId};

use crate::{Error, Result, TagLayout};

/// Schedule-point before an access to the shared `cell`. The keep slots
/// ([`PerVarKeepVar::keeps`]) and the registry's per-`(process, variable)`
/// map entries are written and read only by their owning process, so only
/// the cell needs a yield for model checking; the registry's `RwLock` is
/// never held across a yield.
#[inline]
fn hook(cell: &AtomicU64, kind: AccessKind) {
    let _ = sched::yield_point(std::ptr::from_ref(cell) as usize, kind);
}

/// Figure-4 LL/VL/SC with a per-variable keep array instead of
/// caller-supplied keeps: the space side of the tradeoff (Θ(N) per
/// variable).
///
/// ```
/// use nbsp_core::keep_search::PerVarKeepVar;
/// use nbsp_core::TagLayout;
/// use nbsp_memsim::ProcId;
///
/// let v = PerVarKeepVar::new(4, TagLayout::half(), 7)?;
/// let p = ProcId::new(1);
/// let x = v.ll(p);
/// assert!(v.vl(p));
/// assert!(v.sc(p, x + 1));
/// assert_eq!(v.read(), 8);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct PerVarKeepVar {
    cell: AtomicU64,
    /// `keeps[p]` is written by `p`'s LL and read by `p`'s VL/SC — never by
    /// another process. Padded so that the per-process slots (which each
    /// process hits on every operation) do not false-share; this is
    /// exactly the per-process-slot pattern the announce arrays fix too.
    keeps: Vec<CachePadded<AtomicU64>>,
    layout: TagLayout,
}

impl PerVarKeepVar {
    /// Creates a variable for `n` processes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDomain`] if `n` is zero, or
    /// [`Error::ValueTooLarge`] if `initial` does not fit the layout.
    pub fn new(n: usize, layout: TagLayout, initial: u64) -> Result<Self> {
        if n == 0 {
            return Err(Error::InvalidDomain {
                what: "n (number of processes) must be positive",
            });
        }
        let word = layout.pack(0, initial)?;
        Ok(PerVarKeepVar {
            cell: AtomicU64::new(word),
            keeps: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            layout,
        })
    }

    /// Extra words this variable reserves for keep storage (`N`) — the
    /// space cost E8 charts against T.
    #[must_use]
    pub fn space_overhead_words(&self) -> usize {
        self.keeps.len()
    }

    /// LL: stores the observed word in this variable's slot for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn ll(&self, p: ProcId) -> u64 {
        // Acquire on the shared cell (pairs with the release CAS in `sc`);
        // the keep slot is process-private, so Relaxed is exact there.
        hook(&self.cell, AccessKind::Read);
        let w = self.cell.load(Ordering::Acquire);
        self.keeps[p.index()].store(w, Ordering::Relaxed);
        self.layout.val(w)
    }

    /// VL against the stored keep for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn vl(&self, p: ProcId) -> bool {
        // Single-cell coherence decides the comparison; see CasLlSc::vl.
        let keep = self.keeps[p.index()].load(Ordering::Relaxed);
        hook(&self.cell, AccessKind::Read);
        keep == self.cell.load(Ordering::Acquire)
    }

    /// SC against the stored keep for `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `new` does not fit the layout.
    #[must_use]
    pub fn sc(&self, p: ProcId, new: u64) -> bool {
        assert!(
            new <= self.layout.max_val(),
            "value {new} exceeds layout maximum {}",
            self.layout.max_val()
        );
        let keep = self.keeps[p.index()].load(Ordering::Relaxed);
        let neww = self
            .layout
            .pack_unchecked(self.layout.tag_succ(self.layout.tag(keep)), new);
        // AcqRel: success is the release publication point (same argument
        // as CasLlSc::sc); failure only needs the acquire read.
        hook(&self.cell, AccessKind::Cas);
        self.cell
            .compare_exchange(keep, neww, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Reads the current value.
    #[must_use]
    pub fn read(&self) -> u64 {
        hook(&self.cell, AccessKind::Read);
        self.layout.val(self.cell.load(Ordering::Acquire))
    }
}

/// Shared keep registry: maps (process, variable id) to the kept word.
/// Create one, share it among all [`RegistryKeepVar`]s.
#[derive(Debug, Default)]
pub struct KeepRegistry {
    map: RwLock<HashMap<(usize, u64), u64>>,
}

impl KeepRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(KeepRegistry::default())
    }

    /// Number of live (process, variable) associations (for space audits).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.read().unwrap().len()
    }

    /// True iff no associations are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.read().unwrap().is_empty()
    }
}

/// Figure-4 LL/VL/SC with registry lookup instead of caller-supplied keeps:
/// the time side of the tradeoff (every operation searches a shared map,
/// which itself needs blocking synchronization).
///
/// ```
/// use nbsp_core::keep_search::{KeepRegistry, RegistryKeepVar};
/// use nbsp_core::TagLayout;
/// use nbsp_memsim::ProcId;
///
/// let registry = KeepRegistry::new();
/// let v = RegistryKeepVar::new(&registry, 1, TagLayout::half(), 3)?;
/// let p = ProcId::new(0);
/// let x = v.ll(p);
/// assert!(v.sc(p, x + 1));
/// assert_eq!(v.read(), 4);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct RegistryKeepVar {
    cell: AtomicU64,
    id: u64,
    registry: Arc<KeepRegistry>,
    layout: TagLayout,
}

static NEXT_VAR_ID: AtomicU64 = AtomicU64::new(0);

impl RegistryKeepVar {
    /// Creates a variable using `registry` for keep association.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`] if `initial` does not fit the
    /// layout. (`_n` is accepted for interface symmetry; the registry does
    /// not need it.)
    pub fn new(
        registry: &Arc<KeepRegistry>,
        _n: usize,
        layout: TagLayout,
        initial: u64,
    ) -> Result<Self> {
        let word = layout.pack(0, initial)?;
        Ok(RegistryKeepVar {
            cell: AtomicU64::new(word),
            id: NEXT_VAR_ID.fetch_add(1, Ordering::Relaxed),
            registry: Arc::clone(registry),
            layout,
        })
    }

    /// LL: records the observed word in the registry under (p, var).
    #[must_use]
    pub fn ll(&self, p: ProcId) -> u64 {
        hook(&self.cell, AccessKind::Read);
        let w = self.cell.load(Ordering::Acquire);
        self.registry
            .map
            .write()
            .unwrap()
            .insert((p.index(), self.id), w);
        self.layout.val(w)
    }

    /// VL via registry lookup.
    ///
    /// # Panics
    ///
    /// Panics if `p` has no LL in progress on this variable.
    #[must_use]
    pub fn vl(&self, p: ProcId) -> bool {
        let keep = *self
            .registry
            .map
            .read()
            .unwrap()
            .get(&(p.index(), self.id))
            .expect("VL without a preceding LL");
        hook(&self.cell, AccessKind::Read);
        keep == self.cell.load(Ordering::Acquire)
    }

    /// SC via registry lookup; removes the association.
    ///
    /// # Panics
    ///
    /// Panics if `p` has no LL in progress on this variable, or `new` does
    /// not fit the layout.
    #[must_use]
    pub fn sc(&self, p: ProcId, new: u64) -> bool {
        assert!(
            new <= self.layout.max_val(),
            "value {new} exceeds layout maximum {}",
            self.layout.max_val()
        );
        let keep = self
            .registry
            .map
            .write()
            .unwrap()
            .remove(&(p.index(), self.id))
            .expect("SC without a preceding LL");
        let neww = self
            .layout
            .pack_unchecked(self.layout.tag_succ(self.layout.tag(keep)), new);
        hook(&self.cell, AccessKind::Cas);
        self.cell
            .compare_exchange(keep, neww, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Reads the current value.
    #[must_use]
    pub fn read(&self) -> u64 {
        hook(&self.cell, AccessKind::Read);
        self.layout.val(self.cell.load(Ordering::Acquire))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_var_basic_cycle() {
        let v = PerVarKeepVar::new(2, TagLayout::half(), 1).unwrap();
        let p = ProcId::new(0);
        assert_eq!(v.ll(p), 1);
        assert!(v.vl(p));
        assert!(v.sc(p, 2));
        assert_eq!(v.read(), 2);
    }

    #[test]
    fn per_var_sc_fails_after_interference() {
        let v = PerVarKeepVar::new(2, TagLayout::half(), 0).unwrap();
        let (p0, p1) = (ProcId::new(0), ProcId::new(1));
        let _ = v.ll(p0);
        let _ = v.ll(p1);
        assert!(v.sc(p0, 1));
        assert!(!v.vl(p1));
        assert!(!v.sc(p1, 2));
    }

    #[test]
    fn per_var_space_is_n_words() {
        let v = PerVarKeepVar::new(16, TagLayout::half(), 0).unwrap();
        assert_eq!(v.space_overhead_words(), 16);
    }

    #[test]
    fn per_var_only_one_sequence_per_process() {
        // The structural limitation: a second LL by p overwrites the first
        // sequence — exactly what the keep-pointer interface avoids.
        let v = PerVarKeepVar::new(1, TagLayout::half(), 0).unwrap();
        let p = ProcId::new(0);
        let _ = v.ll(p); // sequence 1
        let _ = v.ll(p); // silently replaces it
        assert!(v.sc(p, 1)); // "sequence 1" cannot be finished separately
    }

    #[test]
    fn per_var_concurrent_counter_is_exact() {
        let v = PerVarKeepVar::new(4, TagLayout::half(), 0).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = &v;
                s.spawn(move || {
                    let p = ProcId::new(t);
                    for _ in 0..5_000 {
                        loop {
                            let x = v.ll(p);
                            if v.sc(p, x + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.read(), 20_000);
    }

    #[test]
    fn registry_basic_cycle() {
        let r = KeepRegistry::new();
        let v = RegistryKeepVar::new(&r, 1, TagLayout::half(), 5).unwrap();
        let p = ProcId::new(0);
        assert_eq!(v.ll(p), 5);
        assert!(v.vl(p));
        assert!(v.sc(p, 6));
        assert_eq!(v.read(), 6);
        assert!(r.is_empty(), "SC must clean up the association");
    }

    #[test]
    fn registry_grows_with_live_sequences() {
        let r = KeepRegistry::new();
        let a = RegistryKeepVar::new(&r, 2, TagLayout::half(), 0).unwrap();
        let b = RegistryKeepVar::new(&r, 2, TagLayout::half(), 0).unwrap();
        let _ = a.ll(ProcId::new(0));
        let _ = b.ll(ProcId::new(0));
        let _ = a.ll(ProcId::new(1));
        assert_eq!(r.len(), 3);
        assert!(a.sc(ProcId::new(0), 1));
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "without a preceding LL")]
    fn registry_vl_without_ll_panics() {
        let r = KeepRegistry::new();
        let v = RegistryKeepVar::new(&r, 1, TagLayout::half(), 0).unwrap();
        let _ = v.vl(ProcId::new(0));
    }

    #[test]
    fn registry_concurrent_counter_is_exact() {
        let r = KeepRegistry::new();
        let v = RegistryKeepVar::new(&r, 4, TagLayout::half(), 0).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = &v;
                s.spawn(move || {
                    let p = ProcId::new(t);
                    for _ in 0..2_000 {
                        loop {
                            let x = v.ll(p);
                            if v.sc(p, x + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.read(), 8_000);
    }
}
