//! A constant-time, bounded-space LL/VL/SC from CAS, after Blelloch & Wei.
//!
//! Figure 7 bounds space by recycling *tags* packed next to the value,
//! which costs value bits (the layout shrinks as `N` and `k` grow) and, as
//! written in the paper (line 10's plain-queue `delete(Q, t)`), an O(Nk)
//! scan per SC. Blelloch & Wei ("LL/SC and Atomic Copy: Constant Time,
//! Space Efficient Implementations using only pointer-width CAS",
//! arXiv:1911.09671) take the other branch of the design space: make the
//! shared word an *index into a pool of immutable version nodes*, announce
//! the index being read, and recycle nodes through a small per-process
//! pipeline whose reclamation work is spread one announce-cell scan step
//! per SC. Every operation is then **O(1) worst case** — no per-SC
//! revolution over the announce array, no tag field stealing value bits —
//! while space stays bounded at Θ(N²k) nodes total (Θ(Nk) per process).
//!
//! The shape implemented here (simplified to fixed `u64` values rather
//! than arbitrary-size buffers, matching the rest of this crate):
//!
//! * A [`ConstantDomain`] owns the node pool and the `N × k` announce
//!   array. A variable `X` is one CAS cell holding a node index.
//! * `LL`: read `X` → `idx`; announce `idx`; re-read `X` and fail the
//!   sequence if it moved (exactly Figure 7's lines 2–5, with a node
//!   index where Figure 7 has a tagged word). On success the announce
//!   *pins* the node: it cannot re-enter a free list while pinned.
//! * `SC`: take a fresh node from the private free list, write the new
//!   value into it, and `CAS(X, idx, fresh)`. The displaced node is
//!   *retired* into the process's reclamation pipeline. The announce cell
//!   is cleared only after the CAS, so the pin covers linearization.
//! * Reclamation: each SC also advances a private scan of the announce
//!   array by **one** cell and filters at most [`FILTER_PER_STEP`] retired
//!   nodes. A node retired during revolution `R` is checked only after the
//!   *complete* revolution `R + 1` has been scanned; any announcement that
//!   could still pin it is therefore observed and the node is recirculated
//!   instead of freed. This staggers Figure 7's per-SC O(Nk) feedback
//!   revolution across Nk SCs — the asymptotic gap E9 measures.
//!
//! Why no ABA: `CAS(X, idx, fresh)` can only succeed spuriously if `idx`
//! was displaced and later *reinstalled* between LL and SC. Reinstallation
//! requires `idx` to pass through a free list, which the pin (announce
//! placed before the LL's re-read, held until after the SC's CAS) forbids:
//! the full post-retirement revolution reads the announcing cell — all
//! announce/scan accesses are fully ordered, as in `bounded.rs` — and
//! recirculates the node. Hence SC succeeds iff `X` is untouched since LL.

use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use nbsp_memsim::{CachePadded, ProcId};

use crate::layout::low_mask;
use crate::{CasFamily, CasMemory, Error, Native, Result};

/// Retired nodes checked for liveness per SC. Any constant ≥ 2 keeps the
/// pipeline drained (at most `Nk + recirculations ≤ 3Nk` arrivals per
/// `Nk`-step revolution); 4 gives slack without a latency cliff.
const FILTER_PER_STEP: usize = 4;

/// Private free-list nodes per process: covers the ≤ `9Nk` nodes that can
/// sit in the three pipeline stages plus recirculations (see the module
/// docs), the `k` in-flight SCs, and a constant floor for tiny domains.
fn pool_size(n: usize, k: usize) -> usize {
    12 * n * k + 16
}

/// Shared state for the constant-time construction: the version-node pool
/// and the `N × k` announce array. All variables of a domain share it.
#[derive(Debug)]
pub struct ConstantDomain<F: CasFamily = Native> {
    n: usize,
    k: usize,
    max_vars: usize,
    /// `A[p][s]` at `announce[p * k + s]`, holding `node + 1` (0 = empty).
    /// Padded for the same writer-vs-scanner reason as `bounded.rs`.
    announce: Vec<CachePadded<F::Cell>>,
    /// Version nodes. Indices `0..max_vars` seed new variables; index
    /// `max_vars + p * pool ..` is process `p`'s initial free list.
    /// Unpadded: a node has exactly one writer between free and retired.
    nodes: Vec<F::Cell>,
    /// Bump allocator over the variable-seed region.
    next_var_node: AtomicUsize,
    claimed: Vec<CachePadded<AtomicBool>>,
    _family: PhantomData<fn() -> F>,
}

impl<F: CasFamily> ConstantDomain<F> {
    /// Creates a domain for `n` processes, each running at most `k`
    /// concurrent LL–SC sequences, supporting up to `max_vars` variables.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDomain`] if `n`, `k` or `max_vars` is zero,
    /// or if the node count does not fit the family's value width (node
    /// indices travel through `X` and the announce array as values).
    pub fn new(n: usize, k: usize, max_vars: usize) -> Result<Arc<Self>> {
        if n == 0 {
            return Err(Error::InvalidDomain {
                what: "n (number of processes) must be positive",
            });
        }
        if k == 0 {
            return Err(Error::InvalidDomain {
                what: "k (concurrent sequences per process) must be positive",
            });
        }
        if max_vars == 0 {
            return Err(Error::InvalidDomain {
                what: "max_vars must be positive",
            });
        }
        let total_nodes = max_vars + n * pool_size(n, k);
        if total_nodes as u64 >= low_mask(F::VALUE_BITS) || total_nodes > u32::MAX as usize {
            return Err(Error::InvalidDomain {
                what: "node pool too large for the family's value width",
            });
        }
        Ok(Arc::new(ConstantDomain {
            n,
            k,
            max_vars,
            announce: (0..n * k)
                .map(|_| CachePadded::new(F::make_cell(0)))
                .collect(),
            nodes: (0..total_nodes).map(|_| F::make_cell(0)).collect(),
            next_var_node: AtomicUsize::new(0),
            claimed: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            _family: PhantomData,
        }))
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Concurrent LL–SC sequences allowed per process.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Largest storable value: the family's full value width — unlike
    /// Figure 7, no bits are sacrificed to tag/counter/pid fields.
    #[must_use]
    pub fn max_val(&self) -> u64 {
        low_mask(F::VALUE_BITS)
    }

    /// Words of shared overhead: `N·k` announce cells plus the node pool
    /// (Θ(N²k) nodes — the space/time trade against Figure 7's Θ(N(k+T))).
    #[must_use]
    pub fn space_overhead_words(&self) -> usize {
        self.announce.len() + self.nodes.len()
    }

    /// Claims the per-process private state (LL slots, free list and the
    /// reclamation pipeline) for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already claimed — the private
    /// state must be exclusive to one thread.
    #[must_use]
    pub fn proc(self: &Arc<Self>, p: usize) -> ConstantProc<F> {
        assert!(p < self.n, "process id {p} out of range (n = {})", self.n);
        let was = self.claimed[p].swap(true, Ordering::SeqCst);
        assert!(!was, "process {p} claimed twice");
        let pool = pool_size(self.n, self.k);
        let base = (self.max_vars + p * pool) as u32;
        let nk = self.n * self.k;
        ConstantProc {
            p: ProcId::new(p),
            domain: Arc::clone(self),
            slots: (0..self.k).rev().collect(), // pop() yields 0 first
            free: (base..base + pool as u32).collect(),
            retired_new: Vec::with_capacity(pool),
            retired_old: Vec::with_capacity(pool),
            filtering: Vec::with_capacity(pool),
            stamps: HashMap::with_capacity(pool),
            rev: 1,
            filter_threshold: 0,
            scan: 0,
            scan_len: nk,
        }
    }

    /// Creates a variable holding `initial`, seeded from the domain's
    /// variable-node region.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`] if `initial` exceeds
    /// [`ConstantDomain::max_val`], or [`Error::InvalidDomain`] if the
    /// `max_vars` budget is exhausted.
    pub fn var<M: CasMemory<Family = F>>(
        self: &Arc<Self>,
        mem: &M,
        initial: u64,
    ) -> Result<ConstantVar<F>> {
        if initial > self.max_val() {
            return Err(Error::ValueTooLarge {
                value: initial,
                max: self.max_val(),
            });
        }
        let idx = self.next_var_node.fetch_add(1, Ordering::SeqCst);
        if idx >= self.max_vars {
            return Err(Error::InvalidDomain {
                what: "variable budget (max_vars) exhausted",
            });
        }
        mem.store(&self.nodes[idx], initial);
        Ok(ConstantVar {
            domain: Arc::clone(self),
            word: F::make_cell(idx as u64),
        })
    }

    fn announce_cell(&self, p: ProcId, slot: usize) -> &F::Cell {
        &self.announce[p.index() * self.k + slot]
    }
}

/// Private per-process state: LL slots, the node free list, and the
/// three-stage retired-node pipeline with its announce-scan cursor.
///
/// `Send` but not shareable: one per (process, domain), claimed via
/// [`ConstantDomain::proc`].
#[derive(Debug)]
pub struct ConstantProc<F: CasFamily = Native> {
    p: ProcId,
    domain: Arc<ConstantDomain<F>>,
    slots: Vec<usize>,
    free: Vec<u32>,
    /// Nodes retired during the current scan revolution.
    retired_new: Vec<u32>,
    /// Nodes retired during the previous revolution (aging).
    retired_old: Vec<u32>,
    /// Nodes whose post-retirement revolution is complete: checked against
    /// `stamps` at up to [`FILTER_PER_STEP`] per SC.
    filtering: Vec<u32>,
    /// `node → last revolution it was seen announced`, tracked **only**
    /// for nodes currently in this process's pipeline, so the map's size
    /// is bounded by the pipeline (≈ 9Nk), not by history.
    stamps: HashMap<u32, u64>,
    /// Current scan revolution (monotonic; u64 cannot wrap in practice).
    rev: u64,
    /// Stamps at or above this are "recently pinned": recirculate.
    filter_threshold: u64,
    /// Next announce cell the private scan will read.
    scan: usize,
    scan_len: usize,
}

impl<F: CasFamily> ConstantProc<F> {
    /// This process's identifier.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.p
    }

    /// Number of LL–SC sequences this process may still start.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.slots.len()
    }

    /// Nodes currently available for this process's SCs (audits/E9).
    #[must_use]
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Nodes currently aging through the reclamation pipeline (audits/E9).
    #[must_use]
    pub fn pipeline_nodes(&self) -> usize {
        self.retired_new.len() + self.retired_old.len() + self.filtering.len()
    }

    /// Aborts an LL–SC sequence without an SC: clears the announcement
    /// (releasing the pin) and returns the slot.
    pub fn cl<M: CasMemory<Family = F>>(&mut self, mem: &M, keep: ConstantKeep) {
        mem.store(self.domain.announce_cell(self.p, keep.slot), 0);
        self.slots.push(keep.slot);
    }

    /// One constant-time unit of reclamation work: read one announce cell,
    /// then liveness-check at most [`FILTER_PER_STEP`] filtered nodes.
    fn scan_step<M: CasMemory<Family = F>>(&mut self, mem: &M) {
        // Fully ordered read, mirroring bounded.rs's feedback path: the
        // pin-safety argument counts announce stores and scan reads in one
        // total order, which per-location acquire/release does not give.
        let a = mem.load(&self.domain.announce[self.scan]);
        if a != 0 {
            if let Some(s) = self.stamps.get_mut(&((a - 1) as u32)) {
                *s = self.rev;
            }
        }
        self.scan += 1;
        for _ in 0..FILTER_PER_STEP {
            let Some(x) = self.filtering.pop() else { break };
            self.filter_one(x);
        }
        if self.scan == self.scan_len {
            // Revolution boundary. The pipeline maths (module docs) keeps
            // `filtering` empty by now; drain defensively regardless so
            // the aging invariant ("one full revolution between retire and
            // check") survives any future re-tuning of FILTER_PER_STEP.
            debug_assert!(self.filtering.is_empty());
            while let Some(x) = self.filtering.pop() {
                self.filter_one(x);
            }
            self.filter_threshold = self.rev;
            self.rev += 1;
            std::mem::swap(&mut self.filtering, &mut self.retired_old);
            std::mem::swap(&mut self.retired_old, &mut self.retired_new);
            self.scan = 0;
        }
    }

    /// Frees `x` if no announcement could still pin it, else recirculates
    /// it for another revolution.
    fn filter_one(&mut self, x: u32) {
        let stamp = *self.stamps.get(&x).expect("pipeline node has a stamp");
        if stamp >= self.filter_threshold {
            self.retired_new.push(x); // pinned recently: try again later
        } else {
            self.stamps.remove(&x);
            self.free.push(x);
        }
    }
}

/// The per-sequence private state: the announce slot, the pinned node, and
/// the early-failure flag.
///
/// Deliberately **not** `Copy`/`Clone`: an SC or CL consumes it, so the
/// type system enforces that each slot (and its pin) is released once.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a ConstantKeep holds one of the process's k slots and pins a \
              node; finish the sequence with sc() or abort it with cl()"]
pub struct ConstantKeep {
    slot: usize,
    node: u64,
    fail: bool,
}

impl ConstantKeep {
    /// True iff the LL detected a race and condemned the sequence (any SC
    /// will fail). **The value the LL returned is untrustworthy when this
    /// is set** — the node may have been recycled mid-read; callers must
    /// retry, as [`ConstantVar::read`] does.
    #[must_use]
    pub fn failed(&self) -> bool {
        self.fail
    }
}

/// A shared variable of the constant-time construction: one CAS cell
/// holding the index of the node with the current value.
#[derive(Debug)]
pub struct ConstantVar<F: CasFamily = Native> {
    domain: Arc<ConstantDomain<F>>,
    word: F::Cell,
}

impl<F: CasFamily> ConstantVar<F> {
    /// The domain this variable belongs to.
    #[must_use]
    pub fn domain(&self) -> &Arc<ConstantDomain<F>> {
        &self.domain
    }

    fn check_domain(&self, me: &ConstantProc<F>) {
        assert!(
            Arc::ptr_eq(&self.domain, &me.domain),
            "process state belongs to a different domain"
        );
    }

    /// Starts an LL–SC sequence: reads the node index, announces it, and
    /// re-reads to detect a race. Like Figure 7, a detected race condemns
    /// the sequence (the SC will fail) instead of retrying internally, so
    /// LL stays wait-free. When `keep.failed()` the returned value must
    /// not be trusted (see [`ConstantKeep::failed`]).
    ///
    /// # Panics
    ///
    /// Panics if more than `k` sequences are in flight, or if `me` belongs
    /// to a different domain.
    pub fn ll<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &mut ConstantProc<F>,
    ) -> (u64, ConstantKeep) {
        self.check_domain(me);
        let slot = me.slots.pop().unwrap_or_else(|| {
            panic!(
                "process {} exceeded k = {} concurrent LL-SC sequences \
                 (finish with sc() or abort with cl())",
                me.p, me.domain.k
            )
        });
        // All three accesses fully ordered — same feedback-path argument
        // as bounded.rs lines 2–4: the announce must be visible to every
        // reclamation scan that starts after the re-read below.
        let idx = mem.load(&self.word);
        mem.store(me.domain.announce_cell(me.p, slot), idx + 1);
        let fail = mem.load(&self.word) != idx;
        if fail {
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
        // With the pin established (announce placed before a successful
        // re-read), the node's content is immutable until release.
        let value = mem.load(&me.domain.nodes[idx as usize]);
        (value, ConstantKeep { slot, node: idx, fail })
    }

    /// Validates the sequence: true iff an SC at this point could succeed.
    #[must_use]
    pub fn vl<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &ConstantProc<F>,
        keep: &ConstantKeep,
    ) -> bool {
        self.check_domain(me);
        !keep.fail && mem.load(&self.word) == keep.node
    }

    /// Finishes the sequence with a store-conditional of `new`: installs a
    /// fresh node via CAS, retiring the displaced one into the reclamation
    /// pipeline. O(1) worst case — including the amortized-by-construction
    /// single [`ConstantProc::scan_step`] of reclamation.
    ///
    /// # Panics
    ///
    /// Panics if `new` exceeds [`ConstantDomain::max_val`] or `me` belongs
    /// to a different domain.
    pub fn sc<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &mut ConstantProc<F>,
        keep: ConstantKeep,
        new: u64,
    ) -> bool {
        self.check_domain(me);
        let ok = if keep.fail {
            nbsp_telemetry::record(nbsp_telemetry::Event::ScFail);
            false
        } else {
            let fresh = me.free.pop().expect("free-pool invariant violated");
            mem.store(&me.domain.nodes[fresh as usize], new);
            let ok = mem.cas(&self.word, keep.node, u64::from(fresh));
            if ok {
                let retired = keep.node as u32;
                me.retired_new.push(retired);
                me.stamps.insert(retired, me.rev);
                nbsp_telemetry::record(nbsp_telemetry::Event::TagAlloc);
                nbsp_telemetry::record(nbsp_telemetry::Event::ScSuccess);
            } else {
                me.free.push(fresh);
                nbsp_telemetry::record(nbsp_telemetry::Event::ScFail);
            }
            ok
        };
        // Clear the announcement only now: the pin must cover the CAS
        // (the linearization point), or the no-ABA argument collapses.
        mem.store(me.domain.announce_cell(me.p, keep.slot), 0);
        me.slots.push(keep.slot);
        me.scan_step(mem);
        ok
    }

    /// Reads the current value: retries LL until it observes a race-free
    /// pin (a failed LL's value is untrustworthy here, unlike Figure 7
    /// where the value travels inside the word itself).
    pub fn read<M: CasMemory<Family = F>>(&self, mem: &M, me: &mut ConstantProc<F>) -> u64 {
        loop {
            let (v, keep) = self.ll(mem, me);
            let ok = !keep.fail;
            me.cl(mem, keep);
            if ok {
                return v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(n: usize, k: usize) -> Arc<ConstantDomain<Native>> {
        ConstantDomain::new(n, k, 8).unwrap()
    }

    #[test]
    fn ll_sc_roundtrip_and_persistence() {
        let d = domain(2, 2);
        let var = d.var(&Native, 7).unwrap();
        let mut p0 = d.proc(0);
        let (v, keep) = var.ll(&Native, &mut p0);
        assert_eq!(v, 7);
        assert!(!keep.failed());
        assert!(var.vl(&Native, &p0, &keep));
        assert!(var.sc(&Native, &mut p0, keep, 8));
        assert_eq!(var.read(&Native, &mut p0), 8);
        // The new value survives another full sequence.
        let (v, keep) = var.ll(&Native, &mut p0);
        assert_eq!(v, 8);
        assert!(var.sc(&Native, &mut p0, keep, 9));
        assert_eq!(var.read(&Native, &mut p0), 9);
    }

    #[test]
    fn stale_keep_fails_sc_and_vl() {
        let d = domain(2, 2);
        let var = d.var(&Native, 0).unwrap();
        let mut p0 = d.proc(0);
        let mut p1 = d.proc(1);
        let (_, keep0) = var.ll(&Native, &mut p0);
        // p1 completes a sequence in between: p0's keep is stale.
        let (_, keep1) = var.ll(&Native, &mut p1);
        assert!(var.sc(&Native, &mut p1, keep1, 1));
        assert!(!var.vl(&Native, &p0, &keep0));
        assert!(!var.sc(&Native, &mut p0, keep0, 2));
        assert_eq!(var.read(&Native, &mut p1), 1);
    }

    #[test]
    fn value_restoration_is_still_detected() {
        // The ABA case: the value returns to its LL-time state via fresh
        // nodes, so the node index differs and the CAS must fail.
        let d = domain(2, 2);
        let var = d.var(&Native, 5).unwrap();
        let mut p0 = d.proc(0);
        let mut p1 = d.proc(1);
        let (v, keep0) = var.ll(&Native, &mut p0);
        assert_eq!(v, 5);
        for target in [6, 5] {
            let (_, k1) = var.ll(&Native, &mut p1);
            assert!(var.sc(&Native, &mut p1, k1, target));
        }
        assert_eq!(var.read(&Native, &mut p1), 5); // value restored…
        assert!(!var.vl(&Native, &p0, &keep0)); // …but the sequence knows
        assert!(!var.sc(&Native, &mut p0, keep0, 7));
    }

    #[test]
    fn cl_releases_slot_and_pin() {
        let d = domain(1, 1);
        let var = d.var(&Native, 0).unwrap();
        let mut p0 = d.proc(0);
        assert_eq!(p0.free_slots(), 1);
        let (_, keep) = var.ll(&Native, &mut p0);
        assert_eq!(p0.free_slots(), 0);
        p0.cl(&Native, keep);
        assert_eq!(p0.free_slots(), 1);
        // The announce cell is cleared, so the next sequence starts clean.
        let (_, keep) = var.ll(&Native, &mut p0);
        assert!(var.sc(&Native, &mut p0, keep, 1));
    }

    #[test]
    fn k_concurrent_sequences_per_process() {
        let d = domain(1, 2);
        let a = d.var(&Native, 10).unwrap();
        let b = d.var(&Native, 20).unwrap();
        let mut p0 = d.proc(0);
        let (va, ka) = a.ll(&Native, &mut p0);
        let (vb, kb) = b.ll(&Native, &mut p0);
        assert_eq!((va, vb), (10, 20));
        assert!(a.sc(&Native, &mut p0, ka, 11));
        assert!(b.sc(&Native, &mut p0, kb, 21));
        assert_eq!(a.read(&Native, &mut p0), 11);
        assert_eq!(b.read(&Native, &mut p0), 21);
    }

    #[test]
    #[should_panic(expected = "exceeded k = 1")]
    fn exceeding_k_panics() {
        let d = domain(1, 1);
        let var = d.var(&Native, 0).unwrap();
        let mut p0 = d.proc(0);
        let (_, _keep) = var.ll(&Native, &mut p0);
        let _ = var.ll(&Native, &mut p0);
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn double_claim_panics() {
        let d = domain(2, 1);
        let _a = d.proc(0);
        let _b = d.proc(0);
    }

    #[test]
    fn var_budget_is_enforced() {
        let d = ConstantDomain::<Native>::new(1, 1, 2).unwrap();
        let _a = d.var(&Native, 0).unwrap();
        let _b = d.var(&Native, 0).unwrap();
        assert!(matches!(
            d.var(&Native, 0),
            Err(Error::InvalidDomain { .. })
        ));
    }

    #[test]
    fn full_width_values_are_supported() {
        // The headline advantage over Figure 7: no tag bits stolen.
        let d = domain(2, 1);
        assert_eq!(d.max_val(), u64::MAX);
        let var = d.var(&Native, u64::MAX).unwrap();
        let mut p0 = d.proc(0);
        assert_eq!(var.read(&Native, &mut p0), u64::MAX);
        let (_, keep) = var.ll(&Native, &mut p0);
        assert!(var.sc(&Native, &mut p0, keep, u64::MAX - 1));
        assert_eq!(var.read(&Native, &mut p0), u64::MAX - 1);
    }

    #[test]
    fn zero_params_rejected() {
        assert!(ConstantDomain::<Native>::new(0, 1, 1).is_err());
        assert!(ConstantDomain::<Native>::new(1, 0, 1).is_err());
        assert!(ConstantDomain::<Native>::new(1, 1, 0).is_err());
    }

    #[test]
    fn long_run_reclamation_keeps_the_pool_bounded() {
        // 50k sequential SCs cycle nodes through retire → age → filter →
        // free many times over; the free list must never approach empty
        // and the pipeline must stay within its designed bound.
        let d = domain(2, 2);
        let var = d.var(&Native, 0).unwrap();
        let mut p0 = d.proc(0);
        let pool = pool_size(2, 2);
        for i in 0..50_000u64 {
            let (v, keep) = var.ll(&Native, &mut p0);
            assert_eq!(v, i);
            assert!(var.sc(&Native, &mut p0, keep, i + 1));
            assert!(p0.free_nodes() > 0, "free pool exhausted at op {i}");
            assert!(
                p0.pipeline_nodes() <= pool,
                "pipeline overflowed at op {i}"
            );
        }
        assert_eq!(var.read(&Native, &mut p0), 50_000);
        // Conservation: the seed node captured at the first SC pays for
        // the node currently installed in the variable, so the process
        // still owns exactly its initial pool.
        assert_eq!(p0.free_nodes() + p0.pipeline_nodes(), pool);
    }

    #[test]
    fn contended_counter_is_exact() {
        let d = Arc::new(ConstantDomain::<Native>::new(3, 2, 4).unwrap());
        let var = Arc::new(d.var(&Native, 0).unwrap());
        const PER_THREAD: u64 = 20_000;
        std::thread::scope(|s| {
            for t in 0..2 {
                let d = Arc::clone(&d);
                let var = Arc::clone(&var);
                s.spawn(move || {
                    let mut me = d.proc(t);
                    for _ in 0..PER_THREAD {
                        loop {
                            let (v, keep) = var.ll(&Native, &mut me);
                            if keep.failed() {
                                me.cl(&Native, keep);
                                continue;
                            }
                            if var.sc(&Native, &mut me, keep, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let mut reader = d.proc(2);
        assert_eq!(var.read(&Native, &mut reader), 2 * PER_THREAD);
    }

    #[test]
    fn pinned_node_survives_aggressive_recycling() {
        // p0 pins a node via LL, then p1 churns tens of revolutions of
        // SCs. p0's node must not be recycled out from under it: vl stays
        // coherent (false — the var moved) and, crucially, the pinned
        // node's content still reads back as the LL-time value.
        let d = domain(2, 1);
        let var = d.var(&Native, 42).unwrap();
        let mut p0 = d.proc(0);
        let mut p1 = d.proc(1);
        let (v, keep) = var.ll(&Native, &mut p0);
        assert_eq!(v, 42);
        for i in 0..10_000u64 {
            let (_, k1) = var.ll(&Native, &mut p1);
            assert!(var.sc(&Native, &mut p1, k1, 100 + i));
        }
        // The pinned node was recirculated, never freed, so its content
        // is untouched by p1's 10k fresh-node installs.
        assert_eq!(Native.load(&d.nodes[keep.node as usize]), 42);
        assert!(!var.vl(&Native, &p0, &keep));
        assert!(!var.sc(&Native, &mut p0, keep, 0));
    }
}
