//! **Figure 7 / Theorem 5** — LL/VL/SC with *bounded* tags from CAS.
//!
//! > *"CAS can be used to implement constant-time LL, VL, and SC operations
//! > that allow k concurrent LL-SC sequences on T small variables with
//! > Θ(N(k+T)) space overhead."*
//!
//! The unbounded-tag constructions are safe only because wraparound takes
//! "about nine years"; this one removes even that caveat. Each word carries
//! a small tag (range `0..=2Nk`), a counter (range `0..=Nk`), the writer's
//! process id and the value. A *feedback mechanism* prevents premature tag
//! reuse:
//!
//! * every LL **announces** the word it read in a shared `N × k` array `A`
//!   (k slots per process — one per concurrent LL–SC sequence, managed by a
//!   private slot stack `S`);
//! * every SC reads one entry of `A` (round-robin via the private index `j`)
//!   and moves the tag it sees to the back of its private tag queue `Q`;
//! * the next tag is taken from the front of `Q`. With `2Nk + 1` tags per
//!   process, at most two tags leaving the front per SC, and a full scan of
//!   `A` every `Nk` SCs, a tag observed by any in-flight sequence cannot
//!   reach the front again until that sequence has finished — so the final
//!   CAS can never succeed when the normal LL/SC semantics say it must fail.
//!
//! The per-process counter (`cnt`, `last`) spaces out reuses of each
//! tag-counter pair so that the full scan is guaranteed to happen in
//! between. A `CL` operation lets the program *abort* a sequence, returning
//! its slot — necessary because each process may hold at most `k` at once.
//!
//! Space: `Nk` announce words shared by **all** variables, plus `N` `last`
//! counters per variable — Θ(N(k+T)) for T variables, versus Θ(N²T) for the
//! best prior bounded construction (experiment E3).

use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nbsp_memsim::{CachePadded, ProcId};

use crate::layout::{bits_for_count, low_mask};
use crate::tag_queue::ScanQueue;
use crate::{CasFamily, CasMemory, Error, Native, Result, TagQueue};

/// Which tag-queue implementation a [`BoundedDomain`]'s processes use for
/// Figure 7's `Q`.
///
/// Behaviourally identical (differentially tested in `tag_queue`); only the
/// per-SC cost differs. E9 registers one provider per policy so the gap is
/// measured rather than asserted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagPolicy {
    /// The paper's constant-time remark: circular doubly-linked list with a
    /// static index table ([`TagQueue`]). O(1) per SC. The default.
    Indexed,
    /// Figure 7 line 10 as literally written: a plain queue whose
    /// `delete(Q, t)` linearly searches all `2Nk + 1` tags
    /// ([`ScanQueue`]). O(Nk) per SC — the E9 ablation baseline.
    Scan,
}

/// Private dispatch between the two [`TagPolicy`] implementations. An enum
/// (not a trait object) so the hot calls stay branch-predictable and
/// allocation-free.
#[derive(Debug)]
enum TagStore {
    Indexed(TagQueue),
    Scan(ScanQueue),
}

impl TagStore {
    fn new(policy: TagPolicy, universe: usize) -> Self {
        match policy {
            TagPolicy::Indexed => TagStore::Indexed(TagQueue::new(universe)),
            TagPolicy::Scan => TagStore::Scan(ScanQueue::new(universe)),
        }
    }

    fn rotate(&mut self) -> u64 {
        match self {
            TagStore::Indexed(q) => q.rotate(),
            TagStore::Scan(q) => q.rotate(),
        }
    }

    fn move_to_back(&mut self, tag: u64) {
        match self {
            TagStore::Indexed(q) => q.move_to_back(tag),
            TagStore::Scan(q) => q.move_to_back(tag),
        }
    }

    fn to_vec(&self) -> Vec<u64> {
        match self {
            TagStore::Indexed(q) => q.to_vec(),
            TagStore::Scan(q) => q.to_vec(),
        }
    }
}

/// Field layout of a bounded-tag word: `tag | cnt | pid | val`
/// (Figure 7's `wordtype`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BoundedLayout {
    t_bits: u32,
    c_bits: u32,
    p_bits: u32,
    v_bits: u32,
}

impl BoundedLayout {
    fn new(n: usize, k: usize, value_bits: u32) -> Result<Self> {
        let nk = (n as u64) * (k as u64);
        let t_bits = bits_for_count(2 * nk + 1);
        let c_bits = bits_for_count(nk + 1);
        let p_bits = bits_for_count(n as u64);
        let used = t_bits + c_bits + p_bits;
        if used >= value_bits {
            return Err(Error::InvalidLayout {
                tag_bits: t_bits,
                val_bits: c_bits + p_bits,
                available: value_bits,
            });
        }
        Ok(BoundedLayout {
            t_bits,
            c_bits,
            p_bits,
            v_bits: value_bits - used,
        })
    }

    /// Bits available for user values.
    #[must_use]
    pub fn val_bits(self) -> u32 {
        self.v_bits
    }

    /// Bits spent on the bounded tag.
    #[must_use]
    pub fn tag_bits(self) -> u32 {
        self.t_bits
    }

    /// Largest storable value.
    #[must_use]
    pub fn max_val(self) -> u64 {
        low_mask(self.v_bits)
    }

    fn pack(self, tag: u64, cnt: u64, pid: usize, val: u64) -> u64 {
        debug_assert!(val <= self.max_val());
        (((tag << self.c_bits | cnt) << self.p_bits | pid as u64) << self.v_bits) | val
    }

    fn tag(self, word: u64) -> u64 {
        (word >> (self.c_bits + self.p_bits + self.v_bits)) & low_mask(self.t_bits)
    }

    fn cnt(self, word: u64) -> u64 {
        (word >> (self.p_bits + self.v_bits)) & low_mask(self.c_bits)
    }

    fn pid(self, word: u64) -> usize {
        ((word >> self.v_bits) & low_mask(self.p_bits)) as usize
    }

    fn val(self, word: u64) -> u64 {
        word & low_mask(self.v_bits)
    }
}

/// Shared per-(N, k) state: the announce array `A[0..N-1][0..k-1]` and the
/// word layout. All variables of a domain share it, which is what brings
/// the space overhead down to Θ(N(k+T)).
#[derive(Debug)]
pub struct BoundedDomain<F: CasFamily = Native> {
    n: usize,
    k: usize,
    layout: BoundedLayout,
    /// `A[p][s]` lives at `announce[p * k + s]`; padded because process `p`
    /// stores its slot on every LL while every *other* process's SC scans
    /// the array round-robin — the classic writer-vs-scanner false-sharing
    /// pattern.
    announce: Vec<CachePadded<F::Cell>>,
    claimed: Vec<CachePadded<AtomicBool>>,
    policy: TagPolicy,
    _family: PhantomData<fn() -> F>,
}

impl<F: CasFamily> BoundedDomain<F> {
    /// Creates a domain for `n` processes, each running at most `k`
    /// concurrent LL–SC sequences.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDomain`] if `n` or `k` is zero, or
    /// [`Error::InvalidLayout`] if the tag, counter and pid fields leave no
    /// room for values (the paper's caveat that this construction trades
    /// word space for boundedness).
    pub fn new(n: usize, k: usize) -> Result<Arc<Self>> {
        Self::new_with_policy(n, k, TagPolicy::Indexed)
    }

    /// Like [`BoundedDomain::new`], but selecting the tag-queue
    /// implementation (the E9 indexed-vs-scan ablation knob).
    ///
    /// # Errors
    ///
    /// Same as [`BoundedDomain::new`].
    pub fn new_with_policy(n: usize, k: usize, policy: TagPolicy) -> Result<Arc<Self>> {
        if n == 0 {
            return Err(Error::InvalidDomain {
                what: "n (number of processes) must be positive",
            });
        }
        if k == 0 {
            return Err(Error::InvalidDomain {
                what: "k (concurrent sequences per process) must be positive",
            });
        }
        let layout = BoundedLayout::new(n, k, F::VALUE_BITS)?;
        Ok(Arc::new(BoundedDomain {
            n,
            k,
            layout,
            announce: (0..n * k)
                .map(|_| CachePadded::new(F::make_cell(0)))
                .collect(),
            claimed: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            policy,
            _family: PhantomData,
        }))
    }

    /// The tag-queue implementation this domain's processes use.
    #[must_use]
    pub fn tag_policy(&self) -> TagPolicy {
        self.policy
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Concurrent LL–SC sequences allowed per process.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// The word layout in force for this domain.
    #[must_use]
    pub fn layout(&self) -> BoundedLayout {
        self.layout
    }

    /// Largest storable value given the domain's field widths.
    #[must_use]
    pub fn max_val(&self) -> u64 {
        self.layout.max_val()
    }

    /// Words of shared overhead owned by the domain itself: `N · k`
    /// announce words, independent of the number of variables.
    #[must_use]
    pub fn space_overhead_words(&self) -> usize {
        self.n * self.k
    }

    /// Claims the per-process private state (slot stack `S`, tag queue `Q`,
    /// scan index `j`) for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or already claimed — the private state
    /// must be exclusive to one thread, like the paper's private variables.
    #[must_use]
    pub fn proc(self: &Arc<Self>, p: usize) -> BoundedProc<F> {
        assert!(p < self.n, "process id {p} out of range (n = {})", self.n);
        let was = self.claimed[p].swap(true, Ordering::SeqCst);
        assert!(!was, "process {p} claimed twice");
        let nk = self.n * self.k;
        BoundedProc {
            p: ProcId::new(p),
            domain: Arc::clone(self),
            slots: (0..self.k).rev().collect(), // pop() yields 0 first
            q: TagStore::new(self.policy, 2 * nk + 1),
            j: 0,
        }
    }

    /// Creates a variable holding `initial` (word `(0, 0, 0, initial)` and
    /// `last[i] = 0`, the paper's initial conditions).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`] if `initial` exceeds
    /// [`BoundedDomain::max_val`].
    pub fn var(self: &Arc<Self>, initial: u64) -> Result<BoundedVar<F>> {
        if initial > self.layout.max_val() {
            return Err(Error::ValueTooLarge {
                value: initial,
                max: self.layout.max_val(),
            });
        }
        Ok(BoundedVar {
            domain: Arc::clone(self),
            word: F::make_cell(self.layout.pack(0, 0, 0, initial)),
            last: (0..self.n)
                .map(|_| CachePadded::new(F::make_cell(0)))
                .collect(),
        })
    }

    fn announce_cell(&self, p: ProcId, slot: usize) -> &F::Cell {
        &self.announce[p.index() * self.k + slot]
    }
}

/// Private per-process state for the bounded-tag construction: the slot
/// stack `S`, the tag queue `Q` and the announce-scan index `j`.
///
/// `Send` but not shareable: one per (process, domain), claimed via
/// [`BoundedDomain::proc`].
#[derive(Debug)]
pub struct BoundedProc<F: CasFamily = Native> {
    p: ProcId,
    domain: Arc<BoundedDomain<F>>,
    slots: Vec<usize>,
    q: TagStore,
    j: usize,
}

impl<F: CasFamily> BoundedProc<F> {
    /// This process's identifier.
    #[must_use]
    pub fn id(&self) -> ProcId {
        self.p
    }

    /// Number of LL–SC sequences this process may still start
    /// (`k` minus the sequences currently in flight).
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.slots.len()
    }

    /// Figure 7's `CL(keep)`: aborts an LL–SC sequence without an SC,
    /// returning its slot to the pool (line 7).
    pub fn cl(&mut self, keep: BoundedKeep) {
        self.slots.push(keep.slot);
    }

    /// The tag queue front-to-back (for audits and experiment E9).
    #[must_use]
    pub fn tag_queue_snapshot(&self) -> Vec<u64> {
        self.q.to_vec()
    }
}

/// The per-sequence private state (Figure 7's `keeptype`: a slot index and
/// the early-failure flag).
///
/// Deliberately **not** `Copy`/`Clone`: an SC or CL consumes it, so the
/// type system enforces that each sequence's slot is returned exactly once.
#[derive(Debug, PartialEq, Eq)]
#[must_use = "a BoundedKeep holds one of the process's k slots; finish the \
              sequence with sc() or abort it with cl()"]
pub struct BoundedKeep {
    slot: usize,
    fail: bool,
}

/// A small variable with bounded tags (Figure 7's `llsctype`: a packed word
/// plus the `last[0..N-1]` counter array).
///
/// ```
/// use nbsp_core::bounded::BoundedDomain;
/// use nbsp_core::Native;
///
/// let domain = BoundedDomain::<Native>::new(4, 2)?; // N = 4, k = 2
/// let var = domain.var(10)?;
/// let mut me = domain.proc(0);
/// let mem = Native;
///
/// let (value, keep) = var.ll(&mem, &mut me);
/// assert_eq!(value, 10);
/// assert!(var.vl(&mem, &me, &keep));
/// assert!(var.sc(&mem, &mut me, keep, 11));
/// assert_eq!(var.read(&mem, &mut me), 11);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct BoundedVar<F: CasFamily = Native> {
    domain: Arc<BoundedDomain<F>>,
    word: F::Cell,
    /// `last[p]` is read and written only by process `p` (lines 13–14), so
    /// no ordering matters — but un-padded, neighbouring processes'
    /// counters would share lines and their SC hot paths would false-share.
    last: Vec<CachePadded<F::Cell>>,
}

impl<F: CasFamily> BoundedVar<F> {
    /// The domain this variable belongs to.
    #[must_use]
    pub fn domain(&self) -> &Arc<BoundedDomain<F>> {
        &self.domain
    }

    /// Words of overhead attributable to this variable: its `last` array
    /// (`N` words). The packed word itself is the variable, not overhead.
    #[must_use]
    pub fn space_overhead_words(&self) -> usize {
        self.last.len()
    }

    fn check_domain(&self, me: &BoundedProc<F>) {
        assert!(
            Arc::ptr_eq(&self.domain, &me.domain),
            "process state belongs to a different BoundedDomain"
        );
    }

    /// Figure 7's `LL` (lines 1–5): starts an LL–SC sequence. Reads the
    /// word, announces it in `A[p][slot]`, re-reads to detect a race (the
    /// `fail` flag), and returns the value together with the sequence's
    /// [`BoundedKeep`].
    ///
    /// # Panics
    ///
    /// Panics if all `k` slots are in use (more concurrent sequences than
    /// the domain was configured for — the paper's explicit precondition),
    /// or if `me` belongs to a different domain.
    pub fn ll<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &mut BoundedProc<F>,
    ) -> (u64, BoundedKeep) {
        self.check_domain(me);
        let slot = me.slots.pop().unwrap_or_else(|| {
            panic!(
                "process {} exceeded k = {} concurrent LL-SC sequences \
                 (finish with sc() or abort with cl())",
                me.p, me.domain.k
            )
        }); // line 1
        // Line 2: fully ordered, like every load/store in the LL/scan
        // feedback path — see the line-3 comment below.
        let old = mem.load(&self.word); // line 2
        // Line 3: the announce store stays **fully ordered** (`store`, not
        // `store_release`). Figure 7's feedback argument is a *timing*
        // argument across processes: an announced word must become visible
        // to every other process's round-robin scan of `A` within one scan
        // revolution, so announce stores and scan reads must embed in one
        // total order — which per-location release/acquire does not give.
        mem.store(me.domain.announce_cell(me.p, slot), old); // line 3
        // Line 4: full-ordered re-read of the word, for the same reason —
        // it must be ordered after this process's own announce store in
        // the global order the feedback argument counts in.
        let fail = mem.load(&self.word) != old; // line 4
        if fail {
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
        (me.domain.layout.val(old), BoundedKeep { slot, fail }) // line 5
    }

    /// Figure 7's `VL` (line 6): true iff the word is unchanged since the
    /// LL — i.e. it still equals the announced word and no race was
    /// detected during the LL itself.
    #[must_use]
    pub fn vl<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &BoundedProc<F>,
        keep: &BoundedKeep,
    ) -> bool {
        self.check_domain(me);
        // Word read: acquire suffices (single-cell coherence decides the
        // comparison). Announce read: this process's own slot — only `p`
        // ever writes `A[p][slot]`, so program order alone makes the read
        // exact, and the weakest ordering is already correct.
        !keep.fail
            && mem.load_acquire(&self.word)
                == mem.load_acquire(me.domain.announce_cell(me.p, keep.slot))
    }

    /// Figure 7's `SC` (lines 8–15): finishes the sequence, attempting to
    /// install `newval` with a tag chosen by the feedback mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `newval` exceeds [`BoundedDomain::max_val`] or if `me`
    /// belongs to a different domain.
    #[must_use]
    pub fn sc<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        me: &mut BoundedProc<F>,
        keep: BoundedKeep,
        newval: u64,
    ) -> bool {
        self.check_domain(me);
        let layout = me.domain.layout;
        assert!(
            newval <= layout.max_val(),
            "value {newval} exceeds layout maximum {}",
            layout.max_val()
        );
        me.slots.push(keep.slot); // line 8
        if keep.fail {
            nbsp_telemetry::record(nbsp_telemetry::Event::ScFail);
            return false; // line 9
        }
        let nk = me.domain.n * me.domain.k;
        // Line 10: read one announce entry and retire its tag to the back
        // of the queue, so an in-flight sequence's tag is never re-issued.
        // Fully ordered (`load`, not `load_acquire`): this is the scan side
        // of the feedback mechanism — see the LL line-3 comment. Relaxing
        // the scan would let it return values stale enough to break the
        // tag-reuse bound.
        let observed = layout.tag(mem.load(&me.domain.announce[me.j]));
        debug_assert!((observed as usize) < 2 * nk + 1);
        me.q.move_to_back(observed);
        // Line 11: advance the round-robin scan of A.
        me.j = (me.j + 1) % nk;
        // Line 12: choose the least-recently-seen tag.
        let t = me.q.rotate();
        nbsp_telemetry::record(nbsp_telemetry::Event::TagAlloc);
        // Lines 13–14: next per-(process, variable) counter. `last[p]` is
        // touched only by process `p`, so any ordering is exact; the
        // acquire/release pair is just the weakest interface available.
        let cnt = (mem.load_acquire(&self.last[me.p.index()]) + 1) % (nk as u64 + 1);
        mem.store_release(&self.last[me.p.index()], cnt);
        // Line 15: install (t, cnt, p, newval) iff the word still equals
        // what this sequence's LL announced. The `old` fetch reads this
        // process's own announce slot (exact by program order). The CAS is
        // acquire-release: success is the linearization point and the
        // release publication of `newval`; whether it succeeds is decided
        // by the word's coherence order alone.
        let old = mem.load_acquire(me.domain.announce_cell(me.p, keep.slot));
        let ok = mem.cas_acqrel(
            &self.word,
            old,
            layout.pack(t, cnt, me.p.index(), newval),
        );
        nbsp_telemetry::record(if ok {
            nbsp_telemetry::Event::ScSuccess
        } else {
            nbsp_telemetry::Event::ScFail
        });
        ok
    }

    /// Reads the current value via a full LL (consuming and releasing a
    /// slot). Linearizes at the LL's first read.
    #[must_use]
    pub fn read<M: CasMemory<Family = F>>(&self, mem: &M, me: &mut BoundedProc<F>) -> u64 {
        let (v, keep) = self.ll(mem, me);
        me.cl(keep);
        v
    }

    /// Reads the current value with a single plain load, without consuming
    /// a slot. Linearizes at the load. (Not part of the paper's interface;
    /// a read-only operation needs no announce entry.)
    #[must_use]
    pub fn peek<M: CasMemory<Family = F>>(&self, mem: &M) -> u64 {
        self.domain.layout.val(mem.load_acquire(&self.word))
    }

    /// The word's current (tag, cnt, pid) triple, for audits and
    /// experiment E9.
    #[must_use]
    pub fn current_stamp<M: CasMemory<Family = F>>(&self, mem: &M) -> (u64, u64, usize) {
        let w = mem.load_acquire(&self.word);
        let l = self.domain.layout;
        (l.tag(w), l.cnt(w), l.pid(w))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmuCas, EmuFamily};
    use nbsp_memsim::{InstructionSet, Machine};

    fn setup(n: usize, k: usize) -> Arc<BoundedDomain<Native>> {
        BoundedDomain::<Native>::new(n, k).unwrap()
    }

    #[test]
    fn ll_vl_sc_cycle() {
        let d = setup(2, 1);
        let v = d.var(5).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        let (x, keep) = v.ll(&mem, &mut me);
        assert_eq!(x, 5);
        assert!(v.vl(&mem, &me, &keep));
        assert!(v.sc(&mem, &mut me, keep, 6));
        assert_eq!(v.read(&mem, &mut me), 6);
    }

    #[test]
    fn stale_keep_fails() {
        let d = setup(2, 2);
        let v = d.var(0).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        let (_, k1) = v.ll(&mem, &mut me);
        let (_, k2) = v.ll(&mem, &mut me);
        assert!(v.sc(&mem, &mut me, k1, 1));
        assert!(!v.vl(&mem, &me, &k2));
        assert!(!v.sc(&mem, &mut me, k2, 2));
        assert_eq!(v.read(&mem, &mut me), 1);
    }

    #[test]
    fn value_aba_is_detected() {
        // 0 -> 7 -> 0 by process 1 must still fail process 0's sequence.
        let d = setup(2, 1);
        let v = d.var(0).unwrap();
        let mut p0 = d.proc(0);
        let mut p1 = d.proc(1);
        let mem = Native;
        let (_, keep0) = v.ll(&mem, &mut p0);
        for target in [7, 0] {
            let (_, keep) = v.ll(&mem, &mut p1);
            assert!(v.sc(&mem, &mut p1, keep, target));
        }
        assert_eq!(v.read(&mem, &mut p1), 0); // restored…
        assert!(!v.vl(&mem, &p0, &keep0)); // …but detected
        assert!(!v.sc(&mem, &mut p0, keep0, 9));
    }

    #[test]
    fn cl_releases_slot() {
        let d = setup(1, 1);
        let v = d.var(0).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        assert_eq!(me.free_slots(), 1);
        let (_, keep) = v.ll(&mem, &mut me);
        assert_eq!(me.free_slots(), 0);
        me.cl(keep);
        assert_eq!(me.free_slots(), 1);
        // And the slot is genuinely reusable:
        let (_, keep) = v.ll(&mem, &mut me);
        assert!(v.sc(&mem, &mut me, keep, 1));
    }

    #[test]
    #[should_panic(expected = "exceeded k")]
    fn exceeding_k_sequences_panics() {
        let d = setup(1, 2);
        let v = d.var(0).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        let (_, _k1) = v.ll(&mem, &mut me);
        let (_, _k2) = v.ll(&mem, &mut me);
        let (_, _k3) = v.ll(&mem, &mut me); // third concurrent sequence
    }

    #[test]
    fn k_concurrent_sequences_work() {
        let d = setup(2, 3);
        let x = d.var(1).unwrap();
        let y = d.var(2).unwrap();
        let z = d.var(3).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        let (vx, kx) = x.ll(&mem, &mut me);
        let (vy, ky) = y.ll(&mem, &mut me);
        let (vz, kz) = z.ll(&mem, &mut me);
        assert!(z.sc(&mem, &mut me, kz, vz + 1));
        assert!(y.sc(&mem, &mut me, ky, vy + 1));
        assert!(x.sc(&mem, &mut me, kx, vx + 1));
        assert_eq!(x.read(&mem, &mut me), 2);
        assert_eq!(y.read(&mem, &mut me), 3);
        assert_eq!(z.read(&mem, &mut me), 4);
    }

    #[test]
    fn domain_and_var_validation() {
        assert!(BoundedDomain::<Native>::new(0, 1).is_err());
        assert!(BoundedDomain::<Native>::new(1, 0).is_err());
        // Enormous N*k leaves no value bits on a 64-bit word:
        assert!(BoundedDomain::<Native>::new(1 << 30, 1 << 20).is_err());
        let d = setup(2, 1);
        assert!(d.var(d.max_val()).is_ok());
        assert!(d.var(d.max_val() + 1).is_err());
    }

    #[test]
    #[should_panic(expected = "claimed twice")]
    fn proc_cannot_be_claimed_twice() {
        let d = setup(2, 1);
        let _a = d.proc(0);
        let _b = d.proc(0);
    }

    #[test]
    #[should_panic(expected = "different BoundedDomain")]
    fn foreign_proc_state_is_rejected() {
        let d1 = setup(2, 1);
        let d2 = setup(2, 1);
        let v = d1.var(0).unwrap();
        let mut me = d2.proc(0);
        let _ = v.ll(&Native, &mut me);
    }

    #[test]
    fn layout_fields_round_trip() {
        let l = BoundedLayout::new(4, 2, 64).unwrap();
        let w = l.pack(13, 7, 3, 999);
        assert_eq!(l.tag(w), 13);
        assert_eq!(l.cnt(w), 7);
        assert_eq!(l.pid(w), 3);
        assert_eq!(l.val(w), 999);
    }

    #[test]
    fn layout_sizes_match_paper_ranges() {
        // N = 4, k = 2: tags 0..=16 (5 bits), cnt 0..=8 (4 bits),
        // pid 0..4 (2 bits).
        let l = BoundedLayout::new(4, 2, 64).unwrap();
        assert_eq!(l.t_bits, 5);
        assert_eq!(l.c_bits, 4);
        assert_eq!(l.p_bits, 2);
        assert_eq!(l.v_bits, 64 - 11);
    }

    #[test]
    fn space_overhead_is_nk_plus_n_per_var() {
        let d = setup(8, 3);
        assert_eq!(d.space_overhead_words(), 24);
        let v = d.var(0).unwrap();
        assert_eq!(v.space_overhead_words(), 8);
    }

    #[test]
    fn concurrent_counter_is_exact_under_tiny_tag_universe() {
        // N = 2, k = 1 gives only five tags: the strongest reuse pressure.
        // Counter exactness proves no CAS ever succeeded when it should
        // have failed (Theorem 5's safety property).
        let d = setup(2, 1);
        let v = d.var(0).unwrap();
        std::thread::scope(|s| {
            for t in 0..2 {
                let v = &v;
                let mut me = d.proc(t);
                s.spawn(move || {
                    let mem = Native;
                    for _ in 0..20_000 {
                        loop {
                            let (x, keep) = v.ll(&mem, &mut me);
                            if v.sc(&mem, &mut me, keep, x + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.peek(&Native), 40_000);
    }

    #[test]
    fn multiple_vars_share_announce() {
        let d = setup(2, 2);
        let v1 = d.var(0).unwrap();
        let v2 = d.var(100).unwrap();
        let mut me = d.proc(0);
        let mem = Native;
        let (a, ka) = v1.ll(&mem, &mut me);
        let (b, kb) = v2.ll(&mem, &mut me);
        assert!(v2.sc(&mem, &mut me, kb, b + 1));
        assert!(v1.sc(&mem, &mut me, ka, a + 1));
        assert_eq!(v1.read(&mem, &mut me), 1);
        assert_eq!(v2.read(&mem, &mut me), 101);
    }

    #[test]
    fn runs_on_llsc_only_machine_via_emulated_cas() {
        let m = Machine::builder(3)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let reader = m.processor(2);
        let d = BoundedDomain::<EmuFamily<16>>::new(2, 1).unwrap();
        let v = d.var(0).unwrap();
        std::thread::scope(|s| {
            for t in 0..2 {
                let p = m.processor(t);
                let mut me = d.proc(t);
                let v = &v;
                s.spawn(move || {
                    let mem = EmuCas::<16>::new(&p);
                    for _ in 0..1_000 {
                        loop {
                            let (x, keep) = v.ll(&mem, &mut me);
                            if v.sc(&mem, &mut me, keep, x + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.peek(&EmuCas::<16>::new(&reader)), 2_000);
    }

    mod properties {
        use super::*;
        use nbsp_memsim::rng::SplitMix64;

        /// Every (n, k, value) combination that the layout accepts must
        /// round-trip all four fields exactly. (Deterministic seeded cases.)
        #[test]
        fn layout_round_trips() {
            let mut rng = SplitMix64::new(0xb0d0_0001);
            for _ in 0..256 {
                let n = 1 + rng.next_index(511);
                let k = 1 + rng.next_index(7);
                let Ok(l) = BoundedLayout::new(n, k, 64) else {
                    continue; // too big for the word; fine
                };
                let nk = (n * k) as u64;
                let tag = rng.next_below(2 * nk + 1);
                let cnt = rng.next_below(nk + 1);
                let pid = rng.next_index(n);
                let val = rng.next_u64() & l.max_val();
                let w = l.pack(tag, cnt, pid, val);
                assert_eq!(l.tag(w), tag);
                assert_eq!(l.cnt(w), cnt);
                assert_eq!(l.pid(w), pid);
                assert_eq!(l.val(w), val);
            }
        }

        /// Sequential LL;SC programs over random (n, k) keep the variable's
        /// value consistent with a plain register.
        #[test]
        fn sequential_ops_match_register_model() {
            let mut rng = SplitMix64::new(0xb0d0_0002);
            for case in 0..64 {
                let n = 1 + rng.next_index(5);
                let k = 1 + rng.next_index(3);
                let d = BoundedDomain::<Native>::new(n, k).unwrap();
                let v = d.var(0).unwrap();
                let mut me = d.proc(0);
                let mut model = 0u64;
                for _ in 0..rng.next_index(60) {
                    let w = rng.next_below(64);
                    let (read, keep) = v.ll(&Native, &mut me);
                    assert_eq!(read, model, "case {case}");
                    assert!(v.sc(&Native, &mut me, keep, w));
                    model = w;
                }
                assert_eq!(v.peek(&Native), model, "case {case}");
                assert_eq!(me.free_slots(), k);
            }
        }
    }

    #[test]
    fn stamp_reports_writer() {
        let d = setup(3, 1);
        let v = d.var(0).unwrap();
        let mut me = d.proc(2);
        let mem = Native;
        let (x, keep) = v.ll(&mem, &mut me);
        assert!(v.sc(&mem, &mut me, keep, x + 1));
        let (_tag, cnt, pid) = v.current_stamp(&mem);
        assert_eq!(pid, 2);
        assert_eq!(cnt, 1);
    }
}
