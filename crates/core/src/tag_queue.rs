//! The constant-time tag queue of Figure 7.
//!
//! The bounded-tag construction keeps, per process, a queue `Q` of all
//! `2Nk + 1` tags and performs two operations on it:
//!
//! * line 10: `delete(Q, t); enqueue(Q, t)` — move an observed tag to the
//!   back, so it will not be chosen again soon;
//! * line 12: `t := dequeue(Q); enqueue(Q, t)` — take the head as the next
//!   tag to use, recycling it to the back.
//!
//! The paper notes that "by maintaining Q as a doubly-linked list, and by
//! having a static index table with pointers to each tag, the operations on
//! Q can also be implemented in constant time". [`TagQueue`] is that data
//! structure: since every tag is always present, the list is circular and
//! both operations reduce to O(1) pointer surgery with **no allocation**
//! after construction.

/// A fixed-universe queue of the tags `0..universe`, all always present,
/// supporting O(1) *rotate* (dequeue + re-enqueue) and *move-to-back*.
///
/// ```
/// use nbsp_core::TagQueue;
///
/// let mut q = TagQueue::new(5); // tags 0,1,2,3,4 in order
/// assert_eq!(q.rotate(), 0);    // head goes to the back
/// assert_eq!(q.rotate(), 1);
/// q.move_to_back(2);            // skip 2
/// assert_eq!(q.rotate(), 3);    // 3 is the new head
/// assert_eq!(q.to_vec(), vec![4, 0, 1, 2, 3]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TagQueue {
    next: Vec<u32>,
    prev: Vec<u32>,
    head: u32,
}

impl TagQueue {
    /// Creates a queue containing `0, 1, …, universe - 1` in that order.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero or exceeds `u32::MAX as usize`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        assert!(universe > 0, "tag universe must be non-empty");
        assert!(
            universe <= u32::MAX as usize,
            "tag universe too large for u32 links"
        );
        let n = universe as u32;
        let next: Vec<u32> = (0..n).map(|i| (i + 1) % n).collect();
        let prev: Vec<u32> = (0..n).map(|i| (i + n - 1) % n).collect();
        TagQueue {
            next,
            prev,
            head: 0,
        }
    }

    /// Number of tags in the universe (the queue always contains all of
    /// them).
    #[must_use]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// Always false: the universe is non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The tag currently at the front (the next [`TagQueue::rotate`] result).
    #[must_use]
    pub fn front(&self) -> u64 {
        u64::from(self.head)
    }

    /// Figure 7 line 12: removes the head, appends it at the back, and
    /// returns it. O(1): on a circular list this is just advancing the head.
    pub fn rotate(&mut self) -> u64 {
        let t = self.head;
        self.head = self.next[t as usize];
        u64::from(t)
    }

    /// Figure 7 line 10: moves `tag` to the back of the queue. O(1).
    ///
    /// # Panics
    ///
    /// Panics if `tag` is outside the universe.
    pub fn move_to_back(&mut self, tag: u64) {
        let n = self.next.len() as u64;
        assert!(tag < n, "tag {tag} outside universe of {n}");
        let t = tag as u32;
        if t == self.head {
            // Head to back: advance the head pointer.
            self.head = self.next[t as usize];
            return;
        }
        let tail = self.prev[self.head as usize];
        if t == tail {
            return; // already at the back
        }
        // Unlink t …
        let (tn, tp) = (self.next[t as usize], self.prev[t as usize]);
        self.next[tp as usize] = tn;
        self.prev[tn as usize] = tp;
        // … and splice it between tail and head.
        self.next[tail as usize] = t;
        self.prev[t as usize] = tail;
        self.next[t as usize] = self.head;
        self.prev[self.head as usize] = t;
    }

    /// The queue contents front-to-back (O(n); for tests and audits).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        for _ in 0..self.len() {
            out.push(u64::from(cur));
            cur = self.next[cur as usize];
        }
        out
    }

    /// Position of `tag` from the front (O(n); for tests and audits).
    ///
    /// # Panics
    ///
    /// Panics if `tag` is outside the universe.
    #[must_use]
    pub fn position(&self, tag: u64) -> usize {
        assert!((tag as usize) < self.len(), "tag outside universe");
        let mut cur = self.head;
        for i in 0..self.len() {
            if u64::from(cur) == tag {
                return i;
            }
            cur = self.next[cur as usize];
        }
        unreachable!("tag universe invariant violated");
    }
}

/// The *paper-literal* tag queue: Figure 7 line 10 as written.
///
/// Line 10 reads `delete(Q, t); enqueue(Q, t)` over a plain queue, which
/// costs a linear search of all `2Nk + 1` tags on **every** SC — the O(Nk)
/// tag-reuse scan that the indexed [`TagQueue`] (the paper's own
/// constant-time remark) eliminates. This implementation exists as the E9
/// ablation baseline: registering it as the `fig7-bounded-scan` provider
/// lets the experiment show the asymptotic gap instead of asserting it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScanQueue {
    q: std::collections::VecDeque<u32>,
}

impl ScanQueue {
    /// Creates a queue containing `0, 1, …, universe - 1` in that order.
    ///
    /// # Panics
    ///
    /// Panics if `universe` is zero or exceeds `u32::MAX as usize`.
    #[must_use]
    pub fn new(universe: usize) -> Self {
        assert!(universe > 0, "tag universe must be non-empty");
        assert!(
            universe <= u32::MAX as usize,
            "tag universe too large for u32 links"
        );
        ScanQueue {
            q: (0..universe as u32).collect(),
        }
    }

    /// Number of tags in the universe.
    #[must_use]
    pub fn len(&self) -> usize {
        self.q.len()
    }

    /// Always false: the universe is non-empty by construction.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Figure 7 line 12: dequeue + re-enqueue. O(1) even here.
    pub fn rotate(&mut self) -> u64 {
        let t = self.q.pop_front().expect("universe is non-empty");
        self.q.push_back(t);
        u64::from(t)
    }

    /// Figure 7 line 10, literally: `delete(Q, t); enqueue(Q, t)` by
    /// linear search — **O(universe) per call**, the cost E9 measures.
    ///
    /// # Panics
    ///
    /// Panics if `tag` is outside the universe.
    pub fn move_to_back(&mut self, tag: u64) {
        assert!(
            (tag as usize) < self.q.len(),
            "tag {tag} outside universe of {}",
            self.q.len()
        );
        let i = self
            .q
            .iter()
            .position(|&x| u64::from(x) == tag)
            .expect("every tag is always present");
        self.q.remove(i);
        self.q.push_back(tag as u32);
    }

    /// The queue contents front-to-back (for tests and audits).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u64> {
        self.q.iter().map(|&x| u64::from(x)).collect()
    }

    /// Position of `tag` from the front (O(n); for tests and audits).
    ///
    /// # Panics
    ///
    /// Panics if `tag` is outside the universe.
    #[must_use]
    pub fn position(&self, tag: u64) -> usize {
        assert!((tag as usize) < self.len(), "tag outside universe");
        self.q
            .iter()
            .position(|&x| u64::from(x) == tag)
            .expect("every tag is always present")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::rng::SplitMix64;
    use std::collections::VecDeque;

    #[test]
    fn initial_order() {
        let q = TagQueue::new(4);
        assert_eq!(q.to_vec(), vec![0, 1, 2, 3]);
        assert_eq!(q.len(), 4);
        assert!(!q.is_empty());
        assert_eq!(q.front(), 0);
    }

    #[test]
    fn rotate_cycles_through_everything() {
        let mut q = TagQueue::new(3);
        let seq: Vec<u64> = (0..7).map(|_| q.rotate()).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn move_to_back_of_head() {
        let mut q = TagQueue::new(3);
        q.move_to_back(0);
        assert_eq!(q.to_vec(), vec![1, 2, 0]);
    }

    #[test]
    fn move_to_back_of_tail_is_noop() {
        let mut q = TagQueue::new(3);
        q.move_to_back(2);
        assert_eq!(q.to_vec(), vec![0, 1, 2]);
    }

    #[test]
    fn move_to_back_of_middle() {
        let mut q = TagQueue::new(5);
        q.move_to_back(2);
        assert_eq!(q.to_vec(), vec![0, 1, 3, 4, 2]);
    }

    #[test]
    fn singleton_universe() {
        let mut q = TagQueue::new(1);
        assert_eq!(q.rotate(), 0);
        assert_eq!(q.rotate(), 0);
        q.move_to_back(0);
        assert_eq!(q.to_vec(), vec![0]);
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn move_to_back_rejects_foreign_tag() {
        let mut q = TagQueue::new(3);
        q.move_to_back(3);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_universe_rejected() {
        let _ = TagQueue::new(0);
    }

    #[test]
    fn recently_moved_tag_is_chosen_last() {
        // The property Figure 7 needs: after move_to_back(t), it takes
        // len-1 rotations before t is returned again.
        let mut q = TagQueue::new(8);
        q.move_to_back(5);
        let mut seen_before_5 = 0;
        loop {
            let t = q.rotate();
            if t == 5 {
                break;
            }
            seen_before_5 += 1;
        }
        assert_eq!(seen_before_5, 7);
    }

    /// Reference model: a VecDeque holding the same permutation.
    #[derive(Debug)]
    struct Model(VecDeque<u64>);

    impl Model {
        fn new(n: usize) -> Self {
            Model((0..n as u64).collect())
        }
        fn rotate(&mut self) -> u64 {
            let t = self.0.pop_front().unwrap();
            self.0.push_back(t);
            t
        }
        fn move_to_back(&mut self, tag: u64) {
            let i = self.0.iter().position(|&x| x == tag).unwrap();
            self.0.remove(i);
            self.0.push_back(tag);
        }
    }

    // Deterministic randomized differential tests (seeded SplitMix64, so
    // failures reproduce exactly; no registry dependency needed).
    #[test]
    fn matches_vecdeque_model() {
        let mut rng = SplitMix64::new(0x7a67_0001);
        for case in 0..200 {
            let universe = 1 + rng.next_index(39);
            let mut q = TagQueue::new(universe);
            let mut m = Model::new(universe);
            let ops = rng.next_index(200);
            for step in 0..ops {
                if rng.next_index(2) == 0 {
                    assert_eq!(q.rotate(), m.rotate(), "case {case} step {step}");
                } else {
                    let tag = rng.next_below(universe as u64);
                    q.move_to_back(tag);
                    m.move_to_back(tag);
                }
                assert_eq!(
                    q.to_vec(),
                    m.0.iter().copied().collect::<Vec<_>>(),
                    "case {case} step {step}"
                );
            }
        }
    }

    #[test]
    fn position_is_consistent_with_to_vec() {
        let mut rng = SplitMix64::new(0x7a67_0002);
        for _ in 0..100 {
            let universe = 1 + rng.next_index(19);
            let mut q = TagQueue::new(universe);
            for _ in 0..rng.next_index(50) {
                q.move_to_back(rng.next_below(universe as u64));
            }
            let v = q.to_vec();
            for (i, &t) in v.iter().enumerate() {
                assert_eq!(q.position(t), i);
            }
        }
    }

    // The scan ablation must be behaviourally identical to the indexed
    // queue — only the cost differs. Drive both with the same op stream.
    #[test]
    fn scan_queue_matches_indexed_queue() {
        let mut rng = SplitMix64::new(0x7a67_0003);
        for case in 0..100 {
            let universe = 1 + rng.next_index(29);
            let mut fast = TagQueue::new(universe);
            let mut slow = ScanQueue::new(universe);
            assert_eq!(fast.len(), slow.len());
            assert!(!slow.is_empty());
            for step in 0..rng.next_index(150) {
                if rng.next_index(2) == 0 {
                    assert_eq!(fast.rotate(), slow.rotate(), "case {case} step {step}");
                } else {
                    let tag = rng.next_below(universe as u64);
                    fast.move_to_back(tag);
                    slow.move_to_back(tag);
                }
                assert_eq!(fast.to_vec(), slow.to_vec(), "case {case} step {step}");
            }
            let v = slow.to_vec();
            for (i, &t) in v.iter().enumerate() {
                assert_eq!(slow.position(t), i);
            }
        }
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn scan_queue_rejects_foreign_tag() {
        let mut q = ScanQueue::new(3);
        q.move_to_back(3);
    }
}
