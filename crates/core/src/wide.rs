//! **Figure 6 / Theorem 4** — WLL/VL/SC on *W-word* variables from CAS.
//!
//! > *"CAS can be used to implement WLL, VL, and SC operations for an
//! > unlimited number of W-word variables with time complexity Θ(W), Θ(1),
//! > and Θ(W), respectively, and Θ(NW) space overhead."*
//!
//! The one-word constructions force tags and data to share a machine word.
//! This construction spreads a value over `W` *segments*, each carrying the
//! tag plus one word-slice of data, with a *header* word holding the current
//! tag and the identifier of the process whose SC installed it.
//!
//! A successful SC first **announces** its full new value in a shared array
//! `A[p]`, then swings the header, then copies the announced words into the
//! segments. Because the announcing process may stall between the header
//! swing and the copying, every reader *helps*: [`WideVar::wll`] runs the
//! same `Copy` routine, completing any interrupted SC it observes. The
//! announce array is shared by *all* variables of a [`WideDomain`] — that is
//! why the overhead is Θ(NW) rather than the Θ(NWT) of a naive
//! per-variable scheme (experiment E3 measures exactly this).
//!
//! `WLL` is the *weak* LL of Anderson & Moir: when a concurrent SC dooms the
//! sequence anyway, it may return [`WllOutcome::InterferedBy`] instead of a
//! value, letting callers skip computation that a failing SC would discard.

use std::marker::PhantomData;
use std::sync::Arc;

use nbsp_memsim::{CachePadded, ProcId};
use nbsp_telemetry::{record, Event};

use crate::layout::bits_for_count;
use crate::{CasFamily, CasMemory, Error, Native, Result, TagLayout};

/// Result of a [`WideVar::wll`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[must_use]
pub enum WllOutcome {
    /// A consistent value was stored into the caller's buffer.
    Success,
    /// A process performed a successful SC during the WLL; no value was
    /// saved, and an SC on the returned keep is certain to fail. The payload
    /// identifies one process that performed such an SC.
    InterferedBy(ProcId),
}

impl WllOutcome {
    /// True iff the WLL saved a consistent value.
    #[must_use]
    pub fn is_success(self) -> bool {
        matches!(self, WllOutcome::Success)
    }
}

/// The private word for a wide LL–SC sequence: the header tag observed by
/// [`WideVar::wll`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WideKeep {
    tag: u64,
}

/// Shared per-(N, W) state for any number of wide variables: the announce
/// array `A[0..N-1][0..W-1]` and the word layouts.
///
/// The domain's space overhead — `N · W` words — is paid **once**, no matter
/// how many variables are created in it (Theorem 4's headline).
#[derive(Debug)]
pub struct WideDomain<F: CasFamily = Native> {
    n: usize,
    w: usize,
    /// Segment layout: tag + data slice. Also used for header tag field.
    seg: TagLayout,
    pid_bits: u32,
    /// `A[p][i]` lives at `announce[p * w + i]`. Every cell is padded to its
    /// own cache line: process `p` streams W stores into row `p` on every
    /// SC while helpers concurrently read other rows, and un-padded rows
    /// false-share at row boundaries (and, for small W, within a line).
    announce: Vec<CachePadded<F::Cell>>,
    _family: PhantomData<fn() -> F>,
}

impl<F: CasFamily> WideDomain<F> {
    /// Creates a domain for `n` processes and `w`-word variables, with
    /// `tag_bits` bits of tag in every header and segment.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidDomain`] if `n` or `w` is zero, or
    /// [`Error::InvalidLayout`] if `tag_bits` plus the process-id field (in
    /// headers) or plus at least one data bit (in segments) exceeds the
    /// family's usable bits.
    pub fn new(n: usize, w: usize, tag_bits: u32) -> Result<Arc<Self>> {
        if n == 0 {
            return Err(Error::InvalidDomain {
                what: "n (number of processes) must be positive",
            });
        }
        if w == 0 {
            return Err(Error::InvalidDomain {
                what: "w (words per variable) must be positive",
            });
        }
        let pid_bits = bits_for_count(n as u64);
        // Header: tag + pid must fit.
        if tag_bits == 0 || tag_bits + pid_bits > F::VALUE_BITS {
            return Err(Error::InvalidLayout {
                tag_bits,
                val_bits: pid_bits,
                available: F::VALUE_BITS,
            });
        }
        // Segment: tag + at least one data bit.
        let seg = TagLayout::for_width(tag_bits, F::VALUE_BITS - tag_bits, F::VALUE_BITS)?;
        let announce = (0..n * w)
            .map(|_| CachePadded::new(F::make_cell(0)))
            .collect();
        Ok(Arc::new(WideDomain {
            n,
            w,
            seg,
            pid_bits,
            announce,
            _family: PhantomData,
        }))
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Words per variable.
    #[must_use]
    pub fn w(&self) -> usize {
        self.w
    }

    /// Bits of user data stored per segment word.
    #[must_use]
    pub fn value_bits(&self) -> u32 {
        self.seg.val_bits()
    }

    /// Largest value storable in each of the `w` words.
    #[must_use]
    pub fn max_val(&self) -> u64 {
        self.seg.max_val()
    }

    /// The domain's space overhead in words — `n · w`, independent of the
    /// number of variables (Theorem 4).
    #[must_use]
    pub fn space_overhead_words(&self) -> usize {
        self.n * self.w
    }

    /// Creates a variable in this domain holding `initial` (one value per
    /// word, each within [`WideDomain::max_val`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::WidthMismatch`] for a wrong-length buffer or
    /// [`Error::ValueTooLarge`] for an oversized value.
    pub fn var(self: &Arc<Self>, initial: &[u64]) -> Result<WideVar<F>> {
        if initial.len() != self.w {
            return Err(Error::WidthMismatch {
                expected: self.w,
                got: initial.len(),
            });
        }
        let mut data = Vec::with_capacity(self.w);
        for &v in initial {
            data.push(F::make_cell(self.seg.pack(0, v)?));
        }
        Ok(WideVar {
            domain: Arc::clone(self),
            hdr: F::make_cell(self.pack_hdr(0, 0)),
            data,
        })
    }

    fn pack_hdr(&self, tag: u64, pid: usize) -> u64 {
        ((tag & self.seg.max_tag()) << self.pid_bits) | pid as u64
    }

    fn hdr_tag(&self, hdr: u64) -> u64 {
        (hdr >> self.pid_bits) & self.seg.max_tag()
    }

    fn hdr_pid(&self, hdr: u64) -> usize {
        (hdr & crate::layout::low_mask(self.pid_bits)) as usize
    }
}

/// A `W`-word variable supporting WLL/VL/SC (Figure 6's `vartype`:
/// one header word plus `W` tagged segments).
///
/// ```
/// use nbsp_core::wide::{WideDomain, WideKeep, WllOutcome};
/// use nbsp_core::Native;
/// use nbsp_memsim::ProcId;
///
/// let domain = WideDomain::<Native>::new(4, 3, 32)?; // N = 4, W = 3
/// let var = domain.var(&[10, 20, 30])?;
/// let mem = Native;
///
/// let mut keep = WideKeep::default();
/// let mut buf = [0u64; 3];
/// assert!(var.wll(&mem, &mut keep, &mut buf).is_success());
/// assert_eq!(buf, [10, 20, 30]);
///
/// // Store a new 3-word value atomically, as process 2:
/// assert!(var.sc(&mem, ProcId::new(2), &keep, &[11, 21, 31]));
/// assert_eq!(var.read(&mem), vec![11, 21, 31]);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct WideVar<F: CasFamily = Native> {
    domain: Arc<WideDomain<F>>,
    hdr: F::Cell,
    data: Vec<F::Cell>,
}

impl<F: CasFamily> WideVar<F> {
    /// The domain this variable belongs to.
    #[must_use]
    pub fn domain(&self) -> &Arc<WideDomain<F>> {
        &self.domain
    }

    /// Figure 6's `Copy` (lines 1–9): ensure every segment carries the value
    /// of the SC that installed `hdr`, helping that SC if its owner stalled;
    /// optionally save the consistent value. Returns the pid of an
    /// interfering successful SC if the header moved on.
    ///
    /// **Ordering.** The helping protocol is a message-passing chain:
    /// the SC owner release-stores its announce row, then swings the header
    /// with a release CAS. Every caller of `copy` reached it through an
    /// acquire load of that header, so the row `A[pid]` read at line 4 is
    /// the one the owner announced *before* installing `hdr` — the only
    /// happens-before edge the helping argument needs. Line 7's acquire
    /// re-read of the header serves the same role for the *next* SC: if it
    /// observes a newer header, the abort happens before any stale segment
    /// value can be saved.
    fn copy<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        hdr: u64,
        owner: bool,
        mut save: Option<&mut [u64]>,
    ) -> std::result::Result<(), ProcId> {
        let d = &*self.domain;
        let tag = d.hdr_tag(hdr);
        let pid = d.hdr_pid(hdr);
        for i in 0..d.w {
            // Line 2: read the segment. Acquire: pairs with the release
            // CAS (line 5) of whichever helper installed the segment.
            let mut y = mem.load_acquire(&self.data[i]);
            // Line 3: one tag behind ⇒ the SC that installed `hdr` has not
            // copied this segment yet — help it.
            if d.seg.tag(y) == d.seg.tag_pred(tag) {
                // Line 4: fetch the announced word. Acquire, though the
                // real guarantee comes from the header edge described
                // above: owner's release announce-stores happen-before its
                // header release-CAS happens-before our header acquire-load.
                let a = mem.load_acquire(&d.announce[pid * d.w + i]);
                let z = d.seg.pack_unchecked(tag, a);
                // Line 5: install it; a lost race means someone else did.
                // Release on success so later readers of the segment (line
                // 2 above, in another process) inherit the chain.
                if mem.cas_acqrel(&self.data[i], y, z) && !owner {
                    record(Event::HelpGiven);
                }
                // Line 6: either way the segment now holds `z`'s contents
                // (unless the header moved on, which line 7 detects).
                y = z;
            } else if owner && d.seg.tag(y) == tag {
                // Our own line-20 copy found the segment already current:
                // a reader completed (part of) our SC on our behalf.
                record(Event::HelpReceived);
            }
            // Line 7: abort if a newer SC has been installed. Acquire, so
            // a successor SC's announce row is visible if we go around
            // again with its header.
            let h = mem.load_acquire(&self.hdr);
            if h != hdr {
                return Err(ProcId::new(d.hdr_pid(h)));
            }
            // Line 8: save the consistent word.
            if let Some(buf) = save.as_deref_mut() {
                buf[i] = d.seg.val(y);
            }
        }
        Ok(()) // line 9: succ
    }

    /// Figure 6's `WLL` (lines 10–12): reads the header, records its tag in
    /// `keep`, and collects a consistent `W`-word value into `retval` —
    /// or reports interference, in which case an SC on `keep` is certain to
    /// fail and `retval` contents are unspecified.
    ///
    /// Θ(W) time. Linearizes at the header read.
    ///
    /// # Panics
    ///
    /// Panics if `retval.len()` differs from the domain's `w`.
    pub fn wll<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        keep: &mut WideKeep,
        retval: &mut [u64],
    ) -> WllOutcome {
        assert_eq!(
            retval.len(),
            self.domain.w,
            "retval buffer length must equal the variable width"
        );
        // Line 10. Acquire: synchronizes with the release header-CAS of
        // the SC that installed `x`, making that SC's announce row visible
        // to the Copy below (the helping edge).
        let x = mem.load_acquire(&self.hdr);
        keep.tag = self.domain.hdr_tag(x); // line 11
        match self.copy(mem, x, false, Some(retval)) {
            Ok(()) => WllOutcome::Success,
            Err(pid) => {
                record(Event::LlRestart);
                WllOutcome::InterferedBy(pid)
            }
        }
    }

    /// Figure 6's `VL` (line 13): true iff no successful SC hit the variable
    /// since the WLL that filled `keep`. Θ(1); linearizes at the header read.
    ///
    /// **Ordering — acquire.** The verdict depends only on the header
    /// cell's coherence order (did its tag move?); acquire keeps the
    /// publication guarantee for callers that branch on the result.
    #[must_use]
    pub fn vl<M: CasMemory<Family = F>>(&self, mem: &M, keep: &WideKeep) -> bool {
        self.domain.hdr_tag(mem.load_acquire(&self.hdr)) == keep.tag
    }

    /// Figure 6's `SC` (lines 14–21): attempts to atomically install the
    /// `W`-word value `newval` as process `p`.
    ///
    /// Θ(W) time. Linearizes at the header CAS (line 19) on the success
    /// path, at the header read (line 14) when it fails early.
    ///
    /// # Panics
    ///
    /// Panics if `newval.len()` differs from the domain's `w`, if any value
    /// exceeds [`WideDomain::max_val`], or if `p` is outside the domain.
    #[must_use]
    pub fn sc<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        p: ProcId,
        keep: &WideKeep,
        newval: &[u64],
    ) -> bool {
        let d = &*self.domain;
        assert_eq!(
            newval.len(),
            d.w,
            "newval buffer length must equal the variable width"
        );
        assert!(p.index() < d.n, "process {p} outside domain of {} processes", d.n);
        for &v in newval {
            assert!(
                v <= d.max_val(),
                "value {v} exceeds layout maximum {}",
                d.max_val()
            );
        }
        // Lines 14–15: fail fast if a successful SC already intervened.
        // Acquire (coherence decides the tag comparison; see `vl`).
        let oldhdr = mem.load_acquire(&self.hdr);
        if d.hdr_tag(oldhdr) != keep.tag {
            record(Event::ScFail);
            return false;
        }
        // Lines 16–17: announce the value so others can help copy it.
        // Release-stores: together with the release CAS below they form the
        // write half of the helping chain — any process that acquire-reads
        // the new header is guaranteed to read *these* announce words, not
        // stale ones from this process's previous SC.
        for (i, &v) in newval.iter().enumerate() {
            mem.store_release(&d.announce[p.index() * d.w + i], v);
        }
        // Lines 18–19: try to install the new header. AcqRel: the release
        // half publishes the announce row above (the linearization point of
        // a successful SC); the acquire half on failure is just a read of
        // the winning header.
        let newhdr = d.pack_hdr(d.seg.tag_succ(d.hdr_tag(oldhdr)), p.index());
        if !mem.cas_acqrel(&self.hdr, oldhdr, newhdr) {
            record(Event::ScFail);
            return false;
        }
        record(Event::ScSuccess);
        // Line 20: copy our own value out of A[p] so A[p] can be reused by
        // our next SC; ignore interference (a later SC's WLL already
        // guaranteed our segments were complete before it could succeed).
        let _ = self.copy(mem, newhdr, true, None);
        true // line 21
    }

    /// A `W`-word compare-and-swap: iff the variable currently holds
    /// `expected`, atomically replace it with `new`.
    ///
    /// This is the "multi-word synchronization primitive" of the paper's
    /// Section-5 discussion (Greenwald & Cheriton's double-word CAS and
    /// beyond), derived from WLL/SC in the obvious way: lock-free — it
    /// retries only when a concurrent SC succeeded, and a value mismatch
    /// returns `false` immediately (linearized at the consistent WLL).
    ///
    /// # Panics
    ///
    /// Panics if `expected` or `new` has the wrong width, a word exceeds
    /// [`WideDomain::max_val`], or `p` is outside the domain.
    #[must_use]
    pub fn compare_and_swap<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        p: ProcId,
        expected: &[u64],
        new: &[u64],
    ) -> bool {
        assert_eq!(
            expected.len(),
            self.domain.w,
            "expected buffer length must equal the variable width"
        );
        let mut keep = WideKeep::default();
        let mut buf = vec![0u64; self.domain.w];
        loop {
            // nbsp-flow: allow(keep-leak) — a WideKeep is a tag snapshot; there is no announce slot to release on the value-mismatch return
            if !self.wll(mem, &mut keep, &mut buf).is_success() {
                continue;
            }
            if buf != expected {
                return false;
            }
            if self.sc(mem, p, &keep, new) {
                return true;
            }
        }
    }

    /// Convenience: retries WLL until it returns a consistent value.
    /// Lock-free (a retry implies some SC succeeded) but not wait-free.
    #[must_use]
    pub fn read<M: CasMemory<Family = F>>(&self, mem: &M) -> Vec<u64> {
        let mut buf = vec![0u64; self.domain.w];
        let mut keep = WideKeep::default();
        // nbsp-flow: allow(keep-leak) — pure read: the successful WLL is the consumer; a WideKeep claims no slot, so dropping it is free
        while !self.wll(mem, &mut keep, &mut buf).is_success() {}
        buf
    }

    /// The header's current tag (for tests and audits).
    #[must_use]
    pub fn current_tag<M: CasMemory<Family = F>>(&self, mem: &M) -> u64 {
        self.domain.hdr_tag(mem.load(&self.hdr))
    }

    /// Test-only hook: simulate a process that performed the header swing of
    /// an SC (lines 14–19) and then stalled *before* copying any segment
    /// (line 20). Returns `true` if the header CAS succeeded. Used to
    /// exercise the helping path deterministically.
    #[doc(hidden)]
    pub fn begin_stalled_sc<M: CasMemory<Family = F>>(
        &self,
        mem: &M,
        p: ProcId,
        keep: &WideKeep,
        newval: &[u64],
    ) -> bool {
        let d = &*self.domain;
        assert_eq!(newval.len(), d.w);
        let oldhdr = mem.load_acquire(&self.hdr);
        if d.hdr_tag(oldhdr) != keep.tag {
            return false;
        }
        for (i, &v) in newval.iter().enumerate() {
            mem.store_release(&d.announce[p.index() * d.w + i], v);
        }
        let newhdr = d.pack_hdr(d.seg.tag_succ(d.hdr_tag(oldhdr)), p.index());
        mem.cas_acqrel(&self.hdr, oldhdr, newhdr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmuCas, EmuFamily};
    use nbsp_memsim::{InstructionSet, Machine};

    fn domain(n: usize, w: usize) -> Arc<WideDomain<Native>> {
        WideDomain::<Native>::new(n, w, 32).unwrap()
    }

    #[test]
    fn wll_vl_sc_cycle() {
        let d = domain(2, 4);
        let v = d.var(&[1, 2, 3, 4]).unwrap();
        let mem = Native;
        let mut keep = WideKeep::default();
        let mut buf = [0u64; 4];
        assert_eq!(v.wll(&mem, &mut keep, &mut buf), WllOutcome::Success);
        assert_eq!(buf, [1, 2, 3, 4]);
        assert!(v.vl(&mem, &keep));
        assert!(v.sc(&mem, ProcId::new(0), &keep, &[5, 6, 7, 8]));
        assert!(!v.vl(&mem, &keep));
        assert_eq!(v.read(&mem), vec![5, 6, 7, 8]);
    }

    #[test]
    fn stale_keep_fails_sc() {
        let d = domain(2, 2);
        let v = d.var(&[0, 0]).unwrap();
        let mem = Native;
        let mut k1 = WideKeep::default();
        let mut k2 = WideKeep::default();
        let mut buf = [0u64; 2];
        let _ = v.wll(&mem, &mut k1, &mut buf);
        let _ = v.wll(&mem, &mut k2, &mut buf);
        assert!(v.sc(&mem, ProcId::new(0), &k1, &[1, 1]));
        assert!(!v.sc(&mem, ProcId::new(1), &k2, &[2, 2]));
        assert_eq!(v.read(&mem), vec![1, 1]);
    }

    #[test]
    fn wll_helps_a_stalled_sc() {
        // Process 1 installs a header and stalls before copying (the
        // failure the helping protocol exists for); process 0's WLL must
        // complete the copy and return the *new* value.
        let d = domain(2, 3);
        let v = d.var(&[1, 2, 3]).unwrap();
        let mem = Native;
        let mut k = WideKeep::default();
        let mut buf = [0u64; 3];
        let _ = v.wll(&mem, &mut k, &mut buf);
        assert!(v.begin_stalled_sc(&mem, ProcId::new(1), &k, &[7, 8, 9]));

        let mut k0 = WideKeep::default();
        assert_eq!(v.wll(&mem, &mut k0, &mut buf), WllOutcome::Success);
        assert_eq!(buf, [7, 8, 9], "reader must observe the helped value");
        // And the segments themselves were repaired:
        assert_eq!(v.read(&mem), vec![7, 8, 9]);
    }

    #[test]
    fn sc_after_helping_uses_fresh_announce() {
        // After a stalled SC is helped, the *next* SC by the same process
        // must not be confused by its reused announce row.
        let d = domain(2, 2);
        let v = d.var(&[0, 0]).unwrap();
        let mem = Native;
        let mut k = WideKeep::default();
        let mut buf = [0u64; 2];
        let _ = v.wll(&mem, &mut k, &mut buf);
        assert!(v.begin_stalled_sc(&mem, ProcId::new(1), &k, &[5, 5]));
        // Helper completes it:
        let mut k2 = WideKeep::default();
        let _ = v.wll(&mem, &mut k2, &mut buf);
        assert_eq!(buf, [5, 5]);
        // Process 1 "wakes up", abandons (its copy would be a no-op), and
        // performs a fresh full SC:
        assert!(v.sc(&mem, ProcId::new(1), &k2, &[6, 7]));
        assert_eq!(v.read(&mem), vec![6, 7]);
    }

    #[test]
    fn wll_reports_interference() {
        let d = domain(2, 2);
        let v = d.var(&[0, 0]).unwrap();
        let mem = Native;
        // Put the variable in a state where the header changes mid-copy:
        // install a stalled SC *after* wll reads the header is hard to do
        // deterministically from outside, so instead verify the reported
        // pid when the header has already moved between header read and
        // copy — simulated by a stalled SC followed by a header bump.
        let mut k = WideKeep::default();
        let mut buf = [0u64; 2];
        let _ = v.wll(&mem, &mut k, &mut buf);
        assert!(v.sc(&mem, ProcId::new(1), &k, &[1, 1]));
        // A fresh wll sees a consistent state again:
        let mut k2 = WideKeep::default();
        assert_eq!(v.wll(&mem, &mut k2, &mut buf), WllOutcome::Success);
    }

    #[test]
    fn multiple_vars_share_one_announce_array() {
        let d = domain(3, 2);
        let v1 = d.var(&[1, 1]).unwrap();
        let v2 = d.var(&[2, 2]).unwrap();
        assert_eq!(d.space_overhead_words(), 6);
        let mem = Native;
        let mut k = WideKeep::default();
        let mut buf = [0u64; 2];
        let _ = v1.wll(&mem, &mut k, &mut buf);
        assert!(v1.sc(&mem, ProcId::new(0), &k, &[3, 3]));
        let _ = v2.wll(&mem, &mut k, &mut buf);
        assert!(v2.sc(&mem, ProcId::new(0), &k, &[4, 4]));
        assert_eq!(v1.read(&mem), vec![3, 3]);
        assert_eq!(v2.read(&mem), vec![4, 4]);
    }

    #[test]
    fn concurrent_snapshot_consistency() {
        // Writers store [i, i+1000, i+2000]; every successful WLL must see
        // a row from a single writer (all-or-nothing visibility).
        let d = domain(4, 3);
        let v = d.var(&[0, 1000, 2000]).unwrap();
        std::thread::scope(|s| {
            for t in 0..3 {
                let v = &v;
                s.spawn(move || {
                    let mem = Native;
                    let p = ProcId::new(t);
                    for round in 0..2_000u64 {
                        let mut keep = WideKeep::default();
                        let mut buf = [0u64; 3];
                        if v.wll(&mem, &mut keep, &mut buf).is_success() {
                            let base = round * 3 + t as u64;
                            let _ = v.sc(&mem, p, &keep, &[base, base + 1000, base + 2000]);
                        }
                    }
                });
            }
            let v = &v;
            s.spawn(move || {
                let mem = Native;
                for _ in 0..5_000 {
                    let mut keep = WideKeep::default();
                    let mut buf = [0u64; 3];
                    if v.wll(&mem, &mut keep, &mut buf).is_success() {
                        assert_eq!(buf[1], buf[0] + 1000, "torn read: {buf:?}");
                        assert_eq!(buf[2], buf[0] + 2000, "torn read: {buf:?}");
                    }
                }
            });
        });
        let fin = v.read(&Native);
        assert_eq!(fin[1], fin[0] + 1000);
        assert_eq!(fin[2], fin[0] + 2000);
    }

    #[test]
    fn exactly_one_sc_wins_per_round() {
        let d = domain(4, 2);
        let v = d.var(&[0, 0]).unwrap();
        let wins: Vec<u64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|t| {
                    let v = &v;
                    s.spawn(move || {
                        let mem = Native;
                        let p = ProcId::new(t);
                        let mut wins = 0u64;
                        for _ in 0..3_000 {
                            let mut keep = WideKeep::default();
                            let mut buf = [0u64; 2];
                            if v.wll(&mem, &mut keep, &mut buf).is_success()
                                && v.sc(&mem, p, &keep, &[buf[0] + 1, buf[1] + 1])
                            {
                                wins += 1;
                            }
                        }
                        wins
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let total: u64 = wins.iter().sum();
        let fin = v.read(&Native);
        assert_eq!(fin[0], total, "increments lost or duplicated");
        assert_eq!(fin[1], total);
    }

    #[test]
    fn runs_on_llsc_only_machine_via_emulated_cas() {
        let m = Machine::builder(3)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let reader = m.processor(2);
        let d = WideDomain::<EmuFamily<16>>::new(3, 2, 16).unwrap();
        let v = d.var(&[0, 0]).unwrap();
        std::thread::scope(|s| {
            for t in 0..2 {
                let p = m.processor(t);
                let v = &v;
                s.spawn(move || {
                    let mem = EmuCas::<16>::new(&p);
                    let pid = ProcId::new(t);
                    for _ in 0..300 {
                        let mut keep = WideKeep::default();
                        let mut buf = [0u64; 2];
                        if v.wll(&mem, &mut keep, &mut buf).is_success() {
                            let _ = v.sc(&mem, pid, &keep, &[buf[0] + 1, buf[1] + 1]);
                        }
                    }
                });
            }
        });
        let mem = EmuCas::<16>::new(&reader);
        let fin = v.read(&mem);
        assert_eq!(fin[0], fin[1], "words must move in lockstep");
    }

    #[test]
    fn domain_validation() {
        assert!(WideDomain::<Native>::new(0, 1, 8).is_err());
        assert!(WideDomain::<Native>::new(1, 0, 8).is_err());
        assert!(WideDomain::<Native>::new(1, 1, 0).is_err());
        assert!(WideDomain::<Native>::new(1, 1, 64).is_err()); // no room for pid/data
        assert!(WideDomain::<Native>::new(16, 8, 48).is_ok());
    }

    #[test]
    fn var_validation() {
        let d = domain(2, 2);
        assert!(matches!(
            d.var(&[0]),
            Err(Error::WidthMismatch { expected: 2, got: 1 })
        ));
        let tight = WideDomain::<Native>::new(2, 1, 60).unwrap();
        assert!(matches!(
            tight.var(&[1 << 5]),
            Err(Error::ValueTooLarge { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn wll_panics_on_wrong_width() {
        let d = domain(2, 3);
        let v = d.var(&[0, 0, 0]).unwrap();
        let mut keep = WideKeep::default();
        let mut buf = [0u64; 2];
        let _ = v.wll(&Native, &mut keep, &mut buf);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn sc_panics_on_foreign_pid() {
        let d = domain(2, 1);
        let v = d.var(&[0]).unwrap();
        let mut keep = WideKeep::default();
        let mut buf = [0u64; 1];
        let _ = v.wll(&Native, &mut keep, &mut buf);
        let _ = v.sc(&Native, ProcId::new(2), &keep, &[1]);
    }

    mod properties {
        use super::*;
        use nbsp_memsim::rng::SplitMix64;

        /// Sequential wll/sc programs over random (n, w, tag_bits) behave
        /// like a plain W-word register. (Deterministic seeded cases.)
        #[test]
        fn sequential_ops_match_register_model() {
            let mut rng = SplitMix64::new(0x51de_0001);
            for case in 0..64 {
                let n = 1 + rng.next_index(5);
                let w = 1 + rng.next_index(8);
                let tag_bits = 4 + rng.next_below(36) as u32;
                let Ok(d) = WideDomain::<Native>::new(n, w, tag_bits) else {
                    continue; // layout too tight; fine
                };
                let v = d.var(&vec![0u64; w]).unwrap();
                let mem = Native;
                let mut model = vec![0u64; w];
                let mut buf = vec![0u64; w];
                for _ in 0..rng.next_index(40) {
                    let base = rng.next_below(16);
                    let mut keep = WideKeep::default();
                    assert!(v.wll(&mem, &mut keep, &mut buf).is_success());
                    assert_eq!(&buf, &model, "case {case}");
                    let newval: Vec<u64> =
                        (0..w as u64).map(|i| (base + i) & d.max_val()).collect();
                    assert!(v.sc(&mem, ProcId::new(0), &keep, &newval));
                    model = newval;
                }
                assert_eq!(v.read(&mem), model, "case {case}");
            }
        }

        /// The header pid/tag packing round-trips for every process in the
        /// domain.
        #[test]
        fn header_round_trips() {
            let mut rng = SplitMix64::new(0x51de_0002);
            for _ in 0..256 {
                let n = 1 + rng.next_index(299);
                let tag_bits = 1 + rng.next_below(47) as u32;
                let Ok(d) = WideDomain::<Native>::new(n, 1, tag_bits) else {
                    continue;
                };
                let tag = rng.next_u64() & d.seg.max_tag();
                let pid = rng.next_index(n);
                let h = d.pack_hdr(tag, pid);
                assert_eq!(d.hdr_tag(h), tag);
                assert_eq!(d.hdr_pid(h), pid);
            }
        }
    }

    #[test]
    fn wide_cas_semantics() {
        let d = domain(2, 3);
        let v = d.var(&[1, 2, 3]).unwrap();
        let mem = Native;
        let p = ProcId::new(0);
        assert!(!v.compare_and_swap(&mem, p, &[9, 9, 9], &[0, 0, 0]));
        assert_eq!(v.read(&mem), vec![1, 2, 3]);
        assert!(v.compare_and_swap(&mem, p, &[1, 2, 3], &[4, 5, 6]));
        assert_eq!(v.read(&mem), vec![4, 5, 6]);
        // Same-value replacement is a real SC (tag advances):
        let before = v.current_tag(&mem);
        assert!(v.compare_and_swap(&mem, p, &[4, 5, 6], &[4, 5, 6]));
        assert_eq!(v.current_tag(&mem), d.seg.tag_succ(before));
    }

    #[test]
    fn wide_cas_exactly_one_winner() {
        // Classic DCAS use: claim a 2-word resource; exactly one thread
        // may transition it from FREE to its own id.
        let d = domain(4, 2);
        let v = d.var(&[0, 0]).unwrap();
        let winners: u64 = std::thread::scope(|s| {
            (0..4u64)
                .map(|t| {
                    let v = &v;
                    s.spawn(move || {
                        let mem = Native;
                        let p = ProcId::new(t as usize);
                        u64::from(v.compare_and_swap(&mem, p, &[0, 0], &[t + 1, t + 1]))
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .sum()
        });
        assert_eq!(winners, 1);
        let fin = v.read(&Native);
        assert_eq!(fin[0], fin[1]);
        assert!((1..=4).contains(&fin[0]));
    }

    #[test]
    fn tag_advances_per_successful_sc() {
        let d = domain(1, 2);
        let v = d.var(&[0, 0]).unwrap();
        let mem = Native;
        for i in 0..10 {
            assert_eq!(v.current_tag(&mem), i);
            let mut keep = WideKeep::default();
            let mut buf = [0u64; 2];
            assert!(v.wll(&mem, &mut keep, &mut buf).is_success());
            assert!(v.sc(&mem, ProcId::new(0), &keep, &[i + 1, i + 1]));
        }
    }
}
