//! **Figure 4 / Theorem 2** — LL/VL/SC emulated from CAS.
//!
//! > *"CAS can be used to implement constant-time LL, VL, and SC operations
//! > for small variables with no space overhead."*
//!
//! This is the paper's simplest and most broadly deployable construction,
//! and it showcases the paper's proposed **interface modification**: `LL`
//! takes a pointer to a private word (`keep`), writes the observed
//! tag+value word there, and `VL`/`SC` receive that word back. Because the
//! caller carries the association between the LL and its later VL/SC, the
//! implementation needs no lookup structure — avoiding "a fundamental
//! space-time tradeoff that would render the implementation impractical"
//! (measured in experiment E8 via [`crate::keep_search`]).
//!
//! Unlike hardware LL/SC, any number of LL–SC sequences may be in flight
//! concurrently, across variables *and* within one process — each sequence
//! is just another `Keep` word.

use std::marker::PhantomData;

use crate::{CasFamily, CasMemory, Error, Native, Result, TagLayout};

/// The private word LL writes and VL/SC read back — the paper's `keep`.
///
/// One `Keep` per LL–SC sequence; it normally lives on the caller's stack
/// (which is why the paper does not count it as space overhead).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Keep(pub(crate) u64);

/// A small variable supporting LL/VL/SC over any [`CasMemory`].
///
/// The variable stores `layout.val_bits()` bits of user value together with
/// a `layout.tag_bits()`-bit tag in one cell of `M` (which must have enough
/// usable bits — stacking on the Figure-3 emulated CAS shrinks the budget).
///
/// ```
/// use nbsp_core::{CasLlSc, Keep, TagLayout};
///
/// let v = CasLlSc::new_native(TagLayout::half(), 10)?;
/// let mem = nbsp_core::Native;
///
/// let mut keep = Keep::default();
/// let x = v.ll(&mem, &mut keep);
/// assert_eq!(x, 10);
/// assert!(v.vl(&mem, &keep));       // still unchanged
/// assert!(v.sc(&mem, &keep, x + 1)); // store-conditional succeeds
/// assert!(!v.sc(&mem, &keep, 99));   // keep is stale now
/// assert_eq!(v.read(&mem), 11);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct CasLlSc<F: CasFamily = Native> {
    cell: F::Cell,
    layout: TagLayout,
    _family: PhantomData<fn() -> F>,
}

impl CasLlSc<Native> {
    /// Creates a variable backed by native atomics (the common case).
    ///
    /// # Errors
    ///
    /// See [`CasLlSc::new`].
    pub fn new_native(layout: TagLayout, initial: u64) -> Result<Self> {
        Self::new(layout, initial)
    }
}

impl<F: CasFamily> CasLlSc<F> {
    /// Creates a variable with the given tag/value split and initial value
    /// (tag 0).
    ///
    /// # Errors
    ///
    /// * [`Error::InvalidLayout`] if the layout needs more bits than the
    ///   family provides ([`CasFamily::VALUE_BITS`]).
    /// * [`Error::ValueTooLarge`] if `initial` does not fit the value field.
    pub fn new(layout: TagLayout, initial: u64) -> Result<Self> {
        if layout.total_bits() > F::VALUE_BITS {
            return Err(Error::InvalidLayout {
                tag_bits: layout.tag_bits(),
                val_bits: layout.val_bits(),
                available: F::VALUE_BITS,
            });
        }
        let word = layout.pack(0, initial)?;
        Ok(CasLlSc {
            cell: F::make_cell(word),
            layout,
            _family: PhantomData,
        })
    }

    /// The variable's tag/value layout.
    #[inline]
    #[must_use]
    pub fn layout(&self) -> TagLayout {
        self.layout
    }

    /// Figure 4's `LL(addr, keep)`: copies the word into `keep` and returns
    /// the value field. Linearizes at the read.
    ///
    /// **Ordering — acquire.** The whole construction lives in one cell, so
    /// linearizability needs only that cell's coherence order, which every
    /// ordering provides. Acquire (not relaxed) is still required so that,
    /// when a caller publishes side data before its release-SC (e.g. a
    /// stack node written before the head swing), the LL that observes the
    /// SC's word also observes that data. Nothing in any construction's
    /// proof appeals to a *total* order over distinct variables, so
    /// `SeqCst` buys nothing here.
    #[inline]
    pub fn ll<M: CasMemory<Family = F>>(&self, mem: &M, keep: &mut Keep) -> u64 {
        keep.0 = mem.load_acquire(&self.cell);
        self.layout.val(keep.0)
    }

    /// Figure 4's `VL(addr, keep)`: true iff no successful SC hit the
    /// variable since the LL that wrote `keep`. Linearizes at the read.
    ///
    /// **Ordering — acquire.** VL compares against the same single cell the
    /// LL read; coherence alone decides the boolean. Acquire keeps the
    /// read-side publication guarantee symmetric with [`CasLlSc::ll`].
    #[inline]
    #[must_use]
    pub fn vl<M: CasMemory<Family = F>>(&self, mem: &M, keep: &Keep) -> bool {
        keep.0 == mem.load_acquire(&self.cell)
    }

    /// Figure 4's `SC(addr, keep, new)`: one CAS from the kept word to
    /// `(keep.tag ⊕ 1, new)`. Linearizes at the CAS.
    ///
    /// **Ordering — acquire-release.** A successful SC is the release half
    /// of the publication chain whose acquire half is [`CasLlSc::ll`]: it
    /// orders the caller's preceding writes before the new tagged word.
    /// Whether the CAS succeeds is decided by the cell's coherence order —
    /// exactly one CAS can take the cell from `keep.0` to a successor tag —
    /// so strengthening to `SeqCst` cannot change any outcome, only add a
    /// fence. On failure an acquire read of the current word suffices
    /// (the value is discarded).
    ///
    /// # Panics
    ///
    /// Panics if `new` does not fit the layout's value field.
    #[inline]
    #[must_use]
    pub fn sc<M: CasMemory<Family = F>>(&self, mem: &M, keep: &Keep, new: u64) -> bool {
        assert!(
            new <= self.layout.max_val(),
            "value {new} exceeds layout maximum {}",
            self.layout.max_val()
        );
        let newword = self
            .layout
            .pack_unchecked(self.layout.tag_succ(self.layout.tag(keep.0)), new);
        let ok = mem.cas_acqrel(&self.cell, keep.0, newword);
        nbsp_telemetry::record(if ok {
            nbsp_telemetry::Event::ScSuccess
        } else {
            nbsp_telemetry::Event::ScFail
        });
        ok
    }

    /// Reads the current value (not part of the paper's interface, but an
    /// LL whose keep is discarded; linearizes at the read).
    ///
    /// **Ordering — acquire**, same argument as [`CasLlSc::ll`].
    #[inline]
    #[must_use]
    pub fn read<M: CasMemory<Family = F>>(&self, mem: &M) -> u64 {
        self.layout.val(mem.load_acquire(&self.cell))
    }

    /// The tag currently stored (for tests and wraparound experiments).
    #[inline]
    #[must_use]
    pub fn current_tag<M: CasMemory<Family = F>>(&self, mem: &M) -> u64 {
        self.layout.tag(mem.load_acquire(&self.cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EmuCas, EmuFamily, SimCas, SimFamily};
    use nbsp_memsim::{InstructionSet, Machine};

    fn native_var(initial: u64) -> CasLlSc<Native> {
        CasLlSc::new(TagLayout::half(), initial).unwrap()
    }

    #[test]
    fn ll_sc_basic_cycle() {
        let v = native_var(1);
        let mem = Native;
        let mut k = Keep::default();
        assert_eq!(v.ll(&mem, &mut k), 1);
        assert!(v.vl(&mem, &k));
        assert!(v.sc(&mem, &k, 2));
        assert_eq!(v.read(&mem), 2);
    }

    #[test]
    fn sc_fails_after_interfering_sc() {
        let v = native_var(1);
        let mem = Native;
        let mut k1 = Keep::default();
        let mut k2 = Keep::default();
        let _ = v.ll(&mem, &mut k1);
        let _ = v.ll(&mem, &mut k2);
        assert!(v.sc(&mem, &k1, 5));
        assert!(!v.vl(&mem, &k2));
        assert!(!v.sc(&mem, &k2, 6));
        assert_eq!(v.read(&mem), 5);
    }

    #[test]
    fn sc_fails_even_if_value_was_restored() {
        // The tag defeats ABA on values: 1 -> 2 -> 1 must still fail k0.
        let v = native_var(1);
        let mem = Native;
        let mut k0 = Keep::default();
        let _ = v.ll(&mem, &mut k0);

        let mut k = Keep::default();
        let _ = v.ll(&mem, &mut k);
        assert!(v.sc(&mem, &k, 2));
        let _ = v.ll(&mem, &mut k);
        assert!(v.sc(&mem, &k, 1));

        assert_eq!(v.read(&mem), 1); // value restored…
        assert!(!v.vl(&mem, &k0)); // …but VL sees the change
        assert!(!v.sc(&mem, &k0, 9)); // …and SC fails, as the spec demands
    }

    #[test]
    fn concurrent_sequences_within_one_process() {
        // Impossible on hardware LL/SC (one LLBit); routine here.
        let x = native_var(10);
        let y = native_var(20);
        let mem = Native;
        let mut kx = Keep::default();
        let mut ky = Keep::default();
        let vx = x.ll(&mem, &mut kx);
        let vy = y.ll(&mem, &mut ky);
        assert!(x.vl(&mem, &kx));
        assert!(y.sc(&mem, &ky, vy + 1));
        assert!(x.sc(&mem, &kx, vx + 1));
        assert_eq!((x.read(&mem), y.read(&mem)), (11, 21));
    }

    #[test]
    fn tag_increments_on_each_successful_sc() {
        let v = native_var(0);
        let mem = Native;
        for i in 0..5 {
            assert_eq!(v.current_tag(&mem), i);
            let mut k = Keep::default();
            let val = v.ll(&mem, &mut k);
            assert!(v.sc(&mem, &k, val + 1));
        }
    }

    #[test]
    fn rejects_layout_too_big_for_memory() {
        // Over the Figure-3 emulation with a 32-bit internal tag, only 32
        // bits remain — a 33-bit layout must be rejected.
        let r = CasLlSc::<EmuFamily<32>>::new(TagLayout::new(17, 16).unwrap(), 0);
        assert!(matches!(r, Err(Error::InvalidLayout { available: 32, .. })));
        assert!(CasLlSc::<EmuFamily<32>>::new(TagLayout::for_width(16, 16, 32).unwrap(), 0).is_ok());
    }

    #[test]
    fn rejects_oversized_initial() {
        let r = CasLlSc::<Native>::new(TagLayout::new(60, 4).unwrap(), 16);
        assert!(matches!(r, Err(Error::ValueTooLarge { .. })));
    }

    #[test]
    #[should_panic(expected = "exceeds layout maximum")]
    fn sc_panics_on_oversized_value() {
        let v = CasLlSc::<Native>::new(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let mem = Native;
        let mut k = Keep::default();
        let _ = v.ll(&mem, &mut k);
        let _ = v.sc(&mem, &k, 16);
    }

    #[test]
    fn works_over_simulated_cas_only_machine() {
        let m = Machine::builder(3)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let reader = m.processor(2);
        let v = CasLlSc::<SimFamily>::new(TagLayout::half(), 0).unwrap();
        std::thread::scope(|s| {
            for id in 0..2 {
                let p = m.processor(id);
                let v = &v;
                s.spawn(move || {
                    let mem = SimCas::new(&p);
                    for _ in 0..2_000 {
                        loop {
                            let mut k = Keep::default();
                            let val = v.ll(&mem, &mut k);
                            if v.sc(&mem, &k, val + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.read(&SimCas::new(&reader)), 4_000);
    }

    #[test]
    fn works_over_emulated_cas_on_llsc_only_machine() {
        // The full stack: Figure 4 over Figure 3 over RLL/RSC — an LL/VL/SC
        // with concurrent sequences on a machine with one LLBit and no CAS.
        let m = Machine::builder(2)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let v = CasLlSc::<EmuFamily<32>>::new(TagLayout::for_width(16, 16, 32).unwrap(), 0)
            .unwrap();
        std::thread::scope(|s| {
            for id in 0..2 {
                let p = m.processor(id);
                let v = &v;
                s.spawn(move || {
                    let mem = EmuCas::<32>::new(&p);
                    for _ in 0..500 {
                        loop {
                            let mut k = Keep::default();
                            let val = v.ll(&mem, &mut k);
                            if v.sc(&mem, &k, (val + 1) & 0xFFFF) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let m_check = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .build();
        let p = m_check.processor(0);
        let mem = EmuCas::<32>::new(&p);
        assert_eq!(v.read(&mem), 1000);
    }
}
