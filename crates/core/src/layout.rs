//! Bit layouts for tagged machine words.
//!
//! All of the paper's one-word constructions store a *tag* and a *value* in
//! a single machine word (`record tag: tagtype; val: valtype end`). The tag
//! detects changes to the value; tag arithmetic is modular (the paper's ⊕/⊖).
//! The split is the central engineering trade-off of Section 1: more tag
//! bits make wraparound (and therefore incorrect behaviour) less likely,
//! fewer tag bits leave more room for application data. Experiment E5
//! quantifies the trade-off.

use crate::{Error, Result};

/// A tag/value split of a `width`-bit word (`width ≤ 64`).
///
/// ```
/// use nbsp_core::TagLayout;
///
/// // The paper's Section-1 example: 48 tag bits and 16 value bits.
/// let layout = TagLayout::new(48, 16)?;
/// let w = layout.pack(7, 0xBEEF)?;
/// assert_eq!(layout.tag(w), 7);
/// assert_eq!(layout.val(w), 0xBEEF);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TagLayout {
    tag_bits: u32,
    val_bits: u32,
}

/// Mask with the low `bits` bits set (`bits ≤ 64`).
#[inline]
#[must_use]
pub(crate) fn low_mask(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

/// Minimum number of bits that can represent `count` distinct values
/// (at least 1 bit, so a field never has zero width).
#[inline]
#[must_use]
pub(crate) fn bits_for_count(count: u64) -> u32 {
    if count <= 2 {
        1
    } else {
        64 - (count - 1).leading_zeros()
    }
}

impl TagLayout {
    /// Creates a layout with the given tag and value widths, for a full
    /// 64-bit word.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLayout`] if either width is zero or the sum
    /// exceeds 64 bits.
    pub fn new(tag_bits: u32, val_bits: u32) -> Result<Self> {
        Self::for_width(tag_bits, val_bits, 64)
    }

    /// Creates a layout inside a word of only `width` usable bits (used when
    /// stacking constructions, e.g. LL/VL/SC-from-CAS on top of the
    /// Figure-3 emulated CAS, whose own tag consumes part of the word —
    /// the "two tags" problem of Section 3.2).
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidLayout`] if either width is zero or
    /// `tag_bits + val_bits > width` (or `width > 64`).
    pub fn for_width(tag_bits: u32, val_bits: u32, width: u32) -> Result<Self> {
        if tag_bits == 0
            || val_bits == 0
            || width > 64
            || tag_bits.saturating_add(val_bits) > width
        {
            return Err(Error::InvalidLayout {
                tag_bits,
                val_bits,
                available: width.min(64),
            });
        }
        Ok(TagLayout { tag_bits, val_bits })
    }

    /// A sensible default for 64-bit words: 32 tag bits, 32 value bits.
    #[must_use]
    pub fn half() -> Self {
        TagLayout {
            tag_bits: 32,
            val_bits: 32,
        }
    }

    /// Number of tag bits.
    #[inline]
    #[must_use]
    pub fn tag_bits(self) -> u32 {
        self.tag_bits
    }

    /// Number of value bits.
    #[inline]
    #[must_use]
    pub fn val_bits(self) -> u32 {
        self.val_bits
    }

    /// Total bits used by the layout.
    #[inline]
    #[must_use]
    pub fn total_bits(self) -> u32 {
        self.tag_bits + self.val_bits
    }

    /// Largest storable value.
    #[inline]
    #[must_use]
    pub fn max_val(self) -> u64 {
        low_mask(self.val_bits)
    }

    /// Largest tag; tags live in `0..=max_tag` and wrap modularly.
    #[inline]
    #[must_use]
    pub fn max_tag(self) -> u64 {
        low_mask(self.tag_bits)
    }

    /// Number of distinct tags (`max_tag + 1`), saturating at `u64::MAX`
    /// for 64-bit tags.
    #[inline]
    #[must_use]
    pub fn tag_count(self) -> u64 {
        self.max_tag().saturating_add(1)
    }

    /// Packs `tag` and `val` into a word. The tag occupies the high bits of
    /// the used region so that the value field starts at bit 0.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`] if `val` exceeds [`TagLayout::max_val`].
    /// Tags are reduced modulo the tag range rather than rejected, because
    /// all tag arithmetic in the paper is modular.
    pub fn pack(self, tag: u64, val: u64) -> Result<u64> {
        if val > self.max_val() {
            return Err(Error::ValueTooLarge {
                value: val,
                max: self.max_val(),
            });
        }
        Ok(((tag & self.max_tag()) << self.val_bits) | val)
    }

    /// Packs without validating `val`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `val` does not fit.
    #[inline]
    #[must_use]
    pub(crate) fn pack_unchecked(self, tag: u64, val: u64) -> u64 {
        debug_assert!(val <= self.max_val(), "value {val} exceeds layout");
        ((tag & self.max_tag()) << self.val_bits) | val
    }

    /// Extracts the tag field.
    #[inline]
    #[must_use]
    pub fn tag(self, word: u64) -> u64 {
        (word >> self.val_bits) & self.max_tag()
    }

    /// Extracts the value field.
    #[inline]
    #[must_use]
    pub fn val(self, word: u64) -> u64 {
        word & self.max_val()
    }

    /// The paper's `tag ⊕ 1`: increment modulo the tag range.
    #[inline]
    #[must_use]
    pub fn tag_succ(self, tag: u64) -> u64 {
        tag.wrapping_add(1) & self.max_tag()
    }

    /// The paper's `tag ⊖ 1`: decrement modulo the tag range.
    #[inline]
    #[must_use]
    pub fn tag_pred(self, tag: u64) -> u64 {
        tag.wrapping_sub(1) & self.max_tag()
    }

    /// Replaces a word's tag with its successor, keeping the value —
    /// the shape of every successful store in the paper.
    #[inline]
    #[must_use]
    pub fn bump_tag(self, word: u64) -> u64 {
        self.pack_unchecked(self.tag_succ(self.tag(word)), self.val(word))
    }

    /// Seconds until a tag field wraps around at `mods_per_sec` successful
    /// modifications per second — the paper's Section-1 arithmetic ("even if
    /// a variable is modified a million times a second, this would take
    /// about nine years" for 48 tag bits). Returns `f64::INFINITY` when the
    /// rate is zero.
    #[must_use]
    pub fn seconds_to_wraparound(self, mods_per_sec: f64) -> f64 {
        if mods_per_sec <= 0.0 {
            return f64::INFINITY;
        }
        self.tag_count() as f64 / mods_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let l = TagLayout::new(16, 48).unwrap();
        for (t, v) in [(0u64, 0u64), (1, 1), (0xFFFF, (1 << 48) - 1), (7, 12345)] {
            let w = l.pack(t, v).unwrap();
            assert_eq!(l.tag(w), t & l.max_tag());
            assert_eq!(l.val(w), v);
        }
    }

    #[test]
    fn rejects_zero_and_oversized_layouts() {
        assert!(TagLayout::new(0, 10).is_err());
        assert!(TagLayout::new(10, 0).is_err());
        assert!(TagLayout::new(33, 32).is_err());
        assert!(TagLayout::for_width(8, 8, 15).is_err());
        assert!(TagLayout::for_width(8, 8, 65).is_err());
        assert!(TagLayout::for_width(8, 8, 16).is_ok());
    }

    #[test]
    fn value_range_is_enforced() {
        let l = TagLayout::new(60, 4).unwrap();
        assert_eq!(l.max_val(), 15);
        assert!(l.pack(0, 16).is_err());
        assert!(l.pack(0, 15).is_ok());
    }

    #[test]
    fn tag_is_reduced_modulo_range() {
        let l = TagLayout::new(4, 4).unwrap();
        let w = l.pack(0x1_0003, 1).unwrap();
        assert_eq!(l.tag(w), 3);
    }

    #[test]
    fn tag_succ_and_pred_wrap() {
        let l = TagLayout::new(4, 60).unwrap();
        assert_eq!(l.tag_succ(14), 15);
        assert_eq!(l.tag_succ(15), 0);
        assert_eq!(l.tag_pred(0), 15);
        assert_eq!(l.tag_pred(1), 0);
    }

    #[test]
    fn bump_tag_keeps_value() {
        let l = TagLayout::new(8, 8).unwrap();
        let w = l.pack(255, 42).unwrap();
        let b = l.bump_tag(w);
        assert_eq!(l.tag(b), 0);
        assert_eq!(l.val(b), 42);
    }

    #[test]
    fn paper_wraparound_arithmetic() {
        // 48-bit tag, one million modifications per second ≈ 8.9 years.
        let l = TagLayout::new(48, 16).unwrap();
        let years = l.seconds_to_wraparound(1e6) / (365.25 * 24.0 * 3600.0);
        assert!((8.0..10.0).contains(&years), "{years} years");
    }

    #[test]
    fn wraparound_is_infinite_at_zero_rate() {
        let l = TagLayout::half();
        assert!(l.seconds_to_wraparound(0.0).is_infinite());
    }

    #[test]
    fn half_layout() {
        let l = TagLayout::half();
        assert_eq!((l.tag_bits(), l.val_bits(), l.total_bits()), (32, 32, 64));
        assert_eq!(l.max_val(), u32::MAX as u64);
    }

    #[test]
    fn low_mask_extremes() {
        assert_eq!(low_mask(0), 0);
        assert_eq!(low_mask(1), 1);
        assert_eq!(low_mask(64), u64::MAX);
    }

    #[test]
    fn bits_for_count_boundaries() {
        assert_eq!(bits_for_count(0), 1);
        assert_eq!(bits_for_count(1), 1);
        assert_eq!(bits_for_count(2), 1);
        assert_eq!(bits_for_count(3), 2);
        assert_eq!(bits_for_count(4), 2);
        assert_eq!(bits_for_count(5), 3);
        assert_eq!(bits_for_count(256), 8);
        assert_eq!(bits_for_count(257), 9);
        assert_eq!(bits_for_count(u64::MAX), 64);
    }
}
