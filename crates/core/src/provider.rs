//! The provider registry: every LL/VL/SC construction in one place.
//!
//! Before this module, each consumer (the contention sweep, E7, E9, the
//! serve crate, the integration tests) kept its own private list of
//! constructions — a `BenchVar` trait here, a `nat()` helper there — so
//! adding a provider meant editing five call sites. The registry inverts
//! that: [`ProviderId`] enumerates the constructions, [`ProviderMeta`]
//! carries their reporting metadata, the [`Provider`] trait packages
//! "how to build the environment / a variable / a per-thread context",
//! and the [`for_each_provider!`] / [`with_provider!`] macros let
//! monomorphized generic code run per provider — either statically (one
//! instantiation per entry) or dispatched from a runtime [`ProviderId`].
//!
//! This is the registry's *only* enumeration: consumers must not keep
//! their own `match`es over constructions (the PR's grep-proof criterion).
//!
//! ## Environments and thread contexts
//!
//! Constructions differ in what they need around a variable: native
//! atomics need nothing, the simulated machines need a [`Machine`] and a
//! per-thread `Processor`, Figure 7 and the constant-time construction
//! need a claimed per-process state from a shared domain. [`Provider`]
//! normalizes this to three steps:
//!
//! 1. [`Provider::env`]`(n)` — one shared environment sized for `n`
//!    per-thread contexts. Callers that also need a setup or reader
//!    context (structure construction does LL/SC work too) should request
//!    `env(threads + 1)` and use index `threads` for it.
//! 2. [`Provider::thread_ctx`]`(&env, p)` — the `Send` per-thread state
//!    for process `p < n`, claimed **once** per `(env, p)` for the
//!    domain-based providers (claiming twice panics, as in the paper:
//!    private variables are private).
//! 3. [`Provider::ctx`]`(&mut tc)` — the [`LlScVar::Ctx`] view used for
//!    operations. For the domain-based providers this *moves* the claimed
//!    state out of the thread context, so it may be called only once per
//!    `thread_ctx` result; call it once per session and reuse the result.

use std::sync::Arc;

use nbsp_memsim::{Capability, InstructionSet, Machine, ProcId, Processor};

use nbsp_memsim::{PWord, VWord};

use crate::bounded::{BoundedDomain, BoundedProc, BoundedVar, TagPolicy};
use crate::constant_llsc::{ConstantDomain, ConstantProc, ConstantVar};
use crate::dynamic_llsc::{DynProc, DynamicDomain, DynamicVar};
use crate::keep_search::{KeepRegistry, PerVarKeepVar, RegistryKeepVar};
use crate::lock_baseline::LockLlSc;
use crate::{
    CachePadded, CasFamily, CasLlSc, EmuCas, EmuFamily, Error, FebCas, FebFamily, Keep, KwCas,
    KwFamily, LlScVar, Native, NativeSeqCst, Result, RllLlSc, SimCas, SimFamily, TagLayout,
};

/// Concurrent LL–SC sequences per process (`k`) used by the registry's
/// domain-based entries.
///
/// Sizing audit (the deepest nesting any registered consumer reaches):
///
/// | consumer                      | keeps held at once                  |
/// |-------------------------------|-------------------------------------|
/// | `Queue::dequeue`              | 3 (head, tail, a link)              |
/// | `Set` traversal               | 1 + a nested `read` (an LL/CL pair) |
/// | `OrdMap` delete via LLX/SCX   | 4 linked handles (gp, p, leaf, and  |
/// |                               | the sibling being copied)           |
/// | SCX announce / freeze / help  | +1 transient (strictly one at a     |
/// |                               | time: each LL is SC'd or CL'd       |
/// |                               | before the next one opens)          |
///
/// The LLX/SCX worst case is therefore 4 held handles + 1 transient = 5
/// concurrent sequences — one past the old `k = 4`, which the deepest
/// pre-LLX consumer (`Queue::dequeue`) already met with *zero* margin.
/// The registry provisions exactly the deepest audited nesting; a future
/// consumer adding a nesting level fails loudly in review (and in the
/// keep-exhaustion conformance test) rather than silently at the
/// boundary. Exhausting all `k` slots anyway is a documented panic (slot
/// exhaustion in the Figure-7/constant domains), asserted by that test —
/// never UB.
pub const PROVIDER_K: usize = 5;

/// Variable budget for the registry's constant-time domain (its node pool
/// seeds one node per variable up front).
pub const PROVIDER_MAX_VARS: usize = 256;

/// Tag bits of the registry's Figure-3 emulated-CAS entry.
pub const PROVIDER_EMU_TAG_BITS: u32 = 16;

/// LL/SC tag bits of the registry's weak-primitive entries (CAS-from-swap
/// and NB-FEB). Their emulated CAS words carry 48 value bits (16 go to
/// the round counter), split 16 tag + 32 value exactly like the
/// Figure-3 entry — wide enough for every structure layered above and
/// for the differential fuzzer's tag churn not to wrap inside a window.
pub const PROVIDER_WEAK_TAG_BITS: u32 = 16;

// ---------------------------------------------------------------------------
// Native-family ablation wrappers (moved here from exp_contention, which
// used to keep them as a private provider list — exactly what the
// registry exists to forbid).
//
// `CasLlSc`'s inherent operations are generic over any `CasMemory` of the
// `Native` family, so the ordering axis is just a choice of context value
// (`&Native` = acquire/release, `&NativeSeqCst` = fully ordered) and the
// padding axis is a `CachePadded` box around the same variable. Each
// combination gets an `LlScVar` impl so generic structures run unchanged.
// ---------------------------------------------------------------------------

macro_rules! native_ablation_impl {
    ($name:ident, $ctx:ty, $ctx_val:expr) => {
        impl LlScVar for $name {
            type Keep = Option<Keep>;
            type Ctx<'a> = $ctx;

            fn ll(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>) -> u64 {
                let k = keep.get_or_insert_with(Keep::default);
                CasLlSc::ll(&self.0, &$ctx_val, k)
            }

            fn vl(&self, _ctx: &mut $ctx, keep: &Option<Keep>) -> bool {
                keep.as_ref()
                    .is_some_and(|k| CasLlSc::vl(&self.0, &$ctx_val, k))
            }

            fn sc(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>, new: u64) -> bool {
                keep.take()
                    .is_some_and(|k| CasLlSc::sc(&self.0, &$ctx_val, &k, new))
            }

            fn cl(&self, _ctx: &mut $ctx, keep: &mut Option<Keep>) {
                *keep = None;
            }

            fn read(&self, _ctx: &mut $ctx) -> u64 {
                CasLlSc::read(&self.0, &$ctx_val)
            }

            fn max_val(&self) -> u64 {
                self.0.layout().max_val()
            }
        }
    };
}

/// Figure 4 on native atomics, forced to `SeqCst`: the pre-PR-1 seed
/// configuration, kept as the ordering ablation.
#[derive(Debug)]
pub struct SeqCstVar(CasLlSc<Native>);
native_ablation_impl!(SeqCstVar, NativeSeqCst, NativeSeqCst);

/// Figure 4 on native atomics, cache-line padded: the layout ablation.
#[derive(Debug)]
pub struct PaddedVar(CachePadded<CasLlSc<Native>>);
native_ablation_impl!(PaddedVar, Native, Native);

/// Figure 4 padded **and** forced to `SeqCst`: isolates the layout win
/// from the ordering win.
#[derive(Debug)]
pub struct PaddedSeqCstVar(CachePadded<CasLlSc<Native>>);
native_ablation_impl!(PaddedSeqCstVar, NativeSeqCst, NativeSeqCst);

fn native_base(initial: u64) -> Result<CasLlSc<Native>> {
    CasLlSc::new_native(TagLayout::half(), initial)
}

// ---------------------------------------------------------------------------
// Identity + metadata.
// ---------------------------------------------------------------------------

/// Runtime identity of a registered construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProviderId {
    /// Figure 4 over native CAS, acquire/release orderings, unpadded.
    Fig4Native,
    /// Figure 4 over native CAS forced to `SeqCst` (ordering ablation).
    Fig4NativeSeqCst,
    /// Figure 4 over native CAS, cache-line padded (layout ablation).
    Fig4NativePadded,
    /// Figure 4 padded + `SeqCst` (both ablations together).
    Fig4NativePaddedSeqCst,
    /// Figure 4 over a simulated CAS-only machine.
    Fig4Sim,
    /// Figure 4 over Figure 3's CAS-from-RLL/RSC emulation.
    Fig4Emu,
    /// Figure 5: LL/SC directly from RLL/RSC on a simulated machine.
    Fig5Rll,
    /// Figure 7: bounded tags, indexed (constant-time) tag queue.
    Fig7Bounded,
    /// Figure 7 with the paper-literal O(Nk) scan queue (E9 ablation).
    Fig7BoundedScan,
    /// The Blelloch–Wei constant-time, bounded-space construction.
    ConstantTime,
    /// Figure 2: the lock-based reference semantics.
    LockBaseline,
    /// Keep-search ablation: per-variable keep slots.
    KeepPerVar,
    /// Keep-search ablation: registry-wide keep search.
    KeepWithRegistry,
    /// Writable LL/SC with dynamic joining (arXiv:2302.00135), volatile.
    Dynamic,
    /// The dynamic-joining construction over the persistent-memory model
    /// (durably linearizable, crash–recovery tested).
    DynamicDurable,
    /// Figure 4 over CAS emulated from swap + fetch-and-add
    /// (arXiv:1802.03844) — the consensus-hierarchy ablation's first rung.
    CasFromSwap,
    /// Figure 4 over CAS emulated from NB-FEB test-flag-and-set
    /// (arXiv:0811.1304) — the consensus-hierarchy ablation's second rung.
    FebLlSc,
}

impl ProviderId {
    /// Every registered construction, in registry order.
    pub const ALL: [ProviderId; 17] = [
        ProviderId::Fig4Native,
        ProviderId::Fig4NativeSeqCst,
        ProviderId::Fig4NativePadded,
        ProviderId::Fig4NativePaddedSeqCst,
        ProviderId::Fig4Sim,
        ProviderId::Fig4Emu,
        ProviderId::Fig5Rll,
        ProviderId::Fig7Bounded,
        ProviderId::Fig7BoundedScan,
        ProviderId::ConstantTime,
        ProviderId::LockBaseline,
        ProviderId::KeepPerVar,
        ProviderId::KeepWithRegistry,
        ProviderId::Dynamic,
        ProviderId::DynamicDurable,
        ProviderId::CasFromSwap,
        ProviderId::FebLlSc,
    ];

    /// The stable CLI/JSON name (`--provider` flags, BENCH output).
    #[must_use]
    pub fn name(self) -> &'static str {
        self.meta().name
    }

    /// Parses a CLI/JSON name back to an id — the single `--provider`
    /// parser every experiment binary routes through.
    ///
    /// # Errors
    ///
    /// Returns a message listing all valid names on no match.
    pub fn parse(s: &str) -> std::result::Result<ProviderId, String> {
        ProviderId::ALL
            .iter()
            .copied()
            .find(|id| id.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = ProviderId::ALL.iter().map(|id| id.name()).collect();
                format!("unknown provider {s:?}; valid: {}", names.join(", "))
            })
    }

    /// Reporting metadata for this construction.
    #[must_use]
    pub fn meta(self) -> ProviderMeta {
        match self {
            ProviderId::Fig4Native => ProviderMeta {
                id: self,
                name: "fig4-native",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4",
                family: "native CAS",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: false,
                ordering: "acqrel",
                constant_time_sc: true,
                native_ablation: true,
            },
            ProviderId::Fig4NativeSeqCst => ProviderMeta {
                id: self,
                name: "fig4-native-seqcst",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4",
                family: "native CAS",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: true,
            },
            ProviderId::Fig4NativePadded => ProviderMeta {
                id: self,
                name: "fig4-native-padded",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4",
                family: "native CAS",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: true,
                ordering: "acqrel",
                constant_time_sc: true,
                native_ablation: true,
            },
            ProviderId::Fig4NativePaddedSeqCst => ProviderMeta {
                id: self,
                name: "fig4-native-padded-seqcst",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4",
                family: "native CAS",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: true,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: true,
            },
            ProviderId::Fig4Sim => ProviderMeta {
                id: self,
                name: "fig4-sim",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4",
                family: "simulated CAS",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::Fig4Emu => ProviderMeta {
                id: self,
                name: "fig4-emu",
                capability: Capability::RLL_RSC,
                tier: Tier::FixedN,
                figure: "4 over 3",
                family: "RLL/RSC-emulated CAS",
                space_class: "O(1)/var",
                tag_bits: "16+16",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::Fig5Rll => ProviderMeta {
                id: self,
                name: "fig5-rll",
                capability: Capability::RLL_RSC,
                tier: Tier::FixedN,
                figure: "5",
                family: "RLL/RSC",
                space_class: "O(1)/var",
                tag_bits: "32",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::Fig7Bounded => ProviderMeta {
                id: self,
                name: "fig7-bounded",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "7",
                family: "native CAS",
                space_class: "Θ(N(k+T))",
                tag_bits: "⌈log(2Nk+1)⌉",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::Fig7BoundedScan => ProviderMeta {
                id: self,
                name: "fig7-bounded-scan",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "7 (literal)",
                family: "native CAS",
                space_class: "Θ(N(k+T))",
                tag_bits: "⌈log(2Nk+1)⌉",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: false,
                native_ablation: false,
            },
            ProviderId::ConstantTime => ProviderMeta {
                id: self,
                name: "constant",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "— (arXiv:1911.09671)",
                family: "native CAS",
                space_class: "Θ(N²k + T)",
                tag_bits: "0",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::LockBaseline => ProviderMeta {
                id: self,
                name: "lock",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "2",
                family: "lock",
                space_class: "Θ(N)/var",
                tag_bits: "0",
                padded: false,
                ordering: "lock",
                constant_time_sc: false,
                native_ablation: false,
            },
            ProviderId::KeepPerVar => ProviderMeta {
                id: self,
                name: "keep-pervar",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4 + per-var keeps",
                family: "native CAS",
                space_class: "Θ(N)/var",
                tag_bits: "32",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::KeepWithRegistry => ProviderMeta {
                id: self,
                name: "keep-registry",
                capability: Capability::CAS,
                tier: Tier::FixedN,
                figure: "4 + keep registry",
                family: "native CAS",
                space_class: "Θ(N + T)",
                tag_bits: "32",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: false,
                native_ablation: false,
            },
            ProviderId::Dynamic => ProviderMeta {
                id: self,
                name: "dynamic",
                capability: Capability::CAS,
                tier: Tier::Dynamic,
                figure: "— (arXiv:2302.00135)",
                family: "native CAS",
                space_class: "Θ(N)/var",
                tag_bits: "0",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::DynamicDurable => ProviderMeta {
                id: self,
                name: "dynamic-durable",
                capability: Capability::CAS,
                tier: Tier::Dynamic,
                figure: "— (arXiv:2302.00135)",
                family: "persistent memory (model)",
                space_class: "Θ(N)/var",
                tag_bits: "0",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: true,
                native_ablation: false,
            },
            ProviderId::CasFromSwap => ProviderMeta {
                id: self,
                name: "cas-from-swap",
                capability: Capability::SWAP | Capability::FETCH_ADD,
                tier: Tier::WeakPrimitive,
                figure: "— (arXiv:1802.03844)",
                family: "swap+faa-emulated CAS",
                space_class: "O(1)/var",
                tag_bits: "16+16",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: false,
                native_ablation: false,
            },
            ProviderId::FebLlSc => ProviderMeta {
                id: self,
                name: "feb-llsc",
                capability: Capability::FEB,
                tier: Tier::WeakPrimitive,
                figure: "— (arXiv:0811.1304)",
                family: "NB-FEB-emulated CAS",
                space_class: "O(1)/var",
                tag_bits: "16+16",
                padded: false,
                ordering: "seqcst",
                constant_time_sc: false,
                native_ablation: false,
            },
        }
    }
}

impl std::fmt::Display for ProviderId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Process-model tier of a construction — how its process set is sized
/// and what primitive strength it assumes. Queryable so sweeps can slice
/// the registry (`--provider tier:dynamic`) without naming providers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tier {
    /// The process set is sealed at `env(n)` time (the paper's model).
    FixedN,
    /// Processes join and retire at runtime (arXiv:2302.00135).
    Dynamic,
    /// Built on primitives strictly weaker than CAS (the
    /// consensus-hierarchy ablation: swap/fetch-and-add, NB-FEB).
    WeakPrimitive,
}

impl Tier {
    /// Every tier, in registry order.
    pub const ALL: [Tier; 3] = [Tier::FixedN, Tier::Dynamic, Tier::WeakPrimitive];

    /// The stable CLI name used by `--provider tier:` filters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::FixedN => "fixed-n",
            Tier::Dynamic => "dynamic",
            Tier::WeakPrimitive => "weak-primitive",
        }
    }

    /// Parses a CLI tier name (the `tier:` filter payload).
    ///
    /// # Errors
    ///
    /// Returns a message listing the valid names on an unknown tier.
    pub fn parse(s: &str) -> std::result::Result<Tier, String> {
        Tier::ALL
            .iter()
            .copied()
            .find(|t| t.name() == s)
            .ok_or_else(|| {
                let names: Vec<&str> = Tier::ALL.iter().map(|t| t.name()).collect();
                format!("unknown tier {s:?}; valid: {}", names.join(", "))
            })
    }
}

impl std::fmt::Display for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Reporting metadata of a registered construction: everything a sweep or
/// report needs without hardcoding per-provider knowledge.
#[derive(Clone, Copy, Debug)]
pub struct ProviderMeta {
    /// The construction's identity.
    pub id: ProviderId,
    /// Stable CLI/JSON name.
    pub name: &'static str,
    /// Which paper figure (or external construction) this implements.
    pub figure: &'static str,
    /// The primitive family underneath (native CAS, simulated, lock…).
    pub family: &'static str,
    /// Space-overhead class, in the paper's N/k/T variables.
    pub space_class: &'static str,
    /// Tag bits consumed inside the word (the value-width cost).
    pub tag_bits: &'static str,
    /// Whether the variable is cache-line padded.
    pub padded: bool,
    /// Memory-ordering regime of the hot path.
    pub ordering: &'static str,
    /// Whether a single `sc` is O(1) worst case (Fig7BoundedScan's O(Nk)
    /// tag scan and the lock baseline's critical section are not).
    pub constant_time_sc: bool,
    /// Whether this entry exists for the exp_contention padding/ordering
    /// ablation matrix (the four native Figure-4 corners).
    pub native_ablation: bool,
    /// The instruction-set capabilities the construction requires of its
    /// memory (what a [`Machine`] must grant for `env` to make sense).
    /// Native entries require `CAS` — hardware grants the rest for free,
    /// but CAS is what their hot path issues.
    pub capability: Capability,
    /// Which process-model/primitive tier the construction belongs to.
    pub tier: Tier,
}

// ---------------------------------------------------------------------------
// The factory trait.
// ---------------------------------------------------------------------------

/// A registered construction: how to build its environment, variables and
/// per-thread contexts. See the module docs for the three-step protocol.
pub trait Provider: 'static {
    /// This provider's registry identity.
    const ID: ProviderId;

    /// The variable type (its `LlScVar` impl is what consumers run).
    type Var: LlScVar + 'static;

    /// Shared environment: sizing info, a simulated machine, or a domain.
    type Env: Send + Sync + 'static;

    /// Per-thread state from which an operation context is made.
    type ThreadCtx: Send;

    /// Builds an environment sized for `n` thread contexts.
    ///
    /// # Errors
    ///
    /// Propagates the construction's domain/layout errors (e.g. a Figure-7
    /// layout with no value bits left).
    fn env(n: usize) -> Result<Self::Env>;

    /// Creates a variable holding `initial`.
    ///
    /// # Errors
    ///
    /// Propagates the construction's value/budget errors.
    fn var(env: &Self::Env, initial: u64) -> Result<Self::Var>;

    /// Claims the per-thread state for process `p`.
    ///
    /// # Errors
    ///
    /// [`Error::PoolExhausted`] when `p` is at or past the environment's
    /// process capacity (every provider knows its `n`), or — for the
    /// dynamic providers — names a slot that is not currently admitted.
    fn try_thread_ctx(env: &Self::Env, p: usize) -> Result<Self::ThreadCtx>;

    /// Claims the per-thread state for process `p < n`, panicking where
    /// [`Provider::try_thread_ctx`] would error.
    ///
    /// # Panics
    ///
    /// If `p` is rejected; for domain-based providers, also if `(env, p)`
    /// is claimed twice.
    fn thread_ctx(env: &Self::Env, p: usize) -> Self::ThreadCtx {
        match Self::try_thread_ctx(env, p) {
            Ok(tc) => tc,
            Err(e) => panic!("thread_ctx({p}): {e}"),
        }
    }

    /// Admits a late-arriving process, returning a fresh id usable with
    /// [`Provider::try_thread_ctx`]. The default is the fixed-N answer:
    /// the process set was sealed at [`Provider::env`] time, so there are
    /// no dynamically joinable slots.
    ///
    /// # Errors
    ///
    /// [`Error::PoolExhausted`] when no slot is free — always, for
    /// fixed-N providers (reported capacity 0: the *joinable* pool is
    /// empty, whatever `n` was).
    fn join(env: &Self::Env) -> Result<usize> {
        let _ = env;
        Err(Error::PoolExhausted { capacity: 0 })
    }

    /// Retires a process id, returning its slot (and per-process
    /// resources) to the pool for future joiners. A no-op for fixed-N
    /// providers: their slots were never joinable, so there is nothing to
    /// return.
    fn retire(env: &Self::Env, p: usize) {
        let _ = (env, p);
    }

    /// Makes the operation context. For domain-based providers this moves
    /// the claimed state out of `tc` — call once per [`Provider::thread_ctx`]
    /// result (a second call panics) and reuse the returned context.
    fn ctx<'a>(tc: &'a mut Self::ThreadCtx) -> <Self::Var as LlScVar>::Ctx<'a>;
}

fn check_pid(n: usize, p: usize) -> Result<()> {
    if p < n {
        Ok(())
    } else {
        Err(Error::PoolExhausted { capacity: n })
    }
}

fn machine(n: usize, set: InstructionSet) -> Machine {
    Machine::builder(n).instruction_set(set).build()
}

/// Figure 4 over native CAS (acquire/release, unpadded): the default
/// provider real structures use.
#[derive(Debug)]
pub struct Fig4Native;

impl Provider for Fig4Native {
    const ID: ProviderId = ProviderId::Fig4Native;
    type Var = CasLlSc<Native>;
    type Env = usize;
    type ThreadCtx = Native;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(_env: &usize, initial: u64) -> Result<CasLlSc<Native>> {
        native_base(initial)
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<Native> {
        check_pid(*env, p)?;
        Ok(Native)
    }

    fn ctx(tc: &mut Native) -> Native {
        *tc
    }
}

/// Figure 4 over native CAS forced to `SeqCst` (ordering ablation).
#[derive(Debug)]
pub struct Fig4NativeSeqCst;

impl Provider for Fig4NativeSeqCst {
    const ID: ProviderId = ProviderId::Fig4NativeSeqCst;
    type Var = SeqCstVar;
    type Env = usize;
    type ThreadCtx = NativeSeqCst;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(_env: &usize, initial: u64) -> Result<SeqCstVar> {
        Ok(SeqCstVar(native_base(initial)?))
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<NativeSeqCst> {
        check_pid(*env, p)?;
        Ok(NativeSeqCst)
    }

    fn ctx(tc: &mut NativeSeqCst) -> NativeSeqCst {
        *tc
    }
}

/// Figure 4 over native CAS, cache-line padded (layout ablation).
#[derive(Debug)]
pub struct Fig4NativePadded;

impl Provider for Fig4NativePadded {
    const ID: ProviderId = ProviderId::Fig4NativePadded;
    type Var = PaddedVar;
    type Env = usize;
    type ThreadCtx = Native;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(_env: &usize, initial: u64) -> Result<PaddedVar> {
        Ok(PaddedVar(CachePadded::new(native_base(initial)?)))
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<Native> {
        check_pid(*env, p)?;
        Ok(Native)
    }

    fn ctx(tc: &mut Native) -> Native {
        *tc
    }
}

/// Figure 4 padded + `SeqCst` (both ablations together).
#[derive(Debug)]
pub struct Fig4NativePaddedSeqCst;

impl Provider for Fig4NativePaddedSeqCst {
    const ID: ProviderId = ProviderId::Fig4NativePaddedSeqCst;
    type Var = PaddedSeqCstVar;
    type Env = usize;
    type ThreadCtx = NativeSeqCst;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(_env: &usize, initial: u64) -> Result<PaddedSeqCstVar> {
        Ok(PaddedSeqCstVar(CachePadded::new(native_base(initial)?)))
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<NativeSeqCst> {
        check_pid(*env, p)?;
        Ok(NativeSeqCst)
    }

    fn ctx(tc: &mut NativeSeqCst) -> NativeSeqCst {
        *tc
    }
}

/// Figure 4 over a simulated CAS-only machine.
#[derive(Debug)]
pub struct Fig4Sim;

impl Provider for Fig4Sim {
    const ID: ProviderId = ProviderId::Fig4Sim;
    type Var = CasLlSc<SimFamily>;
    type Env = Machine;
    type ThreadCtx = Processor;

    fn env(n: usize) -> Result<Machine> {
        Ok(machine(n, InstructionSet::CasOnly))
    }

    fn var(_env: &Machine, initial: u64) -> Result<CasLlSc<SimFamily>> {
        CasLlSc::new(TagLayout::half(), initial)
    }

    fn try_thread_ctx(env: &Machine, p: usize) -> Result<Processor> {
        check_pid(env.n(), p)?;
        Ok(env.processor(p))
    }

    fn ctx<'a>(tc: &'a mut Processor) -> SimCas<'a> {
        SimCas::new(&*tc)
    }
}

/// Figure 4 over Figure 3's CAS-from-RLL/RSC emulation.
#[derive(Debug)]
pub struct Fig4Emu;

impl Provider for Fig4Emu {
    const ID: ProviderId = ProviderId::Fig4Emu;
    type Var = CasLlSc<EmuFamily<PROVIDER_EMU_TAG_BITS>>;
    type Env = Machine;
    type ThreadCtx = Processor;

    fn env(n: usize) -> Result<Machine> {
        Ok(machine(n, InstructionSet::RllRscOnly))
    }

    fn var(_env: &Machine, initial: u64) -> Result<Self::Var> {
        // 16 LL/SC tag bits + 32 value bits inside the emulation's 48
        // value bits (64 minus its own 16 emulation-tag bits).
        CasLlSc::new(
            TagLayout::for_width(
                PROVIDER_EMU_TAG_BITS,
                32,
                EmuFamily::<PROVIDER_EMU_TAG_BITS>::VALUE_BITS,
            )?,
            initial,
        )
    }

    fn try_thread_ctx(env: &Machine, p: usize) -> Result<Processor> {
        check_pid(env.n(), p)?;
        Ok(env.processor(p))
    }

    fn ctx<'a>(tc: &'a mut Processor) -> EmuCas<'a, PROVIDER_EMU_TAG_BITS> {
        EmuCas::new(&*tc)
    }
}

/// Figure 5: LL/SC directly from RLL/RSC on a simulated machine.
#[derive(Debug)]
pub struct Fig5Rll;

impl Provider for Fig5Rll {
    const ID: ProviderId = ProviderId::Fig5Rll;
    type Var = RllLlSc;
    type Env = Machine;
    type ThreadCtx = Processor;

    fn env(n: usize) -> Result<Machine> {
        Ok(machine(n, InstructionSet::RllRscOnly))
    }

    fn var(_env: &Machine, initial: u64) -> Result<RllLlSc> {
        RllLlSc::new(TagLayout::half(), initial)
    }

    fn try_thread_ctx(env: &Machine, p: usize) -> Result<Processor> {
        check_pid(env.n(), p)?;
        Ok(env.processor(p))
    }

    fn ctx(tc: &mut Processor) -> &Processor {
        &*tc
    }
}

/// Figure 7: bounded tags with the indexed (constant-time) tag queue.
#[derive(Debug)]
pub struct Fig7Bounded;

impl Provider for Fig7Bounded {
    const ID: ProviderId = ProviderId::Fig7Bounded;
    type Var = BoundedVar<Native>;
    type Env = Arc<BoundedDomain<Native>>;
    type ThreadCtx = Option<BoundedProc<Native>>;

    fn env(n: usize) -> Result<Arc<BoundedDomain<Native>>> {
        BoundedDomain::new(n, PROVIDER_K)
    }

    fn var(env: &Arc<BoundedDomain<Native>>, initial: u64) -> Result<BoundedVar<Native>> {
        env.var(initial)
    }

    fn try_thread_ctx(
        env: &Arc<BoundedDomain<Native>>,
        p: usize,
    ) -> Result<Option<BoundedProc<Native>>> {
        check_pid(env.n(), p)?;
        Ok(Some(env.proc(p)))
    }

    fn ctx(tc: &mut Option<BoundedProc<Native>>) -> BoundedProc<Native> {
        tc.take().expect("ctx() already taken from this thread_ctx")
    }
}

/// Figure 7 with the paper-literal O(Nk) scan queue (E9 ablation).
#[derive(Debug)]
pub struct Fig7BoundedScan;

impl Provider for Fig7BoundedScan {
    const ID: ProviderId = ProviderId::Fig7BoundedScan;
    type Var = BoundedVar<Native>;
    type Env = Arc<BoundedDomain<Native>>;
    type ThreadCtx = Option<BoundedProc<Native>>;

    fn env(n: usize) -> Result<Arc<BoundedDomain<Native>>> {
        BoundedDomain::new_with_policy(n, PROVIDER_K, TagPolicy::Scan)
    }

    fn var(env: &Arc<BoundedDomain<Native>>, initial: u64) -> Result<BoundedVar<Native>> {
        env.var(initial)
    }

    fn try_thread_ctx(
        env: &Arc<BoundedDomain<Native>>,
        p: usize,
    ) -> Result<Option<BoundedProc<Native>>> {
        check_pid(env.n(), p)?;
        Ok(Some(env.proc(p)))
    }

    fn ctx(tc: &mut Option<BoundedProc<Native>>) -> BoundedProc<Native> {
        tc.take().expect("ctx() already taken from this thread_ctx")
    }
}

/// The Blelloch–Wei constant-time, bounded-space construction.
#[derive(Debug)]
pub struct ConstantTime;

impl Provider for ConstantTime {
    const ID: ProviderId = ProviderId::ConstantTime;
    type Var = ConstantVar<Native>;
    type Env = Arc<ConstantDomain<Native>>;
    type ThreadCtx = Option<ConstantProc<Native>>;

    fn env(n: usize) -> Result<Arc<ConstantDomain<Native>>> {
        ConstantDomain::new(n, PROVIDER_K, PROVIDER_MAX_VARS)
    }

    fn var(env: &Arc<ConstantDomain<Native>>, initial: u64) -> Result<ConstantVar<Native>> {
        env.var(&Native, initial)
    }

    fn try_thread_ctx(
        env: &Arc<ConstantDomain<Native>>,
        p: usize,
    ) -> Result<Option<ConstantProc<Native>>> {
        check_pid(env.n(), p)?;
        Ok(Some(env.proc(p)))
    }

    fn ctx(tc: &mut Option<ConstantProc<Native>>) -> ConstantProc<Native> {
        tc.take().expect("ctx() already taken from this thread_ctx")
    }
}

/// Figure 2: the lock-based reference semantics.
#[derive(Debug)]
pub struct LockBaseline;

impl Provider for LockBaseline {
    const ID: ProviderId = ProviderId::LockBaseline;
    type Var = LockLlSc;
    type Env = usize;
    type ThreadCtx = ProcId;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(env: &usize, initial: u64) -> Result<LockLlSc> {
        Ok(LockLlSc::new(*env, initial))
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<ProcId> {
        check_pid(*env, p)?;
        Ok(ProcId::new(p))
    }

    fn ctx(tc: &mut ProcId) -> ProcId {
        *tc
    }
}

/// Keep-search ablation: per-variable keep slots.
#[derive(Debug)]
pub struct KeepPerVar;

impl Provider for KeepPerVar {
    const ID: ProviderId = ProviderId::KeepPerVar;
    type Var = PerVarKeepVar;
    type Env = usize;
    type ThreadCtx = ProcId;

    fn env(n: usize) -> Result<usize> {
        Ok(n)
    }

    fn var(env: &usize, initial: u64) -> Result<PerVarKeepVar> {
        PerVarKeepVar::new(*env, TagLayout::half(), initial)
    }

    fn try_thread_ctx(env: &usize, p: usize) -> Result<ProcId> {
        check_pid(*env, p)?;
        Ok(ProcId::new(p))
    }

    fn ctx(tc: &mut ProcId) -> ProcId {
        *tc
    }
}

/// Keep-search ablation: registry-wide keep search.
#[derive(Debug)]
pub struct KeepWithRegistry;

impl Provider for KeepWithRegistry {
    const ID: ProviderId = ProviderId::KeepWithRegistry;
    type Var = RegistryKeepVar;
    type Env = (usize, Arc<KeepRegistry>);
    type ThreadCtx = ProcId;

    fn env(n: usize) -> Result<(usize, Arc<KeepRegistry>)> {
        Ok((n, KeepRegistry::new()))
    }

    fn var(env: &(usize, Arc<KeepRegistry>), initial: u64) -> Result<RegistryKeepVar> {
        RegistryKeepVar::new(&env.1, env.0, TagLayout::half(), initial)
    }

    fn try_thread_ctx(env: &(usize, Arc<KeepRegistry>), p: usize) -> Result<ProcId> {
        check_pid(env.0, p)?;
        Ok(ProcId::new(p))
    }

    fn ctx(tc: &mut ProcId) -> ProcId {
        *tc
    }
}

/// Writable LL/SC with dynamic joining (arXiv:2302.00135), volatile
/// words: the provider whose process set grows and shrinks at runtime.
#[derive(Debug)]
pub struct Dynamic;

impl Provider for Dynamic {
    const ID: ProviderId = ProviderId::Dynamic;
    type Var = DynamicVar<VWord>;
    type Env = Arc<DynamicDomain>;
    type ThreadCtx = DynProc;

    fn env(n: usize) -> Result<Arc<DynamicDomain>> {
        DynamicDomain::with_preadmitted(n)
    }

    fn var(env: &Arc<DynamicDomain>, initial: u64) -> Result<DynamicVar<VWord>> {
        DynamicVar::new(env.capacity(), initial)
    }

    fn try_thread_ctx(env: &Arc<DynamicDomain>, p: usize) -> Result<DynProc> {
        env.claim(p)
    }

    fn join(env: &Arc<DynamicDomain>) -> Result<usize> {
        env.join()
    }

    fn retire(env: &Arc<DynamicDomain>, p: usize) {
        env.retire(p);
    }

    fn ctx(tc: &mut DynProc) -> DynProc {
        *tc
    }
}

/// The dynamic-joining construction over the persistent-memory model:
/// durably linearizable, gated by kill-at-schedule-point crash–recovery.
#[derive(Debug)]
pub struct DynamicDurable;

impl Provider for DynamicDurable {
    const ID: ProviderId = ProviderId::DynamicDurable;
    type Var = DynamicVar<PWord>;
    type Env = Arc<DynamicDomain>;
    type ThreadCtx = DynProc;

    fn env(n: usize) -> Result<Arc<DynamicDomain>> {
        DynamicDomain::with_preadmitted(n)
    }

    fn var(env: &Arc<DynamicDomain>, initial: u64) -> Result<DynamicVar<PWord>> {
        DynamicVar::new(env.capacity(), initial)
    }

    fn try_thread_ctx(env: &Arc<DynamicDomain>, p: usize) -> Result<DynProc> {
        env.claim(p)
    }

    fn join(env: &Arc<DynamicDomain>) -> Result<usize> {
        env.join()
    }

    fn retire(env: &Arc<DynamicDomain>, p: usize) {
        env.retire(p);
    }

    fn ctx(tc: &mut DynProc) -> DynProc {
        *tc
    }
}

/// Figure 4 over CAS emulated from swap + fetch-and-add
/// (arXiv:1802.03844): the consensus-hierarchy ablation's Φ/swap rung.
/// Runs on a machine that grants *only* swap and fetch-and-add.
#[derive(Debug)]
pub struct CasFromSwap;

impl Provider for CasFromSwap {
    const ID: ProviderId = ProviderId::CasFromSwap;
    type Var = CasLlSc<KwFamily>;
    type Env = Machine;
    type ThreadCtx = Processor;

    fn env(n: usize) -> Result<Machine> {
        Ok(machine(n, InstructionSet::SwapFaaOnly))
    }

    fn var(_env: &Machine, initial: u64) -> Result<Self::Var> {
        // 16 LL/SC tag bits + 32 value bits inside the emulation's 48
        // value bits (the Khanchandani–Wattenhofer word spends its top 16
        // on the round counter).
        CasLlSc::new(
            TagLayout::for_width(PROVIDER_WEAK_TAG_BITS, 32, KwFamily::VALUE_BITS)?,
            initial,
        )
    }

    fn try_thread_ctx(env: &Machine, p: usize) -> Result<Processor> {
        check_pid(env.n(), p)?;
        Ok(env.processor(p))
    }

    fn ctx<'a>(tc: &'a mut Processor) -> KwCas<'a> {
        KwCas::new(&*tc)
    }
}

/// Figure 4 over CAS emulated from NB-FEB test-flag-and-set
/// (arXiv:0811.1304): the consensus-hierarchy ablation's FEB rung.
/// Runs on a machine that grants *only* the NB-FEB operations.
#[derive(Debug)]
pub struct FebLlSc;

impl Provider for FebLlSc {
    const ID: ProviderId = ProviderId::FebLlSc;
    type Var = CasLlSc<FebFamily>;
    type Env = Machine;
    type ThreadCtx = Processor;

    fn env(n: usize) -> Result<Machine> {
        Ok(machine(n, InstructionSet::FebOnly))
    }

    fn var(_env: &Machine, initial: u64) -> Result<Self::Var> {
        // Same 16 tag + 32 value split as `CasFromSwap` — the FEB word
        // also keeps its top 16 bits for the round counter.
        CasLlSc::new(
            TagLayout::for_width(PROVIDER_WEAK_TAG_BITS, 32, FebFamily::VALUE_BITS)?,
            initial,
        )
    }

    fn try_thread_ctx(env: &Machine, p: usize) -> Result<Processor> {
        check_pid(env.n(), p)?;
        Ok(env.processor(p))
    }

    fn ctx<'a>(tc: &'a mut Processor) -> FebCas<'a> {
        FebCas::new(&*tc)
    }
}

// ---------------------------------------------------------------------------
// Dispatch macros.
// ---------------------------------------------------------------------------

/// Invokes `$body!(snake_name, ProviderType)` once per registry entry —
/// the static fan-out (e.g. the conformance suite generates one test
/// module per provider).
///
/// ```
/// macro_rules! count {
///     ($name:ident, $p:ty) => {
///         let _: nbsp_core::ProviderId = <$p as nbsp_core::Provider>::ID;
///     };
/// }
/// nbsp_core::for_each_provider!(count);
/// ```
#[macro_export]
macro_rules! for_each_provider {
    ($body:ident) => {
        $body!(fig4_native, $crate::provider::Fig4Native);
        $body!(fig4_native_seqcst, $crate::provider::Fig4NativeSeqCst);
        $body!(fig4_native_padded, $crate::provider::Fig4NativePadded);
        $body!(
            fig4_native_padded_seqcst,
            $crate::provider::Fig4NativePaddedSeqCst
        );
        $body!(fig4_sim, $crate::provider::Fig4Sim);
        $body!(fig4_emu, $crate::provider::Fig4Emu);
        $body!(fig5_rll, $crate::provider::Fig5Rll);
        $body!(fig7_bounded, $crate::provider::Fig7Bounded);
        $body!(fig7_bounded_scan, $crate::provider::Fig7BoundedScan);
        $body!(constant_time, $crate::provider::ConstantTime);
        $body!(lock_baseline, $crate::provider::LockBaseline);
        $body!(keep_pervar, $crate::provider::KeepPerVar);
        $body!(keep_with_registry, $crate::provider::KeepWithRegistry);
        $body!(dynamic, $crate::provider::Dynamic);
        $body!(dynamic_durable, $crate::provider::DynamicDurable);
        $body!(cas_from_swap, $crate::provider::CasFromSwap);
        $body!(feb_llsc, $crate::provider::FebLlSc);
    };
}

/// Dispatches a runtime [`ProviderId`] to monomorphized code:
/// `with_provider!(id, body)` expands to a match whose every arm invokes
/// `body!(ProviderType)` with the arm's concrete provider. The macro is
/// the registry's only id → type match; the whole expression takes the
/// value of the invoked arm.
///
/// Note every arm is monomorphized: `body` must *compile* for all
/// registered providers even if only some ids are ever passed.
///
/// ```
/// macro_rules! name_of {
///     ($p:ty) => {
///         <$p as nbsp_core::Provider>::ID.name()
///     };
/// }
/// let id = nbsp_core::ProviderId::ConstantTime;
/// assert_eq!(nbsp_core::with_provider!(id, name_of), "constant");
/// ```
#[macro_export]
macro_rules! with_provider {
    ($id:expr, $body:ident) => {
        match $id {
            $crate::ProviderId::Fig4Native => $body!($crate::provider::Fig4Native),
            $crate::ProviderId::Fig4NativeSeqCst => $body!($crate::provider::Fig4NativeSeqCst),
            $crate::ProviderId::Fig4NativePadded => $body!($crate::provider::Fig4NativePadded),
            $crate::ProviderId::Fig4NativePaddedSeqCst => {
                $body!($crate::provider::Fig4NativePaddedSeqCst)
            }
            $crate::ProviderId::Fig4Sim => $body!($crate::provider::Fig4Sim),
            $crate::ProviderId::Fig4Emu => $body!($crate::provider::Fig4Emu),
            $crate::ProviderId::Fig5Rll => $body!($crate::provider::Fig5Rll),
            $crate::ProviderId::Fig7Bounded => $body!($crate::provider::Fig7Bounded),
            $crate::ProviderId::Fig7BoundedScan => $body!($crate::provider::Fig7BoundedScan),
            $crate::ProviderId::ConstantTime => $body!($crate::provider::ConstantTime),
            $crate::ProviderId::LockBaseline => $body!($crate::provider::LockBaseline),
            $crate::ProviderId::KeepPerVar => $body!($crate::provider::KeepPerVar),
            $crate::ProviderId::KeepWithRegistry => $body!($crate::provider::KeepWithRegistry),
            $crate::ProviderId::Dynamic => $body!($crate::provider::Dynamic),
            $crate::ProviderId::DynamicDurable => $body!($crate::provider::DynamicDurable),
            $crate::ProviderId::CasFromSwap => $body!($crate::provider::CasFromSwap),
            $crate::ProviderId::FebLlSc => $body!($crate::provider::FebLlSc),
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_roundtrip_through_parse() {
        for id in ProviderId::ALL {
            assert_eq!(ProviderId::parse(id.name()), Ok(id));
            assert_eq!(id.meta().id, id);
            assert_eq!(id.to_string(), id.name());
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = ProviderId::ALL.iter().map(|id| id.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ProviderId::ALL.len());
    }

    #[test]
    fn parse_error_lists_valid_names() {
        let err = ProviderId::parse("nope").unwrap_err();
        assert!(err.contains("fig4-native"));
        assert!(err.contains("constant"));
        assert!(err.contains("fig7-bounded-scan"));
    }

    #[test]
    fn exactly_four_native_ablation_corners() {
        let corners: Vec<ProviderId> = ProviderId::ALL
            .iter()
            .copied()
            .filter(|id| id.meta().native_ablation)
            .collect();
        assert_eq!(
            corners,
            [
                ProviderId::Fig4Native,
                ProviderId::Fig4NativeSeqCst,
                ProviderId::Fig4NativePadded,
                ProviderId::Fig4NativePaddedSeqCst,
            ]
        );
    }

    #[test]
    fn tiers_partition_the_registry() {
        let dynamic: Vec<ProviderId> = ProviderId::ALL
            .iter()
            .copied()
            .filter(|id| id.meta().tier == Tier::Dynamic)
            .collect();
        assert_eq!(dynamic, [ProviderId::Dynamic, ProviderId::DynamicDurable]);
        let weak: Vec<ProviderId> = ProviderId::ALL
            .iter()
            .copied()
            .filter(|id| id.meta().tier == Tier::WeakPrimitive)
            .collect();
        assert_eq!(weak, [ProviderId::CasFromSwap, ProviderId::FebLlSc]);
        let fixed = ProviderId::ALL
            .iter()
            .filter(|id| id.meta().tier == Tier::FixedN)
            .count();
        assert_eq!(fixed, ProviderId::ALL.len() - 4);
        assert_eq!(Tier::WeakPrimitive.to_string(), "weak-primitive");
    }

    #[test]
    fn weak_providers_require_exactly_their_machines_capability() {
        assert_eq!(
            ProviderId::CasFromSwap.meta().capability,
            InstructionSet::SwapFaaOnly.capability()
        );
        assert_eq!(
            ProviderId::FebLlSc.meta().capability,
            InstructionSet::FebOnly.capability()
        );
        // Every CAS-tier entry's requirement is granted by a CAS machine.
        for id in ProviderId::ALL {
            let cap = id.meta().capability;
            if cap.contains(Capability::CAS) {
                assert!(InstructionSet::CasOnly.capability().contains(cap), "{id}");
            }
        }
    }

    #[test]
    fn with_provider_dispatches_to_the_matching_type() {
        macro_rules! id_of {
            ($p:ty) => {
                <$p as Provider>::ID
            };
        }
        for id in ProviderId::ALL {
            assert_eq!(with_provider!(id, id_of), id);
        }
    }

    #[test]
    fn for_each_provider_covers_the_whole_registry() {
        let mut seen = Vec::new();
        macro_rules! collect {
            ($name:ident, $p:ty) => {
                seen.push(<$p as Provider>::ID);
            };
        }
        for_each_provider!(collect);
        assert_eq!(seen, ProviderId::ALL.to_vec());
    }

    /// The three-step protocol works generically for every entry: build,
    /// increment a few times single-threaded, read back.
    fn smoke<P: Provider>() {
        let env = P::env(2).expect("env");
        let var = P::var(&env, 0).expect("var");
        let mut tc = P::thread_ctx(&env, 0);
        let mut ctx = P::ctx(&mut tc);
        for _ in 0..10 {
            let mut keep = <P::Var as LlScVar>::Keep::default();
            loop {
                let v = var.ll(&mut ctx, &mut keep);
                if var.sc(&mut ctx, &mut keep, v + 1) {
                    break;
                }
            }
        }
        assert_eq!(var.read(&mut ctx), 10);
    }

    #[test]
    fn every_provider_smokes() {
        macro_rules! run_smoke {
            ($name:ident, $p:ty) => {
                smoke::<$p>();
            };
        }
        for_each_provider!(run_smoke);
    }

    /// Every provider rejects an out-of-range pid with a typed error
    /// instead of a panic (the fixed-N satellite), and in-range pids
    /// succeed.
    fn pid_bounds<P: Provider>() {
        let env = P::env(2).expect("env");
        assert!(P::try_thread_ctx(&env, 0).is_ok(), "{}", P::ID);
        // Far past any headroom a dynamic pool provisions for joiners.
        match P::try_thread_ctx(&env, usize::MAX) {
            Err(Error::PoolExhausted { .. }) => {}
            Err(e) => panic!("{}: wrong error {e}", P::ID),
            Ok(_) => panic!("{}: out-of-range pid accepted", P::ID),
        }
    }

    #[test]
    fn every_provider_bounds_its_pids() {
        macro_rules! run_bounds {
            ($name:ident, $p:ty) => {
                pid_bounds::<$p>();
            };
        }
        for_each_provider!(run_bounds);
    }

    #[test]
    fn fixed_n_providers_refuse_join_and_tolerate_retire() {
        let env = Fig4Native::env(2).unwrap();
        assert_eq!(
            Fig4Native::join(&env),
            Err(Error::PoolExhausted { capacity: 0 })
        );
        Fig4Native::retire(&env, 0); // no-op, must not panic
        assert!(Fig4Native::try_thread_ctx(&env, 0).is_ok());
    }

    #[test]
    fn dynamic_providers_join_and_retire_through_the_trait() {
        fn churn<P: Provider>() {
            let env = P::env(1).expect("env");
            let var = P::var(&env, 0).expect("var");
            let late = P::join(&env).expect("join");
            assert!(late >= 1, "pre-admitted ids are 0..n");
            let mut tc = P::thread_ctx(&env, late);
            let mut ctx = P::ctx(&mut tc);
            let mut keep = <P::Var as LlScVar>::Keep::default();
            loop {
                let v = var.ll(&mut ctx, &mut keep);
                if var.sc(&mut ctx, &mut keep, v + 1) {
                    break;
                }
            }
            assert_eq!(var.read(&mut ctx), 1);
            P::retire(&env, late);
            // The retired slot is joinable again.
            assert_eq!(P::join(&env).expect("rejoin"), late);
        }
        churn::<Dynamic>();
        churn::<DynamicDurable>();
    }
}
