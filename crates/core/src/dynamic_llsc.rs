//! Writable LL/SC with dynamic joining (and a durable variant).
//!
//! Every construction in this crate fixes its process set at creation:
//! Figure 7's tag pool, the constant-time announce array, even the lock
//! baseline's valid bits are all sized for `N` processes known up front.
//! Jayanti, Jayanti & Jayanti (*Durable Algorithms for Writable LL/SC and
//! CAS with Dynamic Joining*, arXiv:2302.00135) lift both restrictions at
//! once: processes may [`join`](DynamicDomain::join) and
//! [`retire`](DynamicDomain::retire) at any time, and the durable variant
//! survives full-system crashes on persistent memory.
//!
//! ## The construction
//!
//! The variable is a pointer word `X = (seq, cell)` naming one cell of a
//! pool; the *value* lives in the cell, so values are full 64-bit words
//! (no tag bits stolen). Each process slot `p` owns two cells; cell 0 is
//! the genesis cell holding the initial value.
//!
//! * **LL**: read `X`, read the cell it names, re-read `X`; retry until
//!   the two reads of `X` agree (then the value belongs to that `X`).
//!   The observed `X` is the keep.
//! * **VL**: `X` still equals the keep.
//! * **SC(new)**: write `new` into the *own* cell the keep does **not**
//!   name, then CAS `X` from the keep to `(seq+1, that cell)`.
//!
//! The two-cell rule is the heart of the safety argument: `X` can only
//! name one of `p`'s cells if `p`'s *own previous* SC installed it, and
//! because `seq` strictly increases and `p` operates sequentially, the
//! keep of `p`'s next SC either names that same cell (so `p` writes the
//! other one) or was read after `X` had already moved off it — and an `X`
//! state, once left, can never recur (its `seq` is spent). So the cell a
//! successful CAS publishes is never concurrently overwritten, and a
//! *failed* CAS means the write went into a cell nothing points to.
//! Retiring a slot and re-joining it later preserves this: the rule is
//! about which cell `X` names *now*, not about who owned it when.
//!
//! The monotone `seq` (54 bits here) also defeats ABA without consuming
//! value bits — the pointer word is tagged, the values are not.
//!
//! ## Durability
//!
//! Instantiated over [`PWord`](nbsp_memsim::PWord) the same code is
//! durably linearizable, with three flush rules (the paper's CLWB/SFENCE
//! placement):
//!
//! * SC flushes the **cell before** installing it (a durable `X` must
//!   never name an unflushed value) and flushes `X` **after** a
//!   successful install, *before returning* (an SC that reported success
//!   must survive the crash).
//! * LL and read flush `X` before returning (an operation may act on what
//!   it saw; what it saw must therefore be durable first — this persists
//!   other processes' installs before anything is built on them).
//!
//! `X` is flushed by many processes, so it uses
//! [`flush_max`](nbsp_memsim::PWord::flush_max) (persisted image only
//! moves forward — the per-cache-line coherence real CLWB gives); each
//! cell is flushed only by its owning slot, so plain `flush` suffices.
//! After a crash, [`DynamicVar::recover`] rolls every word back to its
//! persisted image; the flush rules above make that state a prefix-closed
//! linearization of the pre-crash history (every completed SC included).
//!
//! ## Membership
//!
//! [`DynamicDomain`] tracks slot membership in per-slot claim flags
//! (free → admitted → active); `join` finds a free slot by CAS and
//! `retire` frees it. Membership is bookkeeping, not synchronization —
//! the LL/SC hot path never touches it — so the flags are plain atomics
//! outside the schedule-point instrumentation.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nbsp_memsim::{CachePadded, MemWord, PWord, VWord};

use crate::{Error, LlScVar, Result};

/// Bits of `X` naming the cell; the rest is the monotone sequence number.
const IDX_BITS: u32 = 10;
/// Largest slot count the cell index can address: `2 * MAX_SLOTS + 1`
/// cells must fit in `IDX_BITS` bits.
pub const MAX_SLOTS: usize = ((1 << IDX_BITS) - 1) / 2;

const fn seq_of(x: u64) -> u64 {
    x >> IDX_BITS
}

const fn idx_of(x: u64) -> usize {
    (x & ((1 << IDX_BITS) - 1)) as usize
}

const fn make_x(seq: u64, idx: usize) -> u64 {
    (seq << IDX_BITS) | idx as u64
}

// Membership slot states.
const FREE: u64 = 0;
const ADMITTED: u64 = 1;
const ACTIVE: u64 = 2;

/// The membership side of the construction: a pool of process slots that
/// can be admitted and retired at runtime. Shared by every
/// [`DynamicVar`] created against it (the slot count sizes their cell
/// pools).
pub struct DynamicDomain {
    slots: Box<[CachePadded<AtomicU64>]>,
}

impl DynamicDomain {
    /// A domain with `capacity` process slots, all free.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDomain`] if `capacity` is zero or exceeds
    /// [`MAX_SLOTS`] (the cell index must fit the pointer word).
    pub fn new(capacity: usize) -> Result<Arc<DynamicDomain>> {
        if capacity == 0 {
            return Err(Error::InvalidDomain {
                what: "dynamic domain capacity must be positive",
            });
        }
        if capacity > MAX_SLOTS {
            return Err(Error::InvalidDomain {
                what: "dynamic domain capacity exceeds the cell index width",
            });
        }
        let slots = (0..capacity)
            .map(|_| CachePadded::new(AtomicU64::new(FREE)))
            .collect();
        Ok(Arc::new(DynamicDomain { slots }))
    }

    /// A domain sized for `n` pre-admitted slots (ids `0..n`, ready for
    /// [`DynamicDomain::claim`]) plus headroom of at least `max(8, n)`
    /// free slots for late joiners, capped at [`MAX_SLOTS`].
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDomain`] if `n` is zero or exceeds [`MAX_SLOTS`].
    pub fn with_preadmitted(n: usize) -> Result<Arc<DynamicDomain>> {
        let capacity = n.saturating_add(n.max(8)).min(MAX_SLOTS);
        if n > MAX_SLOTS {
            return Err(Error::InvalidDomain {
                what: "dynamic domain capacity exceeds the cell index width",
            });
        }
        let d = DynamicDomain::new(capacity)?;
        for slot in d.slots.iter().take(n) {
            slot.store(ADMITTED, Ordering::SeqCst);
        }
        Ok(d)
    }

    /// Number of process slots (admitted or not).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently admitted or active.
    #[must_use]
    pub fn members(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| s.load(Ordering::SeqCst) != FREE)
            .count()
    }

    /// Admits a new process: claims a free slot and returns its id, ready
    /// for [`DynamicDomain::claim`].
    ///
    /// # Errors
    ///
    /// [`Error::PoolExhausted`] when every slot is taken.
    pub fn join(&self) -> Result<usize> {
        for (p, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(FREE, ADMITTED, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                nbsp_telemetry::record(nbsp_telemetry::Event::JoinAdmit);
                return Ok(p);
            }
        }
        Err(Error::PoolExhausted {
            capacity: self.capacity(),
        })
    }

    /// Binds an admitted slot to the calling thread, producing the
    /// per-thread context. Each admission is claimable exactly once
    /// (until the slot is retired and re-joined).
    ///
    /// # Errors
    ///
    /// [`Error::PoolExhausted`] if `p` is out of range or the slot is
    /// free (not admitted); [`Error::InvalidDomain`] if the slot is
    /// already active on another thread.
    pub fn claim(&self, p: usize) -> Result<DynProc> {
        let Some(slot) = self.slots.get(p) else {
            return Err(Error::PoolExhausted {
                capacity: self.capacity(),
            });
        };
        match slot.compare_exchange(ADMITTED, ACTIVE, Ordering::SeqCst, Ordering::SeqCst) {
            Ok(_) => Ok(DynProc { p }),
            Err(FREE) => Err(Error::PoolExhausted {
                capacity: self.capacity(),
            }),
            Err(_) => Err(Error::InvalidDomain {
                what: "dynamic slot already claimed by another thread",
            }),
        }
    }

    /// Retires slot `p`: its id (and its cells in every variable) return
    /// to the pool for future joiners. The caller must have stopped using
    /// every context derived from this slot — retiring a slot an LL/SC
    /// sequence is still running on is a caller bug (like dropping a
    /// claimed processor mid-operation), not detected here.
    pub fn retire(&self, p: usize) {
        if let Some(slot) = self.slots.get(p) {
            if slot.swap(FREE, Ordering::SeqCst) != FREE {
                nbsp_telemetry::record(nbsp_telemetry::Event::Retire);
            }
        }
    }
}

impl fmt::Debug for DynamicDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DynamicDomain(capacity={}, members={})",
            self.capacity(),
            self.members()
        )
    }
}

/// Per-thread context of a dynamic slot: just the slot id (the cells it
/// owns are addressed by id inside each variable).
#[derive(Clone, Copy, Debug)]
pub struct DynProc {
    p: usize,
}

impl DynProc {
    /// The slot id this context operates as.
    #[must_use]
    pub fn id(self) -> usize {
        self.p
    }
}

/// One writable LL/SC variable of the dynamic-joining construction,
/// generic over the word type: [`VWord`] for the volatile provider,
/// [`PWord`] for the durable one.
pub struct DynamicVar<W: MemWord> {
    /// The pointer word `(seq << IDX_BITS) | cell`.
    x: W,
    /// Cell 0 is genesis (the initial value); slot `p` owns cells
    /// `1 + 2p` and `2 + 2p`.
    cells: Box<[W]>,
}

/// The volatile variable type.
pub type VolatileDynamicVar = DynamicVar<VWord>;
/// The durable (persistent-memory) variable type.
pub type DurableDynamicVar = DynamicVar<PWord>;

impl<W: MemWord> DynamicVar<W> {
    /// A variable over a pool of `capacity` slots, holding `initial`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidDomain`] if `capacity` is zero or exceeds
    /// [`MAX_SLOTS`].
    pub fn new(capacity: usize, initial: u64) -> Result<DynamicVar<W>> {
        if capacity == 0 || capacity > MAX_SLOTS {
            return Err(Error::InvalidDomain {
                what: "dynamic variable capacity out of range",
            });
        }
        let cells: Box<[W]> = (0..1 + 2 * capacity)
            .map(|i| W::new(if i == 0 { initial } else { 0 }))
            .collect();
        Ok(DynamicVar {
            x: W::new(make_x(0, 0)),
            cells,
        })
    }

    fn own_cells(p: usize) -> (usize, usize) {
        (1 + 2 * p, 2 + 2 * p)
    }

    /// One consistent `(x, value)` snapshot: the value is the one the
    /// returned `x` installed.
    fn snapshot(&self) -> (u64, u64) {
        loop {
            let x1 = self.x.load();
            let v = self.cells[idx_of(x1)].load();
            if self.x.load() == x1 {
                // What this operation saw must be durable before the
                // caller acts on it (no-op for the volatile word).
                self.x.flush_max();
                return (x1, v);
            }
            nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
        }
    }

    /// Rolls every word back to its persisted image after a crash and
    /// re-checks the recovered state's integrity. Quiescent-only: every
    /// thread of the crashed execution must have stopped. For the
    /// volatile instantiation this is a no-op (nothing was lost).
    ///
    /// Returns the recovered value.
    pub fn recover(&self) -> u64 {
        self.x.crash_reset();
        for c in self.cells.iter() {
            c.crash_reset();
        }
        nbsp_telemetry::record(nbsp_telemetry::Event::CrashRecover);
        let x = self.x.peek_persisted();
        assert!(
            idx_of(x) < self.cells.len(),
            "recovered pointer names a cell outside the pool"
        );
        self.cells[idx_of(x)].peek_persisted()
    }
}

impl<W: MemWord> LlScVar for DynamicVar<W> {
    type Keep = Option<u64>;
    type Ctx<'a> = DynProc;

    fn ll(&self, _ctx: &mut DynProc, keep: &mut Option<u64>) -> u64 {
        let (x, v) = self.snapshot();
        *keep = Some(x);
        v
    }

    fn vl(&self, _ctx: &mut DynProc, keep: &Option<u64>) -> bool {
        keep.is_some_and(|k| self.x.load() == k)
    }

    fn sc(&self, ctx: &mut DynProc, keep: &mut Option<u64>, new: u64) -> bool {
        let Some(k) = keep.take() else {
            return false;
        };
        let (a, b) = Self::own_cells(ctx.p);
        // The two-cell rule: write the own cell the keep does not name.
        // X can only currently name an own cell if the keep names it too
        // (see the module docs), so the target is never the live cell.
        let target = if idx_of(k) == a { b } else { a };
        self.cells[target].store(new);
        // The value must be durable before X can name it.
        self.cells[target].flush();
        let ok = self.x.cas(k, make_x(seq_of(k) + 1, target));
        if ok {
            // A reported success must survive a crash.
            self.x.flush_max();
            nbsp_telemetry::record(nbsp_telemetry::Event::ScSuccess);
        } else {
            nbsp_telemetry::record(nbsp_telemetry::Event::ScFail);
        }
        ok
    }

    fn cl(&self, _ctx: &mut DynProc, keep: &mut Option<u64>) {
        *keep = None;
    }

    fn read(&self, _ctx: &mut DynProc) -> u64 {
        self.snapshot().1
    }

    fn max_val(&self) -> u64 {
        // Values live in whole cells, not in the pointer word: no tag
        // bits are stolen from the value.
        u64::MAX
    }
}

impl<W: MemWord> fmt::Debug for DynamicVar<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = self.x.peek_persisted();
        write!(
            f,
            "DynamicVar(seq={}, cell={}, cells={})",
            seq_of(x),
            idx_of(x),
            self.cells.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn increments<W: MemWord>(var: &DynamicVar<W>, mut me: DynProc, times: u64) {
        for _ in 0..times {
            let mut keep = None;
            loop {
                let v = var.ll(&mut me, &mut keep);
                if var.sc(&mut me, &mut keep, v + 1) {
                    break;
                }
            }
        }
    }

    #[test]
    fn sequential_semantics_on_both_words() {
        fn run<W: MemWord>() {
            let d = DynamicDomain::with_preadmitted(1).unwrap();
            let var = DynamicVar::<W>::new(d.capacity(), 7).unwrap();
            let mut me = d.claim(0).unwrap();
            assert_eq!(var.read(&mut me), 7);
            increments(&var, me, 100);
            assert_eq!(var.read(&mut me), 107);
        }
        run::<VWord>();
        run::<PWord>();
    }

    #[test]
    fn vl_tracks_interference() {
        let d = DynamicDomain::with_preadmitted(2).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 0).unwrap();
        let mut p0 = d.claim(0).unwrap();
        let mut p1 = d.claim(1).unwrap();
        let mut k0 = None;
        let _ = var.ll(&mut p0, &mut k0);
        assert!(var.vl(&mut p0, &k0));
        increments(&var, p1, 1);
        assert!(!var.vl(&mut p0, &k0), "p1's SC must invalidate p0's keep");
        assert!(!var.sc(&mut p0, &mut k0, 99));
        assert_eq!(var.read(&mut p1), 1);
    }

    #[test]
    fn sc_without_ll_fails() {
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 3).unwrap();
        let mut me = d.claim(0).unwrap();
        let mut keep = None;
        assert!(!var.sc(&mut me, &mut keep, 4));
        assert!(!var.vl(&mut me, &keep));
        assert_eq!(var.read(&mut me), 3);
    }

    #[test]
    fn full_word_values_roundtrip() {
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), u64::MAX).unwrap();
        let mut me = d.claim(0).unwrap();
        assert_eq!(var.max_val(), u64::MAX);
        assert_eq!(var.read(&mut me), u64::MAX);
        let mut keep = None;
        let v = var.ll(&mut me, &mut keep);
        assert!(var.sc(&mut me, &mut keep, v - 1));
        assert_eq!(var.read(&mut me), u64::MAX - 1);
    }

    #[test]
    fn join_exhaustion_and_slot_reuse() {
        let d = DynamicDomain::new(2).unwrap();
        let a = d.join().unwrap();
        let b = d.join().unwrap();
        assert_ne!(a, b);
        assert_eq!(
            d.join(),
            Err(Error::PoolExhausted { capacity: 2 }),
            "pool of 2 must reject a third joiner"
        );
        d.retire(a);
        assert_eq!(d.join().unwrap(), a, "retired slot is reusable");
        assert_eq!(d.members(), 2);
    }

    #[test]
    fn claim_rejects_free_and_double_claims() {
        let d = DynamicDomain::new(2).unwrap();
        assert!(matches!(d.claim(0), Err(Error::PoolExhausted { .. })));
        assert!(matches!(d.claim(9), Err(Error::PoolExhausted { .. })));
        let p = d.join().unwrap();
        let _ctx = d.claim(p).unwrap();
        assert!(matches!(d.claim(p), Err(Error::InvalidDomain { .. })));
    }

    #[test]
    fn late_joiner_operates_on_a_live_variable() {
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 0).unwrap();
        let p0 = d.claim(0).unwrap();
        increments(&var, p0, 5);
        let late = d.join().unwrap();
        let mut me = d.claim(late).unwrap();
        increments(&var, me, 5);
        assert_eq!(var.read(&mut me), 10);
    }

    #[test]
    fn retire_then_rejoin_reuses_cells_safely() {
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 0).unwrap();
        let p0 = d.claim(0).unwrap();
        increments(&var, p0, 3);
        d.retire(0);
        let again = d.join().unwrap();
        assert_eq!(again, 0, "lowest free slot is reused");
        let mut me = d.claim(again).unwrap();
        increments(&var, me, 3);
        assert_eq!(var.read(&mut me), 6);
    }

    #[test]
    fn unflushed_sc_is_lost_but_recovery_is_consistent() {
        // Drive the durable variant by hand to a crash point: value
        // written, cell flushed, X installed but *not* flushed — the SC
        // never returned, so losing it is linearizable.
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<PWord>::new(d.capacity(), 5).unwrap();
        let me = d.claim(0).unwrap();
        let (a, _) = DynamicVar::<PWord>::own_cells(me.id());
        let k = var.x.load();
        var.cells[a].store(42);
        var.cells[a].flush();
        assert!(var.x.cas(k, make_x(seq_of(k) + 1, a)));
        // Crash before the X flush: recovery must roll back to 5.
        assert_eq!(var.recover(), 5);
        let mut me = me;
        assert_eq!(var.read(&mut me), 5);
    }

    #[test]
    fn completed_sc_survives_recovery() {
        let d = DynamicDomain::with_preadmitted(1).unwrap();
        let var = DynamicVar::<PWord>::new(d.capacity(), 0).unwrap();
        let mut me = d.claim(0).unwrap();
        increments(&var, me, 4);
        assert_eq!(var.recover(), 4, "returned SCs are durable");
        assert_eq!(var.read(&mut me), 4);
    }

    #[test]
    fn contended_increments_are_exact() {
        let d = DynamicDomain::with_preadmitted(4).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 0).unwrap();
        std::thread::scope(|s| {
            for p in 0..4 {
                let d = &d;
                let var = &var;
                s.spawn(move || {
                    let me = d.claim(p).unwrap();
                    increments(var, me, 1000);
                });
            }
        });
        let mut me = d.claim(d.join().unwrap()).unwrap();
        assert_eq!(var.read(&mut me), 4000);
    }

    #[test]
    fn domain_capacity_bounds() {
        assert!(DynamicDomain::new(0).is_err());
        assert!(DynamicDomain::new(MAX_SLOTS + 1).is_err());
        assert!(DynamicDomain::new(MAX_SLOTS).is_ok());
        assert!(DynamicVar::<VWord>::new(0, 0).is_err());
    }
}
