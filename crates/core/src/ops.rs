//! A uniform interface over every LL/VL/SC implementation in this crate.
//!
//! The data structures in `nbsp-structures` and the benchmark harness need
//! to run the *same* algorithm over Figure 4, Figure 5, Figure 7, the lock
//! baseline and the keep-search ablations. [`LlScVar`] abstracts the
//! variable; its associated `Ctx` type carries whatever per-thread state the
//! implementation requires (nothing for native atomics, a simulated
//! [`Processor`](nbsp_memsim::Processor) for RLL/RSC-based variants, the
//! private slot/queue state for the bounded construction, a bare
//! [`ProcId`] for the baselines).
//!
//! The generic `Keep` is an `Option`-like state machine: `ll` begins a
//! sequence (silently aborting any previous one held by the same keep,
//! releasing its resources), `sc` finishes it, `cl` aborts it.

use nbsp_memsim::{ProcId, Processor};

use crate::bounded::{BoundedKeep, BoundedProc, BoundedVar};
use crate::constant_llsc::{ConstantKeep, ConstantProc, ConstantVar};
use crate::keep_search::{PerVarKeepVar, RegistryKeepVar};
use crate::lock_baseline::LockLlSc;
use crate::{
    CasLlSc, EmuCas, EmuFamily, FebCas, FebFamily, Keep, KwCas, KwFamily, Native, RllLlSc,
    SimCas, SimFamily,
};

/// A shared variable supporting LL/VL/SC, usable from many threads, with
/// per-thread context `Ctx` and per-sequence state `Keep`.
///
/// `vl`/`sc`/`cl` on a keep with no sequence in progress return `false` /
/// `false` / nothing — mirroring hardware, where SC without LL simply
/// fails. (The paper leaves this case undefined; total behaviour is easier
/// to compose generically.)
///
/// ```
/// use nbsp_core::{CasLlSc, LlScVar, Native, TagLayout};
///
/// // Algorithms written against the trait run on every construction:
/// fn fetch_add<V: LlScVar>(var: &V, ctx: &mut V::Ctx<'_>, delta: u64) -> u64 {
///     let mut keep = V::Keep::default();
///     loop {
///         let v = var.ll(ctx, &mut keep);
///         if var.sc(ctx, &mut keep, v + delta) {
///             return v;
///         }
///     }
/// }
///
/// let var = CasLlSc::new_native(TagLayout::half(), 5)?;
/// assert_eq!(fetch_add(&var, &mut Native, 3), 5);
/// assert_eq!(LlScVar::read(&var, &mut Native), 8);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
pub trait LlScVar: Send + Sync {
    /// Per-sequence private state; `Default` is "no sequence in progress".
    type Keep: Default + Send;

    /// Per-thread context (processor handle, private bounded-tag state, …).
    type Ctx<'a>
    where
        Self: 'a;

    /// Starts an LL–SC sequence, returning the value read. Any sequence
    /// previously tracked by `keep` is aborted first.
    fn ll(&self, ctx: &mut Self::Ctx<'_>, keep: &mut Self::Keep) -> u64;

    /// Validates the sequence: true iff an SC at this point could succeed.
    fn vl(&self, ctx: &mut Self::Ctx<'_>, keep: &Self::Keep) -> bool;

    /// Finishes the sequence with a store-conditional of `new`.
    fn sc(&self, ctx: &mut Self::Ctx<'_>, keep: &mut Self::Keep, new: u64) -> bool;

    /// Aborts the sequence without storing.
    fn cl(&self, ctx: &mut Self::Ctx<'_>, keep: &mut Self::Keep);

    /// Reads the current value (a sequence-free load).
    fn read(&self, ctx: &mut Self::Ctx<'_>) -> u64;

    /// Largest value this variable can store.
    fn max_val(&self) -> u64;
}

// ---------------------------------------------------------------------------
// Figure 4 over native CAS.
// ---------------------------------------------------------------------------

impl LlScVar for CasLlSc<Native> {
    type Keep = Option<Keep>;
    type Ctx<'a> = Native;

    fn ll(&self, _ctx: &mut Native, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        CasLlSc::ll(self, &Native, k)
    }

    fn vl(&self, _ctx: &mut Native, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| CasLlSc::vl(self, &Native, k))
    }

    fn sc(&self, _ctx: &mut Native, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take()
            .is_some_and(|k| CasLlSc::sc(self, &Native, &k, new))
    }

    fn cl(&self, _ctx: &mut Native, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, _ctx: &mut Native) -> u64 {
        CasLlSc::read(self, &Native)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 4 over a simulated CAS-only machine.
// ---------------------------------------------------------------------------

impl LlScVar for CasLlSc<SimFamily> {
    type Keep = Option<Keep>;
    type Ctx<'a> = SimCas<'a>;

    fn ll(&self, ctx: &mut SimCas<'_>, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        CasLlSc::ll(self, ctx, k)
    }

    fn vl(&self, ctx: &mut SimCas<'_>, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| CasLlSc::vl(self, ctx, k))
    }

    fn sc(&self, ctx: &mut SimCas<'_>, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take().is_some_and(|k| CasLlSc::sc(self, ctx, &k, new))
    }

    fn cl(&self, _ctx: &mut SimCas<'_>, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, ctx: &mut SimCas<'_>) -> u64 {
        CasLlSc::read(self, ctx)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 4 over Figure 3 (the full stack on an RLL/RSC-only machine).
// ---------------------------------------------------------------------------

impl<const TAG_BITS: u32> LlScVar for CasLlSc<EmuFamily<TAG_BITS>> {
    type Keep = Option<Keep>;
    type Ctx<'a> = EmuCas<'a, TAG_BITS>;

    fn ll(&self, ctx: &mut EmuCas<'_, TAG_BITS>, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        CasLlSc::ll(self, ctx, k)
    }

    fn vl(&self, ctx: &mut EmuCas<'_, TAG_BITS>, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| CasLlSc::vl(self, ctx, k))
    }

    fn sc(&self, ctx: &mut EmuCas<'_, TAG_BITS>, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take().is_some_and(|k| CasLlSc::sc(self, ctx, &k, new))
    }

    fn cl(&self, _ctx: &mut EmuCas<'_, TAG_BITS>, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, ctx: &mut EmuCas<'_, TAG_BITS>) -> u64 {
        CasLlSc::read(self, ctx)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 4 over the Khanchandani–Wattenhofer CAS (swap + fetch-and-add
// hardware — consensus number two).
// ---------------------------------------------------------------------------

impl LlScVar for CasLlSc<KwFamily> {
    type Keep = Option<Keep>;
    type Ctx<'a> = KwCas<'a>;

    fn ll(&self, ctx: &mut KwCas<'_>, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        CasLlSc::ll(self, ctx, k)
    }

    fn vl(&self, ctx: &mut KwCas<'_>, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| CasLlSc::vl(self, ctx, k))
    }

    fn sc(&self, ctx: &mut KwCas<'_>, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take().is_some_and(|k| CasLlSc::sc(self, ctx, &k, new))
    }

    fn cl(&self, _ctx: &mut KwCas<'_>, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, ctx: &mut KwCas<'_>) -> u64 {
        CasLlSc::read(self, ctx)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 4 over the NB-FEB CAS (test-flag-and-set hardware).
// ---------------------------------------------------------------------------

impl LlScVar for CasLlSc<FebFamily> {
    type Keep = Option<Keep>;
    type Ctx<'a> = FebCas<'a>;

    fn ll(&self, ctx: &mut FebCas<'_>, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        CasLlSc::ll(self, ctx, k)
    }

    fn vl(&self, ctx: &mut FebCas<'_>, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| CasLlSc::vl(self, ctx, k))
    }

    fn sc(&self, ctx: &mut FebCas<'_>, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take().is_some_and(|k| CasLlSc::sc(self, ctx, &k, new))
    }

    fn cl(&self, _ctx: &mut FebCas<'_>, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, ctx: &mut FebCas<'_>) -> u64 {
        CasLlSc::read(self, ctx)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 5 (direct RLL/RSC).
// ---------------------------------------------------------------------------

impl LlScVar for RllLlSc {
    type Keep = Option<Keep>;
    type Ctx<'a> = &'a Processor;

    fn ll(&self, ctx: &mut &Processor, keep: &mut Option<Keep>) -> u64 {
        let k = keep.get_or_insert_with(Keep::default);
        RllLlSc::ll(self, ctx, k)
    }

    fn vl(&self, ctx: &mut &Processor, keep: &Option<Keep>) -> bool {
        keep.as_ref().is_some_and(|k| RllLlSc::vl(self, ctx, k))
    }

    fn sc(&self, ctx: &mut &Processor, keep: &mut Option<Keep>, new: u64) -> bool {
        keep.take().is_some_and(|k| RllLlSc::sc(self, ctx, &k, new))
    }

    fn cl(&self, _ctx: &mut &Processor, keep: &mut Option<Keep>) {
        *keep = None;
    }

    fn read(&self, ctx: &mut &Processor) -> u64 {
        RllLlSc::read(self, ctx)
    }

    fn max_val(&self) -> u64 {
        self.layout().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 7 (bounded tags) over native CAS.
// ---------------------------------------------------------------------------

impl LlScVar for BoundedVar<Native> {
    type Keep = Option<BoundedKeep>;
    type Ctx<'a> = BoundedProc<Native>;

    fn ll(&self, ctx: &mut BoundedProc<Native>, keep: &mut Option<BoundedKeep>) -> u64 {
        if let Some(old) = keep.take() {
            ctx.cl(old); // abandoning a sequence must release its slot
        }
        let (v, k) = BoundedVar::ll(self, &Native, ctx);
        *keep = Some(k);
        v
    }

    fn vl(&self, ctx: &mut BoundedProc<Native>, keep: &Option<BoundedKeep>) -> bool {
        keep.as_ref()
            .is_some_and(|k| BoundedVar::vl(self, &Native, ctx, k))
    }

    fn sc(&self, ctx: &mut BoundedProc<Native>, keep: &mut Option<BoundedKeep>, new: u64) -> bool {
        keep.take()
            .is_some_and(|k| BoundedVar::sc(self, &Native, ctx, k, new))
    }

    fn cl(&self, ctx: &mut BoundedProc<Native>, keep: &mut Option<BoundedKeep>) {
        if let Some(k) = keep.take() {
            ctx.cl(k);
        }
    }

    fn read(&self, _ctx: &mut BoundedProc<Native>) -> u64 {
        BoundedVar::peek(self, &Native)
    }

    fn max_val(&self) -> u64 {
        self.domain().max_val()
    }
}

// ---------------------------------------------------------------------------
// Blelloch–Wei constant-time construction over native CAS.
// ---------------------------------------------------------------------------

impl LlScVar for ConstantVar<Native> {
    type Keep = Option<ConstantKeep>;
    type Ctx<'a> = ConstantProc<Native>;

    fn ll(&self, ctx: &mut ConstantProc<Native>, keep: &mut Option<ConstantKeep>) -> u64 {
        if let Some(old) = keep.take() {
            ctx.cl(&Native, old); // abandoning a sequence releases slot + pin
        }
        let (v, k) = ConstantVar::ll(self, &Native, ctx);
        *keep = Some(k);
        v
    }

    fn vl(&self, ctx: &mut ConstantProc<Native>, keep: &Option<ConstantKeep>) -> bool {
        keep.as_ref()
            .is_some_and(|k| ConstantVar::vl(self, &Native, ctx, k))
    }

    fn sc(&self, ctx: &mut ConstantProc<Native>, keep: &mut Option<ConstantKeep>, new: u64) -> bool {
        keep.take()
            .is_some_and(|k| ConstantVar::sc(self, &Native, ctx, k, new))
    }

    fn cl(&self, ctx: &mut ConstantProc<Native>, keep: &mut Option<ConstantKeep>) {
        if let Some(k) = keep.take() {
            ctx.cl(&Native, k);
        }
    }

    fn read(&self, ctx: &mut ConstantProc<Native>) -> u64 {
        ConstantVar::read(self, &Native, ctx)
    }

    fn max_val(&self) -> u64 {
        self.domain().max_val()
    }
}

// ---------------------------------------------------------------------------
// Figure 2 lock baseline.
// ---------------------------------------------------------------------------

/// For the baselines the keep is implicit in the variable (per-process
/// valid bits / keep slots); the generic keep only tracks whether a
/// sequence was started, to keep `vl`/`sc` total.
impl LlScVar for LockLlSc {
    type Keep = bool;
    type Ctx<'a> = ProcId;

    fn ll(&self, ctx: &mut ProcId, keep: &mut bool) -> u64 {
        *keep = true;
        LockLlSc::ll(self, *ctx)
    }

    fn vl(&self, ctx: &mut ProcId, keep: &bool) -> bool {
        *keep && LockLlSc::vl(self, *ctx)
    }

    fn sc(&self, ctx: &mut ProcId, keep: &mut bool, new: u64) -> bool {
        std::mem::take(keep) && LockLlSc::sc(self, *ctx, new)
    }

    fn cl(&self, _ctx: &mut ProcId, keep: &mut bool) {
        *keep = false;
    }

    fn read(&self, _ctx: &mut ProcId) -> u64 {
        LockLlSc::read(self)
    }

    fn max_val(&self) -> u64 {
        u64::MAX
    }
}

// ---------------------------------------------------------------------------
// Keep-search ablations.
// ---------------------------------------------------------------------------

impl LlScVar for PerVarKeepVar {
    type Keep = bool;
    type Ctx<'a> = ProcId;

    fn ll(&self, ctx: &mut ProcId, keep: &mut bool) -> u64 {
        *keep = true;
        PerVarKeepVar::ll(self, *ctx)
    }

    fn vl(&self, ctx: &mut ProcId, keep: &bool) -> bool {
        *keep && PerVarKeepVar::vl(self, *ctx)
    }

    fn sc(&self, ctx: &mut ProcId, keep: &mut bool, new: u64) -> bool {
        std::mem::take(keep) && PerVarKeepVar::sc(self, *ctx, new)
    }

    fn cl(&self, _ctx: &mut ProcId, keep: &mut bool) {
        *keep = false;
    }

    fn read(&self, _ctx: &mut ProcId) -> u64 {
        PerVarKeepVar::read(self)
    }

    fn max_val(&self) -> u64 {
        crate::TagLayout::half().max_val()
    }
}

impl LlScVar for RegistryKeepVar {
    type Keep = bool;
    type Ctx<'a> = ProcId;

    fn ll(&self, ctx: &mut ProcId, keep: &mut bool) -> u64 {
        *keep = true;
        RegistryKeepVar::ll(self, *ctx)
    }

    fn vl(&self, ctx: &mut ProcId, keep: &bool) -> bool {
        *keep && RegistryKeepVar::vl(self, *ctx)
    }

    fn sc(&self, ctx: &mut ProcId, keep: &mut bool, new: u64) -> bool {
        std::mem::take(keep) && RegistryKeepVar::sc(self, *ctx, new)
    }

    fn cl(&self, _ctx: &mut ProcId, keep: &mut bool) {
        *keep = false;
    }

    fn read(&self, _ctx: &mut ProcId) -> u64 {
        RegistryKeepVar::read(self)
    }

    fn max_val(&self) -> u64 {
        crate::TagLayout::half().max_val()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounded::BoundedDomain;
    use crate::TagLayout;

    /// The generic increment loop every implementation must support.
    fn increment_n_times<V: LlScVar>(var: &V, ctx: &mut V::Ctx<'_>, times: u64) {
        for _ in 0..times {
            let mut keep = V::Keep::default();
            loop {
                let v = var.ll(ctx, &mut keep);
                if var.sc(ctx, &mut keep, v + 1) {
                    break;
                }
            }
        }
    }

    #[test]
    fn generic_loop_on_cas_llsc() {
        let v = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        increment_n_times(&v, &mut Native, 100);
        assert_eq!(LlScVar::read(&v, &mut Native), 100);
    }

    #[test]
    fn generic_loop_on_bounded() {
        let d = BoundedDomain::<Native>::new(2, 2).unwrap();
        let v = d.var(0).unwrap();
        let mut me = d.proc(0);
        increment_n_times(&v, &mut me, 100);
        assert_eq!(LlScVar::read(&v, &mut me), 100);
        assert_eq!(me.free_slots(), 2, "all slots must be returned");
    }

    #[test]
    fn generic_loop_on_constant() {
        let d = crate::ConstantDomain::<Native>::new(2, 2, 4).unwrap();
        let v = d.var(&Native, 0).unwrap();
        let mut me = d.proc(0);
        increment_n_times(&v, &mut me, 100);
        assert_eq!(LlScVar::read(&v, &mut me), 100);
        assert_eq!(me.free_slots(), 2, "all slots must be returned");
    }

    #[test]
    fn restarting_ll_on_constant_releases_old_slot_and_pin() {
        let d = crate::ConstantDomain::<Native>::new(1, 1, 2).unwrap();
        let v = d.var(&Native, 0).unwrap();
        let mut me = d.proc(0);
        let mut keep = <ConstantVar<Native> as LlScVar>::Keep::default();
        // Two lls back-to-back on k = 1: the second must recycle the
        // first sequence's slot instead of panicking.
        let _ = LlScVar::ll(&v, &mut me, &mut keep);
        let _ = LlScVar::ll(&v, &mut me, &mut keep);
        assert!(LlScVar::sc(&v, &mut me, &mut keep, 1));
        assert_eq!(LlScVar::read(&v, &mut me), 1);
    }

    #[test]
    fn generic_loop_on_lock_baseline() {
        let v = LockLlSc::new(2, 0);
        let mut ctx = ProcId::new(1);
        increment_n_times(&v, &mut ctx, 100);
        assert_eq!(LlScVar::read(&v, &mut ctx), 100);
    }

    #[test]
    fn generic_loop_on_keep_search_variants() {
        let v = PerVarKeepVar::new(2, TagLayout::half(), 0).unwrap();
        let mut ctx = ProcId::new(0);
        increment_n_times(&v, &mut ctx, 50);
        assert_eq!(LlScVar::read(&v, &mut ctx), 50);

        let r = crate::keep_search::KeepRegistry::new();
        let v = RegistryKeepVar::new(&r, 2, TagLayout::half(), 0).unwrap();
        let mut ctx = ProcId::new(0);
        increment_n_times(&v, &mut ctx, 50);
        assert_eq!(LlScVar::read(&v, &mut ctx), 50);
    }

    #[test]
    fn generic_loop_on_rll_llsc() {
        let m = nbsp_memsim::Machine::builder(1)
            .instruction_set(nbsp_memsim::InstructionSet::RllRscOnly)
            .build();
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 0).unwrap();
        let mut ctx: &Processor = &p;
        increment_n_times(&v, &mut ctx, 100);
        assert_eq!(LlScVar::read(&v, &mut ctx), 100);
    }

    #[test]
    fn sc_without_ll_is_false_not_panic() {
        let v = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        let mut keep = <CasLlSc<Native> as LlScVar>::Keep::default();
        assert!(!LlScVar::sc(&v, &mut Native, &mut keep, 1));
        assert!(!LlScVar::vl(&v, &mut Native, &keep));
    }

    #[test]
    fn restarting_ll_on_bounded_releases_old_slot() {
        let d = BoundedDomain::<Native>::new(1, 1).unwrap();
        let v = d.var(0).unwrap();
        let mut me = d.proc(0);
        let mut keep = <BoundedVar<Native> as LlScVar>::Keep::default();
        // Two consecutive lls through the generic interface with k = 1:
        // without the auto-cl this would panic on slot exhaustion.
        let _ = LlScVar::ll(&v, &mut me, &mut keep);
        let _ = LlScVar::ll(&v, &mut me, &mut keep);
        assert!(LlScVar::sc(&v, &mut me, &mut keep, 7));
        assert_eq!(BoundedVar::peek(&v, &Native), 7);
    }

    #[test]
    fn trait_objects_are_not_needed_but_dyn_compatibility_holds_for_ctxless() {
        // Generic use across two implementations in one function:
        fn bump_twice<A: LlScVar, B: LlScVar>(
            a: &A,
            ca: &mut A::Ctx<'_>,
            b: &B,
            cb: &mut B::Ctx<'_>,
        ) {
            increment_n_times(a, ca, 2);
            increment_n_times(b, cb, 2);
        }
        let x = CasLlSc::new_native(TagLayout::half(), 0).unwrap();
        let y = LockLlSc::new(1, 0);
        let mut cy = ProcId::new(0);
        bump_twice(&x, &mut Native, &y, &mut cy);
        assert_eq!(LlScVar::read(&x, &mut Native), 2);
        assert_eq!(LlScVar::read(&y, &mut cy), 2);
    }
}
