//! **Figure 2** — reference semantics of CAS and LL/VL/SC, under a lock.
//!
//! The paper specifies the "normal" semantics of the primitives as atomic
//! code fragments (Figure 2) and notes in footnote 1 that "it is
//! straightforward to implement LL and SC using locks, but this defeats the
//! purpose of the non-blocking algorithms that use them". This module is
//! that straightforward implementation, serving two roles:
//!
//! * the **baseline** against which the non-blocking constructions are
//!   benchmarked (experiments E1 and E7);
//! * the **oracle** for differential and linearizability testing — each
//!   fragment executes atomically inside the lock, so its behaviour *is*
//!   the specification.
//!
//! Unlike the tag-based constructions, this implements Figure 2 exactly:
//! SC fails **only** when a successful SC intervened (per-process `valid`
//! bits), values occupy a full 64-bit word, and there is no tag to wrap.

use std::sync::Mutex;

use nbsp_memsim::sched::{self, AccessKind};
use nbsp_memsim::ProcId;

/// A shared variable with Figure 2's exact LL/VL/SC and CAS semantics,
/// implemented with a lock (blocking; baseline/oracle only).
///
/// ```
/// use nbsp_core::lock_baseline::LockLlSc;
/// use nbsp_memsim::ProcId;
///
/// let v = LockLlSc::new(2, 5);
/// let p0 = ProcId::new(0);
/// let p1 = ProcId::new(1);
///
/// assert_eq!(v.ll(p0), 5);
/// assert_eq!(v.ll(p1), 5);
/// assert!(v.sc(p0, 6));   // p0 wins…
/// assert!(!v.vl(p1));     // …which invalidates p1's sequence
/// assert!(!v.sc(p1, 7));
/// assert_eq!(v.read(), 6);
/// ```
#[derive(Debug)]
pub struct LockLlSc {
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    value: u64,
    /// Figure 2's `valid_X[0..N-1]`.
    valid: Vec<bool>,
}

impl LockLlSc {
    /// Creates a variable for `n` processes holding `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    #[must_use]
    pub fn new(n: usize, initial: u64) -> Self {
        assert!(n > 0, "need at least one process");
        LockLlSc {
            state: Mutex::new(State {
                value: initial,
                valid: vec![false; n],
            }),
        }
    }

    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.state.lock().unwrap().valid.len()
    }

    fn check(&self, p: ProcId, len: usize) {
        assert!(
            p.index() < len,
            "process {p} out of range (n = {len})"
        );
    }

    /// Schedule-point before taking the lock. Each Figure-2 fragment runs
    /// atomically inside the mutex, so for model checking the whole
    /// operation is a single access to this variable; the lock is never
    /// held across a yield, so the cooperative scheduler cannot deadlock.
    #[inline]
    fn hook(&self, kind: AccessKind) {
        let _ = sched::yield_point(std::ptr::from_ref(self) as usize, kind);
    }

    /// Figure 2's `LL(X)`: `valid[p] := true; return X`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn ll(&self, p: ProcId) -> u64 {
        self.hook(AccessKind::Write);
        let mut g = self.state.lock().unwrap();
        self.check(p, g.valid.len());
        g.valid[p.index()] = true;
        g.value
    }

    /// Figure 2's `VL(X)`: `return valid[p]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn vl(&self, p: ProcId) -> bool {
        self.hook(AccessKind::Read);
        let g = self.state.lock().unwrap();
        self.check(p, g.valid.len());
        g.valid[p.index()]
    }

    /// Figure 2's `SC(X, v)`: if `valid[p]`, store `v`, invalidate everyone,
    /// return true; else return false.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    #[must_use]
    pub fn sc(&self, p: ProcId, v: u64) -> bool {
        self.hook(AccessKind::Write);
        let mut g = self.state.lock().unwrap();
        self.check(p, g.valid.len());
        if g.valid[p.index()] {
            g.value = v;
            g.valid.fill(false);
            true
        } else {
            false
        }
    }

    /// Figure 2's `CAS(X, v, w)` as an atomic fragment. Note that per the
    /// specification, a successful CAS does **not** invalidate LL
    /// reservations (only SC does); the two specifications are independent.
    #[must_use]
    pub fn cas(&self, old: u64, new: u64) -> bool {
        self.hook(AccessKind::Cas);
        let mut g = self.state.lock().unwrap();
        if g.value == old {
            g.value = new;
            true
        } else {
            false
        }
    }

    /// Reads the current value atomically.
    #[must_use]
    pub fn read(&self) -> u64 {
        self.hook(AccessKind::Read);
        self.state.lock().unwrap().value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ll_sc_round_trip() {
        let v = LockLlSc::new(1, 0);
        let p = ProcId::new(0);
        assert_eq!(v.ll(p), 0);
        assert!(v.vl(p));
        assert!(v.sc(p, 1));
        assert_eq!(v.read(), 1);
    }

    #[test]
    fn sc_without_ll_fails() {
        let v = LockLlSc::new(1, 0);
        assert!(!v.sc(ProcId::new(0), 1));
        assert_eq!(v.read(), 0);
    }

    #[test]
    fn successful_sc_invalidates_all() {
        let v = LockLlSc::new(3, 0);
        for i in 0..3 {
            let _ = v.ll(ProcId::new(i));
        }
        assert!(v.sc(ProcId::new(1), 9));
        for i in 0..3 {
            assert!(!v.vl(ProcId::new(i)));
            assert!(!v.sc(ProcId::new(i), 10));
        }
        assert_eq!(v.read(), 9);
    }

    #[test]
    fn failed_sc_does_not_invalidate_others() {
        let v = LockLlSc::new(2, 0);
        let _ = v.ll(ProcId::new(0));
        assert!(!v.sc(ProcId::new(1), 5)); // p1 never LL'd
        assert!(v.vl(ProcId::new(0)));
        assert!(v.sc(ProcId::new(0), 6));
    }

    #[test]
    fn cas_semantics() {
        let v = LockLlSc::new(1, 4);
        assert!(!v.cas(3, 9));
        assert!(v.cas(4, 9));
        assert_eq!(v.read(), 9);
    }

    #[test]
    fn cas_does_not_invalidate_ll() {
        let v = LockLlSc::new(1, 4);
        let p = ProcId::new(0);
        let _ = v.ll(p);
        assert!(v.cas(4, 5));
        // Per Figure 2, only SC clears valid bits.
        assert!(v.vl(p));
        assert!(v.sc(p, 6));
    }

    #[test]
    fn concurrent_counter_is_exact() {
        let v = LockLlSc::new(4, 0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let v = &v;
                s.spawn(move || {
                    let p = ProcId::new(t);
                    for _ in 0..5_000 {
                        loop {
                            let x = v.ll(p);
                            if v.sc(p, x + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(v.read(), 20_000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_foreign_process() {
        let v = LockLlSc::new(2, 0);
        let _ = v.ll(ProcId::new(2));
    }
}
