//! **Figure 5 / Theorem 3** — LL/VL/SC implemented *directly* from RLL/RSC.
//!
//! Combining Figures 3 and 4 naively puts **two** tags in each word (one for
//! the emulated CAS, one for the LL/SC layer), "substantially reducing the
//! time needed for the tags to wrap around". Figure 5 fuses the two
//! constructions so a single tag suffices:
//!
//! * `LL` is a plain read saved into the caller's `keep`;
//! * `VL` is a plain read compared against `keep`;
//! * `SC` retries a tight RLL→RSC pair until the word visibly changes
//!   (fail — some other SC succeeded) or its own RSC lands (success).
//!
//! > *"RLL and RSC can be used with no space overhead to implement for small
//! > variables constant-time LL and VL operations, and a SC operation that
//! > is wait-free provided only finitely many spurious failures occur during
//! > one invocation of SC, and that terminates in constant time after the
//! > last spurious failure."*
//!
//! Note how this defeats the single-`LLBit` restriction: the *user-level*
//! LL does not use RLL at all, so any number of LL–SC sequences can be in
//! flight per process; only the short window inside `SC` occupies the
//! hardware reservation.

use nbsp_memsim::{Processor, SimWord};

use crate::{Keep, Result, TagLayout};

/// A small variable supporting LL/VL/SC on machines that provide only
/// RLL/RSC (MIPS R4000, Alpha, PowerPC in the paper's survey).
///
/// ```
/// use nbsp_core::{RllLlSc, Keep, TagLayout};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::RllRscOnly)
///     .build();
/// let p = machine.processor(0);
///
/// let v = RllLlSc::new(TagLayout::half(), 10)?;
/// let mut keep = Keep::default();
/// let x = v.ll(&p, &mut keep);
/// assert!(v.vl(&p, &keep));
/// assert!(v.sc(&p, &keep, x + 1));
/// assert_eq!(v.read(&p), 11);
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct RllLlSc {
    cell: SimWord,
    layout: TagLayout,
}

impl RllLlSc {
    /// Creates a variable with the given tag/value split and initial value
    /// (tag 0).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ValueTooLarge`](crate::Error::ValueTooLarge) if
    /// `initial` does not fit the layout's value field.
    pub fn new(layout: TagLayout, initial: u64) -> Result<Self> {
        let word = layout.pack(0, initial)?;
        Ok(RllLlSc {
            cell: SimWord::new(word),
            layout,
        })
    }

    /// The variable's tag/value layout.
    #[must_use]
    pub fn layout(&self) -> TagLayout {
        self.layout
    }

    /// Figure 5's `LL`: a plain read saved into `keep`. Linearizes at the
    /// read. Uses no reservation, so sequences may overlap freely.
    pub fn ll(&self, proc: &Processor, keep: &mut Keep) -> u64 {
        keep.0 = proc.read(&self.cell);
        self.layout.val(keep.0)
    }

    /// Figure 5's `VL`: true iff the word still equals `keep`.
    /// Linearizes at the read.
    #[must_use]
    pub fn vl(&self, proc: &Processor, keep: &Keep) -> bool {
        keep.0 == proc.read(&self.cell)
    }

    /// Figure 5's `SC`: attempts to install `(keep.tag ⊕ 1, new)` with a
    /// tight RLL→RSC retry loop. Wait-free given finitely many spurious
    /// failures; constant time after the last one.
    ///
    /// # Panics
    ///
    /// Panics if `new` does not fit the layout's value field, or if the
    /// machine provides no RLL/RSC.
    #[must_use]
    pub fn sc(&self, proc: &Processor, keep: &Keep, new: u64) -> bool {
        assert!(
            new <= self.layout.max_val(),
            "value {new} exceeds layout maximum {}",
            self.layout.max_val()
        );
        let oldword = keep.0;
        let newword = self
            .layout
            .pack_unchecked(self.layout.tag_succ(self.layout.tag(oldword)), new);
        loop {
            if proc.rll(&self.cell) != oldword {
                return false;
            }
            if proc.rsc(&self.cell, newword) {
                return true;
            }
        }
    }

    /// Reads the current value. Linearizes at the read.
    #[must_use]
    pub fn read(&self, proc: &Processor) -> u64 {
        self.layout.val(proc.read(&self.cell))
    }

    /// The tag currently stored (for tests and wraparound experiments).
    #[must_use]
    pub fn current_tag(&self, proc: &Processor) -> u64 {
        self.layout.tag(proc.read(&self.cell))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::{AccessBetween, InstructionSet, Machine, SpuriousMode};

    fn machine(n: usize) -> Machine {
        Machine::builder(n)
            .instruction_set(InstructionSet::RllRscOnly)
            .build()
    }

    #[test]
    fn ll_vl_sc_cycle() {
        let m = machine(1);
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 3).unwrap();
        let mut k = Keep::default();
        assert_eq!(v.ll(&p, &mut k), 3);
        assert!(v.vl(&p, &k));
        assert!(v.sc(&p, &k, 4));
        assert!(!v.vl(&p, &k));
        assert_eq!(v.read(&p), 4);
    }

    #[test]
    fn stale_keep_fails() {
        let m = machine(1);
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 0).unwrap();
        let mut k1 = Keep::default();
        let mut k2 = Keep::default();
        let _ = v.ll(&p, &mut k1);
        let _ = v.ll(&p, &mut k2);
        assert!(v.sc(&p, &k1, 1));
        assert!(!v.sc(&p, &k2, 2));
        assert_eq!(v.read(&p), 1);
    }

    #[test]
    fn concurrent_sequences_on_one_llbit_machine() {
        // This is Figure 1(a) made legal: two in-flight LL–SC sequences on
        // one processor with a single hardware reservation.
        let m = machine(1);
        let p = m.processor(0);
        let x = RllLlSc::new(TagLayout::half(), 10).unwrap();
        let y = RllLlSc::new(TagLayout::half(), 20).unwrap();
        let mut kx = Keep::default();
        let mut ky = Keep::default();
        let vx = x.ll(&p, &mut kx);
        let vy = y.ll(&p, &mut ky);
        assert!(x.vl(&p, &kx));
        assert!(y.sc(&p, &ky, vy + 1));
        assert!(x.sc(&p, &kx, vx + 1));
        assert_eq!((x.read(&p), y.read(&p)), (11, 21));
    }

    #[test]
    fn sc_tolerates_spurious_failures() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .spurious(SpuriousMode::Budget { per_proc: 7 })
            .build();
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 0).unwrap();
        let mut k = Keep::default();
        let _ = v.ll(&p, &mut k);
        assert!(v.sc(&p, &k, 1));
        assert_eq!(p.stats().rsc_spurious, 7);
    }

    #[test]
    fn sc_obeys_strict_no_access_window() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::RllRscOnly)
            .access_between(AccessBetween::Panic)
            .build();
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 0).unwrap();
        let mut k = Keep::default();
        let _ = v.ll(&p, &mut k);
        assert!(v.sc(&p, &k, 1));
    }

    #[test]
    fn sc_after_value_aba_fails() {
        let m = machine(1);
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::half(), 1).unwrap();
        let mut k0 = Keep::default();
        let _ = v.ll(&p, &mut k0);
        for target in [2, 1] {
            let mut k = Keep::default();
            let _ = v.ll(&p, &mut k);
            assert!(v.sc(&p, &k, target));
        }
        assert_eq!(v.read(&p), 1);
        assert!(!v.sc(&p, &k0, 9));
    }

    #[test]
    fn concurrent_increment_is_exact() {
        let m = machine(4);
        let v = RllLlSc::new(TagLayout::half(), 0).unwrap();
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let v = &v;
                s.spawn(move || {
                    for _ in 0..2_500 {
                        loop {
                            let mut k = Keep::default();
                            let val = v.ll(&p, &mut k);
                            if v.sc(&p, &k, val + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(TagLayout::half().val(v.cell.peek()), 10_000);
    }

    #[test]
    fn tag_advances_once_per_successful_sc() {
        let m = machine(1);
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::new(8, 8).unwrap(), 0).unwrap();
        for i in 1..=300u64 {
            let mut k = Keep::default();
            let val = v.ll(&p, &mut k);
            assert!(v.sc(&p, &k, (val + 1) & 0xFF));
            assert_eq!(v.current_tag(&p), i & 0xFF); // wraps modulo 2^8
        }
    }

    #[test]
    #[should_panic(expected = "exceeds layout maximum")]
    fn sc_panics_on_oversized_value() {
        let m = machine(1);
        let p = m.processor(0);
        let v = RllLlSc::new(TagLayout::new(60, 4).unwrap(), 0).unwrap();
        let mut k = Keep::default();
        let _ = v.ll(&p, &mut k);
        let _ = v.sc(&p, &k, 16);
    }
}
