//! The `CasFamily`/`CasMemory` abstraction: "any machine that provides CAS".
//!
//! The paper's constructions in Figures 4, 6 and 7 are written "using CAS",
//! deliberately agnostic about where that CAS comes from: native hardware,
//! or the Figure-3 emulation over RLL/RSC. Two traits capture this:
//!
//! * [`CasFamily`] describes the *storage*: the shared cell type, and how
//!   many of its 64 bits the layer above may use. Variables are
//!   parameterized by a family, so their types carry no thread or lifetime
//!   information.
//! * [`CasMemory`] is the *per-thread accessor* that actually executes
//!   loads, stores and CAS on that family's cells. Accessors may borrow
//!   thread-private state (a simulated [`Processor`]); one is created per
//!   thread.
//!
//! Three families ship with the crate:
//!
//! * [`Native`] — the host's real `AtomicU64` (a "CAS machine"); the family
//!   and the accessor are the same zero-sized type.
//! * [`SimFamily`] / [`SimCas`] — a [`nbsp_memsim`] machine configured
//!   [`CasOnly`](nbsp_memsim::InstructionSet::CasOnly), with instruction
//!   counting.
//! * [`EmuFamily`](crate::EmuFamily) / [`EmuCas`](crate::EmuCas) — Figure
//!   3's CAS emulated from RLL/RSC, making the paper's "combine the
//!   techniques" remark (and the two-tag word-budget problem it notes)
//!   executable.

use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_memsim::sched::{self, AccessKind};
use nbsp_memsim::{Capability, Processor, SimWord};

use crate::error::{Error, Result};

/// Schedule-point for a native atomic cell: a no-op unless the calling
/// thread is running under `nbsp-check`'s cooperative scheduler.
#[inline]
fn hook(cell: &AtomicU64, kind: AccessKind) {
    let _ = sched::yield_point(std::ptr::from_ref(cell) as usize, kind);
}

/// Storage family for 64-bit shared cells supporting load, store and CAS.
///
/// See the crate-level docs for the family/accessor split: variables are
/// parameterized by a family (no lifetimes), accessors are per-thread.
pub trait CasFamily {
    /// Shared storage for one 64-bit word.
    type Cell: Send + Sync + std::fmt::Debug;

    /// How many low-order bits of a cell are usable as a value by the layer
    /// above (64 for real CAS; less when the CAS itself is emulated with an
    /// in-word tag).
    const VALUE_BITS: u32;

    /// Creates a cell holding `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` needs more than [`CasFamily::VALUE_BITS`] bits.
    /// Callers in this crate validate values first and surface
    /// [`Error::ValueTooLarge`](crate::Error::ValueTooLarge) instead.
    fn make_cell(value: u64) -> Self::Cell;
}

/// Shorthand for the cell type of a memory's family.
pub type CellOf<M> = <<M as CasMemory>::Family as CasFamily>::Cell;

/// A per-thread accessor executing operations on a [`CasFamily`]'s cells.
pub trait CasMemory {
    /// The storage family this accessor operates on.
    type Family: CasFamily;

    /// Atomically reads the cell's value.
    fn load(&self, cell: &CellOf<Self>) -> u64;

    /// Atomically writes the cell's value.
    ///
    /// # Panics
    ///
    /// Panics if `value` needs more than `Family::VALUE_BITS` bits.
    fn store(&self, cell: &CellOf<Self>, value: u64);

    /// The paper's Figure-2 CAS: iff the cell holds `old`, replace it with
    /// `new` and return `true`.
    ///
    /// # Panics
    ///
    /// Panics if `new` needs more than `Family::VALUE_BITS` bits.
    fn cas(&self, cell: &CellOf<Self>, old: u64, new: u64) -> bool;

    // ----- per-operation orderings ------------------------------------
    //
    // The constructions in this workspace never need the *global* total
    // order that `SeqCst` buys; each one's linearization argument rests on
    // (a) coherence of a single cell and (b) release/acquire publication
    // chains (announce row → header swing → helping read). The methods
    // below let a memory expose exactly that: an implementation for real
    // hardware overrides them with acquire/release atomics, while
    // simulated or emulated memories — whose "atomics" are already
    // synchronized by other means — keep the defaults, which simply
    // delegate to the fully-ordered operations above.

    /// Atomically reads the cell with *acquire* ordering: everything the
    /// writer that produced the observed value did before its release
    /// write/CAS is visible after this load.
    ///
    /// Defaults to [`CasMemory::load`].
    #[inline]
    fn load_acquire(&self, cell: &CellOf<Self>) -> u64 {
        self.load(cell)
    }

    /// Atomically writes the cell with *release* ordering: all prior
    /// writes by this thread are visible to any thread that
    /// acquire-reads the stored value.
    ///
    /// Defaults to [`CasMemory::store`].
    ///
    /// # Panics
    ///
    /// Panics if `value` needs more than `Family::VALUE_BITS` bits.
    #[inline]
    fn store_release(&self, cell: &CellOf<Self>, value: u64) {
        self.store(cell, value);
    }

    /// CAS with *acquire-release* ordering: a success is a release write
    /// (publishing this thread's prior writes) and an acquire read; a
    /// failure is an acquire read of the current value.
    ///
    /// Defaults to [`CasMemory::cas`].
    ///
    /// # Panics
    ///
    /// Panics if `new` needs more than `Family::VALUE_BITS` bits.
    #[inline]
    fn cas_acqrel(&self, cell: &CellOf<Self>, old: u64, new: u64) -> bool {
        self.cas(cell, old, new)
    }
}

/// The capability-gated instruction-set seam over [`CasMemory`].
///
/// [`CasMemory`] hard-assumes CAS — the paper's setting. The rungs *below*
/// CAS in the consensus hierarchy (swap and fetch-and-add at consensus
/// number two, Khanchandani–Wattenhofer arXiv:1802.03844; the NB-FEB
/// test-flag-and-set word of Ha–Tsigas–Anshus arXiv:0811.1304) need extra
/// ops that most backends do *not* provide. `SyncMemory` exposes them as
/// fallible `try_*` methods gated by a runtime [`Capability`] bitset:
///
/// * [`SyncMemory::capabilities`] reports exactly which ops the backend
///   executes; every op outside that set returns
///   [`Error::UnsupportedOp`] instead of panicking, so callers can probe a
///   backend and degrade gracefully (satellite: the old behaviour was a
///   `debug_assert!`/panic at the `CasMemory` boundary).
/// * Ops inside the set behave like their [`Processor`] counterparts:
///   `try_swap`/`try_fetch_add` are unconditional read-modify-writes,
///   `try_feb_tfas`/`try_feb_sac`/`try_feb_load` operate on a word with a
///   full/empty flag bit ([`nbsp_memsim::FEB_FLAG`]), and
///   `try_rll`/`try_rsc` are the paper's restricted LL/SC pair.
///
/// The weak-primitive providers (`cas_from_swap`, `feb_llsc`) are written
/// against the corresponding [`Processor`] ops directly (their inner loops
/// are capability-checked once at machine construction); `SyncMemory` is
/// the *generic* seam for code that must run over any backend.
pub trait SyncMemory: CasMemory {
    /// Which operations this backend actually executes.
    ///
    /// [`CasMemory`]'s own `load`/`store`/`cas` are usable iff
    /// [`Capability::CAS`] is reported (every backend in this crate
    /// reports it — a memory that cannot CAS implements neither trait).
    fn capabilities(&self) -> Capability;

    /// Unconditional atomic exchange: installs `value`, returns the old
    /// value. Gated by [`Capability::SWAP`].
    fn try_swap(&self, cell: &CellOf<Self>, value: u64) -> Result<u64> {
        let _ = (cell, value);
        Err(self.unsupported("swap"))
    }

    /// Fetch-and-add: adds `delta`, returns the value before the add.
    /// Gated by [`Capability::FETCH_ADD`].
    fn try_fetch_add(&self, cell: &CellOf<Self>, delta: u64) -> Result<u64> {
        let _ = (cell, delta);
        Err(self.unsupported("fetch_add"))
    }

    /// NB-FEB test-flag-and-set: iff the cell's full/empty flag is clear,
    /// installs `value` with the flag set; either way returns the old word
    /// (flag included). Gated by [`Capability::FEB`].
    fn try_feb_tfas(&self, cell: &CellOf<Self>, value: u64) -> Result<u64> {
        let _ = (cell, value);
        Err(self.unsupported("feb_tfas"))
    }

    /// NB-FEB store-and-clear: unconditionally installs `value` with the
    /// flag cleared, returning the old word. Gated by [`Capability::FEB`].
    fn try_feb_sac(&self, cell: &CellOf<Self>, value: u64) -> Result<u64> {
        let _ = (cell, value);
        Err(self.unsupported("feb_sac"))
    }

    /// NB-FEB load of the word including its flag bit. Gated by
    /// [`Capability::FEB`].
    fn try_feb_load(&self, cell: &CellOf<Self>) -> Result<u64> {
        let _ = cell;
        Err(self.unsupported("feb_load"))
    }

    /// The paper's restricted load-linked. Gated by
    /// [`Capability::RLL_RSC`].
    fn try_rll(&self, cell: &CellOf<Self>) -> Result<u64> {
        let _ = cell;
        Err(self.unsupported("rll"))
    }

    /// The paper's restricted store-conditional (may fail spuriously).
    /// Gated by [`Capability::RLL_RSC`].
    fn try_rsc(&self, cell: &CellOf<Self>, new: u64) -> Result<bool> {
        let _ = (cell, new);
        Err(self.unsupported("rsc"))
    }

    /// The [`Error::UnsupportedOp`] for `op` against this backend's
    /// capability set. Implementations reuse it when an op is present in
    /// the trait but absent from the machine beneath.
    fn unsupported(&self, op: &'static str) -> Error {
        Error::UnsupportedOp {
            op,
            have: self.capabilities().to_string(),
        }
    }
}

/// [`CasFamily`] and [`CasMemory`] backed by the host's native `AtomicU64` —
/// the "machine that provides CAS" case, and the implementation a real
/// application would deploy.
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, Native};
/// let cell = Native::make_cell(5);
/// let mem = Native;
/// assert!(mem.cas(&cell, 5, 6));
/// assert_eq!(mem.load(&cell), 6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Native;

impl CasFamily for Native {
    type Cell = AtomicU64;
    const VALUE_BITS: u32 = 64;

    #[inline]
    fn make_cell(value: u64) -> AtomicU64 {
        AtomicU64::new(value)
    }
}

impl CasMemory for Native {
    type Family = Native;

    #[inline]
    fn load(&self, cell: &AtomicU64) -> u64 {
        hook(cell, AccessKind::Read);
        cell.load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, cell: &AtomicU64, value: u64) {
        hook(cell, AccessKind::Write);
        cell.store(value, Ordering::SeqCst);
    }

    #[inline]
    fn cas(&self, cell: &AtomicU64, old: u64, new: u64) -> bool {
        hook(cell, AccessKind::Cas);
        cell.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }

    #[inline]
    fn load_acquire(&self, cell: &AtomicU64) -> u64 {
        hook(cell, AccessKind::Read);
        cell.load(Ordering::Acquire)
    }

    #[inline]
    fn store_release(&self, cell: &AtomicU64, value: u64) {
        hook(cell, AccessKind::Write);
        cell.store(value, Ordering::Release);
    }

    #[inline]
    fn cas_acqrel(&self, cell: &AtomicU64, old: u64, new: u64) -> bool {
        hook(cell, AccessKind::Cas);
        cell.compare_exchange(old, new, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }
}

impl SyncMemory for Native {
    /// The host's `AtomicU64` provides CAS, swap and fetch-and-add; it has
    /// no reservation bit and no full/empty flag.
    fn capabilities(&self) -> Capability {
        Capability::CAS | Capability::SWAP | Capability::FETCH_ADD
    }

    #[inline]
    fn try_swap(&self, cell: &AtomicU64, value: u64) -> Result<u64> {
        hook(cell, AccessKind::Swap);
        Ok(cell.swap(value, Ordering::SeqCst))
    }

    #[inline]
    fn try_fetch_add(&self, cell: &AtomicU64, delta: u64) -> Result<u64> {
        hook(cell, AccessKind::FetchAdd);
        Ok(cell.fetch_add(delta, Ordering::SeqCst))
    }
}

/// A [`CasMemory`] over [`Native`] cells that executes **every** operation
/// — including the acquire/release variants — with `SeqCst`, reproducing
/// the pre-optimization behaviour of this crate.
///
/// Exists for the contention ablation (`exp_contention`): running the same
/// construction through [`Native`] and `NativeSeqCst` isolates what the
/// per-operation orderings are worth. Not recommended outside benchmarks;
/// the relaxed orderings are argued correct at each call site.
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, Native, NativeSeqCst};
/// let cell = Native::make_cell(5);
/// let mem = NativeSeqCst;
/// assert!(mem.cas_acqrel(&cell, 5, 6)); // SeqCst under the hood
/// assert_eq!(mem.load_acquire(&cell), 6);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NativeSeqCst;

impl CasMemory for NativeSeqCst {
    type Family = Native;

    #[inline]
    fn load(&self, cell: &AtomicU64) -> u64 {
        hook(cell, AccessKind::Read);
        cell.load(Ordering::SeqCst)
    }

    #[inline]
    fn store(&self, cell: &AtomicU64, value: u64) {
        hook(cell, AccessKind::Write);
        cell.store(value, Ordering::SeqCst);
    }

    #[inline]
    fn cas(&self, cell: &AtomicU64, old: u64, new: u64) -> bool {
        hook(cell, AccessKind::Cas);
        cell.compare_exchange(old, new, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
    }
    // load_acquire / store_release / cas_acqrel inherit the defaults, which
    // delegate to the SeqCst operations above — the whole point.
}

impl SyncMemory for NativeSeqCst {
    /// Same hardware as [`Native`], so the same capability set.
    fn capabilities(&self) -> Capability {
        Capability::CAS | Capability::SWAP | Capability::FETCH_ADD
    }

    #[inline]
    fn try_swap(&self, cell: &AtomicU64, value: u64) -> Result<u64> {
        hook(cell, AccessKind::Swap);
        Ok(cell.swap(value, Ordering::SeqCst))
    }

    #[inline]
    fn try_fetch_add(&self, cell: &AtomicU64, delta: u64) -> Result<u64> {
        hook(cell, AccessKind::FetchAdd);
        Ok(cell.fetch_add(delta, Ordering::SeqCst))
    }
}

/// Storage family for simulated CAS machines: cells are [`SimWord`]s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SimFamily;

impl CasFamily for SimFamily {
    type Cell = SimWord;
    const VALUE_BITS: u32 = 64;

    #[inline]
    fn make_cell(value: u64) -> SimWord {
        SimWord::new(value)
    }
}

/// [`CasMemory`] accessor for a simulated CAS machine, with per-processor
/// instruction counting.
///
/// A [`CasOnly`](nbsp_memsim::InstructionSet::CasOnly) machine *proves*
/// that constructions built over this accessor never touch LL/SC (the
/// simulator panics if they do).
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, SimCas, SimFamily};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::CasOnly)
///     .build();
/// let p = machine.processor(0);
/// let mem = SimCas::new(&p);
/// let cell = SimFamily::make_cell(1);
/// assert!(mem.cas(&cell, 1, 2));
/// ```
#[derive(Debug)]
pub struct SimCas<'a> {
    proc: &'a Processor,
}

impl<'a> SimCas<'a> {
    /// Wraps a simulated processor as a CAS accessor.
    #[must_use]
    pub fn new(proc: &'a Processor) -> Self {
        SimCas { proc }
    }

    /// Like [`SimCas::new`], but verifies up front that the machine
    /// provides CAS, so the hot-path ops cannot hit the simulator's
    /// instruction-set panic later.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedOp`] if the machine's instruction set
    /// has no CAS.
    pub fn try_new(proc: &'a Processor) -> Result<Self> {
        let caps = proc.instruction_set().capability();
        if !caps.contains(Capability::CAS) {
            return Err(Error::UnsupportedOp {
                op: "cas",
                have: caps.to_string(),
            });
        }
        Ok(SimCas { proc })
    }

    /// The underlying processor (for reading stats).
    #[must_use]
    pub fn processor(&self) -> &Processor {
        self.proc
    }
}

impl CasMemory for SimCas<'_> {
    type Family = SimFamily;

    #[inline]
    fn load(&self, cell: &SimWord) -> u64 {
        self.proc.read(cell)
    }

    #[inline]
    fn store(&self, cell: &SimWord, value: u64) {
        self.proc.write(cell, value);
    }

    #[inline]
    fn cas(&self, cell: &SimWord, old: u64, new: u64) -> bool {
        self.proc.cas(cell, old, new)
    }
}

impl SyncMemory for SimCas<'_> {
    /// Whatever the simulated machine was built with — this is the one
    /// backend whose capability set is genuinely dynamic, which is why
    /// [`SyncMemory::capabilities`] is a method rather than a constant.
    fn capabilities(&self) -> Capability {
        self.proc.instruction_set().capability()
    }

    fn try_swap(&self, cell: &SimWord, value: u64) -> Result<u64> {
        if !self.capabilities().contains(Capability::SWAP) {
            return Err(self.unsupported("swap"));
        }
        Ok(self.proc.swap(cell, value))
    }

    fn try_fetch_add(&self, cell: &SimWord, delta: u64) -> Result<u64> {
        if !self.capabilities().contains(Capability::FETCH_ADD) {
            return Err(self.unsupported("fetch_add"));
        }
        Ok(self.proc.fetch_add(cell, delta))
    }

    fn try_feb_tfas(&self, cell: &SimWord, value: u64) -> Result<u64> {
        if !self.capabilities().contains(Capability::FEB) {
            return Err(self.unsupported("feb_tfas"));
        }
        Ok(self.proc.feb_tfas(cell, value))
    }

    fn try_feb_sac(&self, cell: &SimWord, value: u64) -> Result<u64> {
        if !self.capabilities().contains(Capability::FEB) {
            return Err(self.unsupported("feb_sac"));
        }
        Ok(self.proc.feb_sac(cell, value))
    }

    fn try_feb_load(&self, cell: &SimWord) -> Result<u64> {
        if !self.capabilities().contains(Capability::FEB) {
            return Err(self.unsupported("feb_load"));
        }
        Ok(self.proc.feb_load(cell))
    }

    fn try_rll(&self, cell: &SimWord) -> Result<u64> {
        if !self.capabilities().contains(Capability::RLL_RSC) {
            return Err(self.unsupported("rll"));
        }
        Ok(self.proc.rll(cell))
    }

    fn try_rsc(&self, cell: &SimWord, new: u64) -> Result<bool> {
        if !self.capabilities().contains(Capability::RLL_RSC) {
            return Err(self.unsupported("rsc"));
        }
        Ok(self.proc.rsc(cell, new))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::{InstructionSet, Machine};

    #[test]
    fn native_cas_round_trip() {
        let mem = Native;
        let cell = Native::make_cell(10);
        assert_eq!(mem.load(&cell), 10);
        mem.store(&cell, 11);
        assert!(mem.cas(&cell, 11, 12));
        assert!(!mem.cas(&cell, 11, 13));
        assert_eq!(mem.load(&cell), 12);
    }

    #[test]
    fn sim_cas_counts_instructions() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let mem = SimCas::new(&p);
        let cell = SimFamily::make_cell(0);
        let _ = mem.load(&cell);
        mem.store(&cell, 1);
        assert!(mem.cas(&cell, 1, 2));
        let s = mem.processor().stats();
        assert_eq!((s.reads, s.writes, s.cas_attempts), (1, 1, 1));
    }

    #[test]
    fn sim_cas_works_on_cas_only_machine() {
        // The whole point: no LL/SC instructions are issued.
        let m = Machine::builder(2)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let cell = SimFamily::make_cell(0);
        std::thread::scope(|s| {
            for id in 0..2 {
                let p = m.processor(id);
                let cell = &cell;
                s.spawn(move || {
                    let mem = SimCas::new(&p);
                    for _ in 0..1000 {
                        loop {
                            let v = mem.load(cell);
                            if mem.cas(cell, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(cell.peek(), 2000);
    }

    #[test]
    fn native_sync_memory_swap_and_faa() {
        for mem in [&Native as &dyn SyncMemory<Family = Native>, &NativeSeqCst] {
            let cell = Native::make_cell(4);
            assert!(mem.capabilities().contains(Capability::SWAP | Capability::FETCH_ADD));
            assert_eq!(mem.try_swap(&cell, 9).unwrap(), 4);
            assert_eq!(mem.try_fetch_add(&cell, 2).unwrap(), 9);
            assert_eq!(mem.load(&cell), 11);
            // No reservation bit and no full/empty flag on host atomics.
            assert!(matches!(
                mem.try_rll(&cell),
                Err(Error::UnsupportedOp { op: "rll", .. })
            ));
            assert!(matches!(
                mem.try_feb_tfas(&cell, 1),
                Err(Error::UnsupportedOp { op: "feb_tfas", .. })
            ));
        }
    }

    #[test]
    fn sim_sync_memory_is_gated_by_instruction_set() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let mem = SimCas::new(&p);
        let cell = SimFamily::make_cell(0);
        assert_eq!(mem.capabilities(), Capability::CAS);
        let err = mem.try_swap(&cell, 1).unwrap_err();
        assert_eq!(
            err.to_string(),
            "operation swap is not in the backend's instruction set (cas)"
        );
        assert!(mem.try_fetch_add(&cell, 1).is_err());
        assert!(mem.try_feb_sac(&cell, 1).is_err());
        assert!(mem.try_feb_load(&cell).is_err());
        assert!(mem.try_rsc(&cell, 1).is_err());
    }

    #[test]
    fn sim_sync_memory_executes_granted_ops() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::Both)
            .build();
        let p = m.processor(0);
        let mem = SimCas::new(&p);
        let cell = SimFamily::make_cell(1);
        assert_eq!(mem.try_swap(&cell, 2).unwrap(), 1);
        assert_eq!(mem.try_fetch_add(&cell, 3).unwrap(), 2);
        let v = mem.try_rll(&cell).unwrap();
        assert!(mem.try_rsc(&cell, v + 1).unwrap());
        assert_eq!(mem.try_feb_tfas(&cell, 9).unwrap(), 6);
        assert_eq!(
            mem.try_feb_sac(&cell, 0).unwrap(),
            9 | nbsp_memsim::FEB_FLAG
        );
        assert_eq!(mem.try_feb_load(&cell).unwrap(), 0);
        let s = p.stats();
        assert_eq!(
            (s.swaps, s.fetch_adds, s.febs, s.rll, s.rsc_success),
            (1, 1, 3, 1, 1)
        );
    }

    #[test]
    fn native_is_copy_and_default() {
        fn copy<T: Copy>(_: T) {}
        copy(Native);
        let _ = Native;
    }
}
