//! Bounded exponential backoff for SC/CAS retry loops.
//!
//! The paper's constructions are lock-free: an SC retry implies some other
//! process's SC succeeded. That guarantee says nothing about *throughput*,
//! though — N processes re-reading and re-CASing one line immediately after
//! losing a race turn the cache line into a hot potato and waste the
//! winner's bandwidth too. Classic contention studies (Anderson 1990;
//! Herlihy's small-object protocol evaluations) show bounded exponential
//! backoff restoring most of the lost throughput.
//!
//! [`Backoff`] implements the standard discipline: spin with
//! [`std::hint::spin_loop`] for an exponentially growing bounded count,
//! then switch to [`std::thread::yield_now`]. It never sleeps, so a
//! backed-off process remains schedulable and **lock-freedom is
//! preserved** — backoff only runs *after* a failed SC/CAS, i.e. after
//! some other operation already completed, and only delays the loser by a
//! bounded amount. Wait-free operations in this workspace (e.g. a
//! successful-path SC) never invoke it.

use std::sync::atomic::{AtomicBool, Ordering};

use nbsp_telemetry::{observe, record, Event, Hist};

/// Upper bound on the spin exponent: at most `1 << SPIN_LIMIT` spin-loop
/// hints per step before switching to `yield_now`. The bound keeps the
/// worst-case delay constant (≈ a few hundred ns of spinning), which is
/// what lets the lock-freedom argument go through unchanged.
const SPIN_LIMIT: u32 = 6;

/// Process-wide switch consulted by [`Backoff::new`]. Default: enabled.
/// The contention benchmark flips this to measure the backoff axis without
/// threading a policy parameter through every structure constructor.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables backoff process-wide for [`Backoff`] values created
/// *after* the call. Intended for benchmarks and ablation experiments —
/// leave it enabled in production use.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether newly created [`Backoff`] values will actually back off.
#[must_use]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-retry-loop exponential backoff state. Create one before the loop,
/// call [`Backoff::spin`] after each failed SC/CAS.
///
/// ```
/// use nbsp_core::{Backoff, CasLlSc, Keep, Native, TagLayout};
///
/// let v = CasLlSc::new_native(TagLayout::half(), 0)?;
/// let mem = Native;
/// let mut backoff = Backoff::new();
/// loop {
///     let mut keep = Keep::default();
///     let x = v.ll(&mem, &mut keep);
///     if v.sc(&mem, &keep, x + 1) {
///         break;
///     }
///     backoff.spin(); // a competitor committed; get off its cache line
/// }
/// # Ok::<(), nbsp_core::Error>(())
/// ```
#[derive(Debug)]
pub struct Backoff {
    step: u32,
    enabled: bool,
}

impl Backoff {
    /// Fresh state (no delay accumulated). Honours [`set_enabled`].
    #[must_use]
    pub fn new() -> Self {
        Backoff {
            step: 0,
            enabled: is_enabled(),
        }
    }

    /// Backs off once: `2^step` spin-loop hints while `step` is below the
    /// bound, a `yield_now` beyond it. Call after a failed SC/CAS.
    pub fn spin(&mut self) {
        if !self.enabled {
            return;
        }
        if self.step <= SPIN_LIMIT {
            record(Event::BackoffSpin);
            observe(Hist::BackoffDepth, 1u64 << self.step);
            for _ in 0..(1u32 << self.step) {
                std::hint::spin_loop();
            }
            self.step += 1;
            if self.is_saturated() {
                // Crossing into the yield-only regime is the interesting
                // moment: it marks sustained contention on one variable.
                record(Event::BackoffSaturated);
            }
        } else {
            record(Event::BackoffYield);
            std::thread::yield_now();
        }
    }

    /// Resets the exponent (call after a success if the state is reused
    /// across operations).
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// True once spinning has saturated and further [`Backoff::spin`] calls
    /// yield the CPU instead.
    #[must_use]
    pub fn is_saturated(&self) -> bool {
        self.step > SPIN_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Backoff::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_after_bounded_spins() {
        let mut b = Backoff::new();
        assert!(!b.is_saturated());
        for _ in 0..=SPIN_LIMIT {
            b.spin();
        }
        assert!(b.is_saturated());
        b.spin(); // yields; must not panic or spin forever
        assert!(b.is_saturated());
        b.reset();
        assert!(!b.is_saturated());
    }

    #[test]
    fn disabled_backoff_is_a_noop() {
        set_enabled(false);
        let mut b = Backoff::new();
        for _ in 0..100 {
            b.spin();
        }
        assert!(!b.is_saturated(), "disabled backoff must not accumulate");
        set_enabled(true);
        assert!(is_enabled());
    }

    #[test]
    fn default_is_enabled() {
        let b = Backoff::default();
        assert!(b.enabled || !is_enabled());
    }
}
