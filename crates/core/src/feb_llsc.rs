//! **CAS (and thence LL/SC) from NB-FEB test-flag-and-set** — the other
//! rung below the paper.
//!
//! Ha, Tsigas and Anshus (arXiv:0811.1304) propose the *non-blocking
//! full/empty bit* as a scalable universal primitive: every memory word
//! carries a flag, and `TFAS` (test-flag-and-set) installs a value only if
//! the flag is clear, setting it as it does — a one-shot atomic winner
//! election whose return value tells winners and losers apart instantly.
//! This module builds a CAS-capable word from `TFAS`/`SAC` on a simulated
//! machine whose instruction set is
//! [`FebOnly`](nbsp_memsim::InstructionSet::FebOnly); stacking the
//! crate's Figure-4 LL/SC on top (see `ops.rs`) yields the issue's "LL/SC
//! built from test-flag-and-set".
//!
//! # The construction
//!
//! Each emulated word is one plain word plus a small ring of FEB words:
//!
//! * `cur` — the authoritative `(round, value)` state. It is written
//!   *only* by each round's winner, so its history is a single strictly
//!   round-monotone sequence and one plain load linearizes a read.
//! * `claims[RING]` — FEB claim slots; round `r` is decided at slot
//!   `r % RING`. A mutation claims the current round with `TFAS`; exactly
//!   one claimant wins the slot's generation (the flag stays set until the
//!   winner's `SAC` recycles it).
//!
//! A winner must *re-validate* that `cur.round` still equals the round `r`
//! it read before claiming. If so, the win is authoritative: the previous
//! generation's winner cleared this slot only **after** advancing `cur`
//! past its own round, so an uncleaned old-generation slot still has its
//! flag set and a win for a stale round is impossible while `cur.round`
//! reads `r` on both sides of the `TFAS`. The valid winner applies its own
//! operation to `v` (the value packed beside `r` in the same word),
//! plain-writes `cur = (r + 1, v')`, and only then `SAC`s the slot back to
//! empty. A bogus win (`cur.round` moved, meaning round `r` already
//! completed) is undone with `SAC` and the operation retries against the
//! new state.
//!
//! # Progress (honest statement)
//!
//! Reads, and CAS calls that fail their comparison (or would not change
//! the value), are **wait-free** — one load of `cur`. Mutations are
//! lock-free *between* stalls: every round completes exactly one pending
//! mutation, and a bogus win implies another operation completed. A winner
//! stalled between its `TFAS` and its `SAC`, however, blocks that slot —
//! the same bounded blocking window as the registry's Figure-2 lock
//! baseline (and the sequence-number core in `cas_from_swap`), covered by
//! the same model-checking and conformance machinery.

use nbsp_memsim::{Capability, InstructionSet, Processor, SimWord};

use crate::cas_provider::SyncMemory;
use crate::{CasFamily, CasMemory};

/// Claim slots per word; round `r` is decided at slot `r % RING`.
pub const RING: usize = 4;

/// Bits of `cur` used for the round counter.
///
/// 16 bits are ample: while any claimant holds a slot, `cur.round` can
/// advance at most [`RING`] rounds past the round it claimed (round
/// `r + RING` needs that slot back), so the exact-equality re-validation
/// can never be fooled by a full 2¹⁶ wrap. The other 48 bits go to the
/// value, wide enough for every layer stacked above (Figure 4's tag
/// split, LLX's version field).
const ROUND_BITS: u32 = 16;

/// Bits of `cur` holding the user value (the family's
/// [`CasFamily::VALUE_BITS`]).
pub const FEB_VALUE_BITS: u32 = 48;

const ROUND_MASK: u64 = (1 << ROUND_BITS) - 1;
const VALUE_MASK: u64 = (1 << FEB_VALUE_BITS) - 1;

/// An empty claim slot (flag clear, no claimant).
const EMPTY: u64 = 0;

#[inline]
fn pack(round: u64, value: u64) -> u64 {
    debug_assert!(value <= VALUE_MASK);
    ((round & ROUND_MASK) << FEB_VALUE_BITS) | value
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word >> FEB_VALUE_BITS, word & VALUE_MASK)
}

#[inline]
fn round_succ(round: u64) -> u64 {
    (round + 1) & ROUND_MASK
}

/// A shared word supporting CAS on machines whose only universal
/// primitive is the NB-FEB test-flag-and-set.
///
/// ```
/// use nbsp_core::FebWord;
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// // A machine with TFAS/SAC but *no* CAS.
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::FebOnly)
///     .build();
/// let p = machine.processor(0);
///
/// let w = FebWord::new(5);
/// assert!(w.cas(&p, 5, 6));   // CAS where the hardware has none
/// assert!(!w.cas(&p, 5, 7));  // old value no longer matches
/// assert_eq!(w.read(&p), 6);
/// ```
#[derive(Debug)]
pub struct FebWord {
    /// The authoritative `(round, value)` state; written only by round
    /// winners.
    cur: SimWord,
    /// FEB claim slots, one generation at a time each.
    claims: [SimWord; RING],
}

impl FebWord {
    /// Creates a word holding `initial` (round 0, all slots empty).
    ///
    /// # Panics
    ///
    /// Panics if `initial` needs more than [`FEB_VALUE_BITS`] bits.
    #[must_use]
    pub fn new(initial: u64) -> Self {
        assert!(
            initial <= VALUE_MASK,
            "initial value {initial} exceeds {FEB_VALUE_BITS} value bits"
        );
        FebWord {
            cur: SimWord::new(pack(0, initial)),
            claims: std::array::from_fn(|_| SimWord::new(EMPTY)),
        }
    }

    /// Reads the current value (one plain load; linearizes at the load —
    /// `cur`'s value field *is* the abstract state at every instant).
    #[must_use]
    pub fn read(&self, proc: &Processor) -> u64 {
        unpack(proc.read(&self.cur)).1
    }

    /// Wins one round: returns `(r, v)` for a round this processor now
    /// owns. The caller must plain-write `cur = (r + 1, v')` and then
    /// `SAC` slot `r % RING` — which [`Self::finish`] does.
    fn win_round(&self, proc: &Processor) -> (u64, u64) {
        loop {
            let (r, v) = unpack(proc.read(&self.cur));
            let slot = &self.claims[(r as usize) % RING];
            // Claim payload: this processor's id (diagnostic only — the
            // TFAS return value alone decides the election).
            let claim = proc.id().index() as u64 + 1;
            if proc.feb_tfas(slot, claim) & nbsp_memsim::FEB_FLAG != 0 {
                // Lost: a claim (this round's, or a not-yet-recycled older
                // generation's) holds the slot, and it is released exactly
                // by the holder's `SAC` in `finish` — so declare the wait
                // on the *slot*, not on `cur`: when the holder is an older
                // generation's winner its round-advancing write to `cur`
                // already happened, and only its pending `SAC` is still
                // owed. (A plain `yield_now` on a live machine; a
                // park-until-written under a model checker.)
                nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
                proc.await_change(slot);
                continue;
            }
            // Won the slot generation — but for *which* round? Valid iff
            // the round is unchanged: an uncleaned old-generation slot
            // still has its flag set, so a win while `cur.round == r` on
            // both sides of the TFAS can only be round r's.
            let (r2, _) = unpack(proc.read(&self.cur));
            if r2 != r {
                // Round r already completed — bogus win; undo and retry.
                let _ = proc.feb_sac(slot, EMPTY);
                nbsp_telemetry::record(nbsp_telemetry::Event::LlRestart);
                continue;
            }
            return (r, v);
        }
    }

    /// Completes an owned round: publishes `(r + 1, value)` and recycles
    /// the claim slot — in that order, so no claimant can win round `r`
    /// again once the slot frees up.
    fn finish(&self, proc: &Processor, r: u64, value: u64) {
        proc.write(&self.cur, pack(round_succ(r), value));
        let _ = proc.feb_sac(&self.claims[(r as usize) % RING], EMPTY);
    }

    /// Unconditionally stores `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` needs more than [`FEB_VALUE_BITS`] bits, or if
    /// the machine provides no NB-FEB ops.
    pub fn store(&self, proc: &Processor, value: u64) {
        assert!(
            value <= VALUE_MASK,
            "value {value} exceeds {FEB_VALUE_BITS} value bits"
        );
        let (r, _) = self.win_round(proc);
        self.finish(proc, r, value);
    }

    /// CAS: iff the word's value equals `old`, replace it with `new` and
    /// return `true`.
    ///
    /// # Panics
    ///
    /// Panics if `old` or `new` needs more than [`FEB_VALUE_BITS`] bits,
    /// or if the machine provides no NB-FEB ops.
    #[must_use]
    pub fn cas(&self, proc: &Processor, old: u64, new: u64) -> bool {
        assert!(old <= VALUE_MASK, "old value {old} exceeds {FEB_VALUE_BITS} value bits");
        assert!(new <= VALUE_MASK, "new value {new} exceeds {FEB_VALUE_BITS} value bits");
        // Wait-free fast paths, linearized at one load of the
        // authoritative state.
        let (_, v) = unpack(proc.read(&self.cur));
        if v != old {
            return false;
        }
        if old == new {
            return true;
        }
        // Mutation path: win a round. The value may have moved while
        // claiming, so re-check the comparison against the round's
        // own value.
        let (r, v) = self.win_round(proc);
        if v != old {
            // Republishing `v` unchanged keeps the round advancing.
            self.finish(proc, r, v);
            return false;
        }
        self.finish(proc, r, new);
        true
    }
}

/// Storage family for the NB-FEB emulation: each cell is a [`FebWord`]
/// (one plain word plus [`RING`] claim slots), exposing
/// [`FEB_VALUE_BITS`] usable value bits to the layer above.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FebFamily;

impl CasFamily for FebFamily {
    type Cell = FebWord;
    const VALUE_BITS: u32 = FEB_VALUE_BITS;

    fn make_cell(value: u64) -> FebWord {
        FebWord::new(value)
    }
}

/// [`CasMemory`] built from NB-FEB test-flag-and-set: "a machine with
/// CAS" synthesized on full/empty-bit hardware, usable underneath every
/// CAS-based construction in this crate.
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, FebCas, FebFamily};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::FebOnly)
///     .build();
/// let p = machine.processor(0);
/// let mem = FebCas::new(&p);
/// let cell = FebFamily::make_cell(3);
/// assert!(mem.cas(&cell, 3, 4));
/// assert_eq!(mem.load(&cell), 4);
/// ```
#[derive(Debug)]
pub struct FebCas<'a> {
    proc: &'a Processor,
}

impl<'a> FebCas<'a> {
    /// Wraps a simulated processor as an NB-FEB-backed CAS accessor.
    ///
    /// # Panics
    ///
    /// Panics if the machine's instruction set provides no NB-FEB ops —
    /// checked here, once, so the per-op hot paths can rely on it
    /// (satellite: a typed
    /// [`Error::UnsupportedOp`](crate::Error::UnsupportedOp) is available
    /// through [`SyncMemory`] for callers probing capabilities).
    #[must_use]
    pub fn new(proc: &'a Processor) -> Self {
        let caps = proc.instruction_set().capability();
        assert!(
            caps.contains(Capability::FEB),
            "feb_llsc needs the NB-FEB ops, machine has {caps}"
        );
        FebCas { proc }
    }

    /// Like [`FebCas::new`], but reports a missing instruction as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedOp`](crate::Error::UnsupportedOp) if
    /// the machine's instruction set has no NB-FEB ops.
    pub fn try_new(proc: &'a Processor) -> crate::Result<Self> {
        let caps = proc.instruction_set().capability();
        if !caps.contains(Capability::FEB) {
            return Err(crate::Error::UnsupportedOp {
                op: "feb_tfas",
                have: caps.to_string(),
            });
        }
        Ok(FebCas { proc })
    }

    /// The underlying processor (for reading stats).
    #[must_use]
    pub fn processor(&self) -> &Processor {
        self.proc
    }

    /// The instruction set this accessor was validated against.
    #[must_use]
    pub fn instruction_set(&self) -> InstructionSet {
        self.proc.instruction_set()
    }
}

impl CasMemory for FebCas<'_> {
    type Family = FebFamily;

    fn load(&self, cell: &FebWord) -> u64 {
        cell.read(self.proc)
    }

    fn store(&self, cell: &FebWord, value: u64) {
        cell.store(self.proc, value);
    }

    fn cas(&self, cell: &FebWord, old: u64, new: u64) -> bool {
        cell.cas(self.proc, old, new)
    }
}

impl SyncMemory for FebCas<'_> {
    /// Offers CAS upward; the FEB ops of the machine beneath are an
    /// implementation detail (see the identical note on `KwCas`).
    fn capabilities(&self) -> Capability {
        Capability::CAS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::Machine;

    fn feb_machine(n: usize) -> Machine {
        Machine::builder(n)
            .instruction_set(InstructionSet::FebOnly)
            .build()
    }

    #[test]
    fn cas_success_and_failure() {
        let m = feb_machine(1);
        let p = m.processor(0);
        let w = FebWord::new(1);
        assert!(w.cas(&p, 1, 2));
        assert!(!w.cas(&p, 1, 3));
        assert!(w.cas(&p, 2, 3));
        assert_eq!(w.read(&p), 3);
    }

    #[test]
    fn failed_and_trivial_cas_issue_no_tfas() {
        let m = feb_machine(1);
        let p = m.processor(0);
        let w = FebWord::new(5);
        let before = p.stats();
        assert!(!w.cas(&p, 6, 7)); // mismatch: wait-free read path
        assert!(w.cas(&p, 5, 5)); // old == new: wait-free read path
        let after = p.stats();
        assert_eq!(after.febs, before.febs);
    }

    #[test]
    fn rounds_advance_and_slots_recycle() {
        let m = feb_machine(1);
        let p = m.processor(0);
        let w = FebWord::new(0);
        // Push the round counter through several full trips around the
        // claim ring.
        for i in 1..=(3 * RING as u64) {
            w.store(&p, i);
        }
        assert_eq!(w.read(&p), 3 * RING as u64);
        let (round, _) = unpack(w.cur.peek());
        assert_eq!(round, 3 * RING as u64);
        for slot in &w.claims {
            assert_eq!(slot.peek(), EMPTY, "every slot recycled");
        }
    }

    #[test]
    fn concurrent_emulated_cas_counter_is_exact() {
        let m = feb_machine(4);
        let w = FebWord::new(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for _ in 0..2_500 {
                        loop {
                            let v = w.read(&p);
                            if w.cas(&p, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(unpack(w.cur.peek()).1, 10_000);
    }

    #[test]
    fn concurrent_stores_leave_some_stored_value() {
        let m = feb_machine(3);
        let w = FebWord::new(0);
        std::thread::scope(|s| {
            for id in 0..3 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for i in 0..500 {
                        w.store(&p, (id as u64) * 1000 + i);
                    }
                });
            }
        });
        let v = unpack(w.cur.peek()).1;
        assert!(v % 1000 < 500, "final value {v} was never stored");
        for slot in &w.claims {
            assert_eq!(slot.peek(), EMPTY, "every slot recycled");
        }
    }

    #[test]
    #[should_panic(expected = "does not provide NB-FEB")]
    fn feb_word_needs_feb_ops() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let w = FebWord::new(0);
        w.store(&p, 1);
    }

    #[test]
    #[should_panic(expected = "needs the NB-FEB ops")]
    fn feb_cas_rejects_wrong_machine_at_construction() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build();
        let p = m.processor(0);
        let _ = FebCas::new(&p);
    }

    #[test]
    fn feb_cas_memory_concurrent_counter() {
        let m = feb_machine(4);
        let cell = FebFamily::make_cell(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let cell = &cell;
                s.spawn(move || {
                    let mem = FebCas::new(&p);
                    for _ in 0..2_000 {
                        loop {
                            let v = mem.load(cell);
                            if mem.cas(cell, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(unpack(cell.cur.peek()).1, 8_000);
    }

    #[test]
    fn try_new_reports_missing_ops_as_typed_error() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build();
        let p = m.processor(0);
        assert!(matches!(
            FebCas::try_new(&p),
            Err(crate::Error::UnsupportedOp { op: "feb_tfas", .. })
        ));
        let m2 = feb_machine(1);
        let p2 = m2.processor(0);
        assert!(FebCas::try_new(&p2).is_ok());
    }

    #[test]
    fn feb_cas_sync_memory_offers_only_cas() {
        let m = feb_machine(1);
        let p = m.processor(0);
        let mem = FebCas::new(&p);
        assert_eq!(mem.capabilities(), Capability::CAS);
        let cell = FebFamily::make_cell(0);
        assert!(matches!(
            mem.try_feb_tfas(&cell, 1),
            Err(crate::Error::UnsupportedOp { op: "feb_tfas", .. })
        ));
    }
}
