//! # nbsp-core — Moir's PODC '97 synchronization-primitive constructions
//!
//! This crate implements every construction of Mark Moir, *Practical
//! Implementations of Non-Blocking Synchronization Primitives* (PODC 1997):
//!
//! | Paper artifact | Type here | Provides | From | Space overhead |
//! |---|---|---|---|---|
//! | Figure 3 / Thm 1 | [`EmuCasWord`], [`EmuCas`] | CAS | RLL/RSC | none |
//! | Figure 4 / Thm 2 | [`CasLlSc`] | LL/VL/SC | CAS | none |
//! | Figure 5 / Thm 3 | [`RllLlSc`] | LL/VL/SC | RLL/RSC | none |
//! | Figure 6 / Thm 4 | [`wide::WideVar`] | W-word WLL/VL/SC | CAS | Θ(NW) |
//! | Figure 7 / Thm 5 | [`bounded::BoundedVar`] | LL/VL/SC, bounded tags | CAS | Θ(N(k+T)) |
//! | Figure 2 | [`lock_baseline::LockLlSc`] | reference semantics | a lock | (baseline/oracle only) |
//!
//! The constructions are generic over [`CasMemory`] where the paper says
//! "using CAS": instantiate with [`Native`] on real hardware, with
//! [`SimCas`] on a simulated CAS-only machine, or with [`EmuCas`] to run the
//! whole stack on a simulated machine that has *only* RLL/RSC.
//!
//! The paper's modified LL interface — pass a pointer to a private word to
//! `LL`, hand the stored value back to `VL`/`SC` — appears here as the
//! [`Keep`] type (and [`keep_search`] measures what that interface buys).
//!
//! ## Quick start
//!
//! ```
//! use nbsp_core::{CasLlSc, Keep, Native, TagLayout};
//!
//! // A 32-bit counter with a 32-bit tag, on native atomics.
//! let counter = CasLlSc::new_native(TagLayout::half(), 0)?;
//! let mem = Native;
//!
//! let mut keep = Keep::default();
//! loop {
//!     let v = counter.ll(&mem, &mut keep);
//!     if counter.sc(&mem, &keep, v + 1) {
//!         break;
//!     }
//! }
//! assert_eq!(counter.read(&mem), 1);
//! # Ok::<(), nbsp_core::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod backoff;
pub mod bounded;
mod cas_from_rll;
mod cas_from_swap;
mod cas_provider;
pub mod constant_llsc;
pub mod dynamic_llsc;
mod error;
mod feb_llsc;
pub mod keep_search;
mod layout;
mod llsc_from_cas;
mod llsc_from_rll;
pub mod lock_baseline;
mod ops;
pub mod provider;
mod tag_queue;
pub mod telemetry;
pub mod wide;

pub use backoff::Backoff;
pub use bounded::TagPolicy;
pub use cas_from_rll::{EmuCas, EmuCasWord, EmuFamily};
pub use cas_from_swap::{KwCas, KwFamily, KwWord, KW_VALUE_BITS, ROUND_BITS};
pub use cas_provider::{
    CasFamily, CasMemory, CellOf, Native, NativeSeqCst, SimCas, SimFamily, SyncMemory,
};
pub use constant_llsc::{ConstantDomain, ConstantKeep, ConstantProc, ConstantVar};
pub use dynamic_llsc::{DurableDynamicVar, DynProc, DynamicDomain, DynamicVar, VolatileDynamicVar};
pub use error::{Error, Result};
pub use feb_llsc::{FebCas, FebFamily, FebWord, FEB_VALUE_BITS, RING};
pub use layout::TagLayout;
pub use llsc_from_cas::{CasLlSc, Keep};
pub use llsc_from_rll::RllLlSc;
pub use ops::LlScVar;
pub use provider::{Provider, ProviderId, ProviderMeta, Tier};
pub use tag_queue::{ScanQueue, TagQueue};
pub use telemetry::{WideHists, WideTotals};

// Re-exported so users of the constructions can pad their own per-process
// slots the same way the announce arrays are padded. (Defined in
// `nbsp-memsim` — the layering base — because the simulator needs it too.)
pub use nbsp_memsim::CachePadded;
