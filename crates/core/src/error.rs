use std::error::Error as StdError;
use std::fmt;

/// Errors returned when constructing or configuring the primitives.
///
/// Hot-path operations (`LL`/`VL`/`SC`/`CAS`) never return errors — like the
/// instructions they emulate they are total once the variable is validly
/// constructed — so all validation happens at construction time and is
/// reported through this type. Passing an out-of-range *value* to a hot-path
/// operation is a programming error and panics (documented per method).
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A tag/value bit split does not fit the available word.
    InvalidLayout {
        /// Requested tag bits.
        tag_bits: u32,
        /// Requested value bits.
        val_bits: u32,
        /// Bits actually available in the underlying word.
        available: u32,
    },
    /// An initial or stored value does not fit the layout's value field.
    ValueTooLarge {
        /// The offending value.
        value: u64,
        /// Largest representable value.
        max: u64,
    },
    /// A W-word buffer had the wrong length.
    WidthMismatch {
        /// Width the variable was created with.
        expected: usize,
        /// Width supplied by the caller.
        got: usize,
    },
    /// A domain parameter (N, W or k) is zero or too large for the word.
    InvalidDomain {
        /// Human-readable description of the violated constraint.
        what: &'static str,
    },
    /// A process pool has no free slot: `join` on a full dynamic provider,
    /// or a process id at/past capacity on a fixed-N provider.
    PoolExhausted {
        /// Number of process slots the provider was created with.
        capacity: usize,
    },
    /// A memory operation was requested that the backing instruction set
    /// does not provide (see [`Capability`](nbsp_memsim::Capability)).
    UnsupportedOp {
        /// The requested operation, e.g. `"swap"` or `"feb_tfas"`.
        op: &'static str,
        /// The capabilities the backend actually offers, rendered the way
        /// `Capability` displays them (e.g. `"cas+rll_rsc"`).
        have: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidLayout {
                tag_bits,
                val_bits,
                available,
            } => write!(
                f,
                "layout of {tag_bits} tag bits + {val_bits} value bits does not fit \
                 {available} available bits"
            ),
            Error::ValueTooLarge { value, max } => {
                write!(f, "value {value} exceeds the layout's maximum {max}")
            }
            Error::WidthMismatch { expected, got } => {
                write!(f, "buffer of {got} words supplied to a {expected}-word variable")
            }
            Error::InvalidDomain { what } => write!(f, "invalid domain parameter: {what}"),
            Error::PoolExhausted { capacity } => {
                write!(f, "process pool exhausted: all {capacity} slots are taken")
            }
            Error::UnsupportedOp { op, have } => {
                write!(f, "operation {op} is not in the backend's instruction set ({have})")
            }
        }
    }
}

impl StdError for Error {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let cases: Vec<(Error, &str)> = vec![
            (
                Error::InvalidLayout {
                    tag_bits: 40,
                    val_bits: 40,
                    available: 64,
                },
                "does not fit",
            ),
            (Error::ValueTooLarge { value: 9, max: 3 }, "exceeds"),
            (
                Error::WidthMismatch {
                    expected: 4,
                    got: 2,
                },
                "2 words",
            ),
            (Error::InvalidDomain { what: "n must be positive" }, "n must be"),
            (Error::PoolExhausted { capacity: 4 }, "all 4 slots"),
            (
                Error::UnsupportedOp {
                    op: "swap",
                    have: "cas".to_string(),
                },
                "not in the backend's instruction set",
            ),
        ];
        for (e, needle) in cases {
            let msg = e.to_string();
            assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
            assert!(msg.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn takes<E: StdError + Send + Sync + 'static>() {}
        takes::<Error>();
    }
}
