//! **CAS from swap + fetch-and-add** — one rung *below* the paper.
//!
//! Moir's constructions assume CAS or LL/SC, both consensus-number-∞
//! primitives. Khanchandani and Wattenhofer (arXiv:1802.03844, *"Is
//! Compare-and-Swap Really Necessary?"*) show that CAS itself can be built
//! from primitives of consensus number two — unconditional swap and
//! fetch-and-add — by totally ordering mutations with a Φ (fetch-and-add)
//! sequence word. This module implements the sequence-number core of that
//! construction on a simulated machine whose instruction set is
//! [`SwapFaaOnly`](nbsp_memsim::InstructionSet::SwapFaaOnly), giving the
//! repo's portability matrix its "pre-CAS hardware" column.
//!
//! # The construction
//!
//! Each emulated word is a pair of machine words:
//!
//! * `tickets` — a Φ counter advanced with fetch-and-add; every mutating
//!   operation (store, or a CAS that must attempt a change) takes a ticket,
//!   and tickets define the *total order of mutations*.
//! * `cur` — the authoritative state, packed as `(round, value)` and
//!   written with swap. Invariant: `cur` holds round `r` exactly when every
//!   mutation with ticket `< r` has been applied, and its value field is
//!   then the abstract value of the word.
//!
//! A mutation with ticket `t` waits until `cur.round == t`, reads the value
//! `v` it is entitled to, and swaps in `(t + 1, v')` — for a store `v'` is
//! the new value; for a CAS, `v' = new` iff `v == old`, else `v` is
//! republished unchanged. The swap linearizes the mutation.
//!
//! # Sequence/ABA argument (after the paper's §7 style)
//!
//! The tag-based emulations in this crate (Figure 3, Figure 4) defend
//! against ABA with per-word tags that can wrap. Here the defence is the
//! round field: `cur` is written *only* by the unique holder of the current
//! round's ticket, so its `(round, value)` history is a single strictly
//! round-monotone sequence — no waiter can mistake an old state for a new
//! one until the [`ROUND_BITS`]-bit round counter wraps all the way around
//! *while that waiter sleeps*. Rounds are served in ticket order and each
//! process holds at most one ticket, so at most `N` rounds separate any
//! waiter from the current round — far below the 2¹⁶ wrap (the analogue of
//! the paper's "tag must not wrap during an operation" assumption,
//! quantified for the small-tag case by experiment E5). Round
//! comparisons use wrapping distance, so operation *across* the wrap
//! boundary is exact; the `forced_wrap` test pins this.
//!
//! # Progress (honest statement)
//!
//! Reads, and CAS calls whose comparison fails (or that would not change
//! the value), are **wait-free**: one plain read of `cur` suffices, because
//! `cur` always equals the abstract state — any mutation holding a ticket
//! but not yet applied has simply not linearized yet. A mutation, however,
//! waits for its round in FIFO order, so a stalled ticket-holder delays
//! later mutations: the full Khanchandani–Wattenhofer helping/adoption
//! layer that removes this window is **deliberately omitted**. The window
//! is the same kind the registry's Figure-2 lock baseline exhibits, and the
//! same model-checking and conformance machinery covers it.

use nbsp_memsim::{Capability, InstructionSet, Processor, SimWord};

use crate::cas_provider::SyncMemory;
use crate::{CasFamily, CasMemory};

/// Bits of the `cur` word used for the round counter.
///
/// 16 bits are enough: the round field only has to outrun the mutations
/// *in flight* at one instant, and each process holds at most one ticket,
/// so the wrapping-distance comparisons stay exact for any machine with
/// fewer than 2¹⁵ processors. Spending the other 48 bits on the value
/// keeps the emulated word wide enough for every layer stacked above it
/// (Figure 4's tag split, LLX's version field).
pub const ROUND_BITS: u32 = 16;

/// Bits of the `cur` word holding the user value (the family's
/// [`CasFamily::VALUE_BITS`]).
pub const KW_VALUE_BITS: u32 = 48;

const ROUND_MASK: u64 = (1 << ROUND_BITS) - 1;
const VALUE_MASK: u64 = (1 << KW_VALUE_BITS) - 1;
/// Half the round space: wrapping-distance comparisons treat distances
/// below this as "ahead".
const HALF_ROUND: u64 = 1 << (ROUND_BITS - 1);

#[inline]
fn pack(round: u64, value: u64) -> u64 {
    debug_assert!(value <= VALUE_MASK);
    ((round & ROUND_MASK) << KW_VALUE_BITS) | value
}

#[inline]
fn unpack(word: u64) -> (u64, u64) {
    (word >> KW_VALUE_BITS, word & VALUE_MASK)
}

#[inline]
fn round_succ(round: u64) -> u64 {
    (round + 1) & ROUND_MASK
}

/// `true` iff round `a` is strictly before `b` in wrapping order.
#[inline]
fn round_before(a: u64, b: u64) -> bool {
    a != b && b.wrapping_sub(a) & ROUND_MASK < HALF_ROUND
}

/// A shared word supporting CAS on machines that only provide swap and
/// fetch-and-add (consensus number two).
///
/// ```
/// use nbsp_core::KwWord;
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// // A machine with swap + fetch-and-add but *no* CAS.
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::SwapFaaOnly)
///     .build();
/// let p = machine.processor(0);
///
/// let w = KwWord::new(5);
/// assert!(w.cas(&p, 5, 6));   // CAS where the hardware has none
/// assert!(!w.cas(&p, 5, 7));  // old value no longer matches
/// assert_eq!(w.read(&p), 6);
/// ```
#[derive(Debug)]
pub struct KwWord {
    /// The Φ sequence word: fetch-and-add hands out mutation tickets.
    tickets: SimWord,
    /// The authoritative `(round, value)` state, advanced by swap.
    cur: SimWord,
}

impl KwWord {
    /// Creates a word holding `initial` (round 0, no tickets issued).
    ///
    /// # Panics
    ///
    /// Panics if `initial` needs more than [`KW_VALUE_BITS`] bits.
    #[must_use]
    pub fn new(initial: u64) -> Self {
        assert!(
            initial <= VALUE_MASK,
            "initial value {initial} exceeds {KW_VALUE_BITS} value bits"
        );
        KwWord {
            tickets: SimWord::new(0),
            cur: SimWord::new(pack(0, initial)),
        }
    }

    /// Reads the current value (one plain load; linearizes at the load —
    /// `cur`'s value field *is* the abstract state at every instant).
    #[must_use]
    pub fn read(&self, proc: &Processor) -> u64 {
        unpack(proc.read(&self.cur)).1
    }

    /// Takes a ticket, waits for the round, and returns the value this
    /// mutation is entitled to rewrite. Callers must follow with exactly
    /// one [`Self::publish`].
    fn acquire(&self, proc: &Processor) -> (u64, u64) {
        let t = proc.fetch_add(&self.tickets, 1) & ROUND_MASK;
        loop {
            let (r, v) = unpack(proc.read(&self.cur));
            if r == t {
                return (t, v);
            }
            debug_assert!(
                round_before(r, t),
                "round {r} has already passed ticket {t}"
            );
            // FIFO wait on the ticket holder ahead of us: our turn arrives
            // exactly when a predecessor's `publish` swap writes `cur`, so
            // declare the wait on that word (a plain `yield_now` on a live
            // machine; a park-until-written under a model checker).
            proc.await_change(&self.cur);
        }
    }

    /// Applies a mutation's result: swaps `(t + 1, value)` into `cur`.
    fn publish(&self, proc: &Processor, t: u64, value: u64) {
        let displaced = proc.swap(&self.cur, pack(round_succ(t), value));
        debug_assert_eq!(unpack(displaced).0, t, "publish displaced a foreign round");
    }

    /// Unconditionally stores `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value` needs more than [`KW_VALUE_BITS`] bits, or if the
    /// machine provides no swap/fetch-and-add.
    pub fn store(&self, proc: &Processor, value: u64) {
        assert!(
            value <= VALUE_MASK,
            "value {value} exceeds {KW_VALUE_BITS} value bits"
        );
        let (t, _) = self.acquire(proc);
        self.publish(proc, t, value);
    }

    /// CAS: iff the word's value equals `old`, replace it with `new` and
    /// return `true`.
    ///
    /// # Panics
    ///
    /// Panics if `old` or `new` needs more than [`KW_VALUE_BITS`] bits, or
    /// if the machine provides no swap/fetch-and-add.
    #[must_use]
    pub fn cas(&self, proc: &Processor, old: u64, new: u64) -> bool {
        assert!(old <= VALUE_MASK, "old value {old} exceeds {KW_VALUE_BITS} value bits");
        assert!(new <= VALUE_MASK, "new value {new} exceeds {KW_VALUE_BITS} value bits");
        // Wait-free fast paths, linearized at one read of the
        // authoritative state.
        let v = self.read(proc);
        if v != old {
            return false;
        }
        if old == new {
            return true;
        }
        // Mutation path: totally ordered by the Φ word.
        let (t, v) = self.acquire(proc);
        let ok = v == old;
        self.publish(proc, t, if ok { new } else { v });
        ok
    }

    /// Test-only handle to the Φ word, so the forced-wrap test can push
    /// the counters to the edge of the round space.
    #[cfg(test)]
    fn poke_rounds(&self, round: u64, value: u64) {
        self.tickets.poke(round);
        self.cur.poke(pack(round, value));
    }
}

/// Storage family for the Khanchandani–Wattenhofer emulation: each cell is
/// a [`KwWord`] (two machine words), exposing [`KW_VALUE_BITS`] usable
/// value bits to the layer above.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KwFamily;

impl CasFamily for KwFamily {
    type Cell = KwWord;
    const VALUE_BITS: u32 = KW_VALUE_BITS;

    fn make_cell(value: u64) -> KwWord {
        KwWord::new(value)
    }
}

/// [`CasMemory`] built from swap + fetch-and-add: "a machine with CAS"
/// synthesized on consensus-number-two hardware, usable underneath every
/// CAS-based construction in this crate.
///
/// ```
/// use nbsp_core::{CasFamily, CasMemory, KwCas, KwFamily};
/// use nbsp_memsim::{InstructionSet, Machine};
///
/// let machine = Machine::builder(1)
///     .instruction_set(InstructionSet::SwapFaaOnly)
///     .build();
/// let p = machine.processor(0);
/// let mem = KwCas::new(&p);
/// let cell = KwFamily::make_cell(3);
/// assert!(mem.cas(&cell, 3, 4));
/// assert_eq!(mem.load(&cell), 4);
/// ```
#[derive(Debug)]
pub struct KwCas<'a> {
    proc: &'a Processor,
}

impl<'a> KwCas<'a> {
    /// Wraps a simulated processor as a swap/fetch-and-add-backed CAS
    /// accessor.
    ///
    /// # Panics
    ///
    /// Panics if the machine's instruction set provides no swap or no
    /// fetch-and-add — checked here, once, so the per-op hot paths can
    /// rely on it (satellite: a typed [`Error::UnsupportedOp`] is
    /// available through [`SyncMemory`] for callers probing capabilities).
    #[must_use]
    pub fn new(proc: &'a Processor) -> Self {
        let caps = proc.instruction_set().capability();
        assert!(
            caps.contains(Capability::SWAP | Capability::FETCH_ADD),
            "cas_from_swap needs swap + fetch-and-add, machine has {caps}"
        );
        KwCas { proc }
    }

    /// Like [`KwCas::new`], but reports a missing instruction as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnsupportedOp`](crate::Error::UnsupportedOp) if
    /// the machine's instruction set has no swap or no fetch-and-add.
    pub fn try_new(proc: &'a Processor) -> crate::Result<Self> {
        let caps = proc.instruction_set().capability();
        if !caps.contains(Capability::SWAP | Capability::FETCH_ADD) {
            return Err(crate::Error::UnsupportedOp {
                op: "swap",
                have: caps.to_string(),
            });
        }
        Ok(KwCas { proc })
    }

    /// The underlying processor (for reading stats).
    #[must_use]
    pub fn processor(&self) -> &Processor {
        self.proc
    }

    /// The instruction set this accessor was validated against.
    #[must_use]
    pub fn instruction_set(&self) -> InstructionSet {
        self.proc.instruction_set()
    }
}

impl CasMemory for KwCas<'_> {
    type Family = KwFamily;

    fn load(&self, cell: &KwWord) -> u64 {
        cell.read(self.proc)
    }

    fn store(&self, cell: &KwWord, value: u64) {
        cell.store(self.proc, value);
    }

    fn cas(&self, cell: &KwWord, old: u64, new: u64) -> bool {
        cell.cas(self.proc, old, new)
    }
}

impl SyncMemory for KwCas<'_> {
    /// What this accessor *offers upward* is exactly CAS (synthesized);
    /// the weak ops of the machine beneath are an implementation detail
    /// and deliberately not re-exported, so layers above cannot couple to
    /// them (the lint's weak-op discipline enforces the same boundary
    /// statically).
    fn capabilities(&self) -> Capability {
        Capability::CAS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::Machine;

    fn swap_machine(n: usize) -> Machine {
        Machine::builder(n)
            .instruction_set(InstructionSet::SwapFaaOnly)
            .build()
    }

    #[test]
    fn cas_success_and_failure() {
        let m = swap_machine(1);
        let p = m.processor(0);
        let w = KwWord::new(1);
        assert!(w.cas(&p, 1, 2));
        assert!(!w.cas(&p, 1, 3));
        assert!(w.cas(&p, 2, 3));
        assert_eq!(w.read(&p), 3);
    }

    #[test]
    fn failed_cas_and_trivial_cas_take_no_ticket() {
        let m = swap_machine(1);
        let p = m.processor(0);
        let w = KwWord::new(5);
        let before = p.stats();
        assert!(!w.cas(&p, 6, 7)); // mismatch: wait-free read path
        assert!(w.cas(&p, 5, 5)); // old == new: wait-free read path
        let after = p.stats();
        assert_eq!(after.fetch_adds, before.fetch_adds);
        assert_eq!(after.swaps, before.swaps);
    }

    #[test]
    fn mutations_spend_one_ticket_and_one_swap() {
        let m = swap_machine(1);
        let p = m.processor(0);
        let w = KwWord::new(0);
        w.store(&p, 9);
        assert!(w.cas(&p, 9, 10));
        let s = p.stats();
        assert_eq!((s.fetch_adds, s.swaps), (2, 2));
        assert_eq!(w.read(&p), 10);
    }

    #[test]
    fn concurrent_emulated_cas_counter_is_exact() {
        let m = swap_machine(4);
        let w = KwWord::new(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for _ in 0..2_500 {
                        loop {
                            let v = w.read(&p);
                            if w.cas(&p, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(unpack(w.cur.peek()).1, 10_000);
    }

    #[test]
    fn concurrent_stores_leave_some_ticketed_value() {
        let m = swap_machine(3);
        let w = KwWord::new(0);
        std::thread::scope(|s| {
            for id in 0..3 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for i in 0..500 {
                        w.store(&p, (id as u64) * 1000 + i);
                    }
                });
            }
        });
        let v = unpack(w.cur.peek()).1;
        assert!(v % 1000 < 500, "final value {v} was never stored");
    }

    /// Satellite: seeded forced-wrap ABA test. Push the Φ counter and the
    /// round field to just below the round-space wrap boundary, then drive
    /// concurrent mutations *across* it to prove the wrapping-distance
    /// comparisons (and the packed round arithmetic) stay exact.
    #[test]
    fn forced_wrap() {
        const START: u64 = (1 << ROUND_BITS) - 3; // 3 rounds before the wrap
        let m = swap_machine(2);
        let w = KwWord::new(0);
        w.poke_rounds(START, 7);
        assert_eq!(unpack(w.cur.peek()).1, 7);
        std::thread::scope(|s| {
            for id in 0..2 {
                let p = m.processor(id);
                let w = &w;
                s.spawn(move || {
                    for _ in 0..100 {
                        loop {
                            let v = w.read(&p);
                            if w.cas(&p, v, (v + 1) & 0xFFFF) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(unpack(w.cur.peek()).1, 207, "200 increments across the wrap");
        // The round counter really did wrap: it is now far below START.
        let (round, _) = unpack(w.cur.peek());
        assert!(round < 1000, "round {round} should have wrapped past zero");
        assert!(round_before(START, round), "wrapping order: START precedes the new round");
        // And the word still works.
        let m2 = swap_machine(1);
        let p = m2.processor(0);
        assert!(w.cas(&p, 207, 300));
        assert_eq!(w.read(&p), 300);
    }

    #[test]
    fn round_order_helpers() {
        assert!(round_before(0, 1));
        assert!(!round_before(1, 0));
        assert!(!round_before(5, 5));
        // Across the wrap: MAX is before 0.
        assert!(round_before(ROUND_MASK, 0));
        assert!(!round_before(0, ROUND_MASK));
        assert_eq!(round_succ(ROUND_MASK), 0);
    }

    #[test]
    #[should_panic(expected = "does not provide fetch-and-add")]
    fn kw_word_needs_swap_faa() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let w = KwWord::new(0);
        w.store(&p, 1);
    }

    #[test]
    #[should_panic(expected = "needs swap + fetch-and-add")]
    fn kw_cas_rejects_wrong_machine_at_construction() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        let _ = KwCas::new(&p);
    }

    #[test]
    fn kw_cas_memory_concurrent_counter() {
        let m = swap_machine(4);
        let cell = KwFamily::make_cell(0);
        std::thread::scope(|s| {
            for id in 0..4 {
                let p = m.processor(id);
                let cell = &cell;
                s.spawn(move || {
                    let mem = KwCas::new(&p);
                    for _ in 0..2_000 {
                        loop {
                            let v = mem.load(cell);
                            if mem.cas(cell, v, v + 1) {
                                break;
                            }
                        }
                    }
                });
            }
        });
        let m1 = swap_machine(1);
        assert_eq!(cell.read(&m1.processor(0)), 8_000);
    }

    #[test]
    fn try_new_reports_missing_ops_as_typed_error() {
        let m = Machine::builder(1)
            .instruction_set(InstructionSet::CasOnly)
            .build();
        let p = m.processor(0);
        assert!(matches!(
            KwCas::try_new(&p),
            Err(crate::Error::UnsupportedOp { op: "swap", .. })
        ));
        let m2 = swap_machine(1);
        let p2 = m2.processor(0);
        assert!(KwCas::try_new(&p2).is_ok());
    }

    #[test]
    fn kw_cas_sync_memory_offers_only_cas() {
        let m = swap_machine(1);
        let p = m.processor(0);
        let mem = KwCas::new(&p);
        assert_eq!(mem.capabilities(), Capability::CAS);
        let cell = KwFamily::make_cell(0);
        assert!(matches!(
            mem.try_swap(&cell, 1),
            Err(crate::Error::UnsupportedOp { op: "swap", .. })
        ));
    }
}
