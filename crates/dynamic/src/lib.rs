//! # nbsp-dynamic — crash–recovery harness for the dynamic-joining provider
//!
//! `nbsp-core` contributes the construction (the pointer-word LL/SC of
//! Jayanti, Jayanti & Jayanti, arXiv:2302.00135, over
//! [`PWord`](nbsp_memsim::PWord)/[`VWord`](nbsp_memsim::VWord)); this crate
//! contributes the *experiment* that earns the word "durable": a harness
//! that kills a running multi-threaded execution at an arbitrary
//! schedule point, runs recovery, and checks durable linearizability of
//! what survived.
//!
//! ## How a trial works
//!
//! [`crash_run`] spawns `threads` workers over one [`DurableDynamicVar`]
//! used as a counter. Every worker installs a shared
//! [`CrashPlan`](nbsp_memsim::sched::CrashPlan), so the plan counts the
//! instrumented shared accesses of the whole execution and tears every
//! thread down — a simulated power failure — once the `kill_after`-th
//! access has run, wherever in whosever operation that lands. The harness
//! then rolls all persistent words back to their persisted images
//! ([`DynamicVar::recover`]), and applies the counter's
//! durable-linearizability verdict ([`durable_counter_verdict`]):
//!
//! > `initial + returned  ≤  recovered  ≤  initial + returned + threads`
//!
//! Every SC whose success was *reported* (the caller saw `true`) must
//! survive the crash, and the only extra survivors allowed are the at
//! most one *unreported* in-flight SC per thread whose install persisted
//! before the power went out. Finally the harness re-joins the variable
//! through a fresh membership domain — a real power failure also wipes
//! the volatile membership book-keeping — and performs one more
//! increment, proving the recovered state is operable, not just
//! readable.
//!
//! [`sweep`] repeats the trial over a seeded random range of kill
//! points, so crashes land inside LL windows, between a cell flush and
//! its install, between an install and its `X` flush, and after
//! completion (a no-crash control), without any cooperation from the
//! code under test. `exp_elastic` (experiment E14) runs the sweep
//! CI-gated; the unit tests here gate it at a smaller scale.

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::{DurableDynamicVar, DynamicDomain, DynamicVar, LlScVar};
use nbsp_memsim::rng::SplitMix64;
use nbsp_memsim::sched::{self, CrashPlan};
use nbsp_memsim::MemWord;

/// How one kill-at-schedule-point trial ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashOutcome {
    /// The plan tripped: the execution was killed mid-flight.
    Crashed,
    /// The kill point lay beyond the execution: every worker completed.
    /// These trials are the control group — recovery must then find
    /// exactly the final value.
    Completed,
}

/// The verified record of one [`crash_run`] trial.
#[derive(Clone, Copy, Debug)]
pub struct CrashReport {
    /// The instrumented access at which the power failed.
    pub kill_after: usize,
    /// Whether the execution was actually cut short.
    pub outcome: CrashOutcome,
    /// Number of SC successes reported to a caller before the crash.
    pub returned: u64,
    /// The value recovered from the persisted image.
    pub recovered: u64,
    /// The value after the post-recovery continuation increment —
    /// always `recovered + 1` (asserted), kept for the experiment's
    /// records.
    pub resumed: u64,
}

/// The durable-linearizability verdict for the crash counter: with
/// `returned` reported SC successes over `threads` workers, a recovered
/// value is consistent iff it keeps every reported success and adds at
/// most one unreported in-flight success per thread.
#[must_use]
pub fn durable_counter_verdict(initial: u64, returned: u64, threads: usize, recovered: u64) -> bool {
    recovered >= initial + returned && recovered <= initial + returned + threads as u64
}

fn increment_once<W: MemWord>(var: &DynamicVar<W>, me: &mut nbsp_core::DynProc) {
    let mut keep = None;
    loop {
        let v = var.ll(me, &mut keep);
        if var.sc(me, &mut keep, v + 1) {
            break;
        }
    }
}

/// Runs one crash trial: `threads` workers each attempt `ops_per_thread`
/// increments of a durable counter starting at `initial`, the power
/// fails at the `kill_after`-th instrumented access, recovery runs, and
/// the durable-linearizability verdict is asserted.
///
/// # Panics
///
/// Panics if recovery violates durable linearizability, if a crash-free
/// trial does not recover the exact final value, if the recovered state
/// rejects further operations — or if a worker dies with a *real* panic
/// (anything but the plan's crash token), which is resumed verbatim.
pub fn crash_run(threads: usize, ops_per_thread: u64, kill_after: usize, initial: u64) -> CrashReport {
    assert!(threads >= 1, "a crash trial needs at least one worker");
    let domain = DynamicDomain::with_preadmitted(threads).expect("trial domain");
    let var = DurableDynamicVar::new(domain.capacity(), initial).expect("trial variable");
    let plan = CrashPlan::new(kill_after);
    let returned = AtomicU64::new(0);

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                let plan = plan.clone();
                let (domain, var, returned) = (&domain, &var, &returned);
                s.spawn(move || {
                    catch_unwind(AssertUnwindSafe(|| {
                        let _g = sched::install(plan);
                        let mut me = domain.claim(p).expect("preadmitted slot");
                        for _ in 0..ops_per_thread {
                            increment_once(var, &mut me);
                            // Uninstrumented, so it cannot be cut short:
                            // this counts exactly the SCs whose success
                            // was reported before the power failed.
                            returned.fetch_add(1, Ordering::Relaxed);
                        }
                    }))
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join().expect("worker killed outside catch_unwind") {
                // The simulated power failure is expected; anything else
                // is a genuine bug in the code under test.
                if !sched::is_crash_panic(payload.as_ref()) {
                    resume_unwind(payload);
                }
            }
        }
    });

    let outcome = if plan.tripped() {
        CrashOutcome::Crashed
    } else {
        CrashOutcome::Completed
    };
    let returned = returned.into_inner();
    let recovered = var.recover();
    assert!(
        durable_counter_verdict(initial, returned, threads, recovered),
        "durable linearizability violated: initial={initial} returned={returned} \
         threads={threads} recovered={recovered}"
    );
    if outcome == CrashOutcome::Completed {
        assert_eq!(
            recovered,
            initial + threads as u64 * ops_per_thread,
            "a crash-free execution must recover its exact final value"
        );
    }

    // A real power failure also loses the volatile membership
    // book-keeping; survivors re-join through a fresh domain against the
    // same persistent variable. One more increment proves the recovered
    // state accepts operations.
    let rejoined = DynamicDomain::new(domain.capacity()).expect("recovery domain");
    let mut me = rejoined
        .claim(rejoined.join().expect("empty domain admits"))
        .expect("fresh admission claims");
    increment_once(&var, &mut me);
    let resumed = var.read(&mut me);
    assert_eq!(resumed, recovered + 1, "recovered state must be operable");

    CrashReport {
        kill_after,
        outcome,
        returned,
        recovered,
        resumed,
    }
}

/// Aggregate of a seeded [`sweep`] of crash trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepReport {
    /// Trials run (every one passed its verdict, or the sweep panicked).
    pub trials: usize,
    /// Trials the plan cut short.
    pub crashed: usize,
    /// Crash-free control trials.
    pub completed: usize,
    /// Smallest value any trial recovered.
    pub min_recovered: u64,
    /// Largest value any trial recovered.
    pub max_recovered: u64,
}

/// Sweeps `trials` kill points drawn from `SplitMix64::new(seed)` over
/// the access horizon of a `threads × ops_per_thread` execution (with a
/// deliberate over-shoot tail so some trials complete crash-free) and
/// asserts every trial's durable-linearizability verdict.
///
/// Deterministic: the same arguments replay the same kill points.
#[must_use]
pub fn sweep(seed: u64, trials: usize, threads: usize, ops_per_thread: u64) -> SweepReport {
    let mut rng = SplitMix64::new(seed);
    // One increment costs ~8 instrumented accesses (4 in LL, 4 in SC)
    // plus retries; 12 per op over-estimates so the +25% tail reliably
    // yields crash-free controls.
    let horizon = (threads as u64 * ops_per_thread).saturating_mul(12).max(4);
    let mut report = SweepReport {
        trials,
        crashed: 0,
        completed: 0,
        min_recovered: u64::MAX,
        max_recovered: 0,
    };
    for _ in 0..trials {
        let kill_after = rng.next_below(horizon + horizon / 4) as usize;
        let r = crash_run(threads, ops_per_thread, kill_after, 0);
        match r.outcome {
            CrashOutcome::Crashed => report.crashed += 1,
            CrashOutcome::Completed => report.completed += 1,
        }
        report.min_recovered = report.min_recovered.min(r.recovered);
        report.max_recovered = report.max_recovered.max(r.recovered);
    }
    report
}

/// Drives `rounds` of membership churn against a shared domain/variable
/// pair: each round joins a slot, claims it, performs `ops_per_round`
/// increments, and retires the slot again. Returns the number of
/// increments performed (`rounds * ops_per_round`); the caller checks
/// the counter advanced by exactly that much.
///
/// Generic over the word type so the same churn exercises the volatile
/// and the durable provider. Usable concurrently from several threads
/// as long as the domain has a free slot per churner.
///
/// # Panics
///
/// Panics if the domain refuses a join or claim mid-churn (callers
/// guarantee a free slot per concurrent churner).
pub fn churn<W: MemWord>(
    domain: &DynamicDomain,
    var: &DynamicVar<W>,
    rounds: usize,
    ops_per_round: u64,
) -> u64 {
    for _ in 0..rounds {
        let p = domain.join().expect("churn needs a free slot");
        let mut me = domain.claim(p).expect("fresh admission claims");
        for _ in 0..ops_per_round {
            increment_once(var, &mut me);
        }
        domain.retire(p);
    }
    rounds as u64 * ops_per_round
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_memsim::{PWord, VWord};

    #[test]
    fn the_verdict_brackets_the_recovered_value() {
        assert!(durable_counter_verdict(5, 10, 2, 15));
        assert!(durable_counter_verdict(5, 10, 2, 17));
        assert!(!durable_counter_verdict(5, 10, 2, 14), "a reported SC was lost");
        assert!(!durable_counter_verdict(5, 10, 2, 18), "more survivors than threads");
    }

    #[test]
    fn a_huge_kill_point_is_a_crash_free_control() {
        let r = crash_run(2, 10, usize::MAX, 3);
        assert_eq!(r.outcome, CrashOutcome::Completed);
        assert_eq!(r.returned, 20);
        assert_eq!(r.recovered, 23);
        assert_eq!(r.resumed, 24);
    }

    #[test]
    fn killing_the_first_access_recovers_the_initial_value() {
        let r = crash_run(2, 10, 0, 7);
        assert_eq!(r.outcome, CrashOutcome::Crashed);
        assert_eq!(r.returned, 0);
        assert_eq!(r.recovered, 7, "nothing ran, nothing may have persisted");
    }

    #[test]
    fn mid_execution_kills_pass_the_verdict_everywhere() {
        // Every kill point of a small single-threaded execution: crashes
        // land on each individual instrumented access of LL and SC.
        for k in 0..60 {
            let r = crash_run(1, 4, k, 0);
            assert!(r.recovered <= 4, "cannot recover more than was attempted");
        }
    }

    #[test]
    fn the_seeded_sweep_is_deterministic_and_covers_both_outcomes() {
        let a = sweep(0xd15ea5e, 24, 3, 16);
        let b = sweep(0xd15ea5e, 24, 3, 16);
        assert_eq!(a.crashed, b.crashed);
        assert_eq!(a.min_recovered, b.min_recovered);
        assert_eq!(a.max_recovered, b.max_recovered);
        assert!(a.crashed > 0, "the sweep must exercise real crashes");
        assert!(a.completed > 0, "the sweep must include crash-free controls");
        assert_eq!(a.trials, a.crashed + a.completed);
    }

    #[test]
    fn churn_advances_the_counter_exactly() {
        fn run<W: MemWord>() {
            let d = DynamicDomain::new(4).unwrap();
            let var = DynamicVar::<W>::new(d.capacity(), 0).unwrap();
            let done = churn(&d, &var, 5, 7);
            assert_eq!(done, 35);
            let mut me = d.claim(d.join().unwrap()).unwrap();
            assert_eq!(var.read(&mut me), 35);
            assert_eq!(d.members(), 1, "churn retires every slot it joins");
        }
        run::<VWord>();
        run::<PWord>();
    }

    #[test]
    fn concurrent_churners_interleave_safely() {
        let d = DynamicDomain::new(6).unwrap();
        let var = DynamicVar::<VWord>::new(d.capacity(), 0).unwrap();
        std::thread::scope(|s| {
            for _ in 0..3 {
                let (d, var) = (&d, &var);
                s.spawn(move || churn(d, var, 8, 25));
            }
        });
        let mut me = d.claim(d.join().unwrap()).unwrap();
        assert_eq!(var.read(&mut me), 3 * 8 * 25);
    }
}
