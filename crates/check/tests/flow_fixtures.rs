//! Fixture corpus for the `nbsp_check::flow` keep-lifetime dataflow:
//! hand-written sources exercising every control-flow shape the CFG
//! builder claims to handle (match arms, `?`, early returns, nested
//! loops with break/continue, closures), plus the two planted canaries
//! with their replayable diagnostics.
//!
//! Each fixture asserts on the *raw* per-function verdicts from
//! [`nbsp_check::flow::analyze_source`] — annotation/allowlist
//! resolution is `analyze_repo`'s job and is covered by the E17 gates.

use nbsp_check::flow::{self, FileFlow};

fn one_fn(src: &str) -> flow::FnReport {
    let ff = flow::analyze_source("fixture.rs", src);
    assert_eq!(ff.functions.len(), 1, "fixture must contain exactly one fn");
    ff.functions.into_iter().next().unwrap()
}

fn analyze(src: &str) -> FileFlow {
    flow::analyze_source("fixture.rs", src)
}

// ---------------------------------------------------------------------------
// match arms
// ---------------------------------------------------------------------------

#[test]
fn match_with_consumer_in_every_arm_is_clean() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> u64 {\n\
             let mut keep = Keep::default();\n\
             let x = v.ll(ctx, &mut keep);\n\
             match x {\n\
                 0 => { v.cl(ctx, &mut keep); 0 }\n\
                 1 => { if v.sc(ctx, &mut keep, 9) { 1 } else { 2 } }\n\
                 _ => { v.cl(ctx, &mut keep); 3 }\n\
             }\n\
         }\n",
    );
    assert_eq!(f.births, 1);
    assert!(f.leaks.is_empty(), "leaks: {:?}", f.leaks);
}

#[test]
fn match_arm_missing_consumer_leaks_on_that_arm_only() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> u64 {\n\
             let mut keep = Keep::default();\n\
             let x = v.ll(ctx, &mut keep);\n\
             match x {\n\
                 0 => { v.cl(ctx, &mut keep); 0 }\n\
                 _ => 7,\n\
             }\n\
         }\n",
    );
    assert_eq!(f.leaks.len(), 1, "leaks: {:?}", f.leaks);
    let l = &f.leaks[0];
    assert_eq!(l.keep, "keep");
    assert_eq!(l.birth_line, 3);
    assert_eq!(l.exit_kind, "end");
    assert!(!l.path.is_empty(), "path trace must be replayable");
}

// ---------------------------------------------------------------------------
// `?` propagation
// ---------------------------------------------------------------------------

#[test]
fn question_mark_with_live_keep_is_an_exit_leak() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> Result<u64> {\n\
             let mut keep = Keep::default();\n\
             let x = v.ll(ctx, &mut keep);\n\
             let y = fallible(x)?;\n\
             v.cl(ctx, &mut keep);\n\
             Ok(y)\n\
         }\n",
    );
    assert_eq!(f.leaks.len(), 1, "leaks: {:?}", f.leaks);
    assert_eq!(f.leaks[0].exit_kind, "?");
    assert_eq!(f.leaks[0].exit_line, 4);
}

#[test]
fn question_mark_after_consumption_is_clean() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> Result<u64> {\n\
             let mut keep = Keep::default();\n\
             let x = v.ll(ctx, &mut keep);\n\
             v.cl(ctx, &mut keep);\n\
             let y = fallible(x)?;\n\
             Ok(y)\n\
         }\n",
    );
    assert!(f.leaks.is_empty(), "leaks: {:?}", f.leaks);
}

// ---------------------------------------------------------------------------
// early returns
// ---------------------------------------------------------------------------

#[test]
fn early_return_with_live_keep_is_caught_with_path() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> u64 {\n\
             let mut keep = Keep::default();\n\
             loop {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 if x == 0 {\n\
                     return 0;\n\
                 }\n\
                 if v.sc(ctx, &mut keep, x - 1) {\n\
                     return x;\n\
                 }\n\
             }\n\
         }\n",
    );
    assert_eq!(f.leaks.len(), 1, "leaks: {:?}", f.leaks);
    let l = &f.leaks[0];
    assert_eq!((l.birth_line, l.exit_line, l.exit_kind), (4, 6, "return"));
    assert!(l.path.len() >= 2, "path trace: {:?}", l.path);
}

#[test]
fn early_return_after_cl_is_clean() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> u64 {\n\
             let mut keep = Keep::default();\n\
             loop {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 if x == 0 {\n\
                     v.cl(ctx, &mut keep);\n\
                     return 0;\n\
                 }\n\
                 if v.sc(ctx, &mut keep, x - 1) {\n\
                     return x;\n\
                 }\n\
             }\n\
         }\n",
    );
    assert!(f.leaks.is_empty(), "leaks: {:?}", f.leaks);
}

// ---------------------------------------------------------------------------
// nested loops, break / continue
// ---------------------------------------------------------------------------

#[test]
fn inner_break_that_skips_the_consumer_leaks_at_the_outer_end() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let mut keep = Keep::default();\n\
             for _ in 0..4 {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 loop {\n\
                     if x == 0 {\n\
                         break;\n\
                     }\n\
                     if v.sc(ctx, &mut keep, 1) {\n\
                         break;\n\
                     }\n\
                 }\n\
             }\n\
         }\n",
    );
    // The inner `break` on x == 0 leaves the keep live when the outer
    // for-loop ends.
    assert!(
        f.leaks.iter().any(|l| l.birth_line == 4 && l.exit_kind == "end"),
        "leaks: {:?}",
        f.leaks
    );
}

#[test]
fn continue_back_to_a_rebirth_is_clean() {
    let f = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) -> u64 {\n\
             let mut keep = Keep::default();\n\
             'outer: loop {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 if x == 7 {\n\
                     v.cl(ctx, &mut keep);\n\
                     continue 'outer;\n\
                 }\n\
                 if v.sc(ctx, &mut keep, x + 1) {\n\
                     return x;\n\
                 }\n\
             }\n\
         }\n",
    );
    assert!(f.leaks.is_empty(), "leaks: {:?}", f.leaks);
}

// ---------------------------------------------------------------------------
// closures
// ---------------------------------------------------------------------------

#[test]
fn closure_body_is_analyzed_inline() {
    // A keep born and resolved inside a closure body stays balanced; one
    // born inside the closure but never consumed still counts as live at
    // the enclosing function's exit (the analysis is conservative:
    // closures are lowered inline, not skipped).
    let clean = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let g = |k: u64| {\n\
                 let mut keep = Keep::default();\n\
                 let _ = v.ll(ctx, &mut keep);\n\
                 v.cl(ctx, &mut keep);\n\
             };\n\
             g(1);\n\
         }\n",
    );
    assert!(clean.leaks.is_empty(), "leaks: {:?}", clean.leaks);
    let leaky = one_fn(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let g = |k: u64| {\n\
                 let mut keep = Keep::default();\n\
                 let _ = v.ll(ctx, &mut keep);\n\
             };\n\
             g(1);\n\
         }\n",
    );
    assert_eq!(leaky.leaks.len(), 1, "leaks: {:?}", leaky.leaks);
}

#[test]
fn nested_fn_items_are_separate_functions() {
    let ff = analyze(
        "fn outer(v: &V, ctx: &mut Ctx) {\n\
             fn inner(v: &V, ctx: &mut Ctx) {\n\
                 let mut keep = Keep::default();\n\
                 let _ = v.ll(ctx, &mut keep);\n\
             }\n\
             inner(v, ctx);\n\
         }\n",
    );
    assert_eq!(ff.functions.len(), 2);
    let outer = ff.functions.iter().find(|f| f.name == "outer").unwrap();
    let inner = ff.functions.iter().find(|f| f.name == "inner").unwrap();
    assert_eq!(outer.births, 0, "nested fn bodies must not bleed into the outer fn");
    assert_eq!(inner.leaks.len(), 1);
}

// ---------------------------------------------------------------------------
// bound counting
// ---------------------------------------------------------------------------

#[test]
fn simultaneous_keeps_raise_max_live() {
    let f = one_fn(
        "fn f(a: &V, b: &V, ctx: &mut Ctx) {\n\
             let mut k1 = Keep::default();\n\
             let mut k2 = Keep::default();\n\
             let _ = a.ll(ctx, &mut k1);\n\
             let _ = b.ll(ctx, &mut k2);\n\
             b.cl(ctx, &mut k2);\n\
             a.cl(ctx, &mut k1);\n\
         }\n",
    );
    assert_eq!(f.max_live, 2);
    assert!(f.leaks.is_empty(), "leaks: {:?}", f.leaks);
}

// ---------------------------------------------------------------------------
// R7 backoff discipline + annotations
// ---------------------------------------------------------------------------

#[test]
fn bare_retry_loop_is_an_r7_hit_and_backoff_clears_it() {
    let bare = analyze(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let mut keep = Keep::default();\n\
             loop {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 if v.sc(ctx, &mut keep, x + 1) {\n\
                     return;\n\
                 }\n\
             }\n\
         }\n",
    );
    assert_eq!(bare.backoff.len(), 1, "hits: {:?}", bare.backoff);
    assert_eq!(bare.backoff[0], ("f".to_string(), 3));
    let damped = analyze(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let mut keep = Keep::default();\n\
             let mut backoff = Backoff::new();\n\
             loop {\n\
                 let x = v.ll(ctx, &mut keep);\n\
                 if v.sc(ctx, &mut keep, x + 1) {\n\
                     return;\n\
                 }\n\
                 backoff.spin();\n\
             }\n\
         }\n",
    );
    assert!(damped.backoff.is_empty(), "hits: {:?}", damped.backoff);
}

#[test]
fn allow_annotations_parse_with_rule_and_reason() {
    let ff = analyze(
        "fn f(v: &V, ctx: &mut Ctx) {\n\
             let mut keep = Keep::default();\n\
             // nbsp-flow: allow(keep-leak) \u{2014} fixture reason\n\
             let _ = v.ll(ctx, &mut keep);\n\
         }\n",
    );
    assert_eq!(ff.annotations.len(), 1);
    assert_eq!(ff.annotations[0].rule, "keep-leak");
    assert_eq!(ff.annotations[0].reason, "fixture reason");
    assert_eq!(ff.annotations[0].line, 3);
}

// ---------------------------------------------------------------------------
// canaries: replayable diagnostics
// ---------------------------------------------------------------------------

#[test]
fn keep_leak_canary_diagnostic_has_file_line_and_path() {
    let (leak, _) = flow::check_canaries();
    assert!(leak.caught, "{}", leak.diagnostic);
    assert!(
        leak.diagnostic.contains("<planted-keep-leak>:5"),
        "diagnostic must carry file:line: {}",
        leak.diagnostic
    );
    assert!(
        leak.diagnostic.contains("path:"),
        "diagnostic must carry the block-line path trace: {}",
        leak.diagnostic
    );
}

#[test]
fn unpaired_release_canary_diagnostic_names_field_and_line() {
    let (_, rel) = flow::check_canaries();
    assert!(rel.caught, "{}", rel.diagnostic);
    assert!(
        rel.diagnostic.contains("<planted-unpaired-release>:2"),
        "diagnostic must carry file:line: {}",
        rel.diagnostic
    );
    assert!(
        rel.diagnostic.contains("ready"),
        "diagnostic must name the unpaired field: {}",
        rel.diagnostic
    );
}
