//! Static LL/SC protocol-obligation analyzer.
//!
//! The paper's primitives come with an unchecked *client* contract:
//! every LL must be resolved by exactly one SC/VL/CL on every path, at
//! most `k` sequences may be outstanding per process, and the
//! acquire/release pairs justified call-site-by-call-site in PR 1 must
//! actually pair up. This module checks all three statically, over the
//! CFGs built by [`crate::cfg`]:
//!
//! * **keep-leak** — a forward dataflow pass tracks every keep born from
//!   `ll`/`wll`/`llx` and reports any function exit (`return`, `?`, or
//!   fall-off-the-end) reached with a keep still live. Intentional
//!   abandons (pure-read LLs, owner-drain paths) carry an in-source
//!   `nbsp-flow: allow(keep-leak) — reason` annotation.
//! * **keep-bound** — the maximum number of simultaneously-live keeps
//!   per function, plus [`HELP_TRANSIENT`] for functions that drive the
//!   multi-word LLX/SCX family (whose commit path holds one extra
//!   helping sequence), must stay within
//!   [`nbsp_core::provider::PROVIDER_K`]; the repo-wide maximum must
//!   *equal* it, replacing the hand audit that moved it 4→5.
//! * **ordering** — every `Ordering::Release` store site needs a
//!   matching `Acquire`/`AcqRel` load site on the same field (same
//!   crate). Publication chains that hand off between two field names go
//!   through the [`ORDERING_PAIRS`] alias table, which is stale-audited
//!   like every lint allowlist.
//! * **backoff-discipline (R7)** — a retry loop that both opens and
//!   resolves an LL/SC sequence must go through `Backoff`; bare spin
//!   loops bypass the contention hardening E4 measures and need an
//!   [`R7_BACKOFF_ALLOW`] entry with a reason.
//!
//! Functions *named* like the protocol verbs (`ll`, `sc`, `llx`, …) are
//! its implementations — their keeps belong to their callers — so the
//! leak and bound verdicts skip them (R7 still applies). The analyzer is
//! intraprocedural; the known over/under-approximations are documented
//! in `DESIGN.md` §16.
//!
//! Non-vacuity is anchored by two planted canaries mirroring
//! [`crate::planted`]: [`PLANTED_KEEP_LEAK`] (the PR 6 StripedBucket
//! shed bug, re-staged) and [`PLANTED_UNPAIRED_RELEASE`], which
//! [`check_canaries`] must catch deterministically with file:line and
//! path diagnostics.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fs;
use std::path::Path;

use crate::cfg::{self, EventKind, Function, Group, Tt, PROTOCOL_FN_NAMES};
use crate::lint::Finding;

/// The crates whose `src/` trees the analyzer certifies.
pub const SCANNED_CRATES: &[&str] =
    &["core", "llx", "structures", "serve", "dynamic", "telemetry"];

/// Extra simultaneously-live sequences charged to any function that
/// drives the LLX/SCX family: the SCX commit path transiently holds one
/// helping LL–SC sequence of its own (the freeze loop), on top of the
/// caller's handles.
pub const HELP_TRANSIENT: usize = 1;

// ---------------------------------------------------------------------------
// Allowlists (stale-audited, reasons mandatory)
// ---------------------------------------------------------------------------

/// Sanctioned release→acquire field aliases, per crate: a `Release`
/// store on the first field is considered paired when the second field
/// has an `Acquire` load in the same crate. Used where a publication
/// chain hands off between two names for the same location (an index
/// published under one binding, read back under another).
pub const ORDERING_PAIRS: &[(&str, &str, &str, &str)] = &[
    (
        "llx",
        "slot",
        "meta",
        "a reserved table slot is published via its local binding; readers load the meta word for the same index",
    ),
    (
        "llx",
        "fld_new",
        "v_len",
        "staged field values are published per-field; readers acquire the version length before loading them",
    ),
];

/// R7 `backoff-discipline` allowlist: (file, function, reason) triples
/// for retry loops sanctioned to spin bare.
pub const R7_BACKOFF_ALLOW: &[(&str, &str, &str)] = &[
    (
        "crates/core/src/wide.rs",
        "compare_and_swap",
        "single-shot CAS emulation: the loop only retries on benign wll interference, and callers own the contention policy",
    ),
    (
        "crates/llx/src/lib.rs",
        "scx",
        "the owner freeze loop must observe interference immediately to keep help latency bounded; backoff here would stall helpers",
    ),
    (
        "crates/serve/src/fabric.rs",
        "redistribute",
        "rebalance runs on the supervisor thread only; there is no cross-process contention to damp",
    ),
    (
        "crates/serve/src/fabric.rs",
        "try_push",
        "one pushing thread per ring: the sole tail writer's SC only fails spuriously, so the loop is bounded by the provider's spurious-failure bound",
    ),
    (
        "crates/serve/src/fabric.rs",
        "publish",
        "the fixed-pool fabric has exactly one publisher; the loop exists only for providers with spurious SC failures",
    ),
    (
        "crates/llx/src/lib.rs",
        "force_store",
        "single-threaded construction: the records are unpublished, so the SC cannot lose a race",
    ),
    (
        "crates/llx/src/lib.rs",
        "help",
        "helping protocol: backing off here would stall the very SCX the caller must complete; every loop is value-guarded and exits as soon as a peer lands the word",
    ),
    (
        "crates/llx/src/lib.rs",
        "settle",
        "first-settler-wins on a value-guarded state word; a failed SC means a peer settled it, which the reload observes immediately",
    ),
    (
        "crates/dynamic/src/lib.rs",
        "increment_once",
        "crash-trial harness helper: trials want maximum interleaving pressure, which backoff would dilute",
    ),
    (
        "crates/structures/src/arena.rs",
        "new",
        "single-threaded construction: the free list is unpublished until the constructor returns",
    ),
    (
        "crates/structures/src/stack.rs",
        "new",
        "single-threaded construction: the head reset runs before the stack is shared",
    ),
    (
        "crates/structures/src/queue.rs",
        "force_store",
        "initialisation and free-list link writes on nodes no concurrent operation can reach",
    ),
    (
        "crates/structures/src/set.rs",
        "force_store",
        "initialisation store before the set is shared",
    ),
];

// Needle split so this scanner never matches its own source.
const ANNOT_NEEDLE: &str = concat!("nbsp-flow", ": allow(");

// ---------------------------------------------------------------------------
// Reports
// ---------------------------------------------------------------------------

/// A keep that is still live on some path reaching a function exit.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Leak {
    /// The keep identity (operand chain, `@recv`, or
    /// [`crate::cfg::UNBOUND_LLX`]).
    pub keep: String,
    /// Line of the birth (`ll`/`wll`/`llx` call).
    pub birth_line: u32,
    /// Line of the exit the keep is live at.
    pub exit_line: u32,
    /// `"return"`, `"?"` or `"end"`.
    pub exit_kind: &'static str,
    /// Block-line trace from the birth to the exit (replayable path).
    pub path: Vec<u32>,
    /// `Some(reason)` if an `nbsp-flow: allow(keep-leak)` annotation
    /// covers this leak.
    pub allowed: Option<String>,
}

/// Per-function verdict of the keep dataflow.
#[derive(Clone, Debug)]
pub struct FnReport {
    /// Repository-relative file with `/` separators.
    pub file: String,
    /// Function name.
    pub name: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Number of birth events in the body.
    pub births: usize,
    /// Max simultaneously-live keeps on any path.
    pub max_live: usize,
    /// `max_live` plus [`HELP_TRANSIENT`] if the function drives the
    /// LLX/SCX family; 0 for protocol implementations.
    pub certified: usize,
    /// True if the body calls `llx`/`scx`/`vlx`/`unlink`.
    pub uses_llx_family: bool,
    /// True if the function *is* a protocol verb (leak/bound verdicts
    /// skipped; obligations belong to its callers).
    pub protocol_impl: bool,
    /// Keeps live at an exit (annotated ones carry their reason).
    pub leaks: Vec<Leak>,
    /// Keeps born into caller-owned parameters (delegation, not leaks).
    pub escapes: Vec<String>,
}

/// A release/acquire pairing entry for one field in one crate.
#[derive(Clone, Debug)]
pub struct OrderingEntry {
    /// Crate short name (`core`, `llx`, …).
    pub crate_name: String,
    /// The field identifier the sites operate on.
    pub field: String,
    /// `(file, line)` of every Release-side site.
    pub releases: Vec<(String, u32)>,
    /// `(file, line)` of every Acquire-side site.
    pub acquires: Vec<(String, u32)>,
    /// The acquire-side field if pairing goes through [`ORDERING_PAIRS`].
    pub alias: Option<String>,
    /// True if every release site has an acquire counterpart (directly,
    /// via alias, or trivially because there are no release sites).
    pub paired: bool,
}

/// The aggregate analysis of the scanned crates.
#[derive(Clone, Debug)]
pub struct RepoFlow {
    /// Per-function verdicts, sorted by (file, line); only functions
    /// that touch the protocol at all are retained.
    pub functions: Vec<FnReport>,
    /// The release/acquire table, sorted by (crate, field).
    pub ordering: Vec<OrderingEntry>,
    /// Unallowlisted violations, sorted by (path, line, rule).
    pub violations: Vec<Finding>,
    /// Findings suppressed by annotations/allowlists (reason included).
    pub allowed: Vec<Finding>,
    /// Repo-wide certified keep bound (max over functions).
    pub certified_bound: usize,
    /// The constant the bound is certified against.
    pub provider_k: usize,
}

/// Analysis of a single source text (used by the canaries and fixtures).
#[derive(Clone, Debug)]
pub struct FileFlow {
    /// Per-function verdicts (all functions, protocol impls included).
    pub functions: Vec<FnReport>,
    /// Raw ordering sites found in the text.
    pub ordering_sites: Vec<OrdSite>,
    /// R7 bare-retry-loop hits: (function name, loop line).
    pub backoff: Vec<(String, u32)>,
    /// Parsed `nbsp-flow: allow(…)` annotations.
    pub annotations: Vec<Annotation>,
}

/// One atomic access site participating in the ordering table.
#[derive(Clone, Debug)]
pub struct OrdSite {
    /// The field identifier operated on.
    pub field: String,
    /// 1-based line.
    pub line: u32,
    /// True if this site publishes (Release or AcqRel write side).
    pub rel: bool,
    /// True if this site observes (Acquire or AcqRel read side).
    pub acq: bool,
}

/// An in-source `nbsp-flow: allow(rule) — reason` marker. It covers
/// findings on its own line and on the line directly below (so it works
/// both as a trailing comment and as a comment line above the site).
#[derive(Clone, Debug)]
pub struct Annotation {
    /// 1-based line of the marker.
    pub line: u32,
    /// The rule it suppresses (`keep-leak`, `ordering`, …).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
}

// ---------------------------------------------------------------------------
// Keep-lifetime dataflow
// ---------------------------------------------------------------------------

struct FnAnalysis {
    leaks: Vec<Leak>,
    max_live: usize,
    births: usize,
    escapes: Vec<String>,
}

fn keep_base(keep: &str) -> &str {
    let end = keep
        .find(['.', '['])
        .unwrap_or(keep.len());
    &keep[..end]
}

fn analyze_fn(f: &Function) -> FnAnalysis {
    let blocks = &f.cfg.blocks;
    let mut births = 0usize;
    let mut birth_block: BTreeMap<(String, u32), usize> = BTreeMap::new();
    for (bi, b) in blocks.iter().enumerate() {
        for e in &b.events {
            if e.kind == EventKind::Birth {
                births += 1;
                birth_block.entry((e.keep.clone(), e.line)).or_insert(bi);
            }
        }
    }
    let mut in_states: Vec<Option<BTreeMap<String, u32>>> = vec![None; blocks.len()];
    in_states[0] = Some(BTreeMap::new());
    let mut work: VecDeque<usize> = VecDeque::from([0]);
    let mut max_live = 0usize;
    let mut escapes: BTreeSet<String> = BTreeSet::new();
    let mut raw_leaks: BTreeSet<(String, u32, u32, &'static str)> = BTreeSet::new();
    let mut guard = 0usize;
    while let Some(bi) = work.pop_front() {
        guard += 1;
        if guard > 64 * blocks.len().max(1) * blocks.len().max(1) {
            break; // defensive: malformed CFG
        }
        let Some(mut state) = in_states[bi].clone() else { continue };
        for e in &blocks[bi].events {
            match e.kind {
                EventKind::Birth => {
                    let base = keep_base(e.keep.trim_start_matches('@'));
                    if f.params.iter().any(|p| p == base) {
                        escapes.insert(e.keep.clone());
                    } else {
                        state.insert(e.keep.clone(), e.line);
                        max_live = max_live.max(state.len());
                    }
                }
                EventKind::Consume => {
                    state.remove(&e.keep);
                }
            }
        }
        if let Some((exit_line, exit_kind)) = blocks[bi].exit {
            for (keep, birth_line) in &state {
                raw_leaks.insert((keep.clone(), *birth_line, exit_line, exit_kind));
            }
        }
        for &succ in &blocks[bi].succs {
            let changed = match &mut in_states[succ] {
                None => {
                    in_states[succ] = Some(state.clone());
                    true
                }
                Some(dst) => {
                    let mut ch = false;
                    for (k, v) in &state {
                        match dst.get(k) {
                            None => {
                                dst.insert(k.clone(), *v);
                                ch = true;
                            }
                            Some(old) if v < old => {
                                dst.insert(k.clone(), *v);
                                ch = true;
                            }
                            Some(_) => {}
                        }
                    }
                    ch
                }
            };
            if changed {
                work.push_back(succ);
            }
        }
    }
    let leaks = raw_leaks
        .into_iter()
        .map(|(keep, birth_line, exit_line, exit_kind)| {
            let path = trace_path(f, &birth_block, &keep, birth_line, exit_line);
            Leak { keep, birth_line, exit_line, exit_kind, path, allowed: None }
        })
        .collect();
    FnAnalysis { leaks, max_live, births, escapes: escapes.into_iter().collect() }
}

/// Shortest block-line trace from a keep's birth block to the exiting
/// block (BFS over successor edges; deterministic by construction).
fn trace_path(
    f: &Function,
    birth_block: &BTreeMap<(String, u32), usize>,
    keep: &str,
    birth_line: u32,
    exit_line: u32,
) -> Vec<u32> {
    let blocks = &f.cfg.blocks;
    let Some(&start) = birth_block.get(&(keep.to_string(), birth_line)) else {
        return vec![birth_line, exit_line];
    };
    let target = blocks
        .iter()
        .position(|b| b.exit.is_some_and(|(l, _)| l == exit_line));
    let Some(target) = target else {
        return vec![birth_line, exit_line];
    };
    let mut prev: Vec<Option<usize>> = vec![None; blocks.len()];
    let mut seen = vec![false; blocks.len()];
    let mut q = VecDeque::from([start]);
    seen[start] = true;
    while let Some(b) = q.pop_front() {
        if b == target {
            break;
        }
        for &s in &blocks[b].succs {
            if !seen[s] {
                seen[s] = true;
                prev[s] = Some(b);
                q.push_back(s);
            }
        }
    }
    if !seen[target] {
        return vec![birth_line, exit_line];
    }
    let mut rev = vec![target];
    while let Some(p) = prev[*rev.last().expect("non-empty")] {
        rev.push(p);
    }
    rev.reverse();
    let mut path: Vec<u32> = Vec::new();
    for bi in rev {
        let l = blocks[bi].line;
        if l != 0 && path.last() != Some(&l) {
            path.push(l);
        }
    }
    if path.first() != Some(&birth_line) {
        path.insert(0, birth_line);
    }
    if path.last() != Some(&exit_line) {
        path.push(exit_line);
    }
    path
}

// ---------------------------------------------------------------------------
// Ordering-site scan
// ---------------------------------------------------------------------------

const STD_RMW: &[&str] = &[
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
];

fn orderings_in(items: &[Tt], out: &mut Vec<String>) {
    let mut i = 0usize;
    while i < items.len() {
        match &items[i] {
            Tt::Tok(t) if t.is_ident("Ordering") => {
                if items.get(i + 1).is_some_and(|n| n.is_punct2("::")) {
                    if let Some(Tt::Tok(x)) = items.get(i + 2) {
                        out.push(x.text.clone());
                    }
                }
                i += 1;
            }
            Tt::Group(g) => {
                orderings_in(&g.items, out);
                i += 1;
            }
            _ => i += 1,
        }
    }
}

trait TtExt {
    fn is_punct2(&self, s: &str) -> bool;
    fn is_ident2(&self, s: &str) -> bool;
    fn ident2(&self) -> Option<&str>;
    fn group2(&self, open: char) -> Option<&Group>;
}

impl TtExt for Tt {
    fn is_punct2(&self, s: &str) -> bool {
        matches!(self, Tt::Tok(t) if t.is_punct(s))
    }
    fn is_ident2(&self, s: &str) -> bool {
        matches!(self, Tt::Tok(t) if t.is_ident(s))
    }
    fn ident2(&self) -> Option<&str> {
        match self {
            Tt::Tok(t) if t.kind == crate::lex::TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }
    fn group2(&self, open: char) -> Option<&Group> {
        match self {
            Tt::Group(g) if g.open == open => Some(g),
            _ => None,
        }
    }
}

fn scan_ordering(items: &[Tt], out: &mut Vec<OrdSite>) {
    let mut i = 0usize;
    while i < items.len() {
        if let (Some(m), Some(g)) =
            (items[i].ident2(), items.get(i + 1).and_then(|n| n.group2('(')))
        {
            let line = match &items[i] {
                Tt::Tok(t) => t.line,
                Tt::Group(gr) => gr.line,
            };
            let prev_dot = i > 0 && items[i - 1].is_punct2(".");
            // Std atomics: `<recv>.store(v, Ordering::Release)` etc.
            if prev_dot && (m == "store" || m == "load" || STD_RMW.contains(&m)) {
                let mut ords = Vec::new();
                orderings_in(&g.items, &mut ords);
                let has = |o: &str| ords.iter().any(|x| x == o);
                let rmw = m != "store" && m != "load";
                let rel = (m == "store" && has("Release"))
                    || (rmw && (has("Release") || has("AcqRel")));
                let acq = (m == "load" && has("Acquire"))
                    || (rmw && (has("Acquire") || has("AcqRel")));
                if rel || acq {
                    if let Some(field) = std_receiver_field(items, i) {
                        out.push(OrdSite { field, line, rel, acq });
                    }
                }
            }
            // Weak-memory helpers: the cell is the first argument.
            let weak = match m {
                "load_acquire" => Some((false, true)),
                "store_release" => Some((true, false)),
                "cas_acqrel" => Some((true, true)),
                _ => None,
            };
            if let Some((rel, acq)) = weak {
                if let Some(field) = arg0_field(&g.items) {
                    out.push(OrdSite { field, line, rel, acq });
                }
            }
            scan_ordering(&g.items, out);
            i += 2;
            continue;
        }
        if let Tt::Group(g) = &items[i] {
            scan_ordering(&g.items, out);
        }
        i += 1;
    }
}

/// The field ident of a std-atomic receiver chain: last identifier when
/// walking back over `ident`/`.`/`[…]` from the `.` before the method.
fn std_receiver_field(items: &[Tt], method_idx: usize) -> Option<String> {
    let mut j = method_idx.checked_sub(2)?; // before the `.`
    loop {
        match &items[j] {
            Tt::Group(g) if g.open == '[' => {
                j = j.checked_sub(1)?;
            }
            Tt::Tok(t) if t.kind == crate::lex::TokKind::Ident => {
                return Some(t.text.clone());
            }
            Tt::Group(_) => return None, // `(expr).store(…)` — no field
            _ => return None,
        }
    }
}

/// The field ident of a weak-helper call: the last top-level identifier
/// of the first argument (`&self.hdr` → `hdr`, `&d.announce[i]` →
/// `announce`).
fn arg0_field(args: &[Tt]) -> Option<String> {
    let mut last = None;
    for it in args {
        if it.is_punct2(",") {
            break;
        }
        if let Some(id) = it.ident2() {
            if id != "self" && id != "mut" {
                last = Some(id.to_string());
            }
        }
    }
    last
}

// ---------------------------------------------------------------------------
// R7: backoff discipline
// ---------------------------------------------------------------------------

fn contains_call(items: &[Tt], names: &[&str]) -> bool {
    let mut i = 0usize;
    while i < items.len() {
        if let Some(m) = items[i].ident2() {
            if names.contains(&m)
                && items.get(i + 1).and_then(|n| n.group2('(')).is_some()
                && i > 0
                && (items[i - 1].is_punct2(".") || items[i - 1].is_punct2("::"))
            {
                return true;
            }
        }
        if let Tt::Group(g) = &items[i] {
            if contains_call(&g.items, names) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn contains_backoff(items: &[Tt]) -> bool {
    items.iter().any(|it| match it {
        Tt::Tok(t) => {
            t.kind == crate::lex::TokKind::Ident
                && (t.text.to_ascii_lowercase().contains("backoff")
                    || t.text == "spin"
                    || t.text == "spin_loop"
                    || t.text == "yield_now")
        }
        Tt::Group(g) => contains_backoff(&g.items),
    })
}

/// Scans one function body for bare retry loops; flags the innermost
/// offending loop only. Nested `fn` items are skipped (they are scanned
/// as their own functions).
fn r7_scan(items: &[Tt], out: &mut Vec<u32>) -> bool {
    let mut flagged_below = false;
    let mut i = 0usize;
    while i < items.len() {
        if items[i].is_ident2("fn") {
            i += 1;
            while i < items.len() {
                if items[i].is_punct2(";") || items[i].group2('{').is_some() {
                    i += 1;
                    break;
                }
                i += 1;
            }
            continue;
        }
        let is_loop = items[i].is_ident2("loop") || items[i].is_ident2("while");
        if is_loop {
            // Construct = condition tokens (for `while`) plus the body.
            let mut j = i + 1;
            let mut construct: Vec<Tt> = Vec::new();
            while j < items.len() && items[j].group2('{').is_none() {
                construct.push(items[j].clone());
                j += 1;
            }
            if let Some(body) = items.get(j).and_then(|n| n.group2('{')) {
                let line = match &items[i] {
                    Tt::Tok(t) => t.line,
                    Tt::Group(g) => g.line,
                };
                construct.extend(body.items.iter().cloned());
                let inner_flagged = r7_scan(&body.items, out);
                let births = contains_call(&construct, &["ll", "wll", "llx"]);
                let commits = contains_call(&construct, &["sc", "scx"]);
                if births && commits && !contains_backoff(&construct) && !inner_flagged {
                    out.push(line);
                    flagged_below = true;
                }
                if inner_flagged {
                    flagged_below = true;
                }
                i = j + 1;
                continue;
            }
            i = j;
            continue;
        }
        if let Tt::Group(g) = &items[i] {
            if r7_scan(&g.items, out) {
                flagged_below = true;
            }
        }
        i += 1;
    }
    flagged_below
}

// ---------------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------------

fn parse_annotations(content: &str) -> Vec<Annotation> {
    let mut out = Vec::new();
    for (idx, l) in content.lines().enumerate() {
        let Some(p) = l.find(ANNOT_NEEDLE) else { continue };
        let rest = &l[p + ANNOT_NEEDLE.len()..];
        let Some(close) = rest.find(')') else { continue };
        let rule = rest[..close].trim().to_string();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '\u{2014}', '-', ':'])
            .trim()
            .to_string();
        out.push(Annotation {
            line: u32::try_from(idx + 1).unwrap_or(u32::MAX),
            rule,
            reason,
        });
    }
    out
}

fn annotation_for<'a>(
    anns: &'a [Annotation],
    rule: &str,
    lines: &[u32],
) -> Option<(usize, &'a Annotation)> {
    anns.iter().enumerate().find(|(_, a)| {
        a.rule == rule && lines.iter().any(|l| a.line == *l || a.line + 1 == *l)
    })
}

// ---------------------------------------------------------------------------
// Per-file and repo analysis
// ---------------------------------------------------------------------------

/// Strips `#[cfg(test)] mod … { … }` items so token-level passes see the
/// same code the CFG pass analyzes.
fn strip_test_mods(items: &[Tt]) -> Vec<Tt> {
    let mut out = Vec::new();
    let mut i = 0usize;
    let mut pending_test = false;
    while i < items.len() {
        if items[i].is_punct2("#") {
            if let Some(g) = items.get(i + 1).and_then(|n| n.group2('[')) {
                fn has_test(items: &[Tt]) -> bool {
                    items.iter().any(|t| match t {
                        Tt::Tok(t) => t.is_ident("test"),
                        Tt::Group(g) => has_test(&g.items),
                    })
                }
                if g.items.iter().any(|t| t.is_ident2("cfg")) && has_test(&g.items) {
                    pending_test = true;
                    i += 2;
                    continue;
                }
                out.push(items[i].clone());
                out.push(items[i + 1].clone());
                i += 2;
                continue;
            }
        }
        if pending_test && items[i].is_ident2("mod") {
            while i < items.len()
                && items[i].group2('{').is_none()
                && !items[i].is_punct2(";")
            {
                i += 1;
            }
            i += 1;
            pending_test = false;
            continue;
        }
        pending_test = false;
        match &items[i] {
            Tt::Group(g) => out.push(Tt::Group(Group {
                open: g.open,
                line: g.line,
                items: strip_test_mods(&g.items),
            })),
            t => out.push(t.clone()),
        }
        i += 1;
    }
    out
}

/// Runs every pass over one source text. `file` is only used to label
/// the reports.
#[must_use]
pub fn analyze_source(file: &str, content: &str) -> FileFlow {
    let fns = cfg::parse_functions(content);
    let mut functions = Vec::new();
    let mut backoff = Vec::new();
    for f in &fns {
        let protocol_impl = PROTOCOL_FN_NAMES.contains(&f.name.as_str());
        let a = analyze_fn(f);
        let certified = if protocol_impl {
            0
        } else {
            a.max_live + if f.uses_llx_family { HELP_TRANSIENT } else { 0 }
        };
        functions.push(FnReport {
            file: file.to_string(),
            name: f.name.clone(),
            line: f.line,
            births: a.births,
            max_live: a.max_live,
            certified,
            uses_llx_family: f.uses_llx_family,
            protocol_impl,
            leaks: if protocol_impl { Vec::new() } else { a.leaks },
            escapes: a.escapes,
        });
        let mut lines = Vec::new();
        r7_scan(&f.body.items, &mut lines);
        lines.sort_unstable();
        lines.dedup();
        for l in lines {
            backoff.push((f.name.clone(), l));
        }
    }
    functions.sort_by_key(|a| (a.line, a.name.clone()));
    let tree = strip_test_mods(&cfg::build_tree(&crate::lex::lex(content)));
    let mut ordering_sites = Vec::new();
    scan_ordering(&tree, &mut ordering_sites);
    FileFlow {
        functions,
        ordering_sites,
        backoff,
        annotations: parse_annotations(content),
    }
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) {
    let Ok(rd) = fs::read_dir(dir) else { return };
    let mut entries: Vec<_> = rd.flatten().map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}

/// Analyzes the six client crates under `root` and resolves every
/// finding against annotations and allowlists.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn analyze_repo(root: &Path) -> RepoFlow {
    let mut functions: Vec<FnReport> = Vec::new();
    let mut violations: Vec<Finding> = Vec::new();
    let mut allowed: Vec<Finding> = Vec::new();
    // (crate, field) → (releases, acquires), each a list of (file, line).
    type Sites = (Vec<(String, u32)>, Vec<(String, u32)>);
    let mut table: BTreeMap<(String, String), Sites> = BTreeMap::new();
    // Release-site annotations, keyed by crate → (file, anns index list).
    let mut file_anns: BTreeMap<String, Vec<Annotation>> = BTreeMap::new();
    let mut ann_used: BTreeMap<(String, u32), bool> = BTreeMap::new();
    let mut r7_hits: Vec<(String, String, u32)> = Vec::new();

    for krate in SCANNED_CRATES {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        collect_rs(&src, &mut files);
        for path in files {
            let Ok(content) = fs::read_to_string(&path) else { continue };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            let ff = analyze_source(&rel, &content);
            for a in &ff.annotations {
                ann_used.insert((rel.clone(), a.line), false);
            }
            file_anns.insert(rel.clone(), ff.annotations.clone());
            for site in &ff.ordering_sites {
                let entry = table
                    .entry(((*krate).to_string(), site.field.clone()))
                    .or_default();
                if site.rel {
                    entry.0.push((rel.clone(), site.line));
                }
                if site.acq {
                    entry.1.push((rel.clone(), site.line));
                }
            }
            for (fn_name, line) in &ff.backoff {
                r7_hits.push((rel.clone(), fn_name.clone(), *line));
            }
            functions.extend(ff.functions);
        }
    }
    functions.sort_by_key(|a| (a.file.clone(), a.line));

    // --- keep-leak and keep-bound resolution -----------------------------
    let provider_k = nbsp_core::provider::PROVIDER_K;
    let mut certified_bound = 0usize;
    for f in &mut functions {
        if !f.protocol_impl {
            certified_bound = certified_bound.max(f.certified);
        }
        let anns = file_anns.get(&f.file).cloned().unwrap_or_default();
        for leak in &mut f.leaks {
            let hit =
                annotation_for(&anns, "keep-leak", &[leak.birth_line, leak.exit_line]);
            let path_s = leak
                .path
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(" -> ");
            let msg = format!(
                "fn `{}`: keep `{}` born at line {} is still live at the `{}` exit on line {} (path: {})",
                f.name, leak.keep, leak.birth_line, leak.exit_kind, leak.exit_line, path_s
            );
            if let Some((_, a)) = hit {
                ann_used.insert((f.file.clone(), a.line), true);
                leak.allowed = Some(a.reason.clone());
                allowed.push(Finding {
                    rule: "keep-leak",
                    path: f.file.clone(),
                    line: leak.birth_line as usize,
                    message: format!("{msg} [allowed: {}]", a.reason),
                });
            } else {
                violations.push(Finding {
                    rule: "keep-leak",
                    path: f.file.clone(),
                    line: leak.birth_line as usize,
                    message: msg,
                });
            }
        }
        if f.certified > provider_k {
            violations.push(Finding {
                rule: "keep-bound",
                path: f.file.clone(),
                line: f.line as usize,
                message: format!(
                    "fn `{}` certifies {} simultaneously-live keeps (max_live {} + {} llx help transient), exceeding PROVIDER_K = {}",
                    f.name,
                    f.certified,
                    f.max_live,
                    if f.uses_llx_family { HELP_TRANSIENT } else { 0 },
                    provider_k
                ),
            });
        }
    }
    // Only functions that touch the protocol are worth reporting.
    functions.retain(|f| {
        f.births > 0 || f.max_live > 0 || f.uses_llx_family || !f.escapes.is_empty()
    });

    // --- ordering resolution ---------------------------------------------
    let mut alias_used = vec![false; ORDERING_PAIRS.len()];
    let mut ordering = Vec::new();
    for ((krate, field), (releases, acquires)) in &table {
        let mut alias = None;
        let mut paired = releases.is_empty() || !acquires.is_empty();
        if !paired {
            if let Some(idx) = ORDERING_PAIRS
                .iter()
                .position(|(c, r, _, _)| c == krate && r == field)
            {
                let partner = ORDERING_PAIRS[idx].2;
                let partner_has_acq = table
                    .get(&(krate.clone(), partner.to_string()))
                    .is_some_and(|(_, a)| !a.is_empty());
                if partner_has_acq {
                    alias_used[idx] = true;
                    alias = Some(partner.to_string());
                    paired = true;
                    allowed.push(Finding {
                        rule: "ordering",
                        path: releases[0].0.clone(),
                        line: releases[0].1 as usize,
                        message: format!(
                            "Release on `{field}` pairs with Acquire on `{partner}` via ORDERING_PAIRS [{}]",
                            ORDERING_PAIRS[idx].3
                        ),
                    });
                }
            }
        }
        if !paired {
            // A release-site annotation can sanction an intentionally
            // unpaired publication.
            let mut sanctioned = false;
            for (file, line) in releases {
                let anns = file_anns.get(file).cloned().unwrap_or_default();
                if let Some((_, a)) = annotation_for(&anns, "ordering", &[*line]) {
                    ann_used.insert((file.clone(), a.line), true);
                    sanctioned = true;
                    allowed.push(Finding {
                        rule: "ordering",
                        path: file.clone(),
                        line: *line as usize,
                        message: format!(
                            "unpaired Release on `{field}` allowed: {}",
                            a.reason
                        ),
                    });
                }
            }
            if sanctioned {
                paired = true;
            }
        }
        if !paired {
            for (file, line) in releases {
                violations.push(Finding {
                    rule: "ordering",
                    path: file.clone(),
                    line: *line as usize,
                    message: format!(
                        "Ordering::Release on field `{field}` (crate `{krate}`) has no matching Acquire/AcqRel load site on the same field"
                    ),
                });
            }
        }
        ordering.push(OrderingEntry {
            crate_name: krate.clone(),
            field: field.clone(),
            releases: releases.clone(),
            acquires: acquires.clone(),
            alias,
            paired,
        });
    }
    for (idx, (krate, rel_field, partner, _)) in ORDERING_PAIRS.iter().enumerate() {
        if !alias_used[idx] {
            violations.push(Finding {
                rule: "stale-flow-allow",
                path: format!("crates/{krate}/src"),
                line: 0,
                message: format!(
                    "ORDERING_PAIRS entry `{rel_field}` -> `{partner}` (crate `{krate}`) no longer suppresses anything; remove it"
                ),
            });
        }
    }

    // --- R7 backoff discipline -------------------------------------------
    let mut r7_allow_used = vec![false; R7_BACKOFF_ALLOW.len()];
    r7_hits.sort();
    for (file, fn_name, line) in &r7_hits {
        if let Some(idx) = R7_BACKOFF_ALLOW
            .iter()
            .position(|(f, n, _)| f == file && n == fn_name)
        {
            r7_allow_used[idx] = true;
            allowed.push(Finding {
                rule: "backoff-discipline",
                path: file.clone(),
                line: *line as usize,
                message: format!(
                    "bare retry loop in fn `{fn_name}` allowed: {}",
                    R7_BACKOFF_ALLOW[idx].2
                ),
            });
        } else {
            violations.push(Finding {
                rule: "backoff-discipline",
                path: file.clone(),
                line: *line as usize,
                message: format!(
                    "fn `{fn_name}`: retry loop opens and resolves an LL/SC sequence without Backoff; add a Backoff or an R7_BACKOFF_ALLOW entry with a reason"
                ),
            });
        }
    }
    for (idx, (file, fn_name, _)) in R7_BACKOFF_ALLOW.iter().enumerate() {
        if !r7_allow_used[idx] {
            violations.push(Finding {
                rule: "stale-flow-allow",
                path: (*file).to_string(),
                line: 0,
                message: format!(
                    "R7_BACKOFF_ALLOW entry for fn `{fn_name}` no longer matches a bare retry loop; remove it"
                ),
            });
        }
    }

    // --- stale annotations ------------------------------------------------
    for ((file, line), used) in &ann_used {
        if !used {
            violations.push(Finding {
                rule: "stale-flow-allow",
                path: file.clone(),
                line: *line as usize,
                message: "nbsp-flow allow annotation no longer suppresses anything; remove it"
                    .to_string(),
            });
        }
    }

    violations.sort_by(|a, b| {
        (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule))
    });
    allowed.sort_by(|a, b| {
        (a.path.clone(), a.line, a.rule).cmp(&(b.path.clone(), b.line, b.rule))
    });
    RepoFlow {
        functions,
        ordering,
        violations,
        allowed,
        certified_bound,
        provider_k,
    }
}

/// Flow-analyzer findings surfaced through [`crate::lint::run_lints`]:
/// every unallowlisted violation, so `exp_lint` and the repo-clean test
/// hard-fail alongside R1–R6.
#[must_use]
pub fn lint_extras(root: &Path) -> Vec<Finding> {
    analyze_repo(root).violations
}

// ---------------------------------------------------------------------------
// Planted canaries
// ---------------------------------------------------------------------------

/// Canary 1 — the PR 6 StripedBucket shed bug, re-staged: the zero-token
/// early return leaves the LL sequence open, eventually exhausting the
/// provider's announce slots.
pub const PLANTED_KEEP_LEAK: &str = "\
pub fn shed_leaks_on_early_return(&self, ctx: &mut C) -> u64 {
    let mut keep = K::default();
    let mut backoff = Backoff::new();
    loop {
        let tokens = self.local.ll(ctx, &mut keep);
        if tokens == 0 {
            return 0;
        }
        if self.local.sc(ctx, &mut keep, tokens - 1) {
            return tokens;
        }
        backoff.spin();
    }
}
";

/// Canary 2 — a publication flag stored with Release but only ever
/// loaded Relaxed: the handoff the Release is supposed to order is
/// unobservable.
pub const PLANTED_UNPAIRED_RELEASE: &str = "\
pub fn publish(&self) {
    self.ready.store(1, Ordering::Release);
}
pub fn poll(&self) -> bool {
    self.ready.load(Ordering::Relaxed) == 1
}
";

/// The verdict for one canary.
#[derive(Clone, Debug)]
pub struct CanaryVerdict {
    /// True if the analyzer produced the expected finding.
    pub caught: bool,
    /// The replayable diagnostic (file:line plus path trace).
    pub diagnostic: String,
}

/// Runs both planted canaries through the analyzer. Both must be
/// caught, deterministically, for the obligation report to be
/// considered non-vacuous.
#[must_use]
pub fn check_canaries() -> (CanaryVerdict, CanaryVerdict) {
    let leak_file = "<planted-keep-leak>";
    let ff = analyze_source(leak_file, PLANTED_KEEP_LEAK);
    let leak = ff
        .functions
        .iter()
        .find(|f| f.name == "shed_leaks_on_early_return")
        .and_then(|f| {
            f.leaks
                .iter()
                .find(|l| l.keep == "keep" && l.exit_kind == "return")
        });
    let leak_verdict = match leak {
        Some(l) => CanaryVerdict {
            caught: true,
            diagnostic: format!(
                "{leak_file}:{} keep `keep` leaks at the `return` exit on line {} (path: {})",
                l.birth_line,
                l.exit_line,
                l.path
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" -> ")
            ),
        },
        None => CanaryVerdict {
            caught: false,
            diagnostic: format!("{leak_file}: expected keep leak NOT detected"),
        },
    };
    let rel_file = "<planted-unpaired-release>";
    let fr = analyze_source(rel_file, PLANTED_UNPAIRED_RELEASE);
    let mut rel_sites = Vec::new();
    let mut acq_fields = BTreeSet::new();
    for s in &fr.ordering_sites {
        if s.rel {
            rel_sites.push((s.field.clone(), s.line));
        }
        if s.acq {
            acq_fields.insert(s.field.clone());
        }
    }
    let unpaired: Vec<_> = rel_sites
        .iter()
        .filter(|(f, _)| !acq_fields.contains(f))
        .collect();
    let rel_verdict = if let Some((field, line)) = unpaired.first() {
        CanaryVerdict {
            caught: true,
            diagnostic: format!(
                "{rel_file}:{line} Ordering::Release store on `{field}` has no matching Acquire load site"
            ),
        }
    } else {
        CanaryVerdict {
            caught: false,
            diagnostic: format!("{rel_file}: expected unpaired Release NOT detected"),
        }
    };
    (leak_verdict, rel_verdict)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canaries_are_caught() {
        let (leak, rel) = check_canaries();
        assert!(leak.caught, "{}", leak.diagnostic);
        assert!(rel.caught, "{}", rel.diagnostic);
        // Replayable diagnostics: file:line plus a path trace.
        assert!(leak.diagnostic.contains("<planted-keep-leak>:"));
        assert!(leak.diagnostic.contains("path:"));
        assert!(rel.diagnostic.contains("<planted-unpaired-release>:"));
    }

    #[test]
    fn clean_loop_has_no_leak() {
        let ff = analyze_source(
            "<t>",
            "fn bump(&self, ctx: &mut C) -> u64 {\n\
                 let mut keep = K::default();\n\
                 let mut backoff = Backoff::new();\n\
                 loop {\n\
                     let old = self.var.ll(ctx, &mut keep);\n\
                     if self.var.sc(ctx, &mut keep, old + 1) {\n\
                         return old;\n\
                     }\n\
                     backoff.spin();\n\
                 }\n\
             }\n",
        );
        let f = &ff.functions[0];
        assert!(f.leaks.is_empty(), "{:?}", f.leaks);
        assert_eq!(f.max_live, 1);
        assert!(ff.backoff.is_empty());
    }

    #[test]
    fn r7_flags_bare_retry_loop() {
        let ff = analyze_source(
            "<t>",
            "fn spin(&self, ctx: &mut C) {\n\
                 let mut keep = K::default();\n\
                 loop {\n\
                     let v = self.var.ll(ctx, &mut keep);\n\
                     if self.var.sc(ctx, &mut keep, v) { break; }\n\
                 }\n\
             }\n",
        );
        assert_eq!(ff.backoff.len(), 1);
        assert_eq!(ff.backoff[0].0, "spin");
    }

    #[test]
    fn protocol_impls_are_exempt_from_leaks() {
        let ff = analyze_source(
            "<t>",
            "fn ll(&self, ctx: &mut C, keep: &mut K) -> u64 {\n\
                 self.inner.ll(ctx, keep)\n\
             }\n",
        );
        let f = &ff.functions[0];
        assert!(f.protocol_impl);
        assert!(f.leaks.is_empty());
        assert_eq!(f.certified, 0);
    }

    #[test]
    fn param_keep_births_are_escapes_not_leaks() {
        let ff = analyze_source(
            "<t>",
            "fn reload(&self, ctx: &mut C, keep: &mut K) -> u64 {\n\
                 self.var.ll(ctx, keep)\n\
             }\n",
        );
        let f = &ff.functions[0];
        assert!(f.leaks.is_empty(), "{:?}", f.leaks);
        assert_eq!(f.escapes, ["keep"]);
    }

    #[test]
    fn annotation_suppresses_and_reason_is_kept() {
        let src = "\
fn read_once(&self, ctx: &mut C) -> u64 {
    let mut keep = K::default();
    // nbsp-flow: allow(keep-leak) - pure read, sequence abandoned by design
    self.var.ll(ctx, &mut keep)
}
";
        let ff = analyze_source("<t>", src);
        assert_eq!(ff.annotations.len(), 1);
        assert_eq!(ff.annotations[0].rule, "keep-leak");
        assert!(ff.annotations[0].reason.contains("pure read"));
        // analyze_source leaves resolution to analyze_repo; the leak is
        // present but the annotation is adjacent to the birth line.
        let f = &ff.functions[0];
        assert_eq!(f.leaks.len(), 1);
        assert_eq!(f.leaks[0].birth_line, 4);
        assert_eq!(ff.annotations[0].line + 1, f.leaks[0].birth_line);
    }

    #[test]
    fn ordering_sites_classified() {
        let ff = analyze_source(
            "<t>",
            "fn f(&self) {\n\
                 self.hdr.store(1, Ordering::Release);\n\
                 let v = self.hdr.load(Ordering::Acquire);\n\
                 mem.store_release(&self.word, v);\n\
                 let w = mem.load_acquire(&self.word);\n\
             }\n",
        );
        let rels: Vec<_> = ff.ordering_sites.iter().filter(|s| s.rel).collect();
        let acqs: Vec<_> = ff.ordering_sites.iter().filter(|s| s.acq).collect();
        assert_eq!(rels.len(), 2);
        assert_eq!(acqs.len(), 2);
        assert!(rels.iter().any(|s| s.field == "hdr"));
        assert!(rels.iter().any(|s| s.field == "word"));
    }

    #[test]
    fn max_live_counts_simultaneous_handles() {
        let ff = analyze_source(
            "<t>",
            "fn del(&self, ctx: &mut C) {\n\
                 let LlxOutcome::Linked(hg) = self.d.llx(ctx, gp) else { return; };\n\
                 let LlxOutcome::Linked(hp) = self.d.llx(ctx, p) else { self.d.unlink(ctx, hg); return; };\n\
                 let LlxOutcome::Linked(hl) = self.d.llx(ctx, l) else { self.d.unlink(ctx, hg); self.d.unlink(ctx, hp); return; };\n\
                 let LlxOutcome::Linked(hs) = self.d.llx(ctx, s) else { self.d.unlink(ctx, hg); self.d.unlink(ctx, hp); self.d.unlink(ctx, hl); return; };\n\
                 self.d.scx(ctx, p, vec![hg, hp, hl, hs], 0, gp, side, v);\n\
             }\n",
        );
        let f = &ff.functions[0];
        assert_eq!(f.max_live, 4, "{f:?}");
        assert!(f.uses_llx_family);
        assert_eq!(f.certified, 4 + HELP_TRANSIENT);
        assert!(f.leaks.is_empty(), "{:?}", f.leaks);
    }
}
