//! A deliberately broken provider proving the checker is not vacuous.
//!
//! [`PlantedTagDrop`] implements Figure 4's word layout — `(tag, value)`
//! packed in one CAS word — but its SC installs the new value with the
//! **same** tag instead of `tag + 1`. That is precisely the ABA bug the
//! paper's tag exists to prevent: an LL/SC sequence that straddles a
//! "value changed away and back" episode validates successfully even
//! though successful SCs intervened. The model checker must find a
//! concrete schedule whose recorded history the Wing–Gong checker rejects;
//! `exp_modelcheck` and a unit test gate on it.
//!
//! The fixture lives here, not in `nbsp-core`, so the broken construction
//! can never be registered or benchmarked by accident. It reuses
//! [`ProviderId::Fig4Native`] as its nominal identity because the
//! [`Provider`] trait requires one and the registry deliberately cannot
//! name out-of-tree constructions; the checker never consults the id.

use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::provider::Provider;
use nbsp_core::{LlScVar, Native, ProviderId, Result};
use nbsp_memsim::sched::{self, AccessKind};

const VALUE_BITS: u32 = 32;
const VALUE_MASK: u64 = (1 << VALUE_BITS) - 1;

/// The broken variable: Figure 4's packed `(tag, value)` word whose SC
/// forgets to increment the tag.
#[derive(Debug)]
pub struct PlantedTagDropVar {
    word: AtomicU64,
}

impl PlantedTagDropVar {
    /// Creates the variable holding `initial` (must fit in 32 value bits).
    #[must_use]
    pub fn new(initial: u64) -> Self {
        assert!(initial <= VALUE_MASK, "initial value exceeds 32 bits");
        PlantedTagDropVar {
            word: AtomicU64::new(initial),
        }
    }

    fn hook(&self, kind: AccessKind) {
        let _ = sched::yield_point(std::ptr::from_ref(&self.word) as usize, kind);
    }
}

impl LlScVar for PlantedTagDropVar {
    /// The packed word observed by the pending LL, if any.
    type Keep = Option<u64>;
    type Ctx<'a> = Native;

    fn ll(&self, _ctx: &mut Native, keep: &mut Option<u64>) -> u64 {
        self.hook(AccessKind::Read);
        let w = self.word.load(Ordering::Acquire);
        *keep = Some(w);
        w & VALUE_MASK
    }

    fn vl(&self, _ctx: &mut Native, keep: &Option<u64>) -> bool {
        keep.is_some_and(|w| {
            self.hook(AccessKind::Read);
            self.word.load(Ordering::Acquire) == w
        })
    }

    fn sc(&self, _ctx: &mut Native, keep: &mut Option<u64>, new: u64) -> bool {
        keep.take().is_some_and(|w| {
            self.hook(AccessKind::Cas);
            // BUG (deliberate): Figure 4 installs (tag + 1, new); this
            // installs (tag, new), so the word can return to a previously
            // observed bit pattern and an SC that must fail succeeds.
            let tag = w & !VALUE_MASK;
            self.word
                .compare_exchange(w, tag | new, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
        })
    }

    fn cl(&self, _ctx: &mut Native, keep: &mut Option<u64>) {
        *keep = None;
    }

    fn read(&self, _ctx: &mut Native) -> u64 {
        self.hook(AccessKind::Read);
        self.word.load(Ordering::Acquire) & VALUE_MASK
    }

    fn max_val(&self) -> u64 {
        VALUE_MASK
    }
}

/// The broken construction as a [`Provider`], for the model checker only.
#[derive(Debug)]
pub struct PlantedTagDrop;

impl Provider for PlantedTagDrop {
    // Nominal only — see the module docs; never registered.
    const ID: ProviderId = ProviderId::Fig4Native;
    type Var = PlantedTagDropVar;
    type Env = ();
    type ThreadCtx = Native;

    fn env(_n: usize) -> Result<()> {
        Ok(())
    }

    fn var(_env: &(), initial: u64) -> Result<PlantedTagDropVar> {
        Ok(PlantedTagDropVar::new(initial))
    }

    fn try_thread_ctx(_env: &(), _p: usize) -> Result<Native> {
        Ok(Native)
    }

    fn ctx(tc: &mut Native) -> Native {
        *tc
    }
}

/// The program on which the checker must expose the dropped tag: p1 drives
/// the value away and back (`0 → 7 → 0`) inside p0's LL…SC window; with
/// the tag dropped, p0's SC succeeds although two successful SCs
/// intervened — a real-time-ordered history the specification forbids.
#[must_use]
pub fn aba_program() -> crate::exec::Program {
    use crate::exec::PlanOp;
    crate::exec::Program {
        initial: 0,
        plans: vec![
            vec![PlanOp::Ll, PlanOp::Sc(9)],
            vec![PlanOp::Ll, PlanOp::Sc(7), PlanOp::Ll, PlanOp::Sc(0)],
        ],
        spurious_budget: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpor::{check, Mode};
    use nbsp_core::provider::Fig4Native;
    use nbsp_linearize::is_linearizable;
    use nbsp_linearize::LlScSpec;

    #[test]
    fn checker_finds_the_planted_aba_bug() {
        let out = check::<PlantedTagDrop>(&aba_program(), Mode::Dpor, 1 << 20).unwrap();
        let v = out.violation.expect("the dropped tag must be caught");
        assert!(
            !is_linearizable(LlScSpec::new(2, 0), &v.history),
            "the reported history must itself fail the Wing-Gong check"
        );
        // The counterexample must replay deterministically to the same
        // violating history.
        let replay =
            crate::exec::run_execution::<PlantedTagDrop>(&aba_program(), &v.schedule, &[]).unwrap();
        assert_eq!(replay.history, v.history);
    }

    #[test]
    fn naive_mode_also_finds_it() {
        let out = check::<PlantedTagDrop>(&aba_program(), Mode::Naive, 1 << 20).unwrap();
        assert!(out.violation.is_some());
    }

    #[test]
    fn the_real_figure4_passes_the_same_program() {
        let out = check::<Fig4Native>(&aba_program(), Mode::Dpor, 1 << 20).unwrap();
        assert!(out.violation.is_none(), "the tag increment is what saves Figure 4");
        assert!(!out.capped);
    }
}
