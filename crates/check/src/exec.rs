//! Schedule-controlled execution of one multi-process program on a real
//! provider.
//!
//! This is the "stateless" half of a CHESS/Loom-style model checker: each
//! call to [`run_execution`] builds a **fresh** environment and variable for
//! the provider under test, spawns one real OS thread per process, and
//! drives them with a strict token hand-off — at any instant exactly one
//! thread (the controller or a single worker) is running. Workers park at
//! every shared access via the [`nbsp_memsim::sched`] yield-point hook; the
//! controller decides, access by access, who moves next.
//!
//! Determinism is the load-bearing property: replaying the same schedule
//! prefix always reproduces the same accesses, the same history and the
//! same logical-clock stamps, because
//!
//! * the environment is rebuilt from scratch (same seeds, same initial
//!   state) for every execution;
//! * workers only run between a grant and their next yield point, so every
//!   shared access, every history push and every clock tick happens in the
//!   single global order the schedule dictates;
//! * the one non-interleaving source of nondeterminism — spurious RSC
//!   failure — is itself a scheduler [`Decision`], enumerated explicitly.
//!
//! Operation intervals are stamped conservatively: `invoked` is ticked
//! before the operation's first shared access and `returned` after its
//! last, both while holding the token, so the recorded interval always
//! contains the operation's linearization point and a non-linearizable
//! recorded history corresponds to a real violation.

use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use nbsp_core::provider::Provider;
use nbsp_core::LlScVar;
use nbsp_linearize::{Completed, Op, Ret};
use nbsp_memsim::sched::{self, AccessKind, Decision, SchedulePoint};
use nbsp_memsim::ProcId;

/// One operation of a per-process plan, in the Figure-2 vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOp {
    /// Load-linked.
    Ll,
    /// Validate the pending sequence.
    Vl,
    /// Store-conditional of the given value.
    Sc(u64),
    /// Plain read.
    Read,
}

/// A closed multi-process program over one shared LL/VL/SC variable.
#[derive(Clone, Debug)]
pub struct Program {
    /// Initial value of the shared variable.
    pub initial: u64,
    /// One plan per process; `plans.len()` is the process count.
    pub plans: Vec<Vec<PlanOp>>,
    /// Maximum number of scheduler-forced spurious RSC failures per
    /// schedule (the paper's "occasional" adversary, bounded).
    pub spurious_budget: u32,
}

impl Program {
    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.plans.len()
    }
}

/// A sleep-set entry: an already-explored alternative `(proc, decision)`
/// together with the shared access it would perform, so dependence with
/// later steps can wake it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SleepEntry {
    /// Process of the sleeping choice.
    pub proc: usize,
    /// Decision of the sleeping choice.
    pub decision: Decision,
    /// Logical address (see [`StepRec::addr`]) the sleeping choice would
    /// access.
    pub addr: usize,
    /// Kind of access the sleeping choice would perform.
    pub kind: AccessKind,
}

impl SleepEntry {
    /// True iff this sleeping choice commutes with an executed access by
    /// `proc` to `(addr, kind)` and may therefore stay asleep.
    #[must_use]
    pub fn independent_of(&self, proc: usize, addr: usize, kind: AccessKind) -> bool {
        self.proc != proc && (self.addr != addr || (self.kind.is_read_only() && kind.is_read_only()))
    }
}

/// One scheduling decision of a completed execution, with the state
/// snapshot the DPOR driver needs for race analysis and backtracking.
#[derive(Clone, Debug)]
pub struct StepRec {
    /// Process granted the step.
    pub proc: usize,
    /// Decision handed to it.
    pub decision: Decision,
    /// **Logical** address it accessed: the first-touch index of the raw
    /// address within this execution. Raw heap addresses are useless as
    /// identities across executions — every execution allocates a fresh
    /// environment, and the allocator may or may not hand back the same
    /// blocks — so the controller renames them at each decision point, in
    /// process-index order. The set of pending accesses at a decision
    /// point is schedule-determined, so along a common schedule prefix two
    /// executions assign identical logical addresses, which is exactly the
    /// stability the DPOR driver's cross-execution sleep sets and
    /// backtrack analysis need.
    pub addr: usize,
    /// Kind of access it performed.
    pub kind: AccessKind,
    /// Processes parked (runnable) immediately before this step.
    pub enabled: Vec<usize>,
    /// Per-process pending access — logical address and kind — immediately
    /// before this step (`None` for processes already finished or not yet
    /// parked).
    pub pending: Vec<Option<(usize, AccessKind)>>,
}

/// Renames a raw address to its first-touch index (the logical address).
fn logical_addr(map: &mut Vec<usize>, raw: usize) -> usize {
    map.iter().position(|&r| r == raw).unwrap_or_else(|| {
        map.push(raw);
        map.len() - 1
    })
}

/// A completed (or sleep-blocked) execution.
#[derive(Debug)]
pub struct ExecOutcome {
    /// The scheduling decisions taken, in order.
    pub steps: Vec<StepRec>,
    /// The recorded history (empty for blocked executions).
    pub history: Vec<Completed>,
    /// True iff the run was abandoned because every runnable process was
    /// in the sleep set (the schedule is covered by an earlier execution).
    pub blocked: bool,
}

#[derive(Debug)]
enum Phase {
    AtStart,
    /// Parked at a yield point. `runnable` is true for every ordinary
    /// access; a declared [`AccessKind::Wait`] parks *un*-runnable and is
    /// flipped runnable when the controller grants a mutating access to
    /// the same raw address (the wake may be spurious — e.g. a
    /// spuriously-failing RSC — in which case the waiter just re-checks
    /// its condition and parks again, which is harmless).
    Parked {
        addr: usize,
        kind: AccessKind,
        runnable: bool,
    },
    Running,
    Done,
}

struct SchedState {
    phase: Vec<Phase>,
    grant: Option<(usize, Decision)>,
    /// Once set, workers stop parking and free-run to completion; the
    /// execution's steps and history are discarded by the caller.
    abort: bool,
    clock: u64,
    history: Vec<Completed>,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared {
    m: Mutex<SchedState>,
    cv: Condvar,
}

/// The handle a controlled worker body gets: the logical clock and the
/// history sink, both shared with the controller. See
/// [`run_controlled`].
pub struct WorkerCtl {
    shared: Arc<Shared>,
}

impl fmt::Debug for WorkerCtl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WorkerCtl").finish_non_exhaustive()
    }
}

impl WorkerCtl {
    /// Advances the execution's logical clock and returns the new stamp.
    /// Call before an operation's first shared access (`invoked`) and
    /// after its last (`returned`).
    pub fn tick(&self) -> u64 {
        tick(&self.shared)
    }

    /// Appends one completed operation to the execution's history.
    pub fn record(&self, c: Completed) {
        let mut g = self.shared.m.lock().unwrap();
        g.history.push(c);
    }
}

struct WorkerHook {
    shared: Arc<Shared>,
    p: usize,
}

impl SchedulePoint for WorkerHook {
    fn yield_point(&self, addr: usize, kind: AccessKind) -> Decision {
        let mut g = self.shared.m.lock().unwrap();
        if g.abort {
            return Decision::Proceed;
        }
        g.phase[self.p] = Phase::Parked {
            addr,
            kind,
            runnable: kind != AccessKind::Wait,
        };
        self.shared.cv.notify_all();
        loop {
            if g.abort {
                g.phase[self.p] = Phase::Running;
                return Decision::Proceed;
            }
            if let Some((w, d)) = g.grant {
                if w == self.p {
                    g.grant = None;
                    g.phase[self.p] = Phase::Running;
                    return d;
                }
            }
            g = self.shared.cv.wait(g).unwrap();
        }
    }
}

fn tick(shared: &Shared) -> u64 {
    let mut g = shared.m.lock().unwrap();
    g.clock += 1;
    g.clock
}

fn wait_for_start(shared: &Shared, p: usize) {
    let mut g = shared.m.lock().unwrap();
    loop {
        if g.abort {
            g.phase[p] = Phase::Running;
            return;
        }
        if let Some((w, _)) = g.grant {
            if w == p {
                g.grant = None;
                g.phase[p] = Phase::Running;
                return;
            }
        }
        g = shared.cv.wait(g).unwrap();
    }
}

fn worker_body<B: FnOnce(&WorkerCtl)>(shared: &Arc<Shared>, p: usize, body: B) {
    let result = panic::catch_unwind(AssertUnwindSafe(|| {
        let hook: Arc<dyn SchedulePoint> = Arc::new(WorkerHook {
            shared: Arc::clone(shared),
            p,
        });
        let _guard = sched::install(hook);
        wait_for_start(shared, p);
        let ctl = WorkerCtl {
            shared: Arc::clone(shared),
        };
        body(&ctl);
    }));
    let mut g = shared.m.lock().unwrap();
    if let Err(payload) = result {
        if g.panic_payload.is_none() {
            g.panic_payload = Some(payload);
        }
        g.abort = true;
    }
    // A grant addressed to this worker can never be consumed once it is
    // done; leaving it would wedge the controller's quiescence wait.
    if matches!(g.grant, Some((w, _)) if w == p) {
        g.grant = None;
    }
    g.phase[p] = Phase::Done;
    shared.cv.notify_all();
}

/// Blocks until no worker is mid-step: no grant outstanding and nobody
/// `Running` (everyone parked, at start, or done).
fn wait_quiescent(shared: &Shared) -> MutexGuard<'_, SchedState> {
    let mut g = shared.m.lock().unwrap();
    loop {
        if matches!(g.grant, Some((w, _)) if matches!(g.phase[w], Phase::Done)) {
            g.grant = None;
        }
        let busy = g.grant.is_some() || g.phase.iter().any(|ph| matches!(ph, Phase::Running));
        if !busy {
            return g;
        }
        g = shared.cv.wait(g).unwrap();
    }
}

/// Sets the abort flag and waits for every worker to free-run to
/// completion. Aborted runs produce garbage steps/history; callers discard
/// them.
fn abort_and_drain(shared: &Shared) {
    let mut g = shared.m.lock().unwrap();
    g.abort = true;
    shared.cv.notify_all();
    while !g.phase.iter().all(|ph| matches!(ph, Phase::Done)) {
        g = shared.cv.wait(g).unwrap();
    }
}

/// Runs one schedule-controlled execution of arbitrary per-process
/// `bodies` (index = process id). Each body runs on its own OS thread
/// under the cooperative scheduler — every shared access it performs
/// through schedule-point-instrumented code parks at the yield-point hook
/// and moves only when granted — and may stamp/record history through the
/// [`WorkerCtl`] it receives. This is the generic core under
/// [`run_execution`] (single-variable Figure-2 plans) and the multi-word
/// LLX/SCX programs of [`crate::llx`].
///
/// The first `prefix.len()` scheduling decisions replay `prefix` verbatim;
/// beyond it the default policy runs the lowest-indexed runnable process
/// whose `(proc, Proceed)` choice is not in the (evolving) sleep set,
/// starting from `frontier_sleep` — the sleep set in force immediately
/// after the prefix. If at some point every runnable process is asleep the
/// execution is abandoned with [`ExecOutcome::blocked`] set.
///
/// # Panics
///
/// Re-raises any panic from the code under test, and panics if replaying
/// `prefix` diverges (which would indicate the execution is not
/// deterministic — a checker bug, never a property of the code under
/// test).
pub fn run_controlled<B>(
    prefix: &[(usize, Decision)],
    frontier_sleep: &[SleepEntry],
    bodies: Vec<B>,
) -> ExecOutcome
where
    B: FnOnce(&WorkerCtl) + Send,
{
    let n = bodies.len();
    assert!(n > 0, "need at least one process");
    let shared = Arc::new(Shared {
        m: Mutex::new(SchedState {
            phase: (0..n).map(|_| Phase::AtStart).collect(),
            grant: None,
            abort: false,
            clock: 0,
            history: Vec::new(),
            panic_payload: None,
        }),
        cv: Condvar::new(),
    });

    let mut steps: Vec<StepRec> = Vec::new();
    let mut blocked = false;

    std::thread::scope(|s| {
        for (p, body) in bodies.into_iter().enumerate() {
            let shared = Arc::clone(&shared);
            s.spawn(move || worker_body(&shared, p, body));
        }

        // Preamble: run each worker, in index order, from its entry point
        // to its first yield point. These grants are not schedule steps —
        // no shared access happens before the first yield.
        for p in 0..n {
            let mut g = wait_quiescent(&shared);
            if g.abort {
                break;
            }
            debug_assert!(matches!(g.phase[p], Phase::AtStart | Phase::Done));
            if matches!(g.phase[p], Phase::AtStart) {
                g.grant = Some((p, Decision::Proceed));
                drop(g);
                shared.cv.notify_all();
            }
        }

        let mut sleep: Vec<SleepEntry> = frontier_sleep.to_vec();
        let mut addr_map: Vec<usize> = Vec::new();
        let mut pos = 0usize;
        loop {
            let g = wait_quiescent(&shared);
            if g.abort || g.panic_payload.is_some() {
                drop(g);
                abort_and_drain(&shared);
                break;
            }
            let parked: Vec<usize> = (0..n)
                .filter(|&p| matches!(g.phase[p], Phase::Parked { runnable: true, .. }))
                .collect();
            if parked.is_empty() {
                let waiting: Vec<usize> = (0..n)
                    .filter(|&p| matches!(g.phase[p], Phase::Parked { .. }))
                    .collect();
                if !waiting.is_empty() {
                    // Every live process is in a declared wait and no
                    // runnable process is left to write the awaited words:
                    // the construction deadlocked, which the blocking
                    // providers' bounded-wait arguments say cannot happen.
                    // Diagnose before draining — a truly wedged waiter may
                    // free-run forever and hang the drain.
                    eprintln!(
                        "nbsp-check: declared-wait deadlock, processes {waiting:?} wait on \
                         words no runnable process will write"
                    );
                    drop(g);
                    abort_and_drain(&shared);
                    panic!(
                        "deadlock: processes {waiting:?} wait on words no runnable process \
                         will write"
                    );
                }
                debug_assert!(g.phase.iter().all(|ph| matches!(ph, Phase::Done)));
                break;
            }
            // Rename raw addresses to logical ones in process-index order —
            // deterministic because the pending *set* at a decision point is
            // determined by the schedule, even though parking order is not.
            // Un-runnable declared waiters are pending too: their wait is a
            // (read-only) step once woken, and naming their address here
            // keeps the renaming schedule-determined.
            let pending: Vec<Option<(usize, AccessKind)>> = (0..n)
                .map(|p| match g.phase[p] {
                    Phase::Parked { addr, kind, .. } => {
                        Some((logical_addr(&mut addr_map, addr), kind))
                    }
                    _ => None,
                })
                .collect();
            let (proc, decision) = if pos < prefix.len() {
                let c = prefix[pos];
                if !parked.contains(&c.0) {
                    // Divergence means execution is not deterministic — a
                    // checker bug. Drain first so the spawn scope can join.
                    drop(g);
                    abort_and_drain(&shared);
                    panic!(
                        "schedule replay diverged: process {} is not runnable at step {pos}",
                        c.0
                    );
                }
                c
            } else {
                match parked.iter().copied().find(|&p| {
                    !sleep
                        .iter()
                        .any(|e| e.proc == p && e.decision == Decision::Proceed)
                }) {
                    Some(p) => (p, Decision::Proceed),
                    None => {
                        blocked = true;
                        drop(g);
                        abort_and_drain(&shared);
                        break;
                    }
                }
            };
            let (addr, kind) = pending[proc].expect("granted process must be parked");
            steps.push(StepRec {
                proc,
                decision,
                addr,
                kind,
                enabled: parked,
                pending,
            });
            if pos >= prefix.len() {
                sleep.retain(|e| e.independent_of(proc, addr, kind));
            }
            let mut g = g;
            // A mutating grant wakes every declared waiter parked on the
            // same raw word (raw, not logical — wakes are local to this
            // execution). Flipping the flag at grant time is safe: the
            // token hand-off completes the granted access before the next
            // scheduling decision, so the woken waiter re-checks only
            // after the write. A spuriously-failing RSC writes nothing and
            // produces a spurious wake; the waiter re-checks its condition
            // and parks again, which is harmless.
            if !kind.is_read_only() {
                let raw = match g.phase[proc] {
                    Phase::Parked { addr, .. } => addr,
                    _ => unreachable!("granted process is parked"),
                };
                for ph in &mut g.phase {
                    if let Phase::Parked {
                        addr,
                        kind: AccessKind::Wait,
                        runnable,
                    } = ph
                    {
                        if *addr == raw {
                            *runnable = true;
                        }
                    }
                }
            }
            g.grant = Some((proc, decision));
            drop(g);
            shared.cv.notify_all();
            pos += 1;
        }
    });

    let mut g = shared.m.lock().unwrap();
    if let Some(payload) = g.panic_payload.take() {
        panic::resume_unwind(payload);
    }
    let history = std::mem::take(&mut g.history);
    drop(g);
    if blocked {
        return ExecOutcome {
            steps,
            history: Vec::new(),
            blocked: true,
        };
    }
    ExecOutcome {
        steps,
        history,
        blocked: false,
    }
}

/// Runs one execution of `program` on provider `P`: each process's
/// [`PlanOp`] plan over one shared variable, scheduled by
/// [`run_controlled`] (see there for the prefix/sleep semantics).
///
/// # Errors
///
/// Propagates the provider's environment/variable construction errors.
///
/// # Panics
///
/// As [`run_controlled`].
pub fn run_execution<P: Provider>(
    program: &Program,
    prefix: &[(usize, Decision)],
    frontier_sleep: &[SleepEntry],
) -> Result<ExecOutcome, nbsp_core::Error> {
    let n = program.n();
    assert!(n > 0, "program needs at least one process");
    let env = P::env(n)?;
    let var = P::var(&env, program.initial)?;
    let var = &var;
    let bodies: Vec<_> = (0..n)
        .map(|p| {
            let mut tc = P::thread_ctx(&env, p);
            let plan = program.plans[p].clone();
            move |ctl: &WorkerCtl| {
                let mut ctx = P::ctx(&mut tc);
                let mut keep = <P::Var as LlScVar>::Keep::default();
                for op in &plan {
                    let invoked = ctl.tick();
                    let (op, ret) = match *op {
                        PlanOp::Ll => (Op::Ll, Ret::Value(var.ll(&mut ctx, &mut keep))),
                        PlanOp::Vl => (Op::Vl, Ret::Bool(var.vl(&mut ctx, &keep))),
                        PlanOp::Sc(x) => (Op::Sc(x), Ret::Bool(var.sc(&mut ctx, &mut keep, x))),
                        PlanOp::Read => (Op::Read, Ret::Value(var.read(&mut ctx))),
                    };
                    let returned = ctl.tick();
                    ctl.record(Completed {
                        proc: ProcId::new(p),
                        op,
                        ret,
                        invoked,
                        returned,
                    });
                }
            }
        })
        .collect();
    Ok(run_controlled(prefix, frontier_sleep, bodies))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::provider::{Fig4Native, LockBaseline};
    use nbsp_linearize::{is_linearizable, LlScSpec};

    fn incr_program(n: usize) -> Program {
        Program {
            initial: 0,
            plans: (0..n).map(|p| vec![PlanOp::Ll, PlanOp::Sc(p as u64 + 1)]).collect(),
            spurious_budget: 0,
        }
    }

    #[test]
    fn default_policy_runs_to_completion() {
        let exec = run_execution::<Fig4Native>(&incr_program(2), &[], &[]).unwrap();
        assert!(!exec.blocked);
        assert_eq!(exec.history.len(), 4, "two ops per process");
        assert!(is_linearizable(LlScSpec::new(2, 0), &exec.history));
    }

    #[test]
    fn replay_is_deterministic() {
        let first = run_execution::<LockBaseline>(&incr_program(2), &[], &[]).unwrap();
        let prefix: Vec<_> = first.steps.iter().map(|s| (s.proc, s.decision)).collect();
        let second = run_execution::<LockBaseline>(&incr_program(2), &prefix, &[]).unwrap();
        assert_eq!(first.history, second.history);
        assert_eq!(first.steps.len(), second.steps.len());
        for (a, b) in first.steps.iter().zip(&second.steps) {
            assert_eq!((a.proc, a.decision, a.addr, a.kind), (b.proc, b.decision, b.addr, b.kind));
        }
    }

    #[test]
    fn prefix_steers_the_interleaving() {
        // Interleave p1's whole LL;SC inside p0's LL…SC window: p1's
        // successful SC invalidates p0's reservation, so p0's SC must
        // fail. Each LockBaseline operation is exactly one access.
        let program = incr_program(2);
        let prefix = vec![
            (0, Decision::Proceed), // p0: LL
            (1, Decision::Proceed), // p1: LL
            (1, Decision::Proceed), // p1: SC -> true
            (0, Decision::Proceed), // p0: SC -> false
        ];
        let exec = run_execution::<LockBaseline>(&program, &prefix, &[]).unwrap();
        let p0_sc = exec
            .history
            .iter()
            .find(|c| c.proc.index() == 0 && matches!(c.op, Op::Sc(_)))
            .unwrap();
        assert_eq!(p0_sc.ret, Ret::Bool(false), "p1's SC intervened before p0's");
        assert!(is_linearizable(LlScSpec::new(2, 0), &exec.history));
    }

    #[test]
    fn sleep_block_abandons_the_run() {
        // Every process asleep at the first post-prefix decision.
        let sleep: Vec<SleepEntry> = (0..2)
            .map(|p| SleepEntry {
                proc: p,
                decision: Decision::Proceed,
                addr: 0,
                kind: AccessKind::Write,
            })
            .collect();
        let exec = run_execution::<Fig4Native>(&incr_program(2), &[], &sleep).unwrap();
        assert!(exec.blocked);
        assert!(exec.history.is_empty());
    }
}
