//! # nbsp-check — model checking and invariant linting for the real code
//!
//! The `nbsp-linearize` crate model-checks *re-implementations* of the
//! paper's pseudocode (Figures 3, 5, 6, 7 as explicit step machines). That
//! leaves a gap: the shipped providers — the code benchmarks and structures
//! actually run — were only ever tested on randomized schedules. This crate
//! closes the gap from two directions:
//!
//! * [`exec`] + [`dpor`] — a CHESS/Loom-style **stateless model checker**
//!   that runs the *real* [`Provider`](nbsp_core::Provider) registry entries
//!   on real OS threads under a cooperative scheduler (via
//!   [`nbsp_memsim::sched`]), enumerating every interleaving of their shared
//!   accesses with **dynamic partial-order reduction** and checking each
//!   recorded history against the Figure-2 sequential specification with
//!   the Wing–Gong checker.
//! * [`llx`] — the same scheduler driven through `nbsp-llx`'s
//!   **multi-word** LLX/SCX commits: every info/field/state word of the
//!   protocol is a provider variable, so one SCX's freeze–write–settle–
//!   release sequence is enumerated end to end, judged by a conservation
//!   verdict, with a planted lost-freeze domain as the non-vacuity canary.
//! * [`lint`] — a dependency-free source scanner that mechanizes the
//!   repository's cross-cutting invariants (memory-ordering discipline,
//!   cache-line padding of per-process slot arrays, registry encapsulation,
//!   telemetry stub/real parity, benchmark-schema versioning) so they are
//!   CI-enforced instead of review-enforced.
//!
//! * [`flow`] (on [`lex`] + [`cfg`]) — a **static protocol-obligation
//!   analyzer**: an intraprocedural keep-lifetime dataflow over a
//!   dependency-free lexer and CFG builder that certifies, for every
//!   function in the client crates, that (a) every keep born from
//!   `ll`/`wll`/`llx` reaches an `sc`/`vl`/`cl`/`scx`-shaped consumer on
//!   all paths, (b) the repo-wide static bound on simultaneously-live
//!   keeps equals [`nbsp_core::provider::PROVIDER_K`], and (c) every
//!   `Ordering::Release` store site has a matching `Acquire` load site on
//!   the same field.
//!
//! The checker is validated for non-vacuity by [`planted`]: a deliberately
//! broken provider (SC installs its new value *without* incrementing the
//! tag, re-introducing the ABA bug the tag exists to prevent) for which the
//! checker must produce a concrete violating schedule. The flow analyzer
//! carries its own canaries ([`flow::PLANTED_KEEP_LEAK`],
//! [`flow::PLANTED_UNPAIRED_RELEASE`]).

#![forbid(unsafe_code)]
#![warn(missing_docs, missing_debug_implementations)]

pub mod cfg;
pub mod dpor;
pub mod exec;
pub mod flow;
pub mod lex;
pub mod lint;
pub mod llx;
pub mod planted;

pub use dpor::{check, explore, Judgment, Mode, Outcome, Violation};
pub use exec::{PlanOp, Program};
pub use flow::{analyze_repo, analyze_source, RepoFlow};
pub use lint::{run_lints, Finding};
pub use llx::{check_conservation, check_lost_freeze, IncrVia, LlxProgram};
