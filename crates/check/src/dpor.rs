//! Depth-first schedule enumeration with dynamic partial-order reduction.
//!
//! The driver explores the tree of scheduling decisions over
//! [`run_execution`](crate::exec::run_execution), one *complete* execution
//! per leaf, in the stateless style of Flanagan–Godefroid DPOR:
//!
//! * **Backtrack sets** — after every completed execution, a race analysis
//!   with vector clocks finds, for each step `j`, the last earlier step `i`
//!   by a different process that accesses the same [`SimWord`-level
//!   address](nbsp_memsim::sched) dependently (not both read-only) and is
//!   not already ordered before `j`'s process; the alternative "run `j`'s
//!   process at `i` instead" is queued at node `i`.
//! * **Sleep sets** — a choice fully explored at a node is put to sleep in
//!   the subtrees of its siblings until a dependent access wakes it;
//!   executions whose every runnable process is asleep are abandoned
//!   without a linearizability check.
//! * **Spurious branches** — whenever a chosen step is an RSC and the
//!   schedule still has spurious budget, the alternative decision
//!   [`Decision::SpuriousFail`] is queued, so the paper's spurious-failure
//!   adversary is enumerated, not sampled.
//!
//! In [`Mode::Naive`] the same driver enumerates *every* interleaving
//! (backtrack = all enabled choices, no sleep sets, no race analysis);
//! the ratio naive/DPOR is the pruning factor reported by experiment E13.
//!
//! Every completed execution's history is checked against the Figure-2
//! sequential LL/SC specification with the Wing–Gong checker, deduplicating
//! by a canonical history fingerprint (operations, return values and the
//! real-time precedence matrix) so equivalent histories are checked once.

use std::collections::HashSet;
use std::hash::{Hash, Hasher};

use nbsp_core::provider::Provider;
use nbsp_linearize::{is_linearizable, Completed, LlScSpec};
use nbsp_memsim::sched::{AccessKind, Decision};

use crate::exec::{run_execution, ExecOutcome, Program, SleepEntry, StepRec};

/// Search strategy: reduced or exhaustive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Dynamic partial-order reduction with sleep sets.
    Dpor,
    /// Full DFS over every interleaving (the pruning-ratio baseline).
    Naive,
}

/// A concrete counterexample: the schedule that produced a
/// non-linearizable history, and the history itself.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The scheduling decisions, replayable via
    /// [`run_execution`](crate::exec::run_execution).
    pub schedule: Vec<(usize, Decision)>,
    /// The recorded non-linearizable history.
    pub history: Vec<Completed>,
}

/// Aggregate result of one exploration.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Completed executions (leaves actually run to the end).
    pub executions: u64,
    /// Scheduling decisions taken across completed executions.
    pub steps: u64,
    /// Executions abandoned because every runnable process was asleep.
    pub sleep_blocked: u64,
    /// Distinct history fingerprints observed.
    pub unique_histories: u64,
    /// Wing–Gong checks actually performed (= unique histories).
    pub lin_checks: u64,
    /// First violation found, if any (the search stops at the first).
    pub violation: Option<Violation>,
    /// True iff the search hit `max_executions` before finishing.
    pub capped: bool,
}

struct Node {
    chosen: (usize, Decision),
    access: (usize, AccessKind),
    enabled: Vec<usize>,
    pending: Vec<Option<(usize, AccessKind)>>,
    /// Sleep set inherited from the parent (fixed at node creation).
    sleep: Vec<SleepEntry>,
    /// Alternatives queued by race analysis / naive enumeration.
    backtrack: Vec<(usize, Decision)>,
    /// Alternatives whose subtrees are fully explored.
    done: Vec<(usize, Decision)>,
}

impl Node {
    fn from_step(st: &StepRec, sleep: Vec<SleepEntry>) -> Node {
        Node {
            chosen: (st.proc, st.decision),
            access: (st.addr, st.kind),
            enabled: st.enabled.clone(),
            pending: st.pending.clone(),
            sleep,
            backtrack: Vec::new(),
            done: Vec::new(),
        }
    }

    fn entry_for(&self, choice: (usize, Decision)) -> SleepEntry {
        let (addr, kind) = self.pending[choice.0].expect("explored choices were runnable");
        SleepEntry {
            proc: choice.0,
            decision: choice.1,
            addr,
            kind,
        }
    }

    /// The sleep set for children of the currently chosen step: everything
    /// asleep or already explored here, minus what the chosen step wakes.
    fn child_sleep(&self) -> Vec<SleepEntry> {
        self.sleep
            .iter()
            .copied()
            .chain(self.done.iter().map(|&c| self.entry_for(c)))
            .filter(|e| e.independent_of(self.chosen.0, self.access.0, self.access.1))
            .collect()
    }

    fn queue(&mut self, choice: (usize, Decision)) {
        if self.chosen != choice && !self.done.contains(&choice) && !self.backtrack.contains(&choice)
        {
            self.backtrack.push(choice);
        }
    }
}

fn dependent(a: &StepRec, b: &StepRec) -> bool {
    a.addr == b.addr && !(a.kind.is_read_only() && b.kind.is_read_only())
}

fn decision_rank(d: Decision) -> u8 {
    match d {
        Decision::Proceed => 0,
        Decision::SpuriousFail => 1,
    }
}

fn spurious_used(stack: &[Node]) -> u32 {
    stack
        .iter()
        .filter(|nd| nd.chosen.1 == Decision::SpuriousFail)
        .count() as u32
}

/// Queues the spurious-failure alternative at the top node if its chosen
/// step is an RSC executed normally and the schedule has budget left.
fn queue_spurious_alternative(stack: &mut [Node], budget: u32) {
    let used = spurious_used(stack);
    if let Some(nd) = stack.last_mut() {
        if nd.chosen.1 == Decision::Proceed
            && nd.access.1 == AccessKind::Rsc
            && used < budget
        {
            nd.queue((nd.chosen.0, Decision::SpuriousFail));
        }
    }
}

/// Flanagan–Godefroid race analysis over a completed trace: for each step,
/// the latest dependent step by another process that is not already
/// happens-before-ordered gets a backtrack point.
fn race_analysis(stack: &mut [Node], steps: &[StepRec], n: usize) {
    let m = steps.len();
    let mut proc_vc: Vec<Vec<u64>> = vec![vec![0; n]; n];
    let mut step_clock: Vec<Vec<u64>> = Vec::with_capacity(m);
    for j in 0..m {
        let sj = &steps[j];
        let p = sj.proc;
        for i in (0..j).rev() {
            let si = &steps[i];
            if !dependent(si, sj) {
                continue;
            }
            if si.proc != p && proc_vc[p][si.proc] < i as u64 + 1 {
                // Race: j's process could have run at i. Prefer adding it
                // directly; if it was not yet enabled there, fall back to
                // everything that was (it transitively leads to p).
                let add: Vec<usize> = if stack[i].enabled.contains(&p) {
                    vec![p]
                } else {
                    stack[i].enabled.clone()
                };
                for q in add {
                    stack[i].queue((q, Decision::Proceed));
                }
            }
            break; // only the last dependent step matters
        }
        let mut c = proc_vc[p].clone();
        for i in 0..j {
            if dependent(&steps[i], sj) {
                for (cr, sr) in c.iter_mut().zip(&step_clock[i]) {
                    *cr = (*cr).max(*sr);
                }
            }
        }
        c[p] = j as u64 + 1;
        step_clock.push(c.clone());
        proc_vc[p] = c;
    }
}

/// Canonical fingerprint of a history for deduplication: the operations,
/// return values and the full really-precedes matrix (raw clock values are
/// schedule noise and are excluded).
fn history_fingerprint(history: &[Completed]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for c in history {
        (c.proc.index(), c.op, c.ret).hash(&mut h);
    }
    for a in history {
        for b in history {
            a.really_precedes(b).hash(&mut h);
        }
    }
    h.finish()
}

/// The verdict a judge callback passes on one completed execution.
#[derive(Clone, Debug)]
pub enum Judgment {
    /// Equivalent to an already-judged execution — counted but not
    /// re-checked (fingerprint deduplication lives in the judge).
    Duplicate,
    /// The execution satisfies the property.
    Pass,
    /// The execution violates the property; the payload is whatever
    /// history the judge wants preserved in the [`Violation`] (may be
    /// empty for state-based verdicts like conservation).
    Fail(Vec<Completed>),
}

/// The generic exploration driver under [`check`] and the LLX/SCX
/// conservation checks of [`crate::llx`]: enumerates schedules of an
/// `n`-process execution (DPOR + sleep sets, or naive DFS), calling
/// `run` once per schedule and `judge` once per completed (non-blocked)
/// execution. Stops at the first [`Judgment::Fail`].
///
/// Deterministic: the same `run` behaviour always explores the same
/// schedules in the same order.
///
/// # Errors
///
/// Propagates errors from `run` (provider environment/variable
/// construction).
pub fn explore<R, J>(
    n: usize,
    spurious_budget: u32,
    mode: Mode,
    max_executions: u64,
    mut run: R,
    mut judge: J,
) -> Result<Outcome, nbsp_core::Error>
where
    R: FnMut(&[(usize, Decision)], &[SleepEntry]) -> Result<ExecOutcome, nbsp_core::Error>,
    J: FnMut(&ExecOutcome) -> Judgment,
{
    let mut stack: Vec<Node> = Vec::new();
    let mut out = Outcome::default();

    loop {
        let prefix: Vec<(usize, Decision)> = stack.iter().map(|nd| nd.chosen).collect();
        let frontier = match (mode, stack.last()) {
            (Mode::Naive, _) | (_, None) => Vec::new(),
            (Mode::Dpor, Some(nd)) => nd.child_sleep(),
        };
        let exec = run(&prefix, &frontier)?;

        if exec.blocked {
            out.sleep_blocked += 1;
        } else {
            out.executions += 1;
            out.steps += exec.steps.len() as u64;
            match judge(&exec) {
                Judgment::Duplicate => {}
                Judgment::Pass => {
                    out.unique_histories += 1;
                    out.lin_checks += 1;
                }
                Judgment::Fail(history) => {
                    out.unique_histories += 1;
                    out.lin_checks += 1;
                    out.violation = Some(Violation {
                        schedule: exec.steps.iter().map(|s| (s.proc, s.decision)).collect(),
                        history,
                    });
                    return Ok(out);
                }
            }

            // Extend the stack with this run's fresh decisions.
            let mut sleep = frontier;
            for st in &exec.steps[stack.len()..] {
                let node_sleep = sleep.clone();
                sleep.retain(|e| e.independent_of(st.proc, st.addr, st.kind));
                stack.push(Node::from_step(st, node_sleep));
                match mode {
                    Mode::Dpor => {}
                    Mode::Naive => {
                        let nd = stack.last_mut().expect("just pushed");
                        for &q in &nd.enabled.clone() {
                            nd.queue((q, Decision::Proceed));
                        }
                    }
                }
                queue_spurious_alternative(&mut stack, spurious_budget);
            }
            if mode == Mode::Dpor {
                race_analysis(&mut stack, &exec.steps, n);
            }
        }

        if out.executions + out.sleep_blocked >= max_executions {
            out.capped = true;
            return Ok(out);
        }

        // Backtrack: retire the top node's chosen branch, pick the next
        // queued alternative (skipping sleeping ones), pop when exhausted.
        loop {
            let Some(last) = stack.len().checked_sub(1) else {
                return Ok(out); // exploration complete
            };
            let budget_left = spurious_used(&stack[..last]) < spurious_budget;
            let nd = &mut stack[last];
            if !nd.done.contains(&nd.chosen) {
                nd.done.push(nd.chosen);
            }
            let mut candidates: Vec<(usize, Decision)> = nd
                .backtrack
                .iter()
                .copied()
                .filter(|c| {
                    !nd.done.contains(c)
                        && !nd
                            .sleep
                            .iter()
                            .any(|e| e.proc == c.0 && e.decision == c.1)
                })
                .collect();
            candidates.sort_by_key(|&(p, d)| (p, decision_rank(d)));
            match candidates.first() {
                Some(&c) => {
                    nd.backtrack.retain(|&x| x != c);
                    nd.chosen = c;
                    nd.access = nd.pending[c.0].expect("queued choices were runnable");
                    if c.1 == Decision::Proceed && nd.access.1 == AccessKind::Rsc && budget_left {
                        nd.queue((c.0, Decision::SpuriousFail));
                    }
                    break;
                }
                None => {
                    stack.pop();
                }
            }
        }
    }
}

/// Explores every schedule of `program` on provider `P` (up to
/// `max_executions` completed-or-blocked runs), checking each distinct
/// history for linearizability against the Figure-2 LL/SC specification.
///
/// Stops at the first violation. Deterministic: same provider, program and
/// mode always explore the same schedules in the same order.
///
/// # Errors
///
/// Propagates the provider's environment/variable construction errors.
pub fn check<P: Provider>(
    program: &Program,
    mode: Mode,
    max_executions: u64,
) -> Result<Outcome, nbsp_core::Error> {
    let n = program.n();
    let mut seen: HashSet<u64> = HashSet::new();
    explore(
        n,
        program.spurious_budget,
        mode,
        max_executions,
        |prefix, frontier| run_execution::<P>(program, prefix, frontier),
        |exec| {
            let fp = history_fingerprint(&exec.history);
            if !seen.insert(fp) {
                Judgment::Duplicate
            } else if is_linearizable(LlScSpec::new(n, program.initial), &exec.history) {
                Judgment::Pass
            } else {
                Judgment::Fail(exec.history.clone())
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::PlanOp;
    use nbsp_core::provider::{Fig4Native, Fig4Sim, Fig5Rll, LockBaseline};

    fn program(plans: Vec<Vec<PlanOp>>, spurious_budget: u32) -> Program {
        Program {
            initial: 0,
            plans,
            spurious_budget,
        }
    }

    fn racing_incr() -> Program {
        program(
            vec![
                vec![PlanOp::Ll, PlanOp::Sc(1)],
                vec![PlanOp::Ll, PlanOp::Sc(2)],
            ],
            0,
        )
    }

    #[test]
    fn fig4_native_is_exhaustively_linearizable() {
        let out = check::<Fig4Native>(&racing_incr(), Mode::Dpor, 1 << 20).unwrap();
        assert!(out.violation.is_none());
        assert!(!out.capped);
        assert!(out.executions >= 2, "both SC orders must be explored");
    }

    #[test]
    fn dpor_and_naive_agree_and_dpor_is_no_larger() {
        let prog = program(
            vec![
                vec![PlanOp::Ll, PlanOp::Vl, PlanOp::Sc(1)],
                vec![PlanOp::Ll, PlanOp::Vl, PlanOp::Sc(2)],
            ],
            0,
        );
        let naive = check::<Fig4Native>(&prog, Mode::Naive, 1 << 20).unwrap();
        let dpor = check::<Fig4Native>(&prog, Mode::Dpor, 1 << 20).unwrap();
        assert!(naive.violation.is_none());
        assert!(dpor.violation.is_none());
        assert!(!naive.capped && !dpor.capped);
        assert!(
            dpor.executions + dpor.sleep_blocked <= naive.executions,
            "reduction must not explore more than the full DFS"
        );
        assert!(
            naive.unique_histories >= dpor.unique_histories,
            "the full DFS sees every history the reduced search sees"
        );
    }

    #[test]
    fn lock_baseline_three_processes() {
        let prog = program(
            vec![
                vec![PlanOp::Ll, PlanOp::Sc(1)],
                vec![PlanOp::Ll, PlanOp::Sc(2)],
                vec![PlanOp::Ll, PlanOp::Sc(3)],
            ],
            0,
        );
        let out = check::<LockBaseline>(&prog, Mode::Dpor, 1 << 20).unwrap();
        assert!(out.violation.is_none());
        assert!(!out.capped);
        assert!(out.executions >= 6, "at least every SC order (3!) is distinct");
    }

    #[test]
    fn simulated_provider_is_checkable() {
        let out = check::<Fig4Sim>(&racing_incr(), Mode::Dpor, 1 << 20).unwrap();
        assert!(out.violation.is_none());
        assert!(!out.capped);
    }

    #[test]
    fn spurious_budget_branches_rsc_schedules() {
        // Fig5Rll's SC is a real RSC: with budget, the checker must explore
        // strictly more schedules (the forced-failure branches).
        let without = check::<Fig5Rll>(&racing_incr(), Mode::Dpor, 1 << 20).unwrap();
        let with = check::<Fig5Rll>(
            &program(
                vec![
                    vec![PlanOp::Ll, PlanOp::Sc(1)],
                    vec![PlanOp::Ll, PlanOp::Sc(2)],
                ],
                1,
            ),
            Mode::Dpor,
            1 << 20,
        )
        .unwrap();
        assert!(without.violation.is_none());
        assert!(with.violation.is_none());
        assert!(
            with.executions > without.executions,
            "spurious branches must add schedules ({} vs {})",
            with.executions,
            without.executions
        );
    }
}
