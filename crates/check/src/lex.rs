//! A dependency-free Rust token lexer for the obligation analyzer.
//!
//! The static passes in [`crate::flow`] need to see *calls*, *bindings*
//! and *control keywords* — not types or macros — so this lexer is
//! deliberately small: it produces identifiers, literals, lifetimes and
//! punctuation with 1-based line numbers, and it drops comments and
//! normalizes every string/char literal to an opaque literal token (so a
//! brace inside a string can never unbalance the CFG builder). What it
//! does get exactly right is the part that matters for token-tree
//! nesting: nested block comments, raw strings (`r#"…"#`), byte strings,
//! char literals vs lifetimes, and the multi-character operators the
//! downstream passes match on (`::`, `=>`, `->`, `==`, `..`).

/// What kind of lexeme a [`Token`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `loop`, `keep`, …).
    Ident,
    /// A numeric, string, char or byte literal (string/char contents are
    /// replaced by a placeholder; numbers keep their text).
    Lit,
    /// A lifetime or loop label (`'a`, `'retry`) — without the quote.
    Lifetime,
    /// Punctuation; multi-character operators that downstream passes
    /// match on arrive as one token (`::`, `=>`, `->`, `==`, `!=`, `<=`,
    /// `>=`, `&&`, `||`, `..`, `..=`).
    Punct,
}

/// One lexeme with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The lexeme class.
    pub kind: TokKind,
    /// The lexeme text (placeholder `"§str"`/`"§char"` for string/char
    /// literal contents).
    pub text: String,
    /// 1-based line of the lexeme's first character.
    pub line: u32,
}

impl Token {
    /// True iff this is the identifier `s`.
    #[must_use]
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True iff this is the punctuation `s`.
    #[must_use]
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Multi-character operators kept as single tokens, longest first.
const MULTI_PUNCT: &[&str] = &[
    "..=", "...", "<<=", ">>=", "::", "=>", "->", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=",
    "*=", "/=", "%=", "^=", "|=", "&=", "..",
];

/// Lexes Rust source into a flat token stream. Comments vanish; string
/// and char literal contents are replaced with placeholders; everything
/// else keeps its text. Never panics on malformed input — an unexpected
/// byte becomes a one-character punct token.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lex(src: &str) -> Vec<Token> {
    let b = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = b.len();

    let ident_start = |c: u8| c == b'_' || c.is_ascii_alphabetic();
    let ident_cont = |c: u8| c == b'_' || c.is_ascii_alphanumeric();

    while i < n {
        let c = b[i];
        // Whitespace.
        if c == b'\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comments (covers `//`, `///`, `//!`).
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comments, nested.
        if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let mut depth = 1usize;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'\n' {
                    line += 1;
                    i += 1;
                } else if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw strings: r"…" / r#"…"# / br#"…"# (any # count).
        if (c == b'r' || c == b'b') && {
            let mut j = i;
            if b[j] == b'b' && j + 1 < n && b[j + 1] == b'r' {
                j += 1;
            }
            b[j] == b'r' && {
                let mut k = j + 1;
                while k < n && b[k] == b'#' {
                    k += 1;
                }
                k < n && b[k] == b'"'
            }
        } {
            let start_line = line;
            let mut j = i;
            if b[j] == b'b' {
                j += 1;
            }
            j += 1; // past 'r'
            let mut hashes = 0usize;
            while j < n && b[j] == b'#' {
                hashes += 1;
                j += 1;
            }
            j += 1; // past opening quote
            loop {
                if j >= n {
                    break;
                }
                if b[j] == b'\n' {
                    line += 1;
                    j += 1;
                    continue;
                }
                if b[j] == b'"' {
                    let mut k = j + 1;
                    let mut seen = 0usize;
                    while k < n && seen < hashes && b[k] == b'#' {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        j = k;
                        break;
                    }
                }
                j += 1;
            }
            toks.push(Token { kind: TokKind::Lit, text: "§str".into(), line: start_line });
            i = j;
            continue;
        }
        // Plain and byte strings.
        if c == b'"' || (c == b'b' && i + 1 < n && b[i + 1] == b'"') {
            let start_line = line;
            let mut j = if c == b'b' { i + 2 } else { i + 1 };
            while j < n {
                match b[j] {
                    b'\\' => j += 2,
                    b'\n' => {
                        line += 1;
                        j += 1;
                    }
                    b'"' => {
                        j += 1;
                        break;
                    }
                    _ => j += 1,
                }
            }
            toks.push(Token { kind: TokKind::Lit, text: "§str".into(), line: start_line });
            i = j;
            continue;
        }
        // Char literal vs lifetime/label. A quote starts a char literal
        // iff it closes within a couple of characters (`'x'`, `'\n'`,
        // `'\u{1F600}'`); otherwise it is a lifetime.
        if c == b'\'' {
            if i + 1 < n && b[i + 1] == b'\\' {
                // Escaped char literal: scan to the closing quote.
                let mut j = i + 2;
                if j < n {
                    j += 1; // the escaped character
                }
                if j < n && b[j - 1] == b'u' && b[j] == b'{' {
                    while j < n && b[j] != b'}' {
                        j += 1;
                    }
                    j += 1;
                }
                while j < n && b[j] != b'\'' {
                    j += 1;
                }
                toks.push(Token { kind: TokKind::Lit, text: "§char".into(), line });
                i = j + 1;
                continue;
            }
            if i + 2 < n && b[i + 2] == b'\'' && b[i + 1] != b'\'' {
                toks.push(Token { kind: TokKind::Lit, text: "§char".into(), line });
                i += 3;
                continue;
            }
            // Lifetime or label: 'ident.
            let mut j = i + 1;
            while j < n && ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Lifetime,
                text: String::from_utf8_lossy(&b[i + 1..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        // Identifiers and keywords (incl. r#ident raw identifiers).
        if ident_start(c) {
            let mut j = i + 1;
            while j < n && ident_cont(b[j]) {
                j += 1;
            }
            toks.push(Token {
                kind: TokKind::Ident,
                text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        // Numbers: integers, floats, hex/oct/bin, suffixes, underscores.
        // Stop a float at `..` so ranges survive (`0..n`).
        if c.is_ascii_digit() {
            let mut j = i + 1;
            while j < n {
                let d = b[j];
                if ident_cont(d)
                    || (d == b'.'
                        && j + 1 < n
                        && b[j + 1] != b'.'
                        && !ident_start(b[j + 1]))
                {
                    j += 1;
                } else {
                    break;
                }
            }
            toks.push(Token {
                kind: TokKind::Lit,
                text: String::from_utf8_lossy(&b[i..j]).into_owned(),
                line,
            });
            i = j;
            continue;
        }
        // Multi-character operators, longest match first.
        let rest = &src[i..];
        if let Some(op) = MULTI_PUNCT.iter().find(|op| rest.starts_with(**op)) {
            toks.push(Token { kind: TokKind::Punct, text: (*op).into(), line });
            i += op.len();
            continue;
        }
        // Single-character punct (fallback for anything unexpected too).
        toks.push(Token {
            kind: TokKind::Punct,
            text: (c as char).to_string(),
            line,
        });
        i += 1;
    }
    toks
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        lex(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn idents_puncts_and_lines() {
        let toks = lex("fn f() {\n  x.ll(ctx)\n}\n");
        assert!(toks[0].is_ident("fn"));
        assert!(toks[1].is_ident("f"));
        let ll = toks.iter().find(|t| t.is_ident("ll")).unwrap();
        assert_eq!(ll.line, 2);
    }

    #[test]
    fn comments_are_dropped() {
        assert_eq!(texts("a // b { c\nd /* e /* f */ g */ h"), ["a", "d", "h"]);
    }

    #[test]
    fn block_comment_lines_are_counted() {
        let toks = lex("/* one\ntwo */ x");
        assert_eq!(toks[0].line, 2);
    }

    #[test]
    fn strings_cannot_unbalance_braces() {
        assert_eq!(texts(r#"{ "}{" }"#), ["{", "§str", "}"]);
        assert_eq!(texts("r#\"quote \" and }{\"# x"), ["§str", "x"]);
        assert_eq!(texts(r#"b"bytes {""#), ["§str"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = lex(r"'a' 'static '\n' 'retry: x");
        assert_eq!(toks[0].kind, TokKind::Lit);
        assert_eq!(toks[1].kind, TokKind::Lifetime);
        assert_eq!(toks[1].text, "static");
        assert_eq!(toks[2].kind, TokKind::Lit);
        assert_eq!(toks[3].kind, TokKind::Lifetime);
        assert_eq!(toks[3].text, "retry");
        assert!(toks[4].is_punct(":"));
    }

    #[test]
    fn multi_char_operators_are_single_tokens() {
        assert_eq!(texts("a::b => c -> d == e"), ["a", "::", "b", "=>", "c", "->", "d", "==", "e"]);
        assert_eq!(texts("0..n x..=y"), ["0", "..", "n", "x", "..=", "y"]);
    }

    #[test]
    fn numbers_keep_ranges_intact() {
        assert_eq!(texts("1.5 + 0..10"), ["1.5", "+", "0", "..", "10"]);
        assert_eq!(texts("0x1f_u64"), ["0x1f_u64"]);
    }

    #[test]
    fn shift_right_stays_split_for_generics() {
        // `Vec<Vec<u64>>` must not produce a `>>` token that would confuse
        // angle-bracket skipping in the CFG builder.
        let t = texts("Vec<Vec<u64>>");
        assert_eq!(t, ["Vec", "<", "Vec", "<", "u64", ">", ">"]);
    }
}
