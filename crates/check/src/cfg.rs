//! Intraprocedural control-flow graphs for the obligation analyzer.
//!
//! Built on the token stream from [`crate::lex`]: tokens are first nested
//! into a delimiter tree ([`build_tree`]), then every `fn` body is lowered
//! into basic blocks with explicit branch edges for `if`/`else` chains,
//! `match` arms, `loop`/`while`/`for` (with back edges and labelled
//! `break`/`continue`), `let … else` divergence, `return`, and the `?`
//! operator (which splits its block and adds an early-exit edge *at the
//! split point*, so events before and after the `?` land on the right
//! side of the edge).
//!
//! While lowering, the builder extracts the protocol **events** the
//! dataflow pass consumes: keep births (`ll`/`wll`/`llx`) and keep
//! consumers (`sc`/`vl`/`cl`/`scx`/`vlx`/`unlink`), with the keep operand
//! identified positionally from the known call signatures (see
//! [`scan_call`] for the arity table). Known approximations, documented
//! in `DESIGN.md` §16: closure bodies are inlined at their definition
//! site (treated as executed exactly once), expression-position `match`
//! inside call arguments is scanned linearly, and array indices are
//! erased from keep identities (`keeps[i]` → `keeps[]`).

use crate::lex::{lex, TokKind, Token};

// ---------------------------------------------------------------------------
// Token tree
// ---------------------------------------------------------------------------

/// A token or a delimited group in the nesting tree.
#[derive(Clone, Debug)]
pub enum Tt {
    /// A leaf token.
    Tok(Token),
    /// A `(…)`, `[…]` or `{…}` group.
    Group(Group),
}

/// A delimited group: its opening delimiter, source line, and children.
#[derive(Clone, Debug)]
pub struct Group {
    /// `'('`, `'['` or `'{'`.
    pub open: char,
    /// 1-based line of the opening delimiter.
    pub line: u32,
    /// Nested tokens and groups.
    pub items: Vec<Tt>,
}

impl Tt {
    fn line(&self) -> u32 {
        match self {
            Tt::Tok(t) => t.line,
            Tt::Group(g) => g.line,
        }
    }

    fn is_ident(&self, s: &str) -> bool {
        matches!(self, Tt::Tok(t) if t.is_ident(s))
    }

    fn is_punct(&self, s: &str) -> bool {
        matches!(self, Tt::Tok(t) if t.is_punct(s))
    }

    fn as_group(&self, open: char) -> Option<&Group> {
        match self {
            Tt::Group(g) if g.open == open => Some(g),
            _ => None,
        }
    }

    fn ident_text(&self) -> Option<&str> {
        match self {
            Tt::Tok(t) if t.kind == TokKind::Ident => Some(&t.text),
            _ => None,
        }
    }
}

/// Nests a flat token stream into a delimiter tree. Unbalanced closers
/// are dropped; unclosed groups end at EOF (robustness over strictness —
/// the scanned sources are compiler-checked long before they get here).
#[must_use]
pub fn build_tree(tokens: &[Token]) -> Vec<Tt> {
    fn close_of(open: &str) -> char {
        match open {
            "(" => ')',
            "[" => ']',
            _ => '}',
        }
    }
    let mut stack: Vec<Group> = vec![Group { open: '#', line: 0, items: Vec::new() }];
    for t in tokens {
        if t.kind == TokKind::Punct && matches!(t.text.as_str(), "(" | "[" | "{") {
            stack.push(Group {
                open: t.text.chars().next().unwrap_or('('),
                line: t.line,
                items: Vec::new(),
            });
        } else if t.kind == TokKind::Punct
            && matches!(t.text.as_str(), ")" | "]" | "}")
            && stack.len() > 1
            && t.text.chars().next().unwrap_or(')')
                == close_of(&stack[stack.len() - 1].open.to_string())
        {
            let g = stack.pop().expect("len > 1");
            stack
                .last_mut()
                .expect("root never popped")
                .items
                .push(Tt::Group(g));
        } else {
            stack
                .last_mut()
                .expect("root never popped")
                .items
                .push(Tt::Tok(t.clone()));
        }
    }
    while stack.len() > 1 {
        let g = stack.pop().expect("len > 1");
        stack
            .last_mut()
            .expect("root never popped")
            .items
            .push(Tt::Group(g));
    }
    stack.pop().map(|g| g.items).unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// A keep-protocol event inside a basic block, in program order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Birth (`ll`/`wll`/`llx`) or consumption (`sc`/`vl`/`cl`/`scx`/
    /// `vlx`/`unlink`).
    pub kind: EventKind,
    /// The keep identity: the operand identifier (`keep`, `h.keep`,
    /// `keeps[]`), or `@recv` for receiver-managed keeps (one-argument
    /// keep-search style calls), or [`UNBOUND_LLX`] for an `llx` whose
    /// handle binding could not be identified.
    pub keep: String,
    /// The protocol method that produced the event.
    pub method: &'static str,
    /// 1-based source line of the call.
    pub line: u32,
}

/// Birth or consumption.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// The keep becomes live (an LL–SC sequence opens).
    Birth,
    /// The keep is resolved (SC/VL/CL/SCX/VLX/unlink).
    Consume,
}

/// Keep identity used for an `llx` call whose result binding could not
/// be determined (reported as a leak unless annotated).
pub const UNBOUND_LLX: &str = "<unbound llx handle>";

/// Methods that open an LL–SC sequence.
const BIRTH_METHODS: &[&str] = &["ll", "wll", "llx"];
/// Methods that resolve one (or several, for `scx`/`vlx`).
const CONSUME_METHODS: &[&str] = &["sc", "vl", "cl", "scx", "vlx", "unlink"];
/// The multi-word LLX/SCX family — clients of these may transiently hold
/// one extra helping sequence (see `PROVIDER_K` certification).
const LLX_FAMILY: &[&str] = &["llx", "scx", "vlx", "unlink"];

/// Protocol verbs: functions *named* like the protocol itself are its
/// implementations (trait impls, delegating wrappers); their keeps belong
/// to their callers, so the leak verdict does not apply to them.
pub const PROTOCOL_FN_NAMES: &[&str] =
    &["ll", "sc", "vl", "cl", "wll", "llx", "scx", "vlx", "unlink"];

// ---------------------------------------------------------------------------
// CFG
// ---------------------------------------------------------------------------

/// A basic block: events in order, successor edges, and an optional edge
/// to the (virtual) function exit.
#[derive(Clone, Debug, Default)]
pub struct Block {
    /// 1-based line of the first token lowered into this block (0 if
    /// empty — join blocks often are).
    pub line: u32,
    /// Keep events, in program order.
    pub events: Vec<Event>,
    /// Successor block indices.
    pub succs: Vec<usize>,
    /// `Some((line, kind))` if control can leave the function from the
    /// *end* of this block: `kind` is `"return"`, `"?"` or `"end"`.
    pub exit: Option<(u32, &'static str)>,
}

/// A function's control-flow graph. Block 0 is the entry.
#[derive(Clone, Debug, Default)]
pub struct Cfg {
    /// The blocks; index 0 is the entry block.
    pub blocks: Vec<Block>,
}

/// A parsed function with its CFG.
#[derive(Clone, Debug)]
pub struct Function {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter binding names (`self` and `_`-prefixed names included).
    pub params: Vec<String>,
    /// The lowered control-flow graph.
    pub cfg: Cfg,
    /// True if the body uses the multi-word LLX/SCX family.
    pub uses_llx_family: bool,
    /// The body's token tree (used by token-level passes such as the
    /// backoff-discipline lint).
    pub body: Group,
}

struct LoopCtx {
    label: Option<String>,
    break_to: usize,
    continue_to: usize,
}

struct Builder {
    blocks: Vec<Block>,
    uses_llx_family: bool,
    /// Bindings of the innermost pending `let`, cleared at `;`.
    pending_let: Vec<String>,
}

impl Builder {
    fn new_block(&mut self, line: u32) -> usize {
        self.blocks.push(Block { line, ..Block::default() });
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.blocks[from].succs.contains(&to) {
            self.blocks[from].succs.push(to);
        }
    }

    fn touch(&mut self, block: usize, line: u32) {
        if self.blocks[block].line == 0 {
            self.blocks[block].line = line;
        }
    }

    /// Lowers a statement sequence starting in `cur`; returns the block
    /// where control continues after the sequence.
    #[allow(clippy::too_many_lines)]
    fn seq(&mut self, items: &[Tt], mut cur: usize, loops: &mut Vec<LoopCtx>) -> usize {
        let mut i = 0usize;
        let mut pending_label: Option<String> = None;
        while i < items.len() {
            let it = &items[i];
            self.touch(cur, it.line());
            // Loop labels: 'name :
            if let Tt::Tok(t) = it {
                if t.kind == TokKind::Lifetime && items.get(i + 1).is_some_and(|n| n.is_punct(":"))
                {
                    pending_label = Some(t.text.clone());
                    i += 2;
                    continue;
                }
            }
            // Attributes inside bodies: # [ … ]
            if it.is_punct("#") && items.get(i + 1).and_then(|n| n.as_group('[')).is_some() {
                i += 2;
                continue;
            }
            // Nested `fn` items get their own CFG elsewhere; skip the
            // whole item (signature through body or `;`).
            if it.is_ident("fn") {
                i += 1;
                while i < items.len() {
                    if items[i].is_punct(";") {
                        i += 1;
                        break;
                    }
                    if items[i].as_group('{').is_some() {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
            if it.is_ident("if") {
                let (ni, after) = self.lower_if(items, i, cur, loops);
                i = ni;
                cur = after;
                continue;
            }
            if it.is_ident("match") {
                let (ni, after) = self.lower_match(items, i, cur, loops);
                i = ni;
                cur = after;
                continue;
            }
            if it.is_ident("loop") {
                let label = pending_label.take();
                let Some(body) = items.get(i + 1).and_then(|n| n.as_group('{')) else {
                    i += 1;
                    continue;
                };
                let head = self.new_block(body.line);
                self.edge(cur, head);
                let join = self.new_block(0);
                loops.push(LoopCtx { label, break_to: join, continue_to: head });
                let end = self.seq(&body.items, head, loops);
                self.edge(end, head);
                loops.pop();
                cur = join;
                i += 2;
                continue;
            }
            if it.is_ident("while") || it.is_ident("for") {
                let label = pending_label.take();
                let is_for = it.is_ident("for");
                // Condition (or `pat in iter`) up to the body group.
                let mut j = i + 1;
                let mut cond: Vec<&Tt> = Vec::new();
                while j < items.len() && items[j].as_group('{').is_none() {
                    cond.push(&items[j]);
                    j += 1;
                }
                let Some(body) = items.get(j).and_then(|n| n.as_group('{')) else {
                    i = j;
                    continue;
                };
                // `for`: the iterator expression is evaluated once, in
                // `cur`; `while`: the condition re-runs every iteration,
                // in the head block.
                let head = self.new_block(it.line());
                if is_for {
                    let in_pos = cond.iter().position(|t| t.is_ident("in")).unwrap_or(0);
                    cur = self.scan_exprs_ref(&cond[in_pos..], cur);
                    self.edge(cur, head);
                } else {
                    self.edge(cur, head);
                }
                let head_end = if is_for {
                    head
                } else {
                    self.scan_exprs_ref(&cond, head)
                };
                let join = self.new_block(0);
                self.edge(head_end, join);
                let body_entry = self.new_block(body.line);
                self.edge(head_end, body_entry);
                loops.push(LoopCtx { label, break_to: join, continue_to: head });
                let end = self.seq(&body.items, body_entry, loops);
                self.edge(end, head);
                loops.pop();
                cur = join;
                i = j + 1;
                continue;
            }
            if it.is_ident("return") {
                let line = it.line();
                let mut j = i + 1;
                let mut expr: Vec<&Tt> = Vec::new();
                while j < items.len() && !items[j].is_punct(";") {
                    expr.push(&items[j]);
                    j += 1;
                }
                cur = self.scan_exprs_ref(&expr, cur);
                self.blocks[cur].exit = Some((line, "return"));
                cur = self.new_block(0); // unreachable continuation
                i = j + 1;
                continue;
            }
            if it.is_ident("break") || it.is_ident("continue") {
                let is_break = it.is_ident("break");
                let mut j = i + 1;
                let mut label: Option<String> = None;
                if let Some(Tt::Tok(t)) = items.get(j) {
                    if t.kind == TokKind::Lifetime {
                        label = Some(t.text.clone());
                        j += 1;
                    }
                }
                let mut expr: Vec<&Tt> = Vec::new();
                while j < items.len() && !items[j].is_punct(";") {
                    expr.push(&items[j]);
                    j += 1;
                }
                cur = self.scan_exprs_ref(&expr, cur);
                let target = loops
                    .iter()
                    .rev()
                    .find(|c| label.is_none() || c.label == label)
                    .map(|c| if is_break { c.break_to } else { c.continue_to });
                if let Some(t) = target {
                    self.edge(cur, t);
                }
                cur = self.new_block(0);
                i = j + 1;
                continue;
            }
            if it.is_ident("let") {
                // Extract pattern bindings up to `=` (or give up at `;`);
                // the initializer is lowered by this same loop, so
                // control flow inside it keeps its branch structure.
                let mut j = i + 1;
                let mut pat: Vec<&Tt> = Vec::new();
                while j < items.len()
                    && !items[j].is_punct("=")
                    && !items[j].is_punct(";")
                {
                    pat.push(&items[j]);
                    j += 1;
                }
                if items.get(j).is_some_and(|t| t.is_punct("=")) {
                    self.pending_let = pattern_bindings(&pat);
                    i = j + 1;
                } else {
                    self.pending_let.clear();
                    i = j;
                }
                continue;
            }
            // `else` reaching the statement walker is a `let … else`
            // diverging block (if/else chains consume their own `else`).
            if it.is_ident("else") {
                if let Some(body) = items.get(i + 1).and_then(|n| n.as_group('{')) {
                    // An `llx` birth in this statement's initializer only
                    // happens on the *success* path — the else branch runs
                    // precisely when no handle was linked. Move it past
                    // the branch point.
                    let mut moved = Vec::new();
                    while let Some(last) = self.blocks[cur].events.last() {
                        let is_stmt_birth = last.kind == EventKind::Birth
                            && last.method == "llx"
                            && (self.pending_let.contains(&last.keep)
                                || last.keep == UNBOUND_LLX);
                        if !is_stmt_birth {
                            break;
                        }
                        if let Some(e) = self.blocks[cur].events.pop() {
                            moved.push(e);
                        }
                    }
                    let else_entry = self.new_block(body.line);
                    self.edge(cur, else_entry);
                    // The else body must diverge; its terminal block gets
                    // no fallthrough edge.
                    let _dead = self.seq(&body.items, else_entry, loops);
                    let succ = self.new_block(0);
                    self.edge(cur, succ);
                    cur = succ;
                    for e in moved.into_iter().rev() {
                        self.blocks[cur].events.push(e);
                    }
                    i += 2;
                    continue;
                }
                i += 1;
                continue;
            }
            if it.is_punct(";") {
                self.pending_let.clear();
                i += 1;
                continue;
            }
            if it.is_punct("?") {
                let line = it.line();
                self.blocks[cur].exit = Some((line, "?"));
                let nb = self.new_block(0);
                self.edge(cur, nb);
                cur = nb;
                i += 1;
                continue;
            }
            // Statement-level brace group: nested scope (or a struct
            // literal / trailing-closure body — lowering those as a
            // scope is equivalent for event ordering).
            if let Some(g) = it.as_group('{') {
                cur = self.seq(&g.items, cur, loops);
                i += 1;
                continue;
            }
            // Protocol call?
            if let Some(ni) = self.try_call(items, i, &mut cur) {
                i = ni;
                continue;
            }
            // Other group: scan linearly for nested events.
            if let Tt::Group(g) = it {
                cur = self.scan_group(g, cur);
            }
            i += 1;
        }
        cur
    }

    /// `if` / `else if` / `else` chains. Returns (next index, join block).
    fn lower_if(
        &mut self,
        items: &[Tt],
        i: usize,
        cur: usize,
        loops: &mut Vec<LoopCtx>,
    ) -> (usize, usize) {
        // Condition up to the then-block.
        let mut j = i + 1;
        let mut cond: Vec<&Tt> = Vec::new();
        while j < items.len() && items[j].as_group('{').is_none() {
            cond.push(&items[j]);
            j += 1;
        }
        let cur = self.scan_exprs_ref(&cond, cur);
        let after = self.new_block(0);
        let Some(then_g) = items.get(j).and_then(|n| n.as_group('{')) else {
            self.edge(cur, after);
            return (j, after);
        };
        let then_entry = self.new_block(then_g.line);
        self.edge(cur, then_entry);
        let t_end = self.seq(&then_g.items, then_entry, loops);
        self.edge(t_end, after);
        j += 1;
        if items.get(j).is_some_and(|t| t.is_ident("else")) {
            if items.get(j + 1).is_some_and(|t| t.is_ident("if")) {
                let else_entry = self.new_block(items[j + 1].line());
                self.edge(cur, else_entry);
                let (nj, elif_after) = self.lower_if(items, j + 1, else_entry, loops);
                self.edge(elif_after, after);
                return (nj, after);
            }
            if let Some(else_g) = items.get(j + 1).and_then(|n| n.as_group('{')) {
                let else_entry = self.new_block(else_g.line);
                self.edge(cur, else_entry);
                let e_end = self.seq(&else_g.items, else_entry, loops);
                self.edge(e_end, after);
                return (j + 2, after);
            }
        } else {
            self.edge(cur, after);
        }
        (j, after)
    }

    /// `match` lowering: one branch per arm, no head→join fallthrough
    /// (matches are exhaustive). An `llx` in the scrutinee births the
    /// handle bound by each arm's pattern.
    fn lower_match(
        &mut self,
        items: &[Tt],
        i: usize,
        mut cur: usize,
        loops: &mut Vec<LoopCtx>,
    ) -> (usize, usize) {
        let mut j = i + 1;
        let mut scrut: Vec<&Tt> = Vec::new();
        while j < items.len() && items[j].as_group('{').is_none() {
            scrut.push(&items[j]);
            j += 1;
        }
        cur = self.scan_exprs_ref(&scrut, cur);
        // An llx in the scrutinee: retract the unbound birth, rebind per
        // arm below.
        let mut scrut_llx: Option<u32> = None;
        if let Some(pos) = self.blocks[cur]
            .events
            .iter()
            .rposition(|e| e.kind == EventKind::Birth && e.keep == UNBOUND_LLX)
        {
            scrut_llx = Some(self.blocks[cur].events[pos].line);
            self.blocks[cur].events.remove(pos);
        }
        let after = self.new_block(0);
        let Some(arms) = items.get(j).and_then(|n| n.as_group('{')) else {
            self.edge(cur, after);
            return (j, after);
        };
        let mut k = 0usize;
        while k < arms.items.len() {
            // Pattern (and guard) up to `=>`.
            let mut pat: Vec<&Tt> = Vec::new();
            while k < arms.items.len() && !arms.items[k].is_punct("=>") {
                pat.push(&arms.items[k]);
                k += 1;
            }
            if k >= arms.items.len() {
                break;
            }
            k += 1; // past =>
            let arm_entry = self.new_block(arms.items.get(k).map_or(0, Tt::line));
            self.edge(cur, arm_entry);
            if let Some(line) = scrut_llx {
                let binds = pattern_bindings(&pat);
                if binds.len() == 1 {
                    self.uses_llx_family = true;
                    self.blocks[arm_entry].events.push(Event {
                        kind: EventKind::Birth,
                        keep: binds[0].clone(),
                        method: "llx",
                        line,
                    });
                }
            }
            // Guards can call; scan the pattern+guard tokens too.
            let arm_entry = self.scan_exprs_ref(&pat, arm_entry);
            // Arm body: a block, or expression items up to a top-level `,`.
            let a_end = if let Some(body) = arms.items.get(k).and_then(|n| n.as_group('{')) {
                k += 1;
                if arms.items.get(k).is_some_and(|t| t.is_punct(",")) {
                    k += 1;
                }
                self.seq(&body.items, arm_entry, loops)
            } else {
                let start = k;
                while k < arms.items.len() && !arms.items[k].is_punct(",") {
                    k += 1;
                }
                let body: Vec<Tt> = arms.items[start..k].to_vec();
                if arms.items.get(k).is_some_and(|t| t.is_punct(",")) {
                    k += 1;
                }
                self.seq(&body, arm_entry, loops)
            };
            self.edge(a_end, after);
        }
        (j + 1, after)
    }

    /// Scans expression tokens (by reference) for events, honouring `?`
    /// splits and protocol calls; returns the (possibly new) current
    /// block.
    fn scan_exprs_ref(&mut self, items: &[&Tt], cur: usize) -> usize {
        let owned: Vec<Tt> = items.iter().map(|t| (*t).clone()).collect();
        self.scan_exprs(&owned, cur)
    }

    /// Like [`Builder::seq`] but for expression position: no statement
    /// constructs, only calls, groups and `?`.
    fn scan_exprs(&mut self, items: &[Tt], mut cur: usize) -> usize {
        let mut i = 0usize;
        while i < items.len() {
            let it = &items[i];
            if it.is_punct("?") {
                self.blocks[cur].exit = Some((it.line(), "?"));
                let nb = self.new_block(0);
                self.edge(cur, nb);
                cur = nb;
                i += 1;
                continue;
            }
            if let Some(ni) = self.try_call(items, i, &mut cur) {
                i = ni;
                continue;
            }
            if let Tt::Group(g) = it {
                cur = self.scan_group(g, cur);
            }
            i += 1;
        }
        cur
    }

    fn scan_group(&mut self, g: &Group, cur: usize) -> usize {
        self.scan_exprs(&g.items, cur)
    }

    /// If `items[i]` starts a protocol call (`.m(…)` or `Path::m(…)` for
    /// a tracked method `m`), scans its arguments, emits its events, and
    /// returns the index just past the argument group.
    fn try_call(&mut self, items: &[Tt], i: usize, cur: &mut usize) -> Option<usize> {
        let name = items[i].ident_text()?;
        let method = BIRTH_METHODS
            .iter()
            .chain(CONSUME_METHODS)
            .find(|m| **m == name)?;
        let args_g = items.get(i + 1)?.as_group('(')?;
        let prev = i.checked_sub(1).map(|p| &items[p])?;
        let via_path = prev.is_punct("::");
        if !prev.is_punct(".") && !via_path {
            return None;
        }
        // Arguments evaluate first: scan them for nested events.
        *cur = self.scan_exprs(&args_g.items, *cur);
        let args = split_args(&args_g.items);
        // UFCS (`LlScVar::ll(&var, ctx, keep)`) shifts every positional
        // argument by one (the receiver is argument 0).
        let shift = usize::from(via_path);
        let line = items[i].line();
        let receiver = receiver_chain(items, i);
        self.emit_call(method, &args, shift, line, &receiver, cur);
        Some(i + 2)
    }

    #[allow(clippy::too_many_lines)]
    fn emit_call(
        &mut self,
        method: &'static str,
        args: &[Vec<&Tt>],
        shift: usize,
        line: u32,
        receiver: &str,
        cur: &mut usize,
    ) {
        if LLX_FAMILY.contains(&method) {
            self.uses_llx_family = true;
        }
        let arity = args.len().saturating_sub(shift);
        let arg = |idx: usize| args.get(idx + shift).map(Vec::as_slice);
        let push = |b: &mut Builder, kind: EventKind, keep: String| {
            b.blocks[*cur].events.push(Event { kind, keep, method, line });
        };
        match method {
            "ll" => match arity {
                2 => {
                    if let Some(k) = arg(1).and_then(operand_ident) {
                        push(self, EventKind::Birth, k);
                    }
                }
                1 => push(self, EventKind::Birth, format!("@{receiver}")),
                _ => {}
            },
            "wll" => {
                // wll(mem, keep, retval_buf)
                if let Some(k) = (arity == 3).then(|| arg(1).and_then(operand_ident)).flatten() {
                    push(self, EventKind::Birth, k);
                }
            }
            "llx" => {
                // The handle is what the caller binds; `pending_let`
                // carries the binding when this call is a let
                // initializer. `match` scrutinees are rebound per arm by
                // the caller (see lower_match).
                let keep = if self.pending_let.len() == 1 {
                    self.pending_let[0].clone()
                } else {
                    UNBOUND_LLX.to_string()
                };
                push(self, EventKind::Birth, keep);
            }
            "sc" => match arity {
                3 => {
                    if let Some(k) = arg(1).and_then(operand_ident) {
                        push(self, EventKind::Consume, k);
                    }
                }
                4 => {
                    // Figure-6 wide form: sc(mem, p, keep, newval).
                    if let Some(k) = arg(2).and_then(operand_ident) {
                        push(self, EventKind::Consume, k);
                    }
                }
                2 => push(self, EventKind::Consume, format!("@{receiver}")),
                _ => {}
            },
            "vl" => match arity {
                2 => {
                    if let Some(k) = arg(1).and_then(operand_ident) {
                        push(self, EventKind::Consume, k);
                    }
                }
                1 => push(self, EventKind::Consume, format!("@{receiver}")),
                _ => {}
            },
            "cl" => match arity {
                2 => {
                    if let Some(k) = arg(1).and_then(operand_ident) {
                        push(self, EventKind::Consume, k);
                    }
                }
                1 => {
                    // BoundedProc-style `cl(keep)`: the argument is the
                    // keep itself.
                    if let Some(k) = arg(0).and_then(operand_ident) {
                        push(self, EventKind::Consume, k);
                    }
                }
                _ => {}
            },
            "scx" => {
                // scx(ctx, p, vec![handles…], fin_mask, rec, field, new):
                // every handle in argument 2 is consumed.
                if let Some(hs) = arg(2) {
                    for k in idents_in(hs) {
                        push(self, EventKind::Consume, k);
                    }
                }
            }
            "vlx" => {
                // vlx(ctx, &[&handles…]).
                if let Some(hs) = arg(1) {
                    for k in idents_in(hs) {
                        push(self, EventKind::Consume, k);
                    }
                }
            }
            "unlink" => {
                if let Some(k) = arg(1).and_then(operand_ident) {
                    push(self, EventKind::Consume, k);
                }
            }
            _ => {}
        }
    }
}

/// Splits a call's argument items at top-level commas.
fn split_args(items: &[Tt]) -> Vec<Vec<&Tt>> {
    let mut out: Vec<Vec<&Tt>> = Vec::new();
    let mut cur: Vec<&Tt> = Vec::new();
    for it in items {
        if it.is_punct(",") {
            out.push(std::mem::take(&mut cur));
        } else {
            cur.push(it);
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Extracts the keep identity from an argument: strips `&`/`mut`, then
/// reads an identifier chain (`keep`, `h.keep`, `keeps[i]` → `keeps[]`).
fn operand_ident(items: &[&Tt]) -> Option<String> {
    let mut i = 0usize;
    while i < items.len() && (items[i].is_punct("&") || items[i].is_ident("mut")) {
        i += 1;
    }
    let first = items.get(i)?.ident_text()?;
    if first == "Some" || first == "None" {
        return None;
    }
    let mut out = first.to_string();
    i += 1;
    while i < items.len() {
        if items[i].is_punct(".") {
            match items.get(i + 1) {
                Some(Tt::Tok(t)) if t.kind == TokKind::Ident || t.kind == TokKind::Lit => {
                    // A method call ends the chain (`keep.as_mut()` keeps
                    // its base identity).
                    if items.get(i + 2).is_some_and(|g| g.as_group('(').is_some()) {
                        break;
                    }
                    out.push('.');
                    out.push_str(&t.text);
                    i += 2;
                }
                _ => break,
            }
        } else if items[i].as_group('[').is_some() {
            out.push_str("[]");
            i += 1;
        } else {
            break;
        }
    }
    Some(out)
}

/// Every bare identifier chain inside a token slice (used for `scx`'s
/// `vec![h1, h2]` and `vlx`'s `&[&h]` handle lists).
fn idents_in(items: &[&Tt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(items: &[Tt], out: &mut Vec<String>) {
        let mut i = 0usize;
        while i < items.len() {
            match &items[i] {
                Tt::Tok(t) if t.kind == TokKind::Ident && t.text != "vec" && t.text != "mut" => {
                    let refs: Vec<&Tt> = items[i..].iter().collect();
                    if let Some(k) = operand_ident(&refs) {
                        out.push(k);
                        // Skip the chain we just consumed.
                        i += 1;
                        while i < items.len()
                            && (items[i].is_punct(".")
                                || items[i].as_group('[').is_some()
                                || items[i].ident_text().is_some())
                        {
                            i += 1;
                        }
                        continue;
                    }
                    i += 1;
                }
                Tt::Group(g) => {
                    walk(&g.items, out);
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    let owned: Vec<Tt> = items.iter().map(|t| (*t).clone()).collect();
    walk(&owned, &mut out);
    out
}

/// The receiver chain of a method call: walks back from the `.` before
/// `items[i]` over `ident`/`.`/`[…]` segments (`self.recs[rec].info.sc(`
/// → `self.recs[].info`).
fn receiver_chain(items: &[Tt], i: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut j = i.checked_sub(1); // the `.` or `::`
    while let Some(jj) = j.and_then(|x| x.checked_sub(1)) {
        match &items[jj] {
            Tt::Tok(t) if t.kind == TokKind::Ident => {
                parts.push(t.text.clone());
                let Some(prev) = jj.checked_sub(1) else { break };
                if items[prev].is_punct(".") || items[prev].is_punct("::") {
                    j = Some(prev);
                } else {
                    break;
                }
            }
            Tt::Group(g) if g.open == '[' => {
                parts.push("[]".to_string());
                j = Some(jj);
                continue;
            }
            _ => break,
        }
    }
    parts.reverse();
    let mut out = String::new();
    for p in &parts {
        if p == "[]" {
            out.push_str("[]");
        } else {
            if !out.is_empty() && !out.ends_with("[]") {
                out.push('.');
            }
            if out.ends_with("[]") {
                out.push('.');
            }
            out.push_str(p);
        }
    }
    if out.is_empty() {
        "<recv>".to_string()
    } else {
        out
    }
}

/// Binding identifiers in a pattern: identifiers that are not path
/// segments (`Enum::Variant`), not followed by a call/struct group, not
/// type-position tokens, and not keywords.
fn pattern_bindings(pat: &[&Tt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(items: &[Tt], out: &mut Vec<String>) {
        let mut i = 0usize;
        let mut after_colon = false;
        while i < items.len() {
            match &items[i] {
                Tt::Tok(t) if t.is_punct(":") => {
                    after_colon = true;
                    i += 1;
                }
                Tt::Tok(t) if t.is_punct(",") => {
                    after_colon = false;
                    i += 1;
                }
                Tt::Tok(t) if t.kind == TokKind::Ident => {
                    let next_path = items.get(i + 1).is_some_and(|n| n.is_punct("::"));
                    let prev_path = i > 0 && items[i - 1].is_punct("::");
                    let next_group = items
                        .get(i + 1)
                        .is_some_and(|n| n.as_group('(').is_some() || n.as_group('{').is_some());
                    let kw = matches!(
                        t.text.as_str(),
                        "mut" | "ref" | "let" | "Some" | "None" | "Ok" | "Err" | "_"
                    );
                    if !after_colon && !next_path && !next_group && !kw && !prev_path {
                        out.push(t.text.clone());
                    }
                    if prev_path && !next_path && !next_group && !after_colon {
                        // `Enum::Variant` bare path — not a binding.
                    }
                    i += 1;
                }
                Tt::Group(g) if !after_colon => {
                    walk(&g.items, out);
                    i += 1;
                }
                _ => i += 1,
            }
        }
    }
    let owned: Vec<Tt> = pat.iter().map(|t| (*t).clone()).collect();
    walk(&owned, &mut out);
    out
}

// ---------------------------------------------------------------------------
// Function discovery
// ---------------------------------------------------------------------------

/// Parses every function in `src` (skipping `#[cfg(test)] mod` bodies)
/// and lowers each body to a CFG.
#[must_use]
pub fn parse_functions(src: &str) -> Vec<Function> {
    let toks = lex(src);
    let tree = build_tree(&toks);
    let mut out = Vec::new();
    collect_fns(&tree, &mut out);
    out
}

fn attr_contains_test(g: &Group) -> bool {
    fn has_test(items: &[Tt]) -> bool {
        items.iter().any(|t| match t {
            Tt::Tok(t) => t.is_ident("test"),
            Tt::Group(g) => has_test(&g.items),
        })
    }
    g.items.iter().any(|t| t.is_ident("cfg")) && has_test(&g.items)
}

fn collect_fns(items: &[Tt], out: &mut Vec<Function>) {
    let mut i = 0usize;
    let mut pending_cfg_test = false;
    while i < items.len() {
        let it = &items[i];
        if it.is_punct("#") {
            if let Some(g) = items.get(i + 1).and_then(|n| n.as_group('[')) {
                if attr_contains_test(g) {
                    pending_cfg_test = true;
                }
                i += 2;
                continue;
            }
        }
        if it.is_ident("mod") && pending_cfg_test {
            // Skip the test module's body entirely.
            let mut j = i + 1;
            while j < items.len() && items[j].as_group('{').is_none() && !items[j].is_punct(";") {
                j += 1;
            }
            i = j + 1;
            pending_cfg_test = false;
            continue;
        }
        if it.is_ident("fn") {
            pending_cfg_test = false;
            if let Some((f, ni)) = parse_one_fn(items, i) {
                // Nested functions inside the body get their own entry.
                if let Some(body) = items[..ni].iter().rev().find_map(|t| t.as_group('{')) {
                    collect_fns(&body.items, out);
                }
                out.push(f);
                i = ni;
                continue;
            }
            i += 1;
            continue;
        }
        if let Tt::Group(g) = it {
            // impl blocks, modules, etc.
            collect_fns(&g.items, out);
        }
        pending_cfg_test = false;
        i += 1;
    }
}

fn parse_one_fn(items: &[Tt], i: usize) -> Option<(Function, usize)> {
    let name_tok = items.get(i + 1)?;
    let name = name_tok.ident_text()?.to_string();
    let line = items[i].line();
    // Parameter group: the first paren group at angle-depth 0.
    let mut j = i + 2;
    let mut angle = 0i32;
    let params_g = loop {
        let it = items.get(j)?;
        if it.is_punct("<") {
            angle += 1;
        } else if it.is_punct(">") {
            angle -= 1;
        } else if angle == 0 {
            if let Some(g) = it.as_group('(') {
                break g;
            }
            if it.is_punct(";") || it.as_group('{').is_some() {
                return None;
            }
        }
        j += 1;
    };
    let params: Vec<String> = split_args(&params_g.items)
        .iter()
        .filter_map(|arg| {
            let pat_end = arg
                .iter()
                .position(|t| t.is_punct(":"))
                .unwrap_or(arg.len());
            let binds = pattern_bindings(&arg[..pat_end]);
            binds.into_iter().find(|b| b != "self")
        })
        .collect();
    // Body: first brace group after the params; `;` means a declaration.
    j += 1;
    let body = loop {
        let it = items.get(j)?;
        if it.is_punct(";") {
            return None;
        }
        if let Some(g) = it.as_group('{') {
            break g;
        }
        j += 1;
    };
    let mut b = Builder {
        blocks: Vec::new(),
        uses_llx_family: false,
        pending_let: Vec::new(),
    };
    let entry = b.new_block(body.line);
    let mut loops = Vec::new();
    let end = b.seq(&body.items, entry, &mut loops);
    if b.blocks[end].exit.is_none() {
        b.blocks[end].exit = Some((last_line(&body.items).unwrap_or(body.line), "end"));
    }
    Some((
        Function {
            name,
            line,
            params,
            cfg: Cfg { blocks: b.blocks },
            uses_llx_family: b.uses_llx_family,
            body: body.clone(),
        },
        j + 1,
    ))
}

fn last_line(items: &[Tt]) -> Option<u32> {
    items.last().map(|t| match t {
        Tt::Tok(tok) => tok.line,
        Tt::Group(g) => last_line(&g.items).unwrap_or(g.line),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fn_named<'a>(fns: &'a [Function], name: &str) -> &'a Function {
        fns.iter().find(|f| f.name == name).unwrap()
    }

    #[test]
    fn simple_ll_sc_events() {
        let fns = parse_functions(
            "fn f(&self, ctx: &mut C) {\n\
                 let mut keep = K::default();\n\
                 let v = self.var.ll(ctx, &mut keep);\n\
                 self.var.sc(ctx, &mut keep, v + 1);\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        let evs: Vec<_> = f.cfg.blocks.iter().flat_map(|b| &b.events).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].kind, EventKind::Birth);
        assert_eq!(evs[0].keep, "keep");
        assert_eq!(evs[0].line, 3);
        assert_eq!(evs[1].kind, EventKind::Consume);
        assert_eq!(evs[1].keep, "keep");
    }

    #[test]
    fn wide_sc_four_arg_form() {
        let fns = parse_functions(
            "fn f(&self) {\n\
                 let mut keep = WideKeep::default();\n\
                 let mut buf = [0u64; 2];\n\
                 self.global.wll(&mem, &mut keep, &mut buf);\n\
                 self.global.sc(&mem, ProcId::new(0), &keep, &new);\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        let evs: Vec<_> = f.cfg.blocks.iter().flat_map(|b| &b.events).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].keep.as_str(), evs[0].kind), ("keep", EventKind::Birth));
        assert_eq!((evs[1].keep.as_str(), evs[1].kind), ("keep", EventKind::Consume));
    }

    #[test]
    fn llx_let_else_and_scx_vec() {
        let fns = parse_functions(
            "fn f(&self, ctx: &mut C) {\n\
                 let LlxOutcome::Linked(hp) = self.d.llx(ctx, par) else {\n\
                     return;\n\
                 };\n\
                 self.d.scx(ctx, p, vec![hp], 0, par, side, v);\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        assert!(f.uses_llx_family);
        let evs: Vec<_> = f.cfg.blocks.iter().flat_map(|b| &b.events).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!((evs[0].keep.as_str(), evs[0].kind), ("hp", EventKind::Birth));
        assert_eq!((evs[1].keep.as_str(), evs[1].kind), ("hp", EventKind::Consume));
        // The birth must sit on the success path, not before the else
        // branch: the block holding the birth must not be an ancestor of
        // the diverging else body.
        let birth_block = f
            .cfg
            .blocks
            .iter()
            .position(|b| b.events.iter().any(|e| e.kind == EventKind::Birth))
            .unwrap();
        assert!(f.cfg.blocks[birth_block].succs.iter().all(|s| *s != birth_block));
    }

    #[test]
    fn question_mark_splits_block() {
        let fns = parse_functions(
            "fn f(&self, ctx: &mut C) -> Result<(), E> {\n\
                 let mut keep = K::default();\n\
                 self.var.ll(ctx, &mut keep);\n\
                 self.check()?;\n\
                 self.var.sc(ctx, &mut keep, 1);\n\
                 Ok(())\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        // Some block carries a "?" exit between the birth and the consume.
        let q = f
            .cfg
            .blocks
            .iter()
            .find(|b| b.exit.is_some_and(|(_, k)| k == "?"))
            .expect("? exit block");
        assert!(q.events.iter().any(|e| e.kind == EventKind::Birth));
        assert!(!q.events.iter().any(|e| e.kind == EventKind::Consume));
    }

    #[test]
    fn loop_has_back_edge_and_break_joins() {
        let fns = parse_functions(
            "fn f(&self, ctx: &mut C) -> u64 {\n\
                 let mut keep = K::default();\n\
                 loop {\n\
                     let v = self.var.ll(ctx, &mut keep);\n\
                     if self.var.sc(ctx, &mut keep, v + 1) {\n\
                         break v;\n\
                     }\n\
                 }\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        // Find the loop head (the block holding the birth).
        let head = f
            .cfg
            .blocks
            .iter()
            .position(|b| b.events.iter().any(|e| e.kind == EventKind::Birth))
            .unwrap();
        // Some block must loop back to the head.
        assert!(f.cfg.blocks.iter().any(|b| b.succs.contains(&head)));
    }

    #[test]
    fn match_scrutinee_llx_binds_per_arm() {
        let fns = parse_functions(
            "fn f(&self, ctx: &mut C) {\n\
                 match self.llx(ctx, rec) {\n\
                     LlxOutcome::Linked(h) => { self.unlink(ctx, h); }\n\
                     LlxOutcome::Finalized => {}\n\
                 }\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        let births: Vec<_> = f
            .cfg
            .blocks
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| e.kind == EventKind::Birth)
            .collect();
        assert_eq!(births.len(), 1);
        assert_eq!(births[0].keep, "h");
        let consumes: Vec<_> = f
            .cfg
            .blocks
            .iter()
            .flat_map(|b| &b.events)
            .filter(|e| e.kind == EventKind::Consume)
            .collect();
        assert_eq!(consumes.len(), 1);
        assert_eq!(consumes[0].keep, "h");
    }

    #[test]
    fn cfg_test_modules_are_skipped() {
        let fns = parse_functions(
            "fn real() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n",
        );
        assert_eq!(fns.len(), 1);
        assert_eq!(fns[0].name, "real");
    }

    #[test]
    fn params_are_extracted() {
        let fns = parse_functions(
            "fn help(&self, ctx: &mut V::Ctx<'_>, keep: &mut K, p: usize) -> bool { true }\n",
        );
        assert_eq!(fns[0].params, ["ctx", "keep", "p"]);
    }

    #[test]
    fn receiver_implicit_keep() {
        let fns = parse_functions(
            "fn f(&self, p: ProcId) {\n\
                 let v = self.registry.ll(p);\n\
                 self.registry.sc(p, v + 1);\n\
             }\n",
        );
        let f = fn_named(&fns, "f");
        let evs: Vec<_> = f.cfg.blocks.iter().flat_map(|b| &b.events).collect();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].keep, "@self.registry");
        assert_eq!(evs[1].keep, "@self.registry");
    }
}
