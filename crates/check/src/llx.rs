//! DPOR model checking of multi-word LLX/SCX commits, end to end.
//!
//! [`crate::exec`]'s plans speak the Figure-2 vocabulary — one shared
//! variable, one LL/VL/SC/read per step. An `nbsp-llx` SCX is a different
//! beast: one *logical* operation that touches many provider words (every
//! linked record's `info`, the written field, the owner's state word),
//! with helping in between. Because every one of those words is a
//! registry [`LlScVar`](nbsp_core::LlScVar) and the providers are
//! schedule-point instrumented, the cooperative scheduler intercepts the
//! whole commit protocol with **no extra hooks**: this module just runs
//! real [`LlxDomain`] operations as [`run_controlled`] bodies and lets
//! the DPOR driver enumerate the interleavings.
//!
//! The property checked is **conservation**, the multi-word analogue of
//! the Figure-2 history check: every process runs one
//! SCX-increment-by-one ([`IncrVia`]) and at the end of the execution the
//! sum of all record fields must equal the number of SCXs that reported
//! success — no lost updates, no double-applied commits, across *every*
//! interleaving of the protocol's internal accesses. A state-based
//! verdict (not a Wing–Gong history check): the interesting failure
//! modes — a helper's stale CAS landing twice, a freeze skipped so two
//! SCXs commit against the same snapshot — are exactly lost/duplicated
//! increments.
//!
//! Non-vacuity comes from [`Flaw::LostFreeze`], a planted protocol bug
//! (the freeze phase skips every linked record after the first): the
//! checker must find a concrete violating schedule for it, and must find
//! the **same** schedule every time — the counterexample is replayable.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

use nbsp_core::provider::Provider;
use nbsp_llx::{Flaw, LlxDomain, LlxOutcome};
use nbsp_memsim::sched::Decision;

use crate::dpor::{explore, Judgment, Mode, Outcome};
use crate::exec::{run_controlled, ExecOutcome, SleepEntry, WorkerCtl};

/// One process's whole plan: LLX every record in `link` (in index order —
/// the consistent freeze order SCX requires), then one SCX that links all
/// of them and increments field 0 of record `fld` by one. The increment
/// satisfies the freshness requirement (a counter never revisits a
/// value), so a committed SCX is exactly one `+1`.
#[derive(Clone, Debug)]
pub struct IncrVia {
    /// Records to LLX-link, in ascending order.
    pub link: Vec<usize>,
    /// The record whose field 0 the SCX increments (must be in `link`).
    pub fld: usize,
}

/// A closed multi-record program: `records` zero-initialized one-field
/// records and one [`IncrVia`] per process.
#[derive(Clone, Debug)]
pub struct LlxProgram {
    /// Number of records in the arena (all fields start at 0).
    pub records: usize,
    /// One plan per process; `plans.len()` is the process count.
    pub plans: Vec<IncrVia>,
}

impl LlxProgram {
    /// Number of processes.
    #[must_use]
    pub fn n(&self) -> usize {
        self.plans.len()
    }
}

/// The canonical two-record overlap: process 0 links `{r0, r1}` and
/// writes into `r1`; process 1 links `{r1}` alone and also writes `r1`.
/// The faithful protocol serializes them through `r1`'s freeze; the
/// [`Flaw::LostFreeze`] domain skips freezing `r1` (it is process 0's
/// *second* linked record), so both SCXs can commit `0 → 1` against the
/// same snapshot and conservation breaks (field sum 1, successes 2).
#[must_use]
pub fn overlap_program() -> LlxProgram {
    LlxProgram {
        records: 2,
        plans: vec![
            IncrVia {
                link: vec![0, 1],
                fld: 1,
            },
            IncrVia {
                link: vec![1],
                fld: 1,
            },
        ],
    }
}

/// Runs one schedule-controlled execution of `program` on a fresh
/// [`LlxDomain`] over `P`'s variables, returning the execution plus
/// whether conservation held (field sum == successful SCXs).
fn run_one<P: Provider>(
    program: &LlxProgram,
    flaw: Flaw,
    prefix: &[(usize, Decision)],
    frontier_sleep: &[SleepEntry],
) -> Result<(ExecOutcome, bool), nbsp_core::Error> {
    let n = program.n();
    assert!(n > 0, "program needs at least one process");
    // One spare slot: the construction context must not collide with the
    // worker threads' claims.
    let env = P::env(n + 1)?;
    let mut tc0 = P::thread_ctx(&env, n);
    let mut ctx0 = P::ctx(&mut tc0);
    // Construction runs on the controller thread, where no yield-point
    // hook is installed, so none of these accesses become schedule steps.
    let d = LlxDomain::new_flawed(
        n,
        program.records,
        1,
        0,
        || P::var(&env, 0).expect("provider var"),
        &mut ctx0,
        flaw,
    );
    for _ in 0..program.records {
        d.alloc(&mut ctx0, &[], &[0]).expect("within record budget");
    }
    let successes: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
    let bodies: Vec<_> = (0..n)
        .map(|p| {
            let mut tc = P::thread_ctx(&env, p);
            let plan = program.plans[p].clone();
            let d = &d;
            let successes = &successes;
            move |_ctl: &WorkerCtl| {
                let mut ctx = P::ctx(&mut tc);
                let mut handles = Vec::with_capacity(plan.link.len());
                for &r in &plan.link {
                    match d.llx(&mut ctx, r) {
                        LlxOutcome::Linked(h) => handles.push(h),
                        // Unreachable here (fin_mask is always 0), kept
                        // for shape: a finalized record aborts the op.
                        LlxOutcome::Finalized => {
                            for h in handles {
                                d.unlink(&mut ctx, h);
                            }
                            return;
                        }
                    }
                }
                let old = handles
                    .iter()
                    .find(|h| h.rec == plan.fld)
                    .expect("fld must be linked")
                    .field(0);
                if d.scx(&mut ctx, p, handles, 0, plan.fld, 0, old + 1) {
                    successes[p].fetch_add(1, Ordering::Relaxed);
                }
            }
        })
        .collect();
    let exec = run_controlled(prefix, frontier_sleep, bodies);
    let total: u64 = (0..program.records)
        .map(|r| d.read_field(&mut ctx0, r, 0))
        .sum();
    let ok: u64 = successes.iter().map(|s| s.load(Ordering::Relaxed)).sum();
    Ok((exec, total == ok))
}

fn check_with<P: Provider>(
    program: &LlxProgram,
    flaw: Flaw,
    mode: Mode,
    max_executions: u64,
) -> Result<Outcome, nbsp_core::Error> {
    let conserved = Cell::new(true);
    explore(
        program.n(),
        0, // spurious branching would square an already-deep schedule space
        mode,
        max_executions,
        |prefix, frontier| {
            let (exec, ok) = run_one::<P>(program, flaw, prefix, frontier)?;
            conserved.set(ok);
            Ok(exec)
        },
        // Every completed execution is judged (no history dedup: the
        // verdict is final-state, computed per run, and cheap).
        |_exec| {
            if conserved.get() {
                Judgment::Pass
            } else {
                Judgment::Fail(Vec::new())
            }
        },
    )
}

/// Explores every schedule of `program`'s LLX/SCX increments on provider
/// `P`, checking conservation after each completed execution. Stops at
/// the first violating schedule.
///
/// # Errors
///
/// Propagates the provider's environment/variable construction errors.
pub fn check_conservation<P: Provider>(
    program: &LlxProgram,
    mode: Mode,
    max_executions: u64,
) -> Result<Outcome, nbsp_core::Error> {
    check_with::<P>(program, Flaw::None, mode, max_executions)
}

/// [`check_conservation`] against the planted [`Flaw::LostFreeze`]
/// domain — the checker must find a violating schedule (and, being
/// deterministic, the same one on every call).
///
/// # Errors
///
/// Propagates the provider's environment/variable construction errors.
pub fn check_lost_freeze<P: Provider>(
    program: &LlxProgram,
    mode: Mode,
    max_executions: u64,
) -> Result<Outcome, nbsp_core::Error> {
    check_with::<P>(program, Flaw::LostFreeze, mode, max_executions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nbsp_core::provider::Fig4Native;

    const CAP: u64 = 400_000;

    #[test]
    fn faithful_overlap_conserves_exhaustively() {
        let out = check_conservation::<Fig4Native>(&overlap_program(), Mode::Dpor, CAP).unwrap();
        assert!(out.violation.is_none(), "faithful LLX/SCX lost an update");
        assert!(!out.capped, "exploration must finish");
        assert!(
            out.executions >= 2,
            "overlapping SCXs must have more than one schedule"
        );
    }

    #[test]
    fn lost_freeze_is_caught_deterministically() {
        let a = check_lost_freeze::<Fig4Native>(&overlap_program(), Mode::Dpor, CAP).unwrap();
        let b = check_lost_freeze::<Fig4Native>(&overlap_program(), Mode::Dpor, CAP).unwrap();
        let va = a.violation.expect("the planted lost-freeze bug must be caught");
        let vb = b.violation.expect("the planted lost-freeze bug must be caught");
        assert_eq!(va.schedule, vb.schedule, "the counterexample is replayable");
        assert_eq!(a.executions, b.executions);
    }

    // Note on provider choice: the lock baseline funnels every variable
    // through one mutex, so every access aliases to a single address and
    // DPOR degenerates to the full factorial DFS — fine for 2-access
    // Figure-2 plans, hopeless for ~30-access SCX protocols. The llx
    // checks stay on disjoint-address providers.
    #[test]
    fn single_record_contention_conserves() {
        let prog = LlxProgram {
            records: 1,
            plans: vec![
                IncrVia {
                    link: vec![0],
                    fld: 0,
                },
                IncrVia {
                    link: vec![0],
                    fld: 0,
                },
            ],
        };
        let out = check_conservation::<Fig4Native>(&prog, Mode::Dpor, CAP).unwrap();
        assert!(out.violation.is_none());
        assert!(!out.capped);
    }

    #[test]
    fn violating_schedule_replays_to_the_same_verdict() {
        let out = check_lost_freeze::<Fig4Native>(&overlap_program(), Mode::Dpor, CAP).unwrap();
        let v = out.violation.expect("caught");
        let (exec, conserved) =
            run_one::<Fig4Native>(&overlap_program(), Flaw::LostFreeze, &v.schedule, &[]).unwrap();
        assert!(!exec.blocked);
        assert!(!conserved, "replaying the counterexample must re-violate");
    }
}
