//! Dependency-free source lint mechanizing the repository's cross-cutting
//! invariants.
//!
//! These invariants were previously enforced by review convention only;
//! each rule below turns one of them into a CI hard-fail (`exp_lint`):
//!
//! * **R1 `seqcst`** — `Ordering::SeqCst` is forbidden outside an
//!   allowlist. The contention PR scoped the LL/SC hot paths to
//!   acquire/release; the sanctioned homes are the `NativeSeqCst` ablation
//!   family, the sequentially-consistent simulator, one-time claim flags
//!   and similarly justified cold paths.
//! * **R2 `padded-slots`** — per-process slot arrays (fields named
//!   `announce`, `claimed`, `keeps`, `last` of `Vec`/`Box` type) must be
//!   `CachePadded`, the false-sharing discipline E10 measures.
//! * **R3 `registry`** — provider name strings must not be matched or
//!   compared outside `provider.rs`, and `ProviderId::` variant paths are
//!   restricted to the registry itself plus the ablation experiments; the
//!   registry's `for_each_provider!`/`with_provider!` macros are the only
//!   sanctioned id→type dispatch.
//! * **R4 `telemetry-parity`** — inside `crates/telemetry`, `crates/llx`
//!   and `crates/memsim` (home of the instruction-set `AccessKind`
//!   instrumentation), every `#[cfg(feature = …)]` block has a matching
//!   `#[cfg(not(feature = …))]` stub, so the API is identical with
//!   recording compiled out (the E11 overhead gate relies on this); and
//!   inside `crates/llx` and the weak-primitive constructions
//!   (`cas_from_swap.rs`, `feb_llsc.rs`), `Event::` values may only
//!   appear in `record(…)` calls, the API whose stub parity the first
//!   half checks — ad-hoc counters would silently skew one build config.
//! * **R5 `bench-schema`** — any file that builds or writes a
//!   `BENCH_*.json` artifact must declare `schema_version`, so CI sanity
//!   checks and trend tooling can dispatch on it.
//! * **R6 `weak-ops`** — the sub-CAS instruction set (NB-FEB
//!   `feb_tfas`/`feb_sac`/`feb_load` and the capability-gated
//!   `try_swap`/`try_fetch_add` accessors) may only be invoked by the
//!   instruction-set layer itself and the registered weak-primitive
//!   constructions. Everything else must stay behind the `CasMemory`
//!   boundary, so the capability bitset in `ProviderMeta` remains an
//!   honest statement of what each construction assumes of the hardware.
//!
//! Allowlists carry a reason per entry and are themselves linted: an entry
//! whose file is gone or no longer triggers its rule is reported as
//! **stale** so the lists cannot rot.
//!
//! The scanner's own needle constants are assembled with `concat!` so this
//! file never contains the patterns it searches for.

use std::fs;
use std::path::Path;

use nbsp_core::ProviderId;

/// A single lint violation (or stale allowlist entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Short rule identifier (`seqcst`, `padded-slots`, …).
    pub rule: &'static str,
    /// Repository-relative path with `/` separators.
    pub path: String,
    /// 1-based line number (0 for file-level findings).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}:{}: {}", self.rule, self.path, self.line, self.message)
    }
}

// Needles, split so this scanner never matches itself.
const SEQCST: &str = concat!("Ordering::", "SeqCst");
const CFG_TELEMETRY_ON: &str = concat!("#[cfg(", "feature = \"telemetry\")]");
const CFG_TELEMETRY_OFF: &str = concat!("#[cfg(", "not(feature = \"telemetry\"))]");
const BENCH_PREFIX: &str = concat!("BENCH", "_");
const FS_WRITE: &str = concat!("fs::", "write(");
const PUSH_STR: &str = concat!("push_", "str(");
const PROVIDER_ID_PATH: &str = concat!("ProviderId", "::");
const SCHEMA_VERSION: &str = concat!("schema", "_version");
const CACHE_PADDED: &str = concat!("Cache", "Padded");
const EVENT_PATH: &str = concat!("Event", "::");
const RECORD_CALL: &str = concat!("record", "(");
// The substring `feb_…(` needles also match the gated `try_feb_…(`
// accessors, so both seams are covered by one needle each.
const FEB_TFAS: &str = concat!("feb_", "tfas(");
const FEB_SAC: &str = concat!("feb_", "sac(");
const FEB_LOAD: &str = concat!("feb_", "load(");
const TRY_SWAP: &str = concat!("try_", "swap(");
const TRY_FETCH_ADD: &str = concat!("try_", "fetch_add(");
const WEAK_OPS: &[&str] = &[FEB_TFAS, FEB_SAC, FEB_LOAD, TRY_SWAP, TRY_FETCH_ADD];

/// R1: files allowed to use `Ordering::SeqCst`, with the justification.
const SEQCST_ALLOW: &[(&str, &str)] = &[
    (
        "crates/core/src/cas_provider.rs",
        "the NativeSeqCst ablation family is this ordering's sanctioned home",
    ),
    (
        "crates/memsim/src/word.rs",
        "the simulated memory is sequentially consistent by design",
    ),
    (
        "crates/memsim/src/pmem.rs",
        "the persistent-memory model mirrors the simulator's sequential consistency",
    ),
    (
        "crates/core/src/dynamic_llsc.rs",
        "membership claim flags only; the LL/SC hot path runs on memsim pmem words",
    ),
    (
        "crates/memsim/src/machine.rs",
        "one-time processor-claim flag, not a hot path",
    ),
    (
        "crates/core/src/bounded.rs",
        "one-time per-process claim flag, not a hot path",
    ),
    (
        "crates/core/src/constant_llsc.rs",
        "one-time claim flag and pool cursor, not hot paths",
    ),
    (
        "crates/linearize/src/history.rs",
        "the history clock must totally order invocation/response ticks",
    ),
    (
        "crates/structures/src/set.rs",
        "node payload/bump-cursor accesses stay conservative; only LL/SC hot paths were relaxed",
    ),
    (
        "crates/structures/src/queue.rs",
        "node payload accesses stay conservative; only LL/SC hot paths were relaxed",
    ),
    (
        "crates/structures/src/arena.rs",
        "node data/link accesses stay conservative; only LL/SC hot paths were relaxed",
    ),
    (
        "crates/structures/src/stm_orec.rs",
        "orec acquire/commit stays conservative; only LL/SC hot paths were relaxed",
    ),
    (
        "crates/bench/src/experiments/e1_time.rs",
        "measures the SeqCst-vs-acquire/release cost (the E1 ordering ablation)",
    ),
    (
        "tests/linearizability.rs",
        "history recording in the integration harness, not a hot path",
    ),
    (
        "examples/wide_register.rs",
        "demo code exercising the plain (SeqCst) trio explicitly",
    ),
];

/// R3: files allowed to name `ProviderId::` variants, with justification.
const PROVIDER_ID_ALLOW: &[(&str, &str)] = &[
    (
        "crates/bench/src/runner.rs",
        "the registry-driven CLI provider filter (ALL/from_name, no per-id dispatch)",
    ),
    (
        "crates/bench/src/experiments/e9_bounded.rs",
        "the bounded-tag ablation selects registry subsets by id",
    ),
    (
        "crates/bench/src/experiments/e7_structures.rs",
        "the structures ablation selects registry subsets by id",
    ),
    (
        "crates/bench/src/bin/exp_contention.rs",
        "the native padding/ordering ablation matrix selects the four Figure-4 corners",
    ),
    (
        "crates/check/src/planted.rs",
        "the planted-bug fixture needs a nominal id; it is never registered",
    ),
    (
        "crates/serve/src/fabric.rs",
        "names the fabric's default provider once; all dispatch is with_provider!",
    ),
    (
        "crates/serve/src/elastic.rs",
        "names the elastic pool's default (dynamic) provider once; all dispatch is with_provider!",
    ),
    (
        "crates/bench/src/experiments/e14_elastic.rs",
        "the elastic sweep's provider-equality gate compares the dynamic pair to the fixed-N baseline by id",
    ),
    (
        "crates/bench/src/experiments/e15_structures.rs",
        "the structures sweep selects registry subsets by id and names the gated \
         native-vs-lock-substrate baseline pair",
    ),
    (
        "crates/bench/src/experiments/e16_hierarchy.rs",
        "the consensus-hierarchy sweep names the native/cas-from-swap/feb-llsc gate \
         triple by id; all dispatch is with_provider!",
    ),
    (
        "crates/check/src/lint.rs",
        "this linter pulls the authoritative provider-name list from the registry",
    ),
];

/// R5: pass-through writers of an artifact whose schema is declared where
/// the JSON is built.
const BENCH_SCHEMA_ALLOW: &[(&str, &str)] = &[
    (
        "crates/bench/src/bin/exp_bounded_audit.rs",
        "writes the JSON built by e9_bounded::to_json, which declares the schema",
    ),
    (
        "crates/bench/src/bin/exp_modelcheck.rs",
        "writes the JSON built by e13_modelcheck::to_json, which declares the schema",
    ),
    (
        "crates/bench/src/bin/exp_hierarchy.rs",
        "writes the JSON built by e16_hierarchy::to_json, which declares the schema",
    ),
    (
        "crates/bench/src/bin/exp_obligations.rs",
        "writes the JSON built by e17_obligations::to_json, which declares the schema",
    ),
];

/// R6: files allowed to invoke the sub-CAS instruction set, with
/// justification.
const WEAK_OPS_ALLOW: &[(&str, &str)] = &[
    (
        "crates/memsim/src/machine.rs",
        "the Processor implements the instruction set; these are the ops themselves",
    ),
    (
        "crates/core/src/cas_provider.rs",
        "the SyncMemory boundary defines and implements the capability-gated accessors",
    ),
    (
        "crates/core/src/cas_from_swap.rs",
        "the registered swap+fetch-and-add construction (arXiv:1802.03844)",
    ),
    (
        "crates/core/src/feb_llsc.rs",
        "the registered NB-FEB construction (arXiv:0811.1304)",
    ),
    (
        "crates/core/src/cas_from_rll.rs",
        "tests that the RLL/RSC-only memory reports UnsupportedOp for swap",
    ),
];

fn allowed<'a>(list: &'a [(&'a str, &'a str)], path: &str) -> Option<&'a str> {
    list.iter().find(|(p, _)| *p == path).map(|(_, r)| *r)
}

/// True for lines that are pure comments (`//`, `///`, `//!`); trailing
/// comments are kept, which only errs toward strictness.
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

fn field_name_of(line: &str) -> Option<&str> {
    let t = line.trim_start();
    let t = t.strip_prefix("pub(crate) ").unwrap_or(t);
    let t = t.strip_prefix("pub ").unwrap_or(t);
    let (name, rest) = t.split_once(':')?;
    let name = name.trim();
    // Reject anything that is not a bare field identifier (`match x {`,
    // struct literals, type ascriptions in expressions…).
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    // `::` paths split at the first ':' leave rest starting with ':'.
    if rest.starts_with(':') {
        return None;
    }
    Some(name)
}

/// Lints one file's content. `path` is repository-relative with `/`
/// separators. Pure function of its inputs, for unit testing.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn lint_file(path: &str, content: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let provider_names: Vec<&'static str> = ProviderId::ALL.iter().map(|id| id.name()).collect();
    let in_provider_rs = path == "crates/core/src/provider.rs";

    // R1: SeqCst discipline.
    if allowed(SEQCST_ALLOW, path).is_none() {
        for (i, line) in content.lines().enumerate() {
            if !is_comment_line(line) && line.contains(SEQCST) {
                findings.push(Finding {
                    rule: "seqcst",
                    path: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "{SEQCST} outside the allowlist; use acquire/release or add an \
                         allowlist entry with a justification"
                    ),
                });
            }
        }
    }

    // R2: per-process slot arrays must be cache-line padded.
    for (i, line) in content.lines().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let Some(name) = field_name_of(line) else {
            continue;
        };
        if matches!(name, "announce" | "claimed" | "keeps" | "last")
            && (line.contains("Vec<") || line.contains("Box<["))
            && !line.contains(CACHE_PADDED)
        {
            findings.push(Finding {
                rule: "padded-slots",
                path: path.to_string(),
                line: i + 1,
                message: format!(
                    "per-process slot array `{name}` is not {CACHE_PADDED}; adjacent slots \
                     false-share (see E10)"
                ),
            });
        }
    }

    // R3: registry encapsulation.
    if !in_provider_rs {
        for (i, line) in content.lines().enumerate() {
            if is_comment_line(line) {
                continue;
            }
            for name in &provider_names {
                let quoted = format!("\"{name}\"");
                if line.contains(&quoted) && (line.contains("=>") || line.contains("==")) {
                    findings.push(Finding {
                        rule: "registry",
                        path: path.to_string(),
                        line: i + 1,
                        message: format!(
                            "provider name {quoted} matched/compared outside provider.rs; \
                             dispatch through the registry macros instead"
                        ),
                    });
                }
            }
            if line.contains(PROVIDER_ID_PATH) && allowed(PROVIDER_ID_ALLOW, path).is_none() {
                findings.push(Finding {
                    rule: "registry",
                    path: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "{PROVIDER_ID_PATH} variant path outside the registry and its \
                         allowlisted ablations; use for_each_provider!/with_provider!"
                    ),
                });
            }
        }
    }

    // R4: telemetry real/stub parity.
    if path.starts_with("crates/telemetry/src/")
        || path.starts_with("crates/llx/src/")
        || path.starts_with("crates/memsim/src/")
    {
        let on = content.matches(CFG_TELEMETRY_ON).count();
        let off = content.matches(CFG_TELEMETRY_OFF).count();
        if on != off {
            findings.push(Finding {
                rule: "telemetry-parity",
                path: path.to_string(),
                line: 0,
                message: format!(
                    "{on} feature-on blocks vs {off} feature-off stubs; the API must be \
                     identical with recording compiled out (E11 overhead gate)"
                ),
            });
        }
    }
    if path.starts_with("crates/llx/src/")
        || path == "crates/core/src/cas_from_swap.rs"
        || path == "crates/core/src/feb_llsc.rs"
    {
        for (i, line) in content.lines().enumerate() {
            if is_comment_line(line) {
                continue;
            }
            if line.contains(EVENT_PATH) && !line.contains(RECORD_CALL) {
                findings.push(Finding {
                    rule: "telemetry-parity",
                    path: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "{EVENT_PATH} value outside a {RECORD_CALL}…) call; events from \
                         instrumented constructions must flow through the parity-checked API"
                    ),
                });
            }
        }
    }

    // R6: the sub-CAS instruction set stays inside the sanctioned homes.
    if allowed(WEAK_OPS_ALLOW, path).is_none() {
        for (i, line) in content.lines().enumerate() {
            if is_comment_line(line) {
                continue;
            }
            if let Some(op) = WEAK_OPS.iter().find(|op| line.contains(**op)) {
                findings.push(Finding {
                    rule: "weak-ops",
                    path: path.to_string(),
                    line: i + 1,
                    message: format!(
                        "sub-CAS op `{op}…)` outside the instruction-set layer and the \
                         weak-primitive constructions; go through CasMemory (or register \
                         a new weak-primitive provider and allowlist it)"
                    ),
                });
            }
        }
    }

    // R5: benchmark artifacts declare their schema.
    let writes_bench_json = content.lines().any(|l| {
        !is_comment_line(l) && l.contains(BENCH_PREFIX) && l.contains(".json")
    }) && (content.contains(FS_WRITE) || content.contains(PUSH_STR));
    if writes_bench_json
        && !content.contains(SCHEMA_VERSION)
        && allowed(BENCH_SCHEMA_ALLOW, path).is_none()
    {
        findings.push(Finding {
            rule: "bench-schema",
            path: path.to_string(),
            line: 0,
            message: format!(
                "builds/writes a {BENCH_PREFIX}*.json artifact without declaring \
                 {SCHEMA_VERSION}"
            ),
        });
    }

    findings
}

fn collect_rs_files(dir: &Path, root: &Path, out: &mut Vec<(String, String)>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(std::result::Result::ok).collect();
    entries.sort_by_key(std::fs::DirEntry::file_name);
    for entry in entries {
        let p = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            if name == "target" || name == ".git" || name == ".github" {
                continue;
            }
            collect_rs_files(&p, root, out);
        } else if name.ends_with(".rs") {
            let rel = p
                .strip_prefix(root)
                .unwrap_or(&p)
                .to_string_lossy()
                .replace('\\', "/");
            if let Ok(content) = fs::read_to_string(&p) {
                out.push((rel, content));
            }
        }
    }
}

/// Runs every rule over the repository rooted at `root` and audits the
/// allowlists for staleness. Deterministic order (paths sorted).
#[must_use]
pub fn run_lints(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files);
    files.sort_by(|a, b| a.0.cmp(&b.0));

    let mut findings = Vec::new();
    for (path, content) in &files {
        findings.extend(lint_file(path, content));
    }

    // Stale-allowlist audit: every entry must exist and still trigger at
    // least one of its rule's needles.
    type AllowList = [(&'static str, &'static str)];
    let lists: &[(&str, &'static AllowList, &[&str])] = &[
        ("seqcst", SEQCST_ALLOW, &[SEQCST]),
        ("registry", PROVIDER_ID_ALLOW, &[PROVIDER_ID_PATH]),
        ("bench-schema", BENCH_SCHEMA_ALLOW, &[BENCH_PREFIX]),
        ("weak-ops", WEAK_OPS_ALLOW, WEAK_OPS),
    ];
    for (rule, list, needles) in lists {
        for (allow_path, _) in *list {
            match files.iter().find(|(p, _)| p == allow_path) {
                None => findings.push(Finding {
                    rule: "stale-allowlist",
                    path: (*allow_path).to_string(),
                    line: 0,
                    message: format!("{rule} allowlist entry points at a missing file"),
                }),
                Some((_, content)) => {
                    if !needles.iter().any(|n| content.contains(n)) {
                        findings.push(Finding {
                            rule: "stale-allowlist",
                            path: (*allow_path).to_string(),
                            line: 0,
                            message: format!(
                                "{rule} allowlist entry no longer triggers; remove it"
                            ),
                        });
                    }
                }
            }
        }
    }

    // Flow-analyzer rules (R7 backoff discipline, keep-leak/bound,
    // release/acquire pairing, stale flow-allow audits) surface through
    // the same findings channel, so `exp_lint` and the repo-clean test
    // gate on them too.
    findings.extend(crate::flow::lint_extras(root));
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));

    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_file_has_no_findings() {
        let src = "use std::sync::atomic::Ordering;\n\
                   fn f(x: &std::sync::atomic::AtomicU64) -> u64 { x.load(Ordering::Acquire) }\n";
        assert!(lint_file("crates/core/src/foo.rs", src).is_empty());
    }

    #[test]
    fn seqcst_outside_allowlist_is_flagged() {
        let src = format!("fn f() {{ x.load({SEQCST}); }}\n");
        let f = lint_file("crates/core/src/foo.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "seqcst");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn seqcst_in_allowlisted_file_passes() {
        let src = format!("fn f() {{ x.load({SEQCST}); }}\n");
        assert!(lint_file("crates/core/src/cas_provider.rs", &src).is_empty());
    }

    #[test]
    fn seqcst_in_comment_is_ignored() {
        let src = format!("// talk about {SEQCST} freely\n");
        assert!(lint_file("crates/core/src/foo.rs", &src).is_empty());
    }

    #[test]
    fn unpadded_slot_array_is_flagged() {
        let src = "struct S {\n    announce: Vec<AtomicU64>,\n}\n";
        let f = lint_file("crates/core/src/foo.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "padded-slots");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn padded_slot_array_passes() {
        let src = format!("struct S {{\n    announce: Vec<{CACHE_PADDED}<AtomicU64>>,\n}}\n");
        assert!(lint_file("crates/core/src/foo.rs", &src).is_empty());
    }

    #[test]
    fn provider_name_match_arm_is_flagged() {
        // Build the name at runtime so this file never contains a quoted
        // provider name next to a match arrow.
        let name = ProviderId::ALL[0].name();
        let src = format!("fn f(n: &str) -> u32 {{ match n {{ \"{name}\" => 1, _ => 0 }} }}\n");
        let f = lint_file("crates/bench/src/foo.rs", &src);
        assert!(f.iter().any(|x| x.rule == "registry"));
    }

    #[test]
    fn provider_name_lookup_passes() {
        let name = ProviderId::ALL[0].name();
        let src = format!("fn f(r: &R) -> u64 {{ growth_of(r, \"{name}\") }}\n");
        assert!(lint_file("crates/bench/src/foo.rs", &src).is_empty());
    }

    #[test]
    fn provider_id_path_outside_allowlist_is_flagged() {
        let src = format!("fn f() {{ let _ = {PROVIDER_ID_PATH}Fig4Native; }}\n");
        let f = lint_file("crates/bench/src/foo.rs", &src);
        assert!(f.iter().any(|x| x.rule == "registry"));
        assert!(lint_file("crates/bench/src/runner.rs", &src).is_empty());
    }

    #[test]
    fn telemetry_parity_counts_blocks() {
        let src = format!("{CFG_TELEMETRY_ON}\nfn real() {{}}\n");
        let f = lint_file("crates/telemetry/src/lib.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-parity");
        let paired = format!("{CFG_TELEMETRY_ON}\nfn a() {{}}\n{CFG_TELEMETRY_OFF}\nfn b() {{}}\n");
        assert!(lint_file("crates/telemetry/src/lib.rs", &paired).is_empty());
    }

    #[test]
    fn llx_event_outside_record_is_flagged() {
        let src = format!("fn f() {{ let e = {EVENT_PATH}LlxHelp; count(e); }}\n");
        let f = lint_file("crates/llx/src/lib.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-parity");
        let through_api = format!("fn f() {{ {RECORD_CALL}{EVENT_PATH}LlxHelp); }}\n");
        assert!(lint_file("crates/llx/src/lib.rs", &through_api).is_empty());
        // Outside the llx crate the rule does not apply (bench reads
        // totals by Event index legitimately).
        assert!(lint_file("crates/bench/src/foo.rs", &src).is_empty());
    }

    #[test]
    fn llx_telemetry_cfg_blocks_need_stubs() {
        let src = format!("{CFG_TELEMETRY_ON}\nfn real() {{}}\n");
        let f = lint_file("crates/llx/src/lib.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-parity");
    }

    #[test]
    fn weak_op_outside_allowlist_is_flagged() {
        let src = format!("fn f(m: &M, w: &W) {{ let _ = m.{FEB_TFAS}w, 1); }}\n");
        let f = lint_file("crates/structures/src/foo.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "weak-ops");
        assert_eq!(f[0].line, 1);
        let gated = format!("fn f(m: &M, w: &W) {{ let _ = m.{TRY_SWAP}w, 1); }}\n");
        assert!(lint_file("crates/structures/src/foo.rs", &gated)
            .iter()
            .any(|x| x.rule == "weak-ops"));
    }

    #[test]
    fn weak_op_in_sanctioned_home_passes() {
        let src = format!("fn f(m: &M, w: &W) {{ let _ = m.{FEB_SAC}w, 0); }}\n");
        assert!(lint_file("crates/core/src/feb_llsc.rs", &src).is_empty());
        assert!(lint_file("crates/memsim/src/machine.rs", &src).is_empty());
    }

    #[test]
    fn weak_op_in_comment_is_ignored() {
        let src = format!("// discussing {FEB_LOAD}…) and {TRY_FETCH_ADD}…) freely\n");
        assert!(lint_file("crates/structures/src/foo.rs", &src).is_empty());
    }

    #[test]
    fn weak_event_outside_record_is_flagged() {
        let src = format!("fn f() {{ let e = {EVENT_PATH}LlRestart; count(e); }}\n");
        let f = lint_file("crates/core/src/feb_llsc.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-parity");
        let through_api = format!("fn f() {{ {RECORD_CALL}{EVENT_PATH}LlRestart); }}\n");
        assert!(lint_file("crates/core/src/cas_from_swap.rs", &through_api).is_empty());
    }

    #[test]
    fn memsim_telemetry_cfg_blocks_need_stubs() {
        let src = format!("{CFG_TELEMETRY_ON}\nfn real() {{}}\n");
        let f = lint_file("crates/memsim/src/foo.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "telemetry-parity");
    }

    #[test]
    fn bench_json_without_schema_is_flagged() {
        let src = format!(
            "fn main() {{\n    let mut s = String::new();\n    s.{PUSH_STR}\"x\");\n    \
             std::{FS_WRITE}\"{BENCH_PREFIX}foo.json\", &s).unwrap();\n}}\n"
        );
        let f = lint_file("crates/bench/src/bin/foo.rs", &src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "bench-schema");
        let with = format!("{src}// plus\nfn g() -> &'static str {{ \"{SCHEMA_VERSION}\" }}\n");
        assert!(lint_file("crates/bench/src/bin/foo.rs", &with).is_empty());
    }

    #[test]
    fn the_repository_is_clean() {
        // CARGO_MANIFEST_DIR = crates/check; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let findings = run_lints(&root);
        assert!(
            findings.is_empty(),
            "repository lint must be clean:\n{}",
            findings
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
