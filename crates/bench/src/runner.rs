//! Shared entry-point scaffolding for the `exp_*` binaries.
//!
//! Every experiment binary announces which experiment module it is about
//! to run, catches panics from the experiment body, and exits nonzero on
//! failure — so when `exp_all` (or CI) fails, the log attributes the
//! failure to a specific module instead of dying mid-stream.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;
use std::time::Instant;

use nbsp_core::{ProviderId, Tier};

/// A parsed `--provider` CLI restriction: which registry entries an
/// experiment binary should sweep. `None` means "the experiment's
/// default set".
#[derive(Clone, Debug, Default)]
pub struct ProviderFilter {
    ids: Option<Vec<ProviderId>>,
}

impl ProviderFilter {
    /// True iff `id` should run under this filter.
    #[must_use]
    pub fn allows(&self, id: ProviderId) -> bool {
        self.ids.as_ref().is_none_or(|ids| ids.contains(&id))
    }

    /// True iff the user restricted the set at all.
    #[must_use]
    pub fn is_restricted(&self) -> bool {
        self.ids.is_some()
    }
}

/// Parses `--provider name[,name…]` (repeatable) from the process's
/// arguments — the single provider-flag parser every experiment binary
/// routes through, so the accepted names are exactly the registry's
/// [`ProviderId::parse`] names everywhere. An entry may also be a
/// `tier:` prefix (`tier:fixed-n`, `tier:dynamic`, `tier:weak-primitive`),
/// which admits every registry entry of that [`Tier`]; tiers and plain
/// names mix freely in one list.
///
/// # Errors
///
/// Returns a message (listing the valid names) on an unknown provider or
/// tier, or a missing flag value; binaries print it and exit nonzero.
pub fn provider_filter() -> Result<ProviderFilter, String> {
    let args: Vec<String> = std::env::args().collect();
    let mut ids: Option<Vec<ProviderId>> = None;
    let mut i = 1;
    while i < args.len() {
        let value = if args[i] == "--provider" {
            i += 1;
            Some(
                args.get(i)
                    .ok_or("--provider requires a value".to_string())?
                    .as_str(),
            )
        } else {
            args[i].strip_prefix("--provider=")
        };
        if let Some(list) = value {
            parse_provider_list(list, ids.get_or_insert_with(Vec::new))?;
        }
        i += 1;
    }
    Ok(ProviderFilter { ids })
}

/// Expands one comma-separated `--provider` payload (registry names and
/// `tier:` slices) into `ids`. See [`provider_filter`].
fn parse_provider_list(list: &str, ids: &mut Vec<ProviderId>) -> Result<(), String> {
    for name in list.split(',').filter(|s| !s.is_empty()) {
        if let Some(tier) = name.strip_prefix("tier:") {
            let tier = Tier::parse(tier)?;
            ids.extend(
                ProviderId::ALL
                    .iter()
                    .copied()
                    .filter(|id| id.meta().tier == tier),
            );
        } else {
            ids.push(ProviderId::parse(name)?);
        }
    }
    Ok(())
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("<non-string panic payload>")
}

/// Runs one experiment body, labelled by its `experiments::` module name.
///
/// Prints `running experiments::<module>` up front (to stderr, so report
/// output stays clean for redirection), then the rendered report on
/// success. On panic it prints the failure — attributed to the module —
/// and returns a failing exit code.
#[must_use]
pub fn run_experiment(module: &str, f: impl FnOnce() -> String) -> ExitCode {
    eprintln!("[nbsp-bench] running experiments::{module} ...");
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(report) => {
            println!("{report}");
            eprintln!("[nbsp-bench] experiments::{module}: ok");
            ExitCode::SUCCESS
        }
        Err(payload) => {
            eprintln!(
                "[nbsp-bench] experiments::{module}: FAILED — {}",
                panic_message(payload.as_ref())
            );
            ExitCode::FAILURE
        }
    }
}

/// A labelled experiment body, as `exp_all` collects them.
pub type Experiment<'a> = (&'a str, Box<dyn FnOnce() -> String>);

/// Runs a sequence of labelled experiment bodies (for `exp_all`),
/// continuing past failures and reporting every failed module at the end.
#[must_use]
pub fn run_all(experiments: Vec<Experiment<'_>>) -> ExitCode {
    let mut timings: Vec<(String, f64, bool)> = Vec::new();
    for (module, f) in experiments {
        eprintln!("[nbsp-bench] running experiments::{module} ...");
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(f));
        let secs = start.elapsed().as_secs_f64();
        match outcome {
            Ok(report) => {
                println!("{report}\n");
                eprintln!("[nbsp-bench] experiments::{module}: ok ({secs:.1}s)");
                timings.push((module.to_string(), secs, true));
            }
            Err(payload) => {
                eprintln!(
                    "[nbsp-bench] experiments::{module}: FAILED after {secs:.1}s — {}",
                    panic_message(payload.as_ref())
                );
                timings.push((module.to_string(), secs, false));
            }
        }
    }
    let failed: Vec<&str> = timings
        .iter()
        .filter(|(_, _, ok)| !ok)
        .map(|(m, _, _)| m.as_str())
        .collect();
    if failed.is_empty() {
        ExitCode::SUCCESS
    } else {
        // Attribute wall time per module so a hung-then-killed or slow
        // experiment is identifiable from the failure summary alone.
        eprintln!("[nbsp-bench] failed experiments: {}", failed.join(", "));
        for (module, secs, ok) in &timings {
            let status = if *ok { "ok" } else { "FAILED" };
            eprintln!("[nbsp-bench]   {module}: {status} ({secs:.1}s)");
        }
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_body_succeeds() {
        let code = run_experiment("test_ok", || "report".to_string());
        assert_eq!(code, ExitCode::SUCCESS);
    }

    #[test]
    fn panicking_body_fails() {
        let code = run_experiment("test_panic", || panic!("boom"));
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn run_all_reports_every_failure() {
        let code = run_all(vec![
            ("a", Box::new(|| "ok".to_string()) as Box<dyn FnOnce() -> String>),
            ("b", Box::new(|| panic!("boom"))),
        ]);
        assert_eq!(code, ExitCode::FAILURE);
    }

    #[test]
    fn unrestricted_filter_allows_everything() {
        let f = ProviderFilter::default();
        assert!(!f.is_restricted());
        for id in ProviderId::ALL {
            assert!(f.allows(id));
        }
    }

    #[test]
    fn restricted_filter_allows_only_listed() {
        let f = ProviderFilter {
            ids: Some(vec![ProviderId::ConstantTime]),
        };
        assert!(f.is_restricted());
        assert!(f.allows(ProviderId::ConstantTime));
        assert!(!f.allows(ProviderId::Fig4Native));
    }

    #[test]
    fn tier_prefix_expands_to_the_registry_slice() {
        let mut ids = Vec::new();
        parse_provider_list("tier:weak-primitive", &mut ids).unwrap();
        assert_eq!(ids.len(), 2, "both consensus-hierarchy providers");
        assert!(ids.iter().all(|id| id.meta().tier == Tier::WeakPrimitive));

        let mut all = Vec::new();
        for tier in Tier::ALL {
            parse_provider_list(&format!("tier:{tier}"), &mut all).unwrap();
        }
        assert_eq!(all.len(), ProviderId::ALL.len(), "tiers partition the registry");
    }

    #[test]
    fn tier_prefix_mixes_with_plain_names() {
        let mut ids = Vec::new();
        parse_provider_list("lock,tier:dynamic", &mut ids).unwrap();
        assert!(ids.contains(&ProviderId::LockBaseline));
        assert!(ids.len() > 1, "the dynamic tier follows the named entry");
    }

    #[test]
    fn unknown_tier_is_rejected_with_the_valid_names() {
        let mut ids = Vec::new();
        let err = parse_provider_list("tier:bogus", &mut ids).unwrap_err();
        assert!(err.contains("weak-primitive"), "error lists valid tiers: {err}");
    }
}
