//! Model checking, two layers deep.
//!
//! **Certificates** (first section): exhaustive interleaving checks of the
//! paper's *pseudocode* — the explicit step machines for Figures 3, 5, 6
//! and 7 in `nbsp-linearize` — including negative controls (disabled tags,
//! undersized tag universes) showing which mechanisms are load-bearing.
//!
//! **E13** (second section): DPOR model checking of the *shipped
//! providers* via `nbsp-check` — every registry entry runs on real
//! threads under a cooperative scheduler, every interleaving of its
//! shared accesses is enumerated, and every distinct history is checked
//! against the Figure-2 specification. Writes `BENCH_modelcheck.json`
//! (schema documented in `e13_modelcheck::to_json`) and hard-fails on any
//! violation, any capped exploration, a pruning ratio below 2x, or a
//! missed planted bug.
//!
//! `--quick` restricts the E13 sweep to the base configuration per
//! provider (CI uses this).
use std::process::ExitCode;

use nbsp_bench::experiments::e13_modelcheck;
use nbsp_bench::runner::run_experiment;
use nbsp_linearize::modelcheck::{check_figure3, check_figure5, CasOp, LlScOp};
use nbsp_linearize::modelcheck_bounded::{check_figure7, BoundedOp};
use nbsp_linearize::modelcheck_wide::{check_figure6, WideOp};

fn certificates() {
    println!("### Mechanical certificates (exhaustive interleaving checks)\n");

    let r = check_figure3(
        vec![
            vec![CasOp { old: 0, new: 5 }],
            vec![CasOp { old: 0, new: 7 }, CasOp { old: 7, new: 0 }],
        ],
        0,
        1 << 16,
        1,
    );
    println!(
        "Figure 3, CAS(0→5) vs CAS(0→7);CAS(7→0), spurious budget 1: \
         {} executions, linearizable: {}",
        r.executions,
        r.holds()
    );

    let r = check_figure3(
        vec![
            vec![CasOp { old: 0, new: 5 }],
            vec![CasOp { old: 0, new: 7 }, CasOp { old: 7, new: 0 }],
        ],
        0,
        1, // tags disabled
        0,
    );
    println!(
        "Figure 3, same program, tags DISABLED: {} executions, linearizable: {} \
         (CAS safety is value-only; tags buy termination)",
        r.executions,
        r.holds()
    );

    let aba = vec![
        vec![LlScOp::Ll, LlScOp::Sc(5)],
        vec![LlScOp::Ll, LlScOp::Sc(7), LlScOp::Ll, LlScOp::Sc(0)],
    ];
    let r = check_figure5(aba.clone(), 0, 1 << 16, 1);
    println!(
        "Figure 5, LL;SC(5) vs (LL;SC(7);LL;SC(0)), spurious budget 1: \
         {} executions, linearizable: {}",
        r.executions,
        r.holds()
    );
    let r = check_figure5(aba, 0, 2, 0);
    println!(
        "Figure 5, same program, 1-bit tag (wraps): linearizable: {} \
         (violation found after {} executions — the tag is load-bearing)",
        r.holds(),
        r.executions
    );

    let r = check_figure6(
        vec![
            vec![WideOp::Wll, WideOp::Sc([7, 8])],
            vec![WideOp::Wll, WideOp::Sc([9, 10])],
        ],
        [1, 2],
    );
    println!(
        "Figure 6 (W=2), racing WLL;SC vs WLL;SC: {} executions, linearizable: {}",
        r.executions,
        r.holds()
    );

    let r = check_figure6(
        vec![
            vec![WideOp::Wll, WideOp::Sc([7, 8])],
            vec![WideOp::Wll, WideOp::Wll],
        ],
        [1, 2],
    );
    println!(
        "Figure 6 (W=2), WLL;SC vs WLL;WLL (helping): {} executions, linearizable: {}",
        r.executions,
        r.holds()
    );

    // Figure 7: park a sequence in slot 0, churn slot 1, fire the parked SC.
    let park_and_churn = |churn: usize| {
        let mut p0 = vec![BoundedOp::Ll(0)];
        for round in 0..churn {
            p0.push(BoundedOp::Ll(1));
            p0.push(BoundedOp::Sc(1, if round % 2 == 0 { 7 } else { 0 }));
        }
        p0.push(BoundedOp::Sc(0, 5));
        vec![p0, vec![]]
    };
    let mut total = 0;
    let mut ok = true;
    for churn in 1..=12 {
        let r = check_figure7(park_and_churn(churn), 0, 9);
        total += r.executions;
        ok &= r.holds();
    }
    println!(
        "Figure 7 (N=2, k=2, 2Nk+1 = 9 tags), park-and-churn 1..=12: \
         {total} executions, linearizable: {ok}"
    );
    let caught = (1..=12).any(|c| !check_figure7(park_and_churn(c), 0, 2).holds());
    println!(
        "Figure 7, same programs, UNDERSIZED universe (2 tags): violation \
         found: {caught} (the 2Nk+1 bound is load-bearing)"
    );

    let r = check_figure7(
        vec![
            vec![
                BoundedOp::Ll(0),
                BoundedOp::Ll(1),
                BoundedOp::Sc(1, 3),
                BoundedOp::Sc(0, 4),
            ],
            vec![BoundedOp::Ll(0), BoundedOp::Sc(0, 2)],
        ],
        0,
        9,
    );
    println!(
        "Figure 7, concurrent slots (Figure 1(a) shape) vs rival: {} executions, linearizable: {}",
        r.executions,
        r.holds()
    );
    println!();
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    certificates();
    run_experiment("e13_modelcheck", move || {
        let r = e13_modelcheck::collect(quick);
        let json = e13_modelcheck::to_json(&r);
        std::fs::write("BENCH_modelcheck.json", &json)
            .expect("writing BENCH_modelcheck.json failed");
        eprintln!("[nbsp-bench] wrote BENCH_modelcheck.json");
        let report = e13_modelcheck::render(&r).to_string();
        // Gates run after the artifact is written so a red run still
        // leaves the numbers on disk for the postmortem.
        e13_modelcheck::enforce(&r);
        report
    })
}
