//! E4: spurious-failure resilience. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e4_spurious::run(100_000));
}
