//! E4: spurious-failure resilience. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e4_spurious", || nbsp_bench::experiments::e4_spurious::run(100_000).to_string())
}
