//! E11 — telemetry overhead gate and snapshot ablation.
//!
//! Build variants:
//! * default (`telemetry` on): reports the recording cost per small op
//!   (not gated) and runs the racy-vs-atomic snapshot ablation, gating
//!   the Figure-6 reader to zero torn observations;
//! * `--no-default-features`: gates the geomean instrumented/stub-free
//!   ratio at 1% — the "zero cost when disabled" claim.
//!
//! `--quick` shrinks the iteration counts and drops the gates (a smoke
//! run's microloop timings are noise).
use std::process::ExitCode;

use nbsp_bench::experiments::e11_telemetry;
use nbsp_bench::runner::run_experiment;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters = if quick { 20_000 } else { 400_000 };
    run_experiment("e11_telemetry", move || {
        e11_telemetry::run(iters, !quick).to_string()
    })
}
