//! E1: constant-time operations (Theorems 1–3). See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e1_time::run(200_000));
}
