//! E1: constant-time operations (Theorems 1–3). See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e1_time", || nbsp_bench::experiments::e1_time::run(200_000).to_string())
}
