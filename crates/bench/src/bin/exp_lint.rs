//! Repo-invariant lint pass (`nbsp_check::lint`), as a CI gate.
//!
//! Walks every Rust source file in the repository and mechanizes the
//! conventions the review process otherwise has to carry by hand: memory
//! orderings stay acquire/release outside the sanctioned files,
//! per-process slot arrays stay cache-line padded, provider names and
//! construction dispatch stay confined to the registry, the telemetry
//! stub keeps API parity with the real implementation, and every
//! `BENCH_*.json` artifact declares a schema version. Allowlist entries
//! that stop matching anything are themselves findings, so the allowlists
//! cannot rot.
//!
//! Prints every finding (`[rule] path:line: message`) and exits nonzero
//! if there are any. No arguments.
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    // The binary lives in crates/bench; the repo root is two levels up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let findings = nbsp_check::run_lints(&root);
    if findings.is_empty() {
        eprintln!("[nbsp-lint] clean");
        return ExitCode::SUCCESS;
    }
    for f in &findings {
        println!("{f}");
    }
    eprintln!("[nbsp-lint] {} finding(s)", findings.len());
    ExitCode::FAILURE
}
