//! Regenerates E12: the open-loop serving sweep (arrival rate × structure
//! × admission on/off) with sojourn percentiles against intended arrivals.
//! Writes `BENCH_serve.json`. Run with `--quick` for a fast smoke pass
//! (the determinism-based gates are enforced either way).
use std::process::ExitCode;

use nbsp_bench::experiments::e12_serve;
use nbsp_bench::runner::run_experiment;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let requests = if quick { 20_000 } else { 200_000 };
    run_experiment("e12_serve", move || e12_serve::run(requests).to_string())
}
