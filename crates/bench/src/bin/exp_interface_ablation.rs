//! E8: the keep-pointer interface ablation. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e8_interface", || nbsp_bench::experiments::e8_interface::run(200_000).to_string())
}
