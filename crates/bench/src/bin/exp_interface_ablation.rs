//! E8: the keep-pointer interface ablation. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e8_interface::run(200_000));
}
