//! Regenerates E15: the LLX/SCX ordered map's keyed fabric cells
//! (worker count × key skew, deterministic on the virtual clock) and the
//! closed-loop throughput sweep against the lock-baseline map. Writes
//! `BENCH_structures.json` (deterministic artifacts + gate verdicts).
//! Run with `--quick` for a fast smoke pass (the determinism and
//! conservation gates are enforced either way).
use std::process::ExitCode;

use nbsp_bench::experiments::e15_structures;
use nbsp_bench::runner::run_experiment;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (requests, iters) = if quick { (20_000, 40_000) } else { (100_000, 48_000) };
    run_experiment("e15_structures", move || {
        e15_structures::run(requests, iters).to_string()
    })
}
