//! E5: tag width vs wraparound horizon. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e5_wraparound::run(200_000));
}
