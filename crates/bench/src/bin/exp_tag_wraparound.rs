//! E5: tag width vs wraparound horizon. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e5_wraparound", || nbsp_bench::experiments::e5_wraparound::run(200_000).to_string())
}
