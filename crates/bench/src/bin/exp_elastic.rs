//! Regenerates E14: the elastic-pool flash-crowd sweep (fixed fabric
//! pools vs the dynamic-joining elastic pool under one admission
//! configuration) plus the durable provider's kill-at-schedule-point
//! crash–recovery sweep. Writes `BENCH_elastic.json`. Run with `--quick`
//! for a fast smoke pass (the determinism-based gates are enforced
//! either way).
use std::process::ExitCode;

use nbsp_bench::experiments::e14_elastic;
use nbsp_bench::runner::run_experiment;

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (requests, crash_trials) = if quick { (20_000, 16) } else { (200_000, 64) };
    run_experiment("e14_elastic", move || {
        e14_elastic::run(requests, crash_trials).to_string()
    })
}
