//! E9: bounded-tag safety audit. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e9_bounded", || nbsp_bench::experiments::e9_bounded::run(500_000).to_string())
}
