//! E9: bounded-tag safety audit and constant-time ablation. See
//! `EXPERIMENTS.md`.
//!
//! Flags: `--quick` shrinks the N sweep and iteration counts (and loosens
//! the growth gates accordingly); `--provider name[,name…]` restricts the
//! ablation to a subset of the registry (gates are skipped then). Writes
//! the measured numbers and gate verdicts to `BENCH_bounded.json` so CI
//! can assert the gates held without parsing markdown.
use std::process::ExitCode;

use nbsp_bench::experiments::e9_bounded;
use nbsp_bench::runner::{provider_filter, run_experiment};

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let filter = match provider_filter() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("[exp_bounded_audit] {e}");
            return ExitCode::FAILURE;
        }
    };
    let per_thread = if quick { 20_000 } else { 500_000 };
    run_experiment("e9_bounded", move || {
        let r = e9_bounded::collect(per_thread, quick, &filter);
        let json = e9_bounded::to_json(&r);
        std::fs::write("BENCH_bounded.json", &json).expect("write BENCH_bounded.json");
        eprintln!("[exp_bounded_audit] wrote BENCH_bounded.json");
        let report = e9_bounded::render(&r).to_markdown();
        // After rendering, so a gate failure still leaves the JSON behind
        // for diagnosis; the panic turns into a failing exit code.
        e9_bounded::enforce(&r);
        report
    })
}
