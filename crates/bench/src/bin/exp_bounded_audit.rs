//! E9: bounded-tag safety audit. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e9_bounded::run(500_000));
}
