//! E10: disjoint-access parallelism. See `EXPERIMENTS.md`.
fn main() {
    println!("{}", nbsp_bench::experiments::e10_disjoint::run(2_000));
}
