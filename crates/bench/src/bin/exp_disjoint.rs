//! E10: disjoint-access parallelism. See `EXPERIMENTS.md`.
use std::process::ExitCode;

fn main() -> ExitCode {
    nbsp_bench::runner::run_experiment("e10_disjoint", || nbsp_bench::experiments::e10_disjoint::run(2_000).to_string())
}
